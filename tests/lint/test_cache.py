"""Incremental analysis cache: hits, invalidation, config keying."""

from pathlib import Path

from repro.lint import LintConfig, LintStats, run_lint
from repro.lint.cache import CACHE_DIR_NAME, AnalysisCache, package_signature


def _mkproj(tmp_path: Path, body: str = "def f(x):\n    return x == 0.5\n"):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    mod = tmp_path / "mod.py"
    mod.write_text(body, encoding="utf-8")
    return mod


def _run(mod, tmp_path, **cfg_kwargs):
    stats = LintStats()
    config = LintConfig(project_root=tmp_path, use_cache=True, **cfg_kwargs)
    findings = run_lint([mod], config, stats)
    return findings, stats


def test_second_run_hits_the_cache(tmp_path):
    mod = _mkproj(tmp_path)
    first, s1 = _run(mod, tmp_path)
    second, s2 = _run(mod, tmp_path)
    assert s1.cached_files == 0 and s2.cached_files == 1
    assert [f.render() for f in first] == [f.render() for f in second]
    assert any(f.rule == "DET003" for f in second)  # through the cache
    assert (tmp_path / CACHE_DIR_NAME).is_dir()


def test_source_edit_invalidates(tmp_path):
    mod = _mkproj(tmp_path)
    findings, _ = _run(mod, tmp_path)
    assert findings
    mod.write_text("def f(x):\n    return x > 0.5\n", encoding="utf-8")
    findings2, s2 = _run(mod, tmp_path)
    assert s2.cached_files == 0  # fresh content, fresh analysis
    assert findings2 == []


def test_config_signature_keys_the_entries(tmp_path):
    mod = _mkproj(tmp_path)
    det, s1 = _run(mod, tmp_path, select=("DET003",))
    none, s2 = _run(mod, tmp_path, select=("DET001",))
    assert s2.cached_files == 0  # different select -> different key space
    assert det and none == []
    det2, s3 = _run(mod, tmp_path, select=("DET003",))
    assert s3.cached_files == 1  # original entries still valid
    assert [f.render() for f in det2] == [f.render() for f in det]


def test_findings_roundtrip_through_the_store(tmp_path):
    mod = _mkproj(tmp_path)
    findings, _ = _run(mod, tmp_path)
    cached, _ = _run(mod, tmp_path)
    assert cached == findings  # frozen dataclass equality, field by field


def test_package_signature_is_stable_and_hexlike():
    sig1 = package_signature()
    sig2 = package_signature()
    assert sig1 == sig2
    assert isinstance(sig1, str) and len(sig1) >= 8
    int(sig1, 16)  # raises if not hex


def test_cache_prune_bounds_entry_count(tmp_path, monkeypatch):
    import repro.lint.cache as cache_mod

    monkeypatch.setattr(cache_mod, "_MAX_ENTRIES", 3)
    cache = AnalysisCache(tmp_path, config_sig="s")
    for i in range(10):
        cache.put(cache.key(f"m{i}.py", f"x = {i}\n"), [])
    entries = list((tmp_path / CACHE_DIR_NAME).glob("*.json"))
    assert len(entries) <= 3
