"""Symbolic protocol verifier: real drivers certify, seeded bugs don't."""

from pathlib import Path

import pytest

from repro.lint.flow import DRIVERS, verify_drivers
from repro.lint.runner import collect_files, parse_module

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def _modules(path: Path):
    return [
        m
        for f in collect_files([path])
        if (m := parse_module(f, REPO)) is not None
    ]


@pytest.fixture(scope="module")
def repo_reports():
    return verify_drivers(_modules(REPO / "src" / "repro"))


def test_all_registered_drivers_certify(repo_reports):
    by_qualname = {r.qualname: r for r in repo_reports}
    for _relpath, qualname in DRIVERS:
        assert qualname in by_qualname, sorted(by_qualname)
        r = by_qualname[qualname]
        assert r.certified, [(p.kind, p.line, p.message) for p in r.problems]
        assert r.ranks == (2, 3, 4)
        assert r.paths >= 1


def test_certification_covers_real_communication(repo_reports):
    # the certificate is vacuous unless the executor actually walked
    # posts and drains across the drivers
    assert sum(r.posts for r in repo_reports) > 0
    assert sum(r.drains for r in repo_reports) > 0
    assert sum(r.collectives for r in repo_reports) > 0


def test_seeded_deadlock_fixture_is_detected():
    reports = verify_drivers(_modules(FIXTURES / "deadlock_bad.py"))
    assert reports, "fixture driver not discovered"
    report = reports[0]
    assert not report.certified
    kinds = {p.kind for p in report.problems}
    assert "deadlock" in kinds, kinds
    assert "undrained-at-collective" in kinds, kinds
    lines = {p.line for p in report.problems if p.kind == "deadlock"}
    assert lines == {15}  # the mis-tagged recv


def test_clean_twin_certifies():
    reports = verify_drivers(_modules(FIXTURES / "deadlock_clean.py"))
    assert reports
    report = reports[0]
    assert report.certified, [(p.kind, p.message) for p in report.problems]
    assert report.posts > 0 and report.drains > 0


def test_rank_count_is_parameterizable():
    reports = verify_drivers(_modules(FIXTURES / "deadlock_clean.py"), ranks=(2,))
    assert reports and reports[0].ranks == (2,)
    assert reports[0].certified
