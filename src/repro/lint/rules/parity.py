"""Backend-parity rules (``PAR001``–``PAR003``).

The vectorized kernel layer is only trustworthy because every kernel
has a scalar reference twin and a bit-exactness test; the simulator's
accounting is only comparable across backends because flop charges are
integral (float summation of integers is exact, so batched and scalar
accumulation agree bit for bit).  These rules keep both disciplines
from eroding as kernels are added.
"""

from __future__ import annotations

import ast

from ..astutil import call_name
from ..findings import Finding, Severity
from ..registry import Rule, register
from ..runner import ModuleContext, ProjectContext

__all__ = ["MissingParityTest", "FractionalFlopCharge", "MissingReferenceTwin"]


def _kernels_modules(project: ProjectContext) -> list[ModuleContext]:
    return [
        m
        for m in project.modules
        if "/kernels/" in f"/{m.relpath}" and not m.relpath.endswith("__init__.py")
    ]


def _module_all(module: ModuleContext) -> tuple[list[str], int]:
    """The ``__all__`` string list of a module and its line number."""
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                names = [
                    elt.value
                    for elt in node.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                ]
                return names, node.lineno
    return [], 0


def _test_corpus(project: ProjectContext) -> str:
    test_dir = project.root / project.config.kernels_test_dir
    if not test_dir.is_dir():
        return ""
    chunks = []
    for f in sorted(test_dir.glob("*.py")):
        try:
            chunks.append(f.read_text(encoding="utf-8"))
        except OSError:
            continue
    return "\n".join(chunks)


@register
class MissingParityTest(Rule):
    """A public kernels symbol with no test under ``tests/kernels``.

    Public means listed in the module's ``__all__``.  The parity suite
    is the oracle that keeps the vectorized backend bit-exact with the
    reference; a kernel nothing references there is unverified.
    """

    id = "PAR001"
    name = "missing-parity-test"
    severity = Severity.ERROR
    description = (
        "every public repro.kernels symbol must be exercised by the "
        "parity suite under tests/kernels"
    )

    def check_project(self, project: ProjectContext) -> list[Finding]:
        kernels = _kernels_modules(project)
        if not kernels:
            return []
        corpus = _test_corpus(project)
        out: list[Finding] = []
        for module in kernels:
            names, line = _module_all(module)
            for name in names:
                if name not in corpus:
                    out.append(
                        self.finding(
                            module,
                            line or 1,
                            0,
                            f"public kernel {name!r} has no parity test under "
                            f"{project.config.kernels_test_dir}",
                        )
                    )
        return out


@register
class MissingReferenceTwin(Rule):
    """A kernels module whose docstring names no reference twin.

    Each vectorized module documents the scalar implementation it is
    bit-exact against (e.g. "Selection-identical to
    :mod:`repro.ilu.dropping`"); the cross-reference is what reviewers
    and the parity suite key off.  The check is lexical: the module
    docstring must mention "reference" or cross-reference a ``repro.``
    module outside ``kernels``.
    """

    id = "PAR003"
    name = "missing-reference-twin"
    severity = Severity.WARNING
    description = (
        "kernels modules must document the scalar reference twin they "
        "are bit-exact against"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        if "/kernels/" not in f"/{module.relpath}" or module.relpath.endswith(
            "__init__.py"
        ):
            return []
        doc = ast.get_docstring(module.tree) or ""
        if "reference" in doc.lower() or "repro." in doc.replace("repro.kernels", ""):
            return []
        return [
            self.finding(
                module,
                1,
                0,
                "kernels module docstring names no reference twin "
                '(mention the scalar module it is bit-exact against)',
            )
        ]


#: Call shapes that charge flops to the simulator.
_CHARGE_CALLS = frozenset({"compute", "_charge_ops", "charge"})


def _non_integral_part(expr: ast.AST) -> tuple[str, int] | None:
    """A reason ``expr`` is not statically integral, or None if it is OK.

    The check is a denylist, not a type proof: true division and
    non-integral float literals are the two shapes that make a flop
    charge fractional; integer-valued literals like ``2.0`` and
    ``float(...)`` promotions of integer counts are exact and allowed.
    """
    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return ("true division '/' (use '//' or int(...))", node.lineno)
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and not float(node.value).is_integer()
        ):
            return (f"non-integral literal {node.value!r}", node.lineno)
    return None


@register
class FractionalFlopCharge(Rule):
    """A simulator flop charge that is statically non-integral.

    ``Simulator.compute`` charges feed the cross-backend accounting
    equality (reference and vectorized runs must report identical
    ``modeled_time``); that equality relies on every charge being an
    integer value, because float addition of integers is exact while
    fractional charges make the batched/scalar accumulation orders
    observable.
    """

    id = "PAR002"
    name = "fractional-flop-charge"
    severity = Severity.ERROR
    description = (
        "flop charges (sim.compute / _charge_ops / charge) must be "
        "integral expressions"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in _CHARGE_CALLS or len(node.args) < 2:
                continue
            problem = _non_integral_part(node.args[1])
            if problem is not None:
                reason, line = problem
                out.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"flop charge contains {reason}: charges must be "
                        "integral for cross-backend accounting equality",
                    )
                )
        return out
