#!/usr/bin/env python
"""Scalability study across machine models (the paper's Figures 4-6 story).

Runs the same ILUT and ILUT* factorization across a processor sweep on
three machine models — the Cray T3D preset, an ethernet workstation
cluster, and an ideal zero-communication machine — and prints speedup
curves.  Reproduces the paper's §7 observation that ILUT*'s fewer
synchronisation levels are *critical* on slower networks.

Run:  python examples/machine_scaling.py
"""

import numpy as np

from repro import (
    CRAY_T3D,
    IDEAL,
    WORKSTATION_CLUSTER,
    ILUTParams,
    parallel_ilut,
    parallel_ilut_star,
    poisson2d,
)
from repro.analysis import format_series, relative_speedups


def main(nx: int = 48, procs: tuple = (2, 4, 8, 16)) -> None:
    A = poisson2d(nx)
    m, t = 10, 1e-6  # the dense regime where the story is interesting
    print(f"workload: G0-class grid, n={A.shape[0]}, ILUT/ILUT*(m={m}, t={t})\n")

    for model in (CRAY_T3D, WORKSTATION_CLUSTER, IDEAL):
        print(f"--- machine: {model.name}")
        for name, runner in (
            ("ILUT ", lambda p: parallel_ilut(
                A, ILUTParams(fill=m, threshold=t), p, seed=0, model=model)),
            ("ILUT*", lambda p: parallel_ilut_star(
                A, ILUTParams(fill=m, threshold=t, k=2), p, seed=0, model=model)),
        ):
            times = {p: runner(p).modeled_time for p in procs}
            sp = relative_speedups(times)
            print(
                " ",
                format_series(
                    f"{name} time(s)", procs, [times[p] for p in procs], yfmt="{:.4f}"
                ),
            )
            print(
                " ",
                format_series(
                    f"{name} speedup", procs, [sp[p] for p in procs]
                ),
            )
        ti = parallel_ilut(
            A, ILUTParams(fill=m, threshold=t), procs[-1], seed=0, model=model
        ).modeled_time
        ts = parallel_ilut_star(
            A, ILUTParams(fill=m, threshold=t, k=2), procs[-1], seed=0, model=model
        ).modeled_time
        print(f"  ILUT* saves {ti - ts:.4f}s at p={procs[-1]} ({ti / ts:.2f}x)\n")


if __name__ == "__main__":
    main()
