"""PERF005 bad twin: level schedules rebuilt per iteration."""


def iterate_solves(factors, rhs_list):
    from repro.kernels import BatchedTriangularSchedule
    from repro.ilu.apply import triangular_levels

    outs = []
    for b in rhs_list:
        levels = triangular_levels(factors.L, lower=True)
        sched = BatchedTriangularSchedule(factors.U, lower=False)
        outs.append((levels, sched, b))
    return outs
