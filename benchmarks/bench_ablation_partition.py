"""Ablation — partition quality (paper §3, §6).

'A good domain decomposition ... significantly decreases the amount of
communication required by each of the computational kernels.'  The
multilevel k-way partitioner minimises interface nodes; block and random
partitions are the baselines showing what happens without it.
"""

import numpy as np
import pytest

from _reporting import record_table
from _workloads import MODEL, PROCS, SEED, matrix

from repro import decompose, parallel_ilut
from repro.solvers import parallel_matvec

METHODS = ("multilevel", "block", "random")


def _sweep():
    A = matrix("g0")
    p = PROCS[-1]
    x = np.ones(A.shape[0])
    rows = []
    for method in METHODS:
        d = decompose(A, p, method=method, seed=SEED)
        r = parallel_ilut(A, 10, 1e-4, p, decomp=d, model=MODEL, seed=SEED)
        mv = parallel_matvec(A, d, x, model=MODEL)
        rows.append(
            [
                method,
                d.n_interface,
                r.num_levels,
                r.modeled_time,
                mv.modeled_time,
            ]
        )
    return rows


def test_partition_quality(benchmark):
    from repro.analysis import format_table

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_table(
        "Ablation: partition quality (G0, ILUT(10,1e-4), p=%d)" % PROCS[-1],
        format_table(
            ["method", "interface rows", "levels q", "factor time", "matvec time"],
            rows,
        ),
    )
    by = {r[0]: r for r in rows}
    # multilevel minimises interface rows by a wide margin
    assert by["multilevel"][1] < 0.6 * by["random"][1]
    assert by["multilevel"][1] <= by["block"][1]
    # fewer interface rows → faster factorization and matvec
    assert by["multilevel"][3] < by["random"][3]
    assert by["multilevel"][4] < by["random"][4]
