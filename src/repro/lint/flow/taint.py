"""Intraprocedural taint propagation with def-use provenance chains.

Two taint domains matter for reproducibility of the parallel ILU
drivers:

* **rank taint** — values derived from the executing rank (``rank``,
  ``src``, a ``range(nranks)`` loop variable, ``sim.rank`` …).  A rank-
  tainted branch condition guarding a *collective* means different
  ranks can disagree about reaching the collective: the classic SPMD
  divergence bug.  SPMD002 catches the syntactic case; the taint layer
  (SPMD005) catches it through copies and arithmetic.
* **RNG taint** — values derived from a random generator.  RNG-tainted
  data flowing into a posted payload or a drop/keep decision makes the
  factorization non-reproducible across seeds — exactly what the
  paper's deterministic-MIS construction is designed to avoid.

Propagation is a flow-insensitive fixpoint over the function's
assignments (sound for the lint use case: an over-approximation that
reports *how* the value got tainted).  Every tainted name carries a
:class:`TaintChain` — the def-use steps from seed to name — which the
rules render into the finding message so the report explains itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = [
    "TaintStep",
    "TaintChain",
    "rank_tainted_names",
    "rng_taint_chains",
]

_RANK_PARAM_NAMES = frozenset(
    {"rank", "src", "dst", "r", "rk", "pe", "proc", "me", "myrank"}
)
_RANK_RANGE_MARKERS = ("nranks", "nprocs", "num_ranks", "world_size")
_RANK_ATTRS = frozenset({"rank", "myrank", "pe"})

_RNG_CONSTRUCTORS = frozenset({"default_rng", "Random", "RandomState", "Generator"})
_RNG_METHODS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "rand",
        "randn",
        "uniform",
        "normal",
        "choice",
        "shuffle",
        "permutation",
        "sample",
        "integers",
        "standard_normal",
    }
)


@dataclass(frozen=True)
class TaintStep:
    """One hop of provenance: ``name`` became tainted at ``line``."""

    line: int
    name: str
    via: str

    def render(self) -> str:
        return f"{self.name} (line {self.line}: {self.via})"


@dataclass(frozen=True)
class TaintChain:
    """Def-use chain from taint seed to the queried name."""

    name: str
    steps: tuple[TaintStep, ...]

    def extended(self, step: TaintStep) -> "TaintChain":
        return TaintChain(name=step.name, steps=self.steps + (step,))

    def describe(self) -> str:
        return " -> ".join(s.render() for s in self.steps)


def _names_in(expr: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _target_names(target: ast.expr) -> list[str]:
    out: list[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            out.append(node.id)
    return out


def _assignments(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[list[str], ast.expr, int, str]]:
    """``(target names, value expr, line, kind)`` for every binding."""
    out: list[tuple[list[str], ast.expr, int, str]] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            continue  # nested scopes propagate separately
        if isinstance(node, ast.Assign):
            names: list[str] = []
            for t in node.targets:
                names.extend(_target_names(t))
            out.append((names, node.value, node.lineno, "assigned from"))
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            out.append(
                ([node.target.id], node.value, node.lineno, "augmented with")
            )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            out.append(
                (_target_names(node.target), node.value, node.lineno, "assigned from")
            )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            out.append(
                (_target_names(node.target), node.iter, node.lineno, "iterates over")
            )
        elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            out.append(([node.target.id], node.value, node.lineno, "assigned from"))
    return out


def _propagate(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    seeds: dict[str, TaintChain],
    seed_expr: "callable",
) -> dict[str, TaintChain]:
    """Fixpoint: targets of bindings whose value references a tainted
    name (or matches ``seed_expr``) become tainted, chains extended."""
    tainted = dict(seeds)
    bindings = _assignments(func)
    changed = True
    while changed:
        changed = False
        for names, value, line, kind in bindings:
            source: TaintChain | None = None
            via = ""
            seed_reason = seed_expr(value)
            if seed_reason:
                source = TaintChain(name="", steps=())
                via = seed_reason
            else:
                for ref in sorted(_names_in(value)):
                    if ref in tainted:
                        source = tainted[ref]
                        via = f"{kind} {ref}"
                        break
            if source is None:
                continue
            for name in names:
                if name in tainted:
                    continue
                tainted[name] = source.extended(
                    TaintStep(line=line, name=name, via=via)
                )
                changed = True
    return tainted


# ---------------------------------------------------------------- rank


def _rank_seed_expr(expr: ast.expr) -> str:
    """Non-empty reason when ``expr`` itself produces a rank value."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr in _RANK_ATTRS:
            return f"reads .{node.attr}"
    return ""


def rank_tainted_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, TaintChain]:
    """Names carrying rank-derived values, with provenance chains."""
    seeds: dict[str, TaintChain] = {}
    all_args = (
        func.args.posonlyargs + func.args.args + func.args.kwonlyargs
    )
    for a in all_args:
        if a.arg in _RANK_PARAM_NAMES:
            seeds[a.arg] = TaintChain(
                name=a.arg,
                steps=(
                    TaintStep(
                        line=func.lineno, name=a.arg, via="rank-named parameter"
                    ),
                ),
            )
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_dump = ast.dump(node.iter)
            if any(m in iter_dump for m in _RANK_RANGE_MARKERS):
                for name in _target_names(node.target):
                    seeds.setdefault(
                        name,
                        TaintChain(
                            name=name,
                            steps=(
                                TaintStep(
                                    line=node.lineno,
                                    name=name,
                                    via="iterates over the rank range",
                                ),
                            ),
                        ),
                    )
    return _propagate(func, seeds, _rank_seed_expr)


# ----------------------------------------------------------------- rng


def _rng_seed_expr(expr: ast.expr) -> str:
    for node in ast.walk(expr):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _RNG_CONSTRUCTORS:
                return f"constructs RNG via {func.attr}()"
            if func.attr in _RNG_METHODS:
                chain = ast.dump(func.value)
                if "random" in chain or "rng" in chain.lower():
                    return f"draws from RNG via .{func.attr}()"
        elif isinstance(func, ast.Name) and func.id in _RNG_CONSTRUCTORS:
            return f"constructs RNG via {func.id}()"
    return ""


def rng_taint_chains(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, TaintChain]:
    """Names carrying RNG-derived values, with provenance chains.

    Parameters named like generators (``rng``, ``rand``, ``gen``) are
    seeded too: a caller passing a generator in is the common repro
    idiom (``default_rng`` happens at the driver boundary).
    """
    seeds: dict[str, TaintChain] = {}
    all_args = (
        func.args.posonlyargs + func.args.args + func.args.kwonlyargs
    )
    for a in all_args:
        low = a.arg.lower()
        if low in ("rng", "rand", "random_state", "gen", "generator"):
            seeds[a.arg] = TaintChain(
                name=a.arg,
                steps=(
                    TaintStep(
                        line=func.lineno, name=a.arg, via="RNG parameter"
                    ),
                ),
            )
    return _propagate(func, seeds, _rng_seed_expr)
