"""Vectorized parallel drivers: identical accounting, races and answers.

The vectorized triangular solve and matvec batch the arithmetic but
charge the simulator with exact integer flop totals and declare the same
shared-object accesses, so ``modeled_time``, ``comm`` and the race
detector's verdict must be *equal* — not merely close — across backends.
"""

import numpy as np
import pytest

from repro import ILUTParams, poisson2d
from repro.decomp import decompose
from repro.ilu import parallel_ilut_star
from repro.ilu.triangular import parallel_triangular_solve
from repro.solvers import parallel_matvec
from repro.verify import find_races


@pytest.fixture(scope="module")
def star_result():
    A = poisson2d(14)
    return A, parallel_ilut_star(
        A, ILUTParams(fill=6, threshold=1e-3, k=2), 4, seed=0
    )


class TestTriangularSolveParity:
    def test_accounting_is_equal(self, star_result):
        A, r = star_result
        b = np.arange(1, A.shape[0] + 1, dtype=np.float64)
        s0 = parallel_triangular_solve(r.factors, b, backend="reference")
        s1 = parallel_triangular_solve(r.factors, b, backend="vectorized")
        assert s0.modeled_time == s1.modeled_time
        assert s0.flops == s1.flops
        assert s0.comm == s1.comm
        scale = np.max(np.abs(s0.x))
        assert np.max(np.abs(s0.x - s1.x)) / scale <= 1e-12

    def test_race_detection_matches(self, star_result):
        A, r = star_result
        b = np.ones(A.shape[0])
        t0 = parallel_triangular_solve(r.factors, b, trace=True, backend="reference")
        t1 = parallel_triangular_solve(r.factors, b, trace=True, backend="vectorized")
        assert len(find_races(t0.trace)) == len(find_races(t1.trace)) == 0

    def test_nosim_path(self, star_result):
        A, r = star_result
        b = np.cos(np.arange(A.shape[0]))
        s0 = parallel_triangular_solve(r.factors, b, simulate=False, backend="reference")
        s1 = parallel_triangular_solve(r.factors, b, simulate=False, backend="vectorized")
        assert s0.modeled_time is None and s1.modeled_time is None
        scale = np.max(np.abs(s0.x)) or 1.0
        assert np.max(np.abs(s0.x - s1.x)) / scale <= 1e-12

    def test_trace_requires_simulate(self, star_result):
        A, r = star_result
        with pytest.raises(ValueError):
            parallel_triangular_solve(
                r.factors,
                np.ones(A.shape[0]),
                simulate=False,
                trace=True,
                backend="vectorized",
            )


class TestMatvecParity:
    def test_accounting_is_equal(self):
        A = poisson2d(16)
        d = decompose(A, 4, seed=0)
        x = np.linspace(0, 1, A.shape[0])
        m0 = parallel_matvec(A, d, x, backend="reference")
        m1 = parallel_matvec(A, d, x, backend="vectorized")
        assert m0.modeled_time == m1.modeled_time
        assert m0.flops == m1.flops
        assert m0.comm == m1.comm
        scale = np.max(np.abs(m0.y))
        assert np.max(np.abs(m0.y - m1.y)) / scale <= 1e-12

    def test_race_free_under_trace(self):
        A = poisson2d(10)
        d = decompose(A, 4, seed=0)
        x = np.ones(A.shape[0])
        m1 = parallel_matvec(A, d, x, trace=True, backend="vectorized")
        assert len(find_races(m1.trace)) == 0
        assert np.allclose(m1.y, A @ x, rtol=1e-12)
