"""DET001 bad twin: unseeded / module-level randomness."""

import random

import numpy as np


def jitter(x):
    rng = np.random.default_rng()
    return x + np.random.rand(x.size) + rng.standard_normal(x.size)


def pick(items):
    return random.choice(items)
