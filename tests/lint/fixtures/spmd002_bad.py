"""SPMD002 bad twin: collectives under rank-dependent control flow."""


def master_only(sim, rank):
    if rank == 0:
        sim.barrier()


def once_per_rank(sim, nranks):
    for r in range(nranks):
        sim.allreduce(0.0)
