"""TRN001 clean twin: the documented exemptions.

``halo_exchange`` posts a fresh copy, so the later buffer write cannot
reach the in-flight message; ``counter_sweep`` only rebinds a scalar
after the post (``+=`` on an int is a rebind, not a mutation of the
sent object).
"""


def halo_exchange(sim, buf, nbr, rank):
    sim.send(rank, nbr, buf.copy(), float(len(buf)), tag="halo")
    buf[0] = 0.0
    return sim.recv(rank, nbr, tag="halo")


def counter_sweep(sim, vals, rank, nranks):
    total = 0
    sim.send(rank, (rank + 1) % nranks, vals, 1.0, tag="ring")
    total += 1
    return total + sim.recv(rank, (rank - 1) % nranks, tag="ring")
