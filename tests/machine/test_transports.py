"""Cross-transport parity: the tentpole guarantee of the transport layer.

Every certified driver must produce **bit-identical** results on the
simulator, the thread transport and the process transport (DESIGN.md
§13): same factors, same solve vectors, same per-rank flop totals, same
message/barrier counts.  The simulator fixes the reference semantics;
these tests hold the real backends to it on the paper's G0 workload.

Also covered: the ``transport=`` entry-point surface (string specs,
ready instances, capability errors) and the ``simulate=`` deprecation
shims.
"""

import numpy as np
import pytest

from repro.decomp import decompose
from repro.graph import adjacency_from_matrix
from repro.graph.distributed_mis import distributed_two_step_luby_mis
from repro.ilu import ILUTParams, parallel_ilut, parallel_ilut_partitioned
from repro.ilu.parallel_ilu0 import parallel_ilu0
from repro.ilu.triangular import parallel_triangular_solve
from repro.machine import (
    CRAY_T3D,
    ProcessTransport,
    Simulator,
    ThreadTransport,
    TransportCapabilityError,
    TransportError,
    resolve_transport,
    transport_name,
)
from repro.matrices import poisson2d
from repro.solvers.parallel_matvec import parallel_matvec

TRANSPORTS = ["simulator", "threads", "processes"]
BACKENDS = [None, "vectorized"]


def _same_csr(X, Y):
    return (
        np.array_equal(X.indptr, Y.indptr)
        and np.array_equal(X.indices, Y.indices)
        and np.array_equal(X.data, Y.data)
    )


def _assert_same_factors(a, b):
    assert _same_csr(a.factors.L, b.factors.L)
    assert _same_csr(a.factors.U, b.factors.U)
    assert np.array_equal(a.factors.perm, b.factors.perm)
    assert a.flops == b.flops
    assert a.num_levels == b.num_levels


def _assert_same_comm(a, b):
    """Modeled counters that every transport must agree on exactly."""
    assert a.comm.messages == b.comm.messages
    assert a.comm.barriers == b.comm.barriers
    assert a.comm.total_flops == b.comm.total_flops
    assert list(a.comm.per_rank_flops) == list(b.comm.per_rank_flops)


class TestFactorizationParity:
    """Bit-identical factors across all three transports (G0, 3 ranks)."""

    A = poisson2d(10)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_ilut(self, backend):
        runs = {
            t: parallel_ilut(
                self.A, ILUTParams(fill=5, threshold=1e-4), 3,
                seed=0, transport=t, backend=backend,
            )
            for t in TRANSPORTS
        }
        for t in ("threads", "processes"):
            _assert_same_factors(runs[t], runs["simulator"])
            _assert_same_comm(runs[t], runs["simulator"])
            assert runs[t].transport == t
            assert runs[t].words_copied == runs["simulator"].words_copied

    def test_parallel_ilut_partitioned(self):
        runs = {
            t: parallel_ilut_partitioned(
                self.A, 5, 1e-4, 3, seed=0, transport=t
            )
            for t in TRANSPORTS
        }
        for t in ("threads", "processes"):
            _assert_same_factors(runs[t], runs["simulator"])
            _assert_same_comm(runs[t], runs["simulator"])

    def test_parallel_ilu0(self):
        runs = {
            t: parallel_ilu0(self.A, 3, seed=0, transport=t)
            for t in TRANSPORTS
        }
        for t in ("threads", "processes"):
            _assert_same_factors(runs[t], runs["simulator"])
            _assert_same_comm(runs[t], runs["simulator"])


class TestSolveParity:
    A = poisson2d(10)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_triangular_solve(self, backend):
        factors = parallel_ilut(
            self.A, ILUTParams(fill=5, threshold=1e-4), 3,
            seed=0, transport="none",
        ).factors
        b = np.sin(np.arange(self.A.shape[0], dtype=np.float64))
        runs = {
            t: parallel_triangular_solve(
                factors, b, backend=backend, transport=t
            )
            for t in TRANSPORTS
        }
        for t in ("threads", "processes"):
            assert np.array_equal(runs[t].x, runs["simulator"].x)
            assert runs[t].flops == runs["simulator"].flops
            _assert_same_comm(runs[t], runs["simulator"])
            assert runs[t].transport == t

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matvec(self, backend):
        d = decompose(self.A, 3, seed=0)
        x = np.cos(np.arange(self.A.shape[0], dtype=np.float64))
        runs = {
            t: parallel_matvec(self.A, d, x, backend=backend, transport=t)
            for t in TRANSPORTS
        }
        for t in ("threads", "processes"):
            assert np.array_equal(runs[t].y, runs["simulator"].y)
            assert runs[t].flops == runs["simulator"].flops
            _assert_same_comm(runs[t], runs["simulator"])

    def test_distributed_mis(self):
        g = adjacency_from_matrix(self.A)
        d = decompose(self.A, 3, seed=0)
        outs = {}
        for t in TRANSPORTS:
            tr = resolve_transport(t, 3, model=CRAY_T3D)
            try:
                outs[t] = (
                    distributed_two_step_luby_mis(g, d.part, tr, seed=3),
                    tr.stats().messages,
                    tr.stats().barriers,
                )
            finally:
                tr.close()
        for t in ("threads", "processes"):
            assert np.array_equal(outs[t][0], outs["simulator"][0])
            assert outs[t][1:] == outs["simulator"][1:]


class TestTransportSurface:
    def test_transport_field_round_trip(self):
        A = poisson2d(6)
        for t in ("simulator", "none"):
            r = parallel_ilut(A, ILUTParams(fill=3, threshold=1e-3), 2, transport=t)
            assert r.transport == t

    def test_instance_spec(self):
        A = poisson2d(6)
        with ThreadTransport(2) as t:
            r = parallel_ilut(A, ILUTParams(fill=3, threshold=1e-3), 2, transport=t)
            assert r.transport == "threads"

    def test_instance_nranks_mismatch(self):
        with ThreadTransport(2) as t:
            with pytest.raises(ValueError, match="ranks"):
                resolve_transport(t, 4, model=CRAY_T3D)

    def test_unknown_transport_name(self):
        A = poisson2d(6)
        with pytest.raises(ValueError, match="unknown transport"):
            parallel_ilut(
                A, ILUTParams(fill=3, threshold=1e-3), 2, transport="mpi"
            )

    def test_transport_name_helper(self):
        assert transport_name(None) == "none"
        assert transport_name(Simulator(2, CRAY_T3D)) == "simulator"


class TestCapabilityBoundary:
    """faults=/trace= are simulator-only: typed errors, never silence."""

    A = poisson2d(6)

    @pytest.mark.parametrize("t", ["threads", "processes", "none"])
    def test_trace_requires_simulator(self, t):
        with pytest.raises(TransportCapabilityError):
            parallel_ilut(
                self.A, ILUTParams(fill=3, threshold=1e-3), 2,
                transport=t, trace=True,
            )

    @pytest.mark.parametrize("t", ["threads", "processes", "none"])
    def test_faults_require_simulator(self, t):
        from repro.faults import FaultPlan, MessageFault

        plan = FaultPlan(message_faults=[MessageFault("drop")])
        with pytest.raises(TransportCapabilityError):
            parallel_ilut(
                self.A, ILUTParams(fill=3, threshold=1e-3), 2,
                transport=t, faults=plan,
            )

    def test_capability_error_is_value_error(self):
        # legacy callers catch ValueError; the typed error must remain one
        assert issubclass(TransportCapabilityError, ValueError)
        assert issubclass(TransportCapabilityError, TransportError)

    def test_faults_rejected_on_ready_instance(self):
        from repro.faults import FaultPlan, MessageFault

        plan = FaultPlan(message_faults=[MessageFault("drop")])
        sim = Simulator(2, CRAY_T3D)
        with pytest.raises(TransportCapabilityError):
            resolve_transport(sim, 2, model=CRAY_T3D, faults=plan)


class TestDeprecationShims:
    """simulate= keeps working, warns, and maps onto transport=."""

    A = poisson2d(6)
    params = ILUTParams(fill=3, threshold=1e-3)

    def test_simulate_true_is_simulator(self):
        with pytest.warns(DeprecationWarning, match="simulate"):
            r = parallel_ilut(self.A, self.params, 2, simulate=True)
        assert r.transport == "simulator"
        assert r.modeled_time is not None

    def test_simulate_false_is_none(self):
        with pytest.warns(DeprecationWarning, match="simulate"):
            r = parallel_ilut(self.A, self.params, 2, simulate=False)
        assert r.transport == "none"
        assert r.modeled_time is None

    def test_shim_is_bit_identical_to_new_spelling(self):
        new = parallel_ilut(self.A, self.params, 2, transport="simulator")
        with pytest.warns(DeprecationWarning):
            old = parallel_ilut(self.A, self.params, 2, simulate=True)
        _assert_same_factors(old, new)
        assert old.modeled_time == new.modeled_time

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="both"):
            parallel_ilut(
                self.A, self.params, 2, simulate=True, transport="none"
            )

    def test_star_shim_warns_at_caller(self):
        from repro.ilu import parallel_ilut_star

        with pytest.warns(DeprecationWarning, match="parallel_ilut_star"):
            r = parallel_ilut_star(
                self.A, ILUTParams(fill=3, threshold=1e-3, k=2), 2,
                simulate=False,
            )
        assert r.transport == "none"

    def test_matvec_and_trisolve_shims(self):
        d = decompose(self.A, 2, seed=0)
        x = np.ones(self.A.shape[0])
        with pytest.warns(DeprecationWarning, match="parallel_matvec"):
            mv = parallel_matvec(self.A, d, x, simulate=False)
        assert mv.transport == "none"
        factors = parallel_ilut(self.A, self.params, 2, transport="none").factors
        with pytest.warns(DeprecationWarning, match="parallel_triangular_solve"):
            s = parallel_triangular_solve(factors, x, simulate=True)
        assert s.transport == "simulator"

    def test_partitioned_shim(self):
        with pytest.warns(DeprecationWarning, match="parallel_ilut_partitioned"):
            r = parallel_ilut_partitioned(self.A, 3, 1e-3, 2, simulate=False)
        assert r.transport == "none"


class TestThreadTransportPrimitives:
    def test_pardo_runs_on_distinct_threads(self):
        import threading

        with ThreadTransport(3) as t:
            idents = t.pardo([lambda: threading.get_ident()] * 3)
        assert len(set(idents)) == 3

    def test_pardo_results_in_rank_order(self):
        with ThreadTransport(4) as t:
            assert t.pardo([lambda r=r: r * 10 for r in range(4)]) == [0, 10, 20, 30]

    def test_idle_ranks(self):
        with ThreadTransport(3) as t:
            assert t.pardo([None, lambda: "x", None]) == [None, "x", None]

    def test_worker_exception_reraised(self):
        with ThreadTransport(2) as t:
            with pytest.raises(RuntimeError, match="boom"):
                t.pardo([lambda: 1, lambda: (_ for _ in ()).throw(RuntimeError("boom"))])
            # transport stays usable after a failed region
            assert t.pardo([lambda: 1, lambda: 2]) == [1, 2]

    def test_worker_send_recv(self):
        with ThreadTransport(2) as t:
            def rank0():
                t.send(0, 1, {"v": 41}, 1.0, tag="x")
                return "sent"

            def rank1():
                return t.recv(1, 0, tag="x")["v"] + 1

            assert t.pardo([rank0, rank1]) == ["sent", 42]
        # payloads travel by reference; the message was counted
        assert True

    def test_worker_barrier_counts_once(self):
        with ThreadTransport(2) as t:
            t.pardo([lambda: t.barrier(), lambda: t.barrier()])
            assert t.stats().barriers == 1

    def test_coordinator_recv_empty_deadlocks_immediately(self):
        with ThreadTransport(2) as t:
            with pytest.raises(TransportError, match="deadlock"):
                t.recv(1, 0, tag="nothing")


class TestProcessTransportPrimitives:
    def test_pardo_runs_in_child_processes(self):
        import os

        parent = os.getpid()
        with ProcessTransport(2) as t:
            pids = t.pardo([lambda: os.getpid()] * 2)
        assert all(p != parent for p in pids)
        assert pids[0] != pids[1]

    def test_large_array_round_trip_via_shared_memory(self):
        big = np.arange(100_000, dtype=np.float64)  # > SHM threshold
        with ProcessTransport(2) as t:
            out = t.pardo([lambda: big * 2.0, lambda: big[:8].copy()])
        assert np.array_equal(out[0], big * 2.0)
        assert np.array_equal(out[1], big[:8])

    def test_worker_exception_reports_rank(self):
        def boom():
            raise ValueError("child died")

        with ProcessTransport(2) as t:
            with pytest.raises(TransportError, match="rank 1"):
                t.pardo([lambda: 1, boom])

    def test_child_messaging_is_forbidden(self):
        with ProcessTransport(2) as t:
            with pytest.raises(TransportError, match="rank 0"):
                t.pardo([lambda: t.send(0, 1, None, 1.0), None])

    def test_compute_folds_child_flops(self):
        with ProcessTransport(2) as t:
            t.pardo([lambda: t.compute(0, 5.0), lambda: t.compute(1, 7.0)])
            assert list(t.stats().per_rank_flops) == [5.0, 7.0]
