"""Internals of the §7 interface-partitioning engine."""

import numpy as np
import pytest

from repro.decomp import decompose
from repro.ilu.interface_partition import InterfacePartitionEngine
from repro.matrices import poisson2d, random_diag_dominant


class TestSplitInterface:
    def _engine(self, A, p=4, **kw):
        d = decompose(A, p, seed=0)
        return InterfacePartitionEngine(d, 5, 1e-3, **kw)

    def test_internal_nodes_have_no_cross_domain_reduced_edges(self):
        A = poisson2d(12)
        engine = self._engine(A)
        # run phase 1 manually to populate reduced rows
        for r in range(engine.decomp.nranks):
            engine._factor_interior_block(r)
        for r in range(engine.decomp.nranks):
            engine._reduce_interface_rows(r)
        remaining = engine._remaining_nodes()
        domains = engine._split_interface(remaining)
        dom_of = {}
        for k, dom in enumerate(domains):
            for v in dom:
                dom_of[int(v)] = k
        all_internal = set(dom_of)
        for v in all_internal:
            cols, _ = engine.reduced[v]
            for c in cols:
                c = int(c)
                if c != v and c in all_internal:
                    assert dom_of[c] == dom_of[v]

    def test_domains_disjoint(self):
        A = poisson2d(12)
        engine = self._engine(A)
        for r in range(engine.decomp.nranks):
            engine._factor_interior_block(r)
        for r in range(engine.decomp.nranks):
            engine._reduce_interface_rows(r)
        domains = engine._split_interface(engine._remaining_nodes())
        seen: set[int] = set()
        for dom in domains:
            ds = set(int(v) for v in dom)
            assert not (ds & seen)
            seen |= ds


class TestTermination:
    def test_sequential_cutoff_path(self):
        # tiny interface → single sequential round
        A = random_diag_dominant(20, 3, seed=1)
        d = decompose(A, 2, seed=0)
        engine = InterfacePartitionEngine(d, 20, 0.0)
        outcome = engine.run()
        assert outcome.num_levels >= 1
        outcome.factors.levels.validate(20)

    def test_max_levels_guard(self):
        A = random_diag_dominant(40, 6, seed=0)
        d = decompose(A, 4, seed=0)
        engine = InterfacePartitionEngine(d, 40, 0.0, max_levels=0)
        if d.n_interface > 0:
            with pytest.raises(RuntimeError):
                engine.run()

    def test_each_round_factors_at_least_one_row(self):
        A = poisson2d(14)
        d = decompose(A, 4, seed=0)
        engine = InterfacePartitionEngine(d, 10, 1e-4)
        outcome = engine.run()
        assert all(s >= 1 for s in outcome.level_sizes)
        assert sum(outcome.level_sizes) == d.n_interface
