"""Ablation — capped Luby augmentation rounds (paper §4.1).

'Our parallel independent set algorithm performs only five such
augmentation steps.  This reduces the run time of the algorithm without
significantly reducing the size of the computed independent sets.'

Sweep rounds ∈ {1, 2, 5, 20}: more rounds → fewer levels but more
MIS work per level; 5 should be close to the asymptote.
"""

import pytest

from _reporting import record_table
from _workloads import MODEL, PROCS, SEED, matrix

from repro import decompose, parallel_ilut

ROUNDS = (1, 2, 5, 20)


def _sweep():
    A = matrix("g0")
    p = PROCS[-1]
    d = decompose(A, p, seed=SEED)
    rows = []
    for rounds in ROUNDS:
        r = parallel_ilut(
            A, 10, 1e-4, p, decomp=d, model=MODEL, seed=SEED, mis_rounds=rounds
        )
        rows.append([f"rounds={rounds}", r.num_levels, r.modeled_time])
    return rows


def test_luby_round_cap(benchmark):
    from repro.analysis import format_table

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_table(
        "Ablation: Luby rounds (G0, ILUT(10,1e-4), p=%d)" % PROCS[-1],
        format_table(["cap", "levels q", "factor time"], rows),
    )
    q = {int(r[0].split("=")[1]): r[1] for r in rows}
    # more rounds can only reduce (or keep) the level count
    assert q[20] <= q[1]
    # 5 rounds is close to exhaustive: within 25% of the 20-round level count
    assert q[5] <= 1.25 * q[20] + 2
    # 1 round costs extra levels compared to 5
    assert q[1] >= q[5]
