"""Unit tests for sequential triangular solves and L/U splitting."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    count_triangular_flops,
    lower_solve,
    lower_solve_unit,
    split_lu,
    upper_solve,
)


def lower_example():
    return np.array(
        [
            [0.0, 0.0, 0.0],
            [2.0, 0.0, 0.0],
            [1.0, -3.0, 0.0],
        ]
    )


def upper_example():
    return np.array(
        [
            [2.0, -1.0, 3.0],
            [0.0, 4.0, 1.0],
            [0.0, 0.0, -5.0],
        ]
    )


class TestLowerSolveUnit:
    def test_matches_dense(self, rng):
        L = CSRMatrix.from_dense(lower_example())
        b = rng.standard_normal(3)
        x = lower_solve_unit(L, b)
        assert np.allclose((np.eye(3) + lower_example()) @ x, b)

    def test_empty_L_is_identity(self):
        L = CSRMatrix.zeros(4)
        b = np.arange(4.0)
        assert np.allclose(lower_solve_unit(L, b), b)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            lower_solve_unit(CSRMatrix.zeros(2, 3), np.ones(2))

    def test_rejects_bad_rhs(self):
        with pytest.raises(ValueError):
            lower_solve_unit(CSRMatrix.zeros(3), np.ones(4))

    def test_rejects_diagonal_entry(self):
        L = CSRMatrix.from_dense(np.array([[1.0, 0.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            lower_solve_unit(L, np.ones(2))


class TestUpperSolve:
    def test_matches_dense(self, rng):
        U = CSRMatrix.from_dense(upper_example())
        b = rng.standard_normal(3)
        x = upper_solve(U, b)
        assert np.allclose(upper_example() @ x, b)

    def test_missing_diagonal_raises(self):
        U = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError):
            upper_solve(U, np.ones(2))

    def test_zero_pivot_raises(self):
        U = CSRMatrix.from_coo([0, 1], [0, 1], [1.0, 0.0], (2, 2))
        with pytest.raises(ZeroDivisionError):
            upper_solve(U, np.ones(2))

    def test_diagonal_only(self):
        U = CSRMatrix.from_dense(np.diag([2.0, 4.0]))
        assert np.allclose(upper_solve(U, np.array([2.0, 8.0])), [1.0, 2.0])


class TestLowerSolveWithDiag:
    def test_matches_dense(self, rng):
        D = lower_example() + np.diag([2.0, 3.0, 4.0])
        L = CSRMatrix.from_dense(D)
        b = rng.standard_normal(3)
        assert np.allclose(D @ lower_solve(L, b), b)

    def test_zero_pivot_raises(self):
        L = CSRMatrix.from_coo([0, 1, 1], [0, 0, 1], [1.0, 1.0, 0.0], (2, 2))
        with pytest.raises(ZeroDivisionError):
            lower_solve(L, np.ones(2))


class TestSplitLU:
    def test_roundtrip(self, small_poisson):
        L, d, U = split_lu(small_poisson)
        n = small_poisson.shape[0]
        import numpy as np

        rebuilt = L.to_dense() + np.diag(d) + U.to_dense()
        assert np.allclose(rebuilt, small_poisson.to_dense())

    def test_parts_are_triangular(self, small_poisson):
        L, _, U = split_lu(small_poisson)
        for i, cols, _ in L.iter_rows():
            assert np.all(cols < i)
        for i, cols, _ in U.iter_rows():
            assert np.all(cols > i)

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_missing_diagonal_raises_naming_row(self, backend):
        from repro.verify.invariants import InvariantViolation

        # row 1 has no diagonal entry at all
        A = CSRMatrix.from_coo([0, 1, 2], [0, 0, 2], [1.0, 2.0, 3.0], (3, 3))
        with pytest.raises(InvariantViolation, match="row 1"):
            split_lu(A, backend=backend)

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_zero_diagonal_raises_naming_row(self, backend):
        from repro.verify.invariants import InvariantViolation

        A = CSRMatrix.from_coo(
            [0, 1, 2, 2], [0, 1, 1, 2], [1.0, 0.0, 5.0, 3.0], (3, 3)
        )
        with pytest.raises(InvariantViolation, match="row 1"):
            split_lu(A, backend=backend)

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_require_diagonal_false_allows_holes(self, backend):
        A = CSRMatrix.from_coo([0, 1, 2], [0, 0, 2], [1.0, 2.0, 3.0], (3, 3))
        L, d, U = split_lu(A, require_diagonal=False, backend=backend)
        assert d[1] == 0.0
        assert L.nnz == 1 and U.nnz == 0

    def test_backends_agree(self, small_poisson):
        import numpy as np

        L0, d0, U0 = split_lu(small_poisson, backend="reference")
        L1, d1, U1 = split_lu(small_poisson, backend="vectorized")
        assert np.array_equal(d0, d1)
        for M0, M1 in [(L0, L1), (U0, U1)]:
            assert np.array_equal(M0.indptr, M1.indptr)
            assert np.array_equal(M0.indices, M1.indices)
            assert np.array_equal(M0.data, M1.data)


class TestFlopCount:
    def test_count(self):
        L = CSRMatrix.from_dense(lower_example())
        U = CSRMatrix.from_dense(upper_example())
        n = 3
        expected = 2 * L.nnz + 2 * (U.nnz - n) + n
        assert count_triangular_flops(L, U) == expected
