"""Property-based tests for the Krylov solvers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilu import ilut
from repro.matrices import random_diag_dominant
from repro.solvers import ILUPreconditioner, bicgstab, cg, gmres


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(5, 40),
    seed=st.integers(0, 1000),
    restart=st.integers(2, 30),
)
def test_gmres_solves_diag_dominant(n, seed, restart):
    A = random_diag_dominant(n, 4, seed=seed, dominance=2.0)
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(n)
    res = gmres(A, A @ x_true, restart=restart, tol=1e-10, maxiter=50 * n)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-6 * max(1, np.abs(x_true).max()))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(5, 40), seed=st.integers(0, 1000))
def test_gmres_with_exact_preconditioner_one_iteration(n, seed):
    """With M = A^{-1} (no-drop ILUT), GMRES converges in one step."""
    A = random_diag_dominant(n, 4, seed=seed)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n)
    M = ILUPreconditioner(ilut(A, n, 0.0))
    res = gmres(A, b, restart=5, tol=1e-8, M=M, maxiter=100)
    assert res.converged
    assert res.iterations <= 3  # one in exact arithmetic; slack for rounding


@settings(max_examples=15, deadline=None)
@given(n=st.integers(5, 35), seed=st.integers(0, 1000))
def test_bicgstab_matches_gmres_solution(n, seed):
    A = random_diag_dominant(n, 4, seed=seed, dominance=2.0)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n)
    rg = gmres(A, b, restart=20, tol=1e-10, maxiter=50 * n)
    rb = bicgstab(A, b, tol=1e-10, maxiter=50 * n)
    if rg.converged and rb.converged:
        assert np.allclose(rg.x, rb.x, atol=1e-5)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(5, 35), seed=st.integers(0, 1000))
def test_cg_on_spd_laplacian_like(n, seed):
    # diag-dominant symmetric matrix: A + A^T is SPD-ish
    B = random_diag_dominant(n, 3, seed=seed, dominance=2.5)
    A = B + B.transpose()
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(n)
    res = cg(A, A @ x_true, tol=1e-10, maxiter=50 * n)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-5 * max(1, np.abs(x_true).max()))


@settings(max_examples=10, deadline=None)
@given(n=st.integers(5, 30), seed=st.integers(0, 500))
def test_residual_reporting_consistent(n, seed):
    """final_residual always equals ||b - A x|| for the returned x."""
    A = random_diag_dominant(n, 4, seed=seed)
    S = A + A.transpose()
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n)
    rg = gmres(A, b, restart=10, maxiter=20)
    assert rg.final_residual == np.linalg.norm(b - A @ rg.x)
    rb = bicgstab(A, b, maxiter=20)
    assert rb.final_residual == np.linalg.norm(b - A @ rb.x)
    rc = cg(S, b, maxiter=20)
    assert rc.final_residual == np.linalg.norm(b - S @ rc.x)
