"""Vectorized hot-path kernels (the ``backend="vectorized"`` layer).

Every kernel here has a scalar reference twin elsewhere in the library
that serves as its numerical oracle; see :mod:`repro.kernels.backend`
for the selection machinery and ``tests/kernels`` for the parity suite.
"""

from .accumulator import VectorizedRowAccumulator
from .backend import (
    REFERENCE,
    VECTORIZED,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from .csr import (
    csr_diagonal,
    csr_gather_rows,
    csr_matvec,
    csr_row_norms,
    segment_sums,
    split_lu_vectorized,
)
from .dropping import keep_largest_vec, second_rule_vec
from .ilut import ilut_vectorized
from .triangular import (
    BatchedTriangularSchedule,
    cached_schedules,
    clear_schedule_cache,
    triangular_levels_vectorized,
)

__all__ = [
    "REFERENCE",
    "VECTORIZED",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
    "VectorizedRowAccumulator",
    "segment_sums",
    "csr_matvec",
    "csr_row_norms",
    "csr_diagonal",
    "csr_gather_rows",
    "split_lu_vectorized",
    "keep_largest_vec",
    "second_rule_vec",
    "ilut_vectorized",
    "BatchedTriangularSchedule",
    "triangular_levels_vectorized",
    "cached_schedules",
    "clear_schedule_cache",
]
