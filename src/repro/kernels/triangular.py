"""Batched level-scheduled triangular solves.

The reference appliers walk a triangular factor row by row
(:mod:`repro.sparse.ops`) or level by level with an O(n) scratch vector
per level (:mod:`repro.ilu.apply`).  This module computes the dependency
levels with a vectorized Kahn frontier sweep and flattens each level
into one ``(rows, entry_cols, entry_vals, row_segments)`` bundle, so a
solve is a single gather / segment-sum / scatter per level with no per
-row Python and no O(n) temporaries.

Schedules are cached per :class:`~repro.ilu.factors.ILUFactors` object
(keyed by identity — the factors dataclass is mutable and unhashable —
with a ``weakref.finalize`` hook evicting entries when the factors are
collected), so repeated preconditioner applications inside a Krylov
solve pay the analysis exactly once.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

import numpy as np

from ..resilience import ZeroDiagonalError, ZeroPivotError
from .csr import segment_sums

if TYPE_CHECKING:
    from ..ilu.factors import ILUFactors
    from ..sparse.csr import CSRMatrix

__all__ = [
    "triangular_levels_vectorized",
    "BatchedTriangularSchedule",
    "cached_schedules",
    "clear_schedule_cache",
]


def _flat_gather(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Indices of the concatenation of ``[s, s+len)`` ranges."""
    total = int(lens.sum())
    idx = np.arange(total, dtype=np.int64)
    if starts.size:
        ends = np.cumsum(lens)
        idx += np.repeat(starts - (ends - lens), lens)
    return idx


def triangular_levels_vectorized(M: CSRMatrix, *, lower: bool) -> np.ndarray:
    """Vectorized :func:`repro.ilu.apply.triangular_levels` (exact match).

    Kahn frontier formulation: the rows with no strict-triangular
    dependencies form level 0; removing a level decrements the indegree
    of its consumers (``np.subtract.at`` over a column-wise adjacency),
    and the rows whose indegree reaches zero form the next level.  A
    row's round number equals its longest dependency chain, which is
    precisely the reference's ``max(levels[deps]) + 1`` recurrence.
    """
    n = M.shape[0]
    levels = np.zeros(n, dtype=np.int64)
    if n == 0:
        return levels
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(M.indptr))
    mask = (M.indices < rows) if lower else (M.indices > rows)
    dep = M.indices[mask]
    tgt = rows[mask]
    indeg = np.bincount(tgt, minlength=n)
    # consumers of each node, grouped CSC-style by the dependency column
    order = np.argsort(dep, kind="stable")
    c_tgt = tgt[order]
    c_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(dep, minlength=n), out=c_ptr[1:])

    frontier = np.flatnonzero(indeg == 0)
    lvl = 0
    while frontier.size:
        levels[frontier] = lvl
        starts = c_ptr[frontier]
        consumers = c_tgt[_flat_gather(starts, c_ptr[frontier + 1] - starts)]
        if consumers.size == 0:
            break
        np.subtract.at(indeg, consumers, 1)
        cand = np.unique(consumers)
        frontier = cand[indeg[cand] == 0]
        lvl += 1
    return levels


class BatchedTriangularSchedule:
    """Whole-level gather/scatter plan for one triangular factor.

    Each level is stored as ``(rows, ec, ev, seg, dv)``: the level's
    rows (ascending), their off-diagonal entries flattened with a
    per-row segment pointer, and (for non-unit factors) the gathered
    diagonal.  :meth:`solve` then runs
    ``x[rows] -= segment_sums(ev * x[ec], seg); x[rows] /= dv``
    once per level.
    """

    def __init__(self, M: CSRMatrix, *, lower: bool, unit_diagonal: bool) -> None:
        n = M.shape[0]
        self.n = n
        self.unit_diagonal = unit_diagonal
        self.levels = triangular_levels_vectorized(M, lower=lower)
        nlevels = int(self.levels.max()) + 1 if n else 0
        rows_all = np.repeat(np.arange(n, dtype=np.int64), np.diff(M.indptr))

        if unit_diagonal:
            self.diag: np.ndarray | None = None
            off_indptr = np.asarray(M.indptr, dtype=np.int64)
            off_indices = M.indices
            off_data = M.data
        else:
            on = M.indices == rows_all
            have = np.bincount(rows_all[on], minlength=n)
            missing = np.flatnonzero(have == 0)
            if missing.size:
                raise ZeroDiagonalError(
                    f"missing diagonal at row {missing[0]}", row=int(missing[0])
                )
            diag = np.zeros(n, dtype=np.float64)
            diag[rows_all[on]] = M.data[on]
            if np.any(diag == 0.0):
                row = int(np.flatnonzero(diag == 0.0)[0])
                raise ZeroPivotError(
                    f"zero pivot in triangular factor (row {row})", row=row, value=0.0
                )
            self.diag = diag
            off = ~on
            off_indices = M.indices[off]
            off_data = M.data[off]
            off_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(rows_all[off], minlength=n), out=off_indptr[1:])

        # rows grouped by level, ascending within each level
        order = np.argsort(self.levels, kind="stable")
        lvl_ptr = np.zeros(nlevels + 1, dtype=np.int64)
        if n:
            np.cumsum(np.bincount(self.levels, minlength=nlevels), out=lvl_ptr[1:])
        self._sweeps: list[
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]
        ] = []
        for lev in range(nlevels):
            rows = order[lvl_ptr[lev] : lvl_ptr[lev + 1]]
            starts = off_indptr[rows]
            lens = off_indptr[rows + 1] - starts
            idx = _flat_gather(starts, lens)
            seg = np.zeros(rows.size + 1, dtype=np.int64)
            np.cumsum(lens, out=seg[1:])
            dv = None if self.diag is None else self.diag[rows]
            self._sweeps.append((rows, off_indices[idx], off_data[idx], seg, dv))

    def solve(self, b: np.ndarray) -> np.ndarray:
        x = np.asarray(b, dtype=np.float64).copy()
        for rows, ec, ev, seg, dv in self._sweeps:
            if ec.size:
                x[rows] -= segment_sums(ev * x[ec], seg)
            if dv is not None:
                x[rows] /= dv
        return x

    @property
    def num_levels(self) -> int:
        return len(self._sweeps)

    @property
    def level_sizes(self) -> np.ndarray:
        return np.asarray([rows.size for rows, *_ in self._sweeps], dtype=np.int64)


_SCHEDULE_CACHE: dict[
    int, tuple[BatchedTriangularSchedule, BatchedTriangularSchedule]
] = {}


def cached_schedules(
    factors: ILUFactors,
) -> tuple[BatchedTriangularSchedule, BatchedTriangularSchedule]:
    """Forward (L, unit) and backward (U) schedules for one factor object.

    Keyed by ``id(factors)``; an entry lives exactly as long as its
    factors object (a ``weakref.finalize`` callback evicts it).
    """
    key = id(factors)
    hit = _SCHEDULE_CACHE.get(key)
    if hit is None:
        fwd = BatchedTriangularSchedule(factors.L, lower=True, unit_diagonal=True)
        bwd = BatchedTriangularSchedule(factors.U, lower=False, unit_diagonal=False)
        hit = (fwd, bwd)
        _SCHEDULE_CACHE[key] = hit
        weakref.finalize(factors, _SCHEDULE_CACHE.pop, key, None)
    return hit


def clear_schedule_cache() -> None:
    """Drop all cached schedules (tests / memory pressure)."""
    _SCHEDULE_CACHE.clear()
