"""Structural invariant checker tests."""

import numpy as np
import pytest

from repro.decomp import decompose
from repro.graph import Graph, adjacency_from_matrix, two_step_luby_mis
from repro.ilu import parallel_ilut
from repro.matrices import poisson2d
from repro.sparse import CSRMatrix
from repro.verify import (
    InvariantViolation,
    check_csr,
    check_decomposition,
    check_independent_set,
    check_lu_factors,
    check_reduced_rows,
    require,
)


@pytest.fixture(scope="module")
def g0_result():
    return parallel_ilut(poisson2d(10), 5, 1e-4, 4, simulate=False)


class TestCheckCSR:
    def test_healthy(self):
        assert check_csr(poisson2d(6)) == []

    def test_out_of_range_column_names_row_and_offset(self):
        A = poisson2d(4)
        A.indices[A.indptr[3]] = 99
        msgs = check_csr(A)
        assert any("row 3, offset 0" in m and "out of range" in m for m in msgs)

    def test_unsorted_and_duplicate_distinguished(self):
        A = CSRMatrix.from_coo([0, 0, 0], [0, 2, 4], np.ones(3), (1, 5))
        A.indices[:] = [2, 0, 4]
        assert any("unsorted" in m for m in check_csr(A))
        A.indices[:] = [0, 0, 4]
        assert any("duplicate" in m for m in check_csr(A))

    def test_non_finite_value(self):
        A = poisson2d(4)
        A.data[5] = np.nan
        assert any("non-finite" in m for m in check_csr(A))

    def test_broken_indptr(self):
        A = poisson2d(4)
        B = CSRMatrix(A.indptr.copy(), A.indices, A.data, A.shape, check=False)
        B.indptr[2] = B.indptr[3] + 1  # decreasing
        assert any("decreases" in m for m in check_csr(B))


class TestCheckLUFactors:
    def test_healthy_parallel_factors(self, g0_result):
        assert check_lu_factors(g0_result.factors, m=5) == []

    def test_zeroed_diagonal_flagged(self, g0_result):
        f = g0_result.factors
        U = f.U.copy()
        U.data[U.indptr[7]] = 0.0
        broken = type(f)(L=f.L, U=U, perm=f.perm, levels=f.levels)
        msgs = check_lu_factors(broken)
        assert any("singular" in m and "row 7" in m for m in msgs)

    def test_fill_bound_violation_flagged(self, g0_result):
        # m=0 is stricter than the factorization used -> must trip
        msgs = check_lu_factors(g0_result.factors, m=0)
        assert any("dropping rule" in m for m in msgs)

    def test_perm_bijection_checked(self, g0_result):
        f = g0_result.factors
        perm = f.perm.copy()
        perm[0] = perm[1]
        broken = type(f)(L=f.L, U=U_copy(f), perm=perm, levels=None)
        assert any("bijection" in m for m in check_lu_factors(broken))

    def test_level_independence_checked(self, g0_result):
        f = g0_result.factors
        levels = f.levels
        assert levels is not None and levels.num_levels >= 1
        # corrupt U: make the first interface-level row reference another
        # row of its own level (violates the MIS independence)
        lvl = next(lv for lv in levels.interface_levels if lv.size >= 2)
        p, q = int(lvl[0]), int(lvl[1])
        U = f.U.copy()
        s = int(U.indptr[p])
        if U.indptr[p + 1] - s >= 2:
            U.indices[s + 1] = q
            U.indices[s + 1 : int(U.indptr[p + 1])].sort()
            broken = type(f)(L=f.L, U=U, perm=f.perm, levels=levels)
            msgs = check_lu_factors(broken)
            assert any("not independent" in m for m in msgs)

    def test_require_raises(self):
        with pytest.raises(InvariantViolation, match="ctx"):
            require(["boom"], context="ctx")
        require([], context="ctx")  # no violations -> no raise


def U_copy(f):
    return f.U.copy()


class TestCheckReducedRows:
    def test_healthy(self):
        reduced = {
            3: (np.array([3, 7]), np.array([2.0, 0.5])),
            7: (np.array([3, 7]), np.array([0.5, 2.0])),
        }
        assert check_reduced_rows(reduced, cap=2) == []

    def test_cap_violation(self):
        reduced = {
            1: (np.array([1, 2, 5]), np.ones(3)),
            2: (np.array([1, 2]), np.ones(2)),
            5: (np.array([5]), np.ones(1)),
        }
        msgs = check_reduced_rows(reduced, cap=2)
        assert any("3rd dropping rule" in m for m in msgs)
        assert check_reduced_rows(reduced, cap=3) == []

    def test_missing_diagonal(self):
        msgs = check_reduced_rows({4: (np.array([5]), np.ones(1)), 5: (np.array([5]), np.ones(1))})
        assert any("diagonal" in m for m in msgs)

    def test_stray_column(self):
        msgs = check_reduced_rows({4: (np.array([4, 9]), np.ones(2))})
        assert any("factored/foreign" in m for m in msgs)

    def test_unsorted(self):
        msgs = check_reduced_rows(
            {4: (np.array([7, 4]), np.ones(2)), 7: (np.array([7]), np.ones(1))}
        )
        assert any("increasing" in m for m in msgs)


class TestCheckIndependentSet:
    def test_real_mis_passes(self):
        g = adjacency_from_matrix(poisson2d(8), symmetric=True)
        iset = two_step_luby_mis(g, seed=0)
        assert check_independent_set(g, iset) == []

    def test_adjacent_pair_flagged(self):
        g = Graph(np.array([0, 1, 2]), np.array([1, 0]))
        msgs = check_independent_set(g, np.array([0, 1]))
        assert any("adjacent" in m for m in msgs)

    def test_out_of_range_vertex(self):
        g = Graph(np.array([0, 1, 2]), np.array([1, 0]))
        assert any("range" in m for m in check_independent_set(g, np.array([5])))


class TestCheckDecomposition:
    def test_healthy(self):
        d = decompose(poisson2d(10), 4)
        assert check_decomposition(d) == []

    def test_misclassified_interior_flagged(self):
        d = decompose(poisson2d(10), 4)
        flipped = d.is_interface.copy()
        v = int(np.flatnonzero(flipped)[0])
        flipped[v] = False  # interface row claimed interior
        broken = type(d)(
            A=d.A, nranks=d.nranks, part=d.part, is_interface=flipped, graph=d.graph
        )
        msgs = check_decomposition(broken)
        assert any(f"row {v}" in m and "interior" in m for m in msgs)

    def test_single_rank_has_no_interface(self):
        d = decompose(poisson2d(6), 1)
        assert check_decomposition(d) == []
