"""Figure 6 — forward/backward substitution speedup on TORSO.

Paper: relative speedup of the fwd+bwd solves for the 18 factorizations.
Shapes: speedup decreases as m grows / t shrinks (more levels → more
synchronisation points), and the ILUT* solves scale better than ILUT's
because they need fewer independent sets.
"""

import pytest

from _reporting import record_table
from _workloads import PROCS, all_configs, factorize, label, trisolve


def _series(name: str):
    from repro.analysis import format_series, relative_speedups

    lines = []
    data = {}
    for algo, m, t in all_configs():
        times = {p: trisolve(name, algo, m, t, p).modeled_time for p in PROCS}
        sp = relative_speedups(times)
        data[(algo, m, t)] = sp
        lines.append(format_series(label(algo, m, t), PROCS, [sp[p] for p in PROCS]))
    return "\n".join(lines), data


def test_fig6_speedup_trisolve(benchmark):
    text, data = benchmark.pedantic(_series, args=("torso",), rounds=1, iterations=1)
    record_table(
        "Figure 6: fwd/bwd substitution speedup, TORSO (relative to p=%d)"
        % PROCS[0],
        text,
    )
    pmax = PROCS[-1]
    # Shape: the cheap factorization's solve scales at least as well as
    # the over-filled one's (more levels hurt).
    sp_cheap = data[("ILUT", 5, 1e-2)][pmax]
    sp_dense = data[("ILUT", 20, 1e-6)][pmax]
    assert sp_cheap >= 0.8 * sp_dense
    # Shape: ILUT* solves scale no worse than ILUT solves at t=1e-6
    assert data[("ILUT*", 20, 1e-6)][pmax] >= 0.85 * data[("ILUT", 20, 1e-6)][pmax]


def test_levels_drive_sync_cost(benchmark):
    """The mechanism behind Figure 6: per-solve synchronisation count is
    exactly 2q + O(1), so fewer levels → fewer barriers."""

    def counts():
        p = PROCS[-1]
        out = {}
        for algo in ("ILUT", "ILUT*"):
            r = factorize("torso", algo, 20, 1e-6, p)
            ts = trisolve("torso", algo, 20, 1e-6, p)
            out[algo] = (r.num_levels, ts.comm.barriers)
        return out

    c = benchmark.pedantic(counts, rounds=1, iterations=1)
    record_table(
        "Figure 6 mechanism: q and barriers per solve (torso, m=20, t=1e-6)",
        f"ILUT: q={c['ILUT'][0]} barriers={c['ILUT'][1]}   "
        f"ILUT*: q={c['ILUT*'][0]} barriers={c['ILUT*'][1]}",
    )
    for algo in ("ILUT", "ILUT*"):
        q, barriers = c[algo]
        assert barriers == 2 * q + 2  # fwd levels + bwd levels + 2 interior
    assert c["ILUT*"][0] <= c["ILUT"][0]
