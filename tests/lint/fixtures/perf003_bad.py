"""PERF003 bad twin: int arrays promoted by float arithmetic in loops."""

import numpy as np


def scaled_counts(n, iters):
    counts = np.zeros(n, dtype=np.int64)
    total = 0.0
    for _ in range(iters):
        total += (counts * 0.5).sum()
    return total


def divided_indices(n, iters):
    idx = np.arange(n)
    acc = 0.0
    for _ in range(iters):
        acc += (idx / n).sum()
    return acc
