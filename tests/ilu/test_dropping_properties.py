"""Property-based tests for the dropping rules (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilu import keep_largest, second_rule, third_rule


@st.composite
def sparse_rows(draw, max_n=40):
    n = draw(st.integers(1, max_n))
    size = draw(st.integers(0, n))
    cols = draw(
        st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True)
    )
    vals = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=len(cols),
            max_size=len(cols),
        )
    )
    order = np.argsort(cols) if cols else []
    return (
        n,
        np.asarray(cols, dtype=np.int64)[order] if cols else np.empty(0, np.int64),
        np.asarray(vals, dtype=np.float64)[order] if cols else np.empty(0),
    )


@settings(max_examples=80, deadline=None)
@given(sparse_rows(), st.integers(0, 12))
def test_keep_largest_invariants(row, m):
    _, cols, vals = row
    kc, kv = keep_largest(cols, vals, m)
    # size cap
    assert kc.size <= max(m, 0)
    # sorted unique columns
    if kc.size > 1:
        assert np.all(np.diff(kc) > 0)
    # kept values are a subset with correct pairing
    lookup = {int(c): float(v) for c, v in zip(cols, vals)}
    for c, v in zip(kc, kv):
        assert lookup[int(c)] == v
    # nothing dropped is larger than anything kept
    if kc.size and kc.size == m and cols.size > m:
        kept_min = np.abs(kv).min()
        dropped = [abs(lookup[int(c)]) for c in cols if int(c) not in set(kc.tolist())]
        if dropped:
            assert max(dropped) <= kept_min + 1e-12


@settings(max_examples=80, deadline=None)
@given(
    sparse_rows(),
    st.integers(0, 39),
    st.floats(0, 10, allow_nan=False),
    st.integers(0, 8),
)
def test_second_rule_invariants(row, i, tau, m):
    n, cols, vals = row
    i = i % n
    (lc, lv), diag, (uc, uv) = second_rule(cols, vals, i, tau, m)
    # partition: L strictly below, U strictly above
    assert np.all(lc < i)
    assert np.all(uc > i)
    # caps
    assert lc.size <= m and uc.size <= m
    # threshold: every kept off-diagonal is >= tau in magnitude
    assert np.all(np.abs(lv) >= tau)
    assert np.all(np.abs(uv) >= tau)
    # the diagonal is reported from the input (or 0), regardless of tau
    lookup = {int(c): float(v) for c, v in zip(cols, vals)}
    assert diag == lookup.get(i, 0.0)


@settings(max_examples=80, deadline=None)
@given(
    sparse_rows(),
    st.floats(0, 10, allow_nan=False),
    st.integers(0, 8),
    st.one_of(st.none(), st.integers(1, 6)),
    st.integers(0, 2**31 - 1),
)
def test_third_rule_invariants(row, tau, m, cap, seed):
    n, cols, vals = row
    rng = np.random.default_rng(seed)
    is_factored = rng.random(n) < 0.5
    diag_candidates = np.flatnonzero(~is_factored)
    if diag_candidates.size == 0:
        is_factored[0] = False
        diag_candidates = np.asarray([0])
    diag_col = int(diag_candidates[0])
    (lc, lv), (rc, rv) = third_rule(
        cols, vals, diag_col, tau, m, is_factored=is_factored, reduced_cap=cap
    )
    # L part only factored columns; reduced part only unfactored
    assert np.all(is_factored[lc])
    assert not np.any(is_factored[rc])
    # caps
    assert lc.size <= m
    if cap is not None:
        assert rc.size <= cap or (rc.size == 1 and rc[0] == diag_col)
    # the diagonal slot is always present exactly once
    assert int((rc == diag_col).sum()) == 1
    # sortedness
    if rc.size > 1:
        assert np.all(np.diff(rc) > 0)
    # threshold on everything except the diagonal slot
    off = rc != diag_col
    assert np.all(np.abs(rv[off]) >= tau)
