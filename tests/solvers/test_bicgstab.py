"""Unit tests for BiCGSTAB."""

import numpy as np
import pytest

from repro.ilu import ilut
from repro.matrices import convection_diffusion2d, poisson2d
from repro.solvers import ILUPreconditioner, bicgstab
from repro.sparse import CSRMatrix


class TestConvergence:
    def test_spd(self, rng):
        A = poisson2d(12)
        x_true = rng.standard_normal(144)
        res = bicgstab(A, A @ x_true, maxiter=2000)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-4)

    def test_nonsymmetric(self, rng):
        A = convection_diffusion2d(12, bx=40.0, by=20.0)
        x_true = rng.standard_normal(144)
        res = bicgstab(A, A @ x_true, maxiter=2000)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-4)

    def test_zero_rhs(self):
        A = poisson2d(5)
        res = bicgstab(A, np.zeros(25))
        assert res.converged and res.num_matvec == 0

    def test_initial_guess(self, rng):
        A = poisson2d(8)
        x_true = rng.standard_normal(64)
        res = bicgstab(A, A @ x_true, x0=x_true.copy())
        assert res.converged and res.iterations <= 1

    def test_callable_matvec(self, rng):
        A = poisson2d(8)
        b = rng.standard_normal(64)
        res = bicgstab(lambda v: A @ v, b, maxiter=2000)
        assert res.converged

    def test_maxiter(self, rng):
        A = poisson2d(14)
        res = bicgstab(A, rng.standard_normal(196), maxiter=2, tol=1e-14)
        assert not res.converged
        assert res.iterations <= 2


class TestPreconditioning:
    def test_ilut_reduces_matvecs(self, rng):
        A = convection_diffusion2d(16)
        b = rng.standard_normal(256)
        plain = bicgstab(A, b, maxiter=4000)
        pre = bicgstab(A, b, M=ILUPreconditioner(ilut(A, 10, 1e-4)), maxiter=4000)
        assert pre.converged
        assert pre.num_matvec < plain.num_matvec

    def test_solution_accuracy_with_preconditioner(self, rng):
        A = poisson2d(10)
        x_true = rng.standard_normal(100)
        res = bicgstab(
            A, A @ x_true, M=ILUPreconditioner(ilut(A, 5, 1e-3)), maxiter=2000
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-5)


class TestBreakdown:
    def test_breakdown_flagged(self):
        # r0_hat ⟂ r after one step: engineered by a rotation-like matrix
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [-1.0, 0.0]]))
        res = bicgstab(A, np.array([1.0, 0.0]), maxiter=10)
        assert res.breakdown or res.converged

    def test_residual_history_recorded(self, rng):
        A = poisson2d(8)
        res = bicgstab(A, rng.standard_normal(64), maxiter=100)
        assert len(res.residual_norms) >= 2
        assert res.final_residual == pytest.approx(
            res.residual_norms[-1], rel=1e-6, abs=1e-12
        )
