"""Unit tests for the domain decomposition layer."""

import numpy as np
import pytest

from repro.decomp import decompose
from repro.matrices import poisson2d, random_geometric_laplacian, torso_like


class TestClassification:
    def test_interior_plus_interface_cover_all(self):
        d = decompose(poisson2d(12), 4, seed=0)
        total = sum(d.interior_rows(r).size for r in range(4)) + d.n_interface
        assert total == 144

    def test_interior_rows_have_local_neighbors_only(self):
        A = poisson2d(12)
        d = decompose(A, 4, seed=0)
        for r in range(4):
            for i in d.interior_rows(r):
                nbrs = d.graph.neighbors(int(i))
                assert np.all(d.part[nbrs] == r)

    def test_interface_rows_have_remote_neighbor(self):
        A = poisson2d(12)
        d = decompose(A, 4, seed=0)
        for i in d.all_interface:
            nbrs = d.graph.neighbors(int(i))
            assert np.any(d.part[nbrs] != d.part[i])

    def test_single_rank_no_interface(self):
        d = decompose(poisson2d(8), 1)
        assert d.n_interface == 0
        assert d.interface_fraction() == 0.0

    def test_interface_fraction_grows_with_ranks(self):
        A = poisson2d(16)
        f4 = decompose(A, 4, seed=0).interface_fraction()
        f16 = decompose(A, 16, seed=0).interface_fraction()
        assert f16 > f4

    def test_multilevel_beats_random_on_interface_count(self):
        A = poisson2d(16)
        good = decompose(A, 8, method="multilevel", seed=0)
        bad = decompose(A, 8, method="random", seed=0)
        assert good.n_interface < 0.6 * bad.n_interface

    def test_owned_rows_partition(self):
        d = decompose(poisson2d(10), 5, seed=0)
        allr = np.concatenate([d.owned_rows(r) for r in range(5)])
        assert sorted(allr.tolist()) == list(range(100))


class TestMethods:
    def test_block_method(self):
        d = decompose(poisson2d(8), 4, method="block")
        assert np.all(np.diff(d.part) >= 0)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            decompose(poisson2d(4), 2, method="magic")

    def test_nonsquare_rejected(self):
        from repro.sparse import CSRMatrix

        with pytest.raises(ValueError):
            decompose(CSRMatrix.zeros(3, 4), 2)

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError):
            decompose(poisson2d(2), 5)

    def test_nonpositive_ranks_rejected(self):
        with pytest.raises(ValueError):
            decompose(poisson2d(4), 0)


class TestHaloPlan:
    def test_plan_covers_every_cross_edge(self):
        A = poisson2d(10)
        d = decompose(A, 4, seed=0)
        plan = d.halo_plan()
        n = A.shape[0]
        rows = np.repeat(np.arange(n), np.diff(A.indptr))
        for i, j in zip(rows, A.indices):
            ri, rj = int(d.part[i]), int(d.part[j])
            if ri != rj:
                assert j in plan[(rj, ri)]

    def test_plan_nodes_owned_by_src(self):
        d = decompose(poisson2d(10), 4, seed=0)
        for (src, _dst), nodes in d.halo_plan().items():
            assert np.all(d.part[nodes] == src)

    def test_no_plan_for_single_rank(self):
        d = decompose(poisson2d(6), 1)
        assert d.halo_plan() == {}

    def test_boundary_nodes_are_interface(self):
        d = decompose(poisson2d(10), 4, seed=0)
        for r in range(4):
            bn = d.boundary_nodes(r)
            assert np.all(d.is_interface[bn])

    def test_plan_deterministic(self):
        A = random_geometric_laplacian(60, seed=1)
        d = decompose(A, 3, seed=5)
        p1, p2 = d.halo_plan(), d.halo_plan()
        assert p1.keys() == p2.keys()
        for k in p1:
            assert np.array_equal(p1[k], p2[k])


class TestSummary:
    def test_summary_string(self):
        d = decompose(poisson2d(8), 2, seed=0)
        s = d.summary()
        assert "p=2" in s and "interface=" in s

    def test_unstructured(self):
        A = torso_like(250, seed=0)
        d = decompose(A, 4, seed=0)
        assert 0 < d.n_interface < A.shape[0]
