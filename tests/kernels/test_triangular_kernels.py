"""Batched level schedules: level parity, solve parity, cache behaviour."""

import gc

import numpy as np
import pytest

from repro import ILUTParams, poisson2d
from repro.ilu import ilut, parallel_ilut_star
from repro.ilu.apply import LevelScheduledApplier, triangular_levels
from repro.kernels import (
    BatchedTriangularSchedule,
    cached_schedules,
    clear_schedule_cache,
    triangular_levels_vectorized,
)
from repro.sparse import CSRMatrix, lower_solve_unit, upper_solve


def star_factors(nx=14, p=8):
    A = poisson2d(nx)
    r = parallel_ilut_star(
        A, ILUTParams(fill=6, threshold=1e-3, k=2), p, seed=0, simulate=False
    )
    return r.factors


class TestLevelsParity:
    def check(self, M, *, lower):
        ref = triangular_levels(M, lower=lower)
        vec = triangular_levels_vectorized(M, lower=lower)
        assert np.array_equal(ref, vec)

    def test_empty_matrix(self):
        self.check(CSRMatrix.zeros(5), lower=True)
        self.check(CSRMatrix.zeros(5), lower=False)

    def test_single_row(self):
        self.check(CSRMatrix.zeros(1), lower=True)
        self.check(CSRMatrix.zeros(1), lower=False)

    def test_chain_is_sequential(self):
        # strict lower bidiagonal: row i depends on i-1, levels 0..n-1
        n = 6
        L = CSRMatrix.from_coo(
            np.arange(1, n), np.arange(0, n - 1), np.ones(n - 1), (n, n)
        )
        assert np.array_equal(
            triangular_levels_vectorized(L, lower=True), np.arange(n)
        )
        self.check(L, lower=True)

    def test_block_structure(self):
        # two independent 2-chains: levels [0,1,0,1]
        L = CSRMatrix.from_coo([1, 3], [0, 2], [1.0, 1.0], (4, 4))
        assert np.array_equal(
            triangular_levels_vectorized(L, lower=True), [0, 1, 0, 1]
        )

    def test_ilut_factors(self, medium_poisson):
        f = ilut(medium_poisson, ILUTParams(fill=8, threshold=1e-3))
        self.check(f.L, lower=True)
        self.check(f.U, lower=False)

    def test_parallel_factors(self):
        f = star_factors()
        self.check(f.L, lower=True)
        self.check(f.U, lower=False)


class TestBatchedSolve:
    def test_forward_matches_reference(self):
        f = star_factors()
        sched = BatchedTriangularSchedule(f.L, lower=True, unit_diagonal=True)
        b = np.linspace(-1, 1, f.n)
        x_ref = lower_solve_unit(f.L, b)
        x_vec = sched.solve(b)
        scale = np.max(np.abs(x_ref)) or 1.0
        assert np.max(np.abs(x_ref - x_vec)) / scale <= 1e-12

    def test_backward_matches_reference(self):
        f = star_factors()
        sched = BatchedTriangularSchedule(f.U, lower=False, unit_diagonal=False)
        b = np.linspace(1, 2, f.n)
        x_ref = upper_solve(f.U, b)
        x_vec = sched.solve(b)
        scale = np.max(np.abs(x_ref)) or 1.0
        assert np.max(np.abs(x_ref - x_vec)) / scale <= 1e-12

    def test_level_sizes_cover_all_rows(self):
        f = star_factors()
        sched = BatchedTriangularSchedule(f.L, lower=True, unit_diagonal=True)
        assert sched.level_sizes.sum() == f.n
        assert sched.num_levels == sched.level_sizes.size

    def test_diagonal_only_upper_single_level(self):
        U = CSRMatrix.from_coo([0, 1], [0, 1], [2.0, 4.0], (2, 2))
        sched = BatchedTriangularSchedule(U, lower=False, unit_diagonal=False)
        assert sched.num_levels == 1
        assert np.allclose(sched.solve(np.array([2.0, 8.0])), [1.0, 2.0])


class TestScheduleCache:
    def test_cache_hits_same_objects(self):
        clear_schedule_cache()
        f = star_factors()
        fwd1, bwd1 = cached_schedules(f)
        fwd2, bwd2 = cached_schedules(f)
        assert fwd1 is fwd2 and bwd1 is bwd2

    def test_clear_forces_rebuild(self):
        f = star_factors()
        fwd1, _ = cached_schedules(f)
        clear_schedule_cache()
        fwd2, _ = cached_schedules(f)
        assert fwd1 is not fwd2

    def test_entry_evicted_with_factors(self):
        from repro.kernels.triangular import _SCHEDULE_CACHE

        clear_schedule_cache()
        f = star_factors()
        cached_schedules(f)
        assert len(_SCHEDULE_CACHE) == 1
        del f
        gc.collect()
        assert len(_SCHEDULE_CACHE) == 0

    def test_distinct_factors_distinct_entries(self):
        clear_schedule_cache()
        f1, f2 = star_factors(), star_factors(nx=10, p=4)
        s1, s2 = cached_schedules(f1), cached_schedules(f2)
        assert s1[0] is not s2[0]


class TestApplierUsesCache:
    def test_applier_parity_with_factors_solve(self):
        f = star_factors()
        app = LevelScheduledApplier(f)
        b = np.sin(np.arange(f.n))
        x_ref = f.solve(b)
        x_vec = app.apply(b)
        scale = np.max(np.abs(x_ref)) or 1.0
        assert np.max(np.abs(x_ref - x_vec)) / scale <= 1e-12

    def test_two_appliers_share_schedules(self):
        clear_schedule_cache()
        f = star_factors()
        a1, a2 = LevelScheduledApplier(f), LevelScheduledApplier(f)
        assert a1._fwd is a2._fwd and a1._bwd is a2._bwd

    def test_rejects_bad_rhs(self):
        f = star_factors()
        with pytest.raises(ValueError):
            LevelScheduledApplier(f).apply(np.ones(f.n + 1))
