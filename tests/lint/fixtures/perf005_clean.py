"""PERF005 clean twin: hoisted, cached, or genuinely loop-varying."""


def hoisted(factors, rhs_list):
    from repro.ilu.apply import triangular_levels

    levels = triangular_levels(factors.L, lower=True)
    return [(levels, b) for b in rhs_list]


def cached(factors, rhs_list):
    from repro.kernels import cached_schedules

    outs = []
    for b in rhs_list:
        fwd, bwd = cached_schedules(factors)
        outs.append((fwd, bwd, b))
    return outs


def loop_varying_factors(factor_list):
    from repro.ilu.apply import triangular_levels

    outs = []
    for factors in factor_list:
        # the matrix changes every iteration: rebuilding is correct
        outs.append(triangular_levels(factors.L, lower=True))
    return outs
