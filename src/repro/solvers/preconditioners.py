"""Preconditioner protocol for the iterative solvers.

A preconditioner is an object with three methods:

* ``setup(A) -> self`` — bind to / factor the system matrix (idempotent:
  a second call is a no-op once configured),
* ``apply(r) -> ndarray`` — compute ``M^{-1} r``,
* ``flops() -> float`` — estimated floating-point cost of one
  :meth:`apply` (0.0 when unknown), used by the modelled-time reports.

Solvers accept any conformer (or any bare object with ``apply``) and
call :func:`prepare_preconditioner` once at entry, so a preconditioner
may be passed either pre-configured — ``ILUPreconditioner(factors)`` —
or deferred — ``DiagonalPreconditioner()`` /
``ILUPreconditioner(params=ILUTParams(10, 1e-4))`` — and be set up from
the solve's own matrix.  The paper's Table 3 compares ILUT/ILUT*
against the diagonal (Jacobi) preconditioner; identity is provided for
unpreconditioned runs.
"""

from __future__ import annotations

import numpy as np

from ..ilu.factors import ILUFactors
from ..ilu.params import ILUTParams
from ..resilience import PivotPolicy, ZeroDiagonalError, assert_finite
from ..sparse import CSRMatrix

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "DiagonalPreconditioner",
    "ILUPreconditioner",
    "ILU0Preconditioner",
    "prepare_preconditioner",
]


class Preconditioner:
    """Base protocol: subclasses implement :meth:`apply`."""

    def setup(self, A: CSRMatrix) -> "Preconditioner":
        """Bind to the system matrix; the base class needs nothing."""
        return self

    def apply(self, r: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def flops(self) -> float:
        """Estimated flops of one :meth:`apply` (0.0 when unknown)."""
        return 0.0

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)


class IdentityPreconditioner(Preconditioner):
    """No preconditioning: ``M = I``."""

    def apply(self, r: np.ndarray) -> np.ndarray:
        return np.asarray(r, dtype=np.float64).copy()


class DiagonalPreconditioner(Preconditioner):
    """Jacobi: ``M = diag(A)`` (the paper's weakest baseline).

    Construct with the matrix — ``DiagonalPreconditioner(A)`` — or defer
    and let the solver call :meth:`setup` with its own matrix.
    """

    def __init__(self, A: CSRMatrix | None = None) -> None:
        self._inv_diag: np.ndarray | None = None
        if A is not None:
            self.setup(A)

    def setup(self, A: CSRMatrix) -> "DiagonalPreconditioner":
        if self._inv_diag is not None:
            return self
        d = A.diagonal()
        if np.any(d == 0.0):
            row = int(np.flatnonzero(d == 0.0)[0])
            raise ZeroDiagonalError(
                f"diagonal preconditioner requires a zero-free diagonal "
                f"(row {row} is zero)",
                row=row,
                value=0.0,
            )
        self._inv_diag = 1.0 / d
        return self

    def apply(self, r: np.ndarray) -> np.ndarray:
        if self._inv_diag is None:
            raise RuntimeError(
                "DiagonalPreconditioner not set up; pass A to the constructor "
                "or call setup(A)"
            )
        return self._inv_diag * np.asarray(r, dtype=np.float64)

    def flops(self) -> float:
        return float(self._inv_diag.size) if self._inv_diag is not None else 0.0


class ILUPreconditioner(Preconditioner):
    """Wrap :class:`~repro.ilu.factors.ILUFactors` as ``M = (I+L) U``.

    Construct from existing factors — ``ILUPreconditioner(factors)`` —
    or from parameters — ``ILUPreconditioner(params=ILUTParams(10,
    1e-4))`` — in which case :meth:`setup` factors the solve's matrix
    with sequential ILUT.

    With ``fast=True`` (default) the first application builds a
    level-scheduled plan (:class:`~repro.ilu.apply.LevelScheduledApplier`)
    so repeated applications inside a Krylov solver are vectorised; pass
    ``fast=False`` to use the reference row-by-row solves.

    With ``guard=True`` every :meth:`apply` output is checked for
    NaN/Inf and a :class:`~repro.resilience.NonFiniteError` raised on a
    hit — the apply-boundary detection the resilience layer (fallback
    chains, retry policies) keys on.
    """

    def __init__(
        self,
        factors: ILUFactors | None = None,
        *,
        params: ILUTParams | None = None,
        fast: bool = True,
        guard: bool = False,
        pivot_policy: PivotPolicy | None = None,
    ) -> None:
        if factors is None and params is None:
            raise TypeError("ILUPreconditioner requires factors or params")
        if factors is not None and params is not None:
            raise TypeError("ILUPreconditioner takes factors or params, not both")
        self.factors = factors
        self.params = params
        self._fast = fast
        self.guard = guard
        self.pivot_policy = pivot_policy
        self._applier = None

    def setup(self, A: CSRMatrix) -> "ILUPreconditioner":
        if self.factors is not None:
            return self
        from ..ilu.ilut import ilut

        self.factors = ilut(A, self.params, pivot_policy=self.pivot_policy)
        return self

    def apply(self, r: np.ndarray) -> np.ndarray:
        if self.factors is None:
            raise RuntimeError(
                "ILUPreconditioner not set up; pass factors to the constructor "
                "or call setup(A)"
            )
        r = np.asarray(r, dtype=np.float64)
        if not self._fast:
            out = self.factors.solve(r)
        else:
            if self._applier is None:
                from ..ilu.apply import LevelScheduledApplier

                self._applier = LevelScheduledApplier(self.factors)
            out = self._applier.apply(r)
        if self.guard:
            assert_finite(out, where="ILUT preconditioner apply")
        return out

    def flops(self) -> float:
        if self.factors is None:
            return 0.0
        n = self.factors.n
        # forward: one multiply-add per L entry; backward: the same per
        # strict-upper U entry plus one divide per row
        return float(2 * self.factors.L.nnz + 2 * (self.factors.U.nnz - n) + n)


class ILU0Preconditioner(Preconditioner):
    """Zero-fill ILU(0) as a preconditioner (the paper's static-pattern
    baseline, and the mid-strength tier of the resilience fallback
    chain: cheaper and more breakdown-resistant than ILUT on the
    original pattern, stronger than Jacobi).

    Construct with the matrix or defer to :meth:`setup`; ``guard=True``
    adds the NaN/Inf apply-boundary check.  ``diag_guard=False`` lets a
    zero pivot surface as a typed
    :class:`~repro.resilience.ZeroPivotError` instead of being patched —
    the right setting inside a fallback chain, where the next tier
    should take over.
    """

    def __init__(
        self,
        A: CSRMatrix | None = None,
        *,
        guard: bool = False,
        diag_guard: bool = True,
    ) -> None:
        self.factors: ILUFactors | None = None
        self.guard = guard
        self.diag_guard = diag_guard
        self._applier = None
        if A is not None:
            self.setup(A)

    def setup(self, A: CSRMatrix) -> "ILU0Preconditioner":
        if self.factors is not None:
            return self
        from ..ilu.ilu0 import ilu0

        self.factors = ilu0(A, diag_guard=self.diag_guard)
        return self

    def apply(self, r: np.ndarray) -> np.ndarray:
        if self.factors is None:
            raise RuntimeError(
                "ILU0Preconditioner not set up; pass A to the constructor "
                "or call setup(A)"
            )
        r = np.asarray(r, dtype=np.float64)
        if self._applier is None:
            from ..ilu.apply import LevelScheduledApplier

            self._applier = LevelScheduledApplier(self.factors)
        out = self._applier.apply(r)
        if self.guard:
            assert_finite(out, where="ILU(0) preconditioner apply")
        return out

    def flops(self) -> float:
        if self.factors is None:
            return 0.0
        n = self.factors.n
        return float(2 * self.factors.L.nnz + 2 * (self.factors.U.nnz - n) + n)


def prepare_preconditioner(M: object | None, A: object) -> Preconditioner:
    """Resolve the solver's ``M`` argument to a ready preconditioner.

    ``None`` becomes the identity; a conformer gets ``setup(A)`` called
    (a no-op for already-configured instances); a bare object with only
    ``apply`` is passed through untouched.
    """
    if M is None:
        return IdentityPreconditioner()
    setup = getattr(M, "setup", None)
    if callable(setup):
        return setup(A)
    return M  # duck-typed: anything with apply()
