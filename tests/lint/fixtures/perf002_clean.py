"""PERF002 clean twin: preallocation and loop-free construction."""

import numpy as np


def preallocated(n):
    out = np.zeros(n)
    for i in range(n):
        out[i] = float(i) * 0.5
    return out


def vectorized(n):
    return np.arange(n, dtype=np.float64) * 0.5


def append_outside_loop(a, b):
    # a single concatenation is not per-iteration growth
    return np.append(a, b)
