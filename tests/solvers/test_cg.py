"""Unit tests for preconditioned CG."""

import numpy as np
import pytest

from repro.ilu import ilut
from repro.matrices import poisson2d
from repro.solvers import DiagonalPreconditioner, ILUPreconditioner, cg


class TestConvergence:
    def test_spd_poisson(self, rng):
        A = poisson2d(12)
        x_true = rng.standard_normal(144)
        res = cg(A, A @ x_true, maxiter=2000)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-5)

    def test_zero_rhs(self):
        A = poisson2d(6)
        res = cg(A, np.zeros(36))
        assert res.converged and res.iterations == 0

    def test_initial_guess(self, rng):
        A = poisson2d(8)
        x_true = rng.standard_normal(64)
        res = cg(A, A @ x_true, x0=x_true.copy())
        assert res.converged and res.iterations <= 1

    def test_cg_iterations_scale_with_grid(self):
        its = [cg(poisson2d(nx), np.ones(nx * nx), maxiter=5000).iterations for nx in (8, 16)]
        assert its[1] > its[0]  # condition number grows with grid size

    def test_maxiter(self, rng):
        A = poisson2d(12)
        res = cg(A, rng.standard_normal(144), maxiter=3, tol=1e-14)
        assert not res.converged
        assert res.iterations == 3


class TestPreconditioning:
    def test_diagonal_preconditioner_runs(self, rng):
        A = poisson2d(10)
        b = rng.standard_normal(100)
        res = cg(A, b, M=DiagonalPreconditioner(A), maxiter=2000)
        assert res.converged

    def test_ic_like_ilut_cuts_iterations(self, rng):
        A = poisson2d(16)
        b = rng.standard_normal(256)
        plain = cg(A, b, maxiter=4000)
        pre = cg(A, b, M=ILUPreconditioner(ilut(A, 10, 1e-4)), maxiter=4000)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_residual_history_recorded(self, rng):
        A = poisson2d(8)
        res = cg(A, rng.standard_normal(64), maxiter=500)
        assert len(res.residual_norms) == res.iterations + 1

    def test_non_spd_direction_detected(self):
        from repro.sparse import CSRMatrix

        A = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, -1.0]]))
        res = cg(A, np.array([0.0, 1.0]), maxiter=10)
        assert not res.converged
