"""Unit tests for the parallel level-scheduled triangular solves."""

import numpy as np
import pytest

from repro.ilu import (
    ilut,
    parallel_ilut,
    parallel_ilut_star,
    parallel_triangular_solve,
)
from repro.machine import IDEAL, WORKSTATION_CLUSTER
from repro.matrices import poisson2d, torso_like


class TestCorrectness:
    def test_matches_sequential_apply(self, medium_poisson, rng):
        r = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=0, simulate=False)
        b = rng.standard_normal(256)
        ref = r.factors.solve(b)
        out = parallel_triangular_solve(r.factors, b, simulate=False)
        assert np.allclose(out.x, ref, rtol=1e-12, atol=1e-14)

    def test_matches_for_many_configs(self, rng):
        A = poisson2d(12)
        b = rng.standard_normal(144)
        for p in (2, 4, 8):
            for m, t in ((5, 1e-2), (10, 1e-5)):
                r = parallel_ilut(A, m, t, p, seed=1, simulate=False)
                out = parallel_triangular_solve(r.factors, b, simulate=False)
                assert np.allclose(out.x, r.factors.solve(b)), (p, m, t)

    def test_simulation_does_not_change_result(self, medium_poisson, rng):
        r = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=0, simulate=False)
        b = rng.standard_normal(256)
        x1 = parallel_triangular_solve(r.factors, b, simulate=True).x
        x2 = parallel_triangular_solve(r.factors, b, simulate=False).x
        assert np.array_equal(x1, x2)

    def test_unstructured(self, rng):
        A = torso_like(250, seed=1)
        r = parallel_ilut(A, 10, 1e-3, 4, seed=0, simulate=False)
        b = rng.standard_normal(250)
        out = parallel_triangular_solve(r.factors, b, simulate=False)
        assert np.allclose(out.x, r.factors.solve(b))

    def test_requires_level_structure(self, small_poisson):
        f = ilut(small_poisson, 5, 1e-3)  # sequential: no levels
        with pytest.raises(ValueError):
            parallel_triangular_solve(f, np.ones(100))

    def test_rhs_shape_check(self, medium_poisson):
        r = parallel_ilut(medium_poisson, 5, 1e-3, 2, simulate=False)
        with pytest.raises(ValueError):
            parallel_triangular_solve(r.factors, np.ones(7))


class TestCostModel:
    def test_flops_match_structure(self, medium_poisson, rng):
        r = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=0, simulate=False)
        out = parallel_triangular_solve(
            r.factors, rng.standard_normal(256), simulate=True
        )
        expected = r.factors.triangular_flops()
        assert out.flops == pytest.approx(expected, rel=0.01)

    def test_more_levels_more_barriers(self, rng):
        A = poisson2d(16)
        b = rng.standard_normal(256)
        r_few = parallel_ilut_star(A, 10, 1e-6, 2, 8, seed=0, simulate=False)
        r_many = parallel_ilut(A, 10, 1e-6, 8, seed=0, simulate=False)
        s_few = parallel_triangular_solve(r_few.factors, b)
        s_many = parallel_triangular_solve(r_many.factors, b)
        if r_many.num_levels > r_few.num_levels:
            assert s_many.comm.barriers > s_few.comm.barriers

    def test_comm_free_model_faster(self, medium_poisson, rng):
        r = parallel_ilut(medium_poisson, 5, 1e-4, 4, seed=0, simulate=False)
        b = rng.standard_normal(256)
        t_ideal = parallel_triangular_solve(r.factors, b, model=IDEAL).modeled_time
        t_slow = parallel_triangular_solve(
            r.factors, b, model=WORKSTATION_CLUSTER
        ).modeled_time
        assert t_ideal < t_slow

    def test_modeled_time_positive(self, medium_poisson, rng):
        r = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=0, simulate=False)
        out = parallel_triangular_solve(r.factors, rng.standard_normal(256))
        assert out.modeled_time > 0
