"""Transport wall-clock harness: simulator vs threads vs processes.

Times the two ends of the preconditioned pipeline — ILUT factorization
and the level-scheduled triangular solve — at ranks 1/2/4 on every
transport backend, verifies the cross-transport bit-identity contract
(DESIGN.md §13) on each configuration, and writes the results to
``BENCH_transport.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_transport.py            # full run
    PYTHONPATH=src python benchmarks/bench_transport.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_transport.py --quick --check

``--check`` exits nonzero if any transport diverges from the simulator's
factors or solution bits (the CI guard for the parity contract).  The
wall-clock columns themselves are reported, not asserted: on one host at
these rank counts the real transports pay their coordination overhead
without any extra hardware, so the interesting number is the *price* of
real workers, not a speedup.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import ILUTParams, poisson2d
from repro.ilu import parallel_ilut
from repro.ilu.triangular import parallel_triangular_solve

REPO_ROOT = Path(__file__).resolve().parent.parent

TRANSPORTS = ("simulator", "threads", "processes")
RANKS = (1, 2, 4)


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _factor_digest(factors) -> tuple:
    return (
        float(factors.L.data.sum()),
        float(factors.U.data.sum()),
        int(factors.L.nnz),
        int(factors.U.nnz),
        factors.perm.tobytes(),
    )


def run(nx: int, repeat: int) -> dict:
    A = poisson2d(nx)
    params = ILUTParams(fill=10, threshold=1e-4)
    b = A @ np.ones(A.shape[0])
    rows: list[dict] = []
    mismatches: list[str] = []

    for p in RANKS:
        baseline_factors = None
        baseline_x = None
        for name in TRANSPORTS:
            fact = parallel_ilut(A, params, p, seed=0, transport=name)
            sol = parallel_triangular_solve(
                fact.factors, b, nranks=p, transport=name
            )
            if name == "simulator":
                baseline_factors = _factor_digest(fact.factors)
                baseline_x = sol.x.tobytes()
            else:
                if _factor_digest(fact.factors) != baseline_factors:
                    mismatches.append(f"p={p} {name}: factor digest diverged")
                if sol.x.tobytes() != baseline_x:
                    mismatches.append(f"p={p} {name}: solution bits diverged")

            t_fact = _best_of(
                lambda: parallel_ilut(A, params, p, seed=0, transport=name),
                repeat,
            )
            t_solve = _best_of(
                lambda: parallel_triangular_solve(
                    fact.factors, b, nranks=p, transport=name
                ),
                repeat,
            )
            rows.append(
                {
                    "transport": name,
                    "ranks": p,
                    "factor_wall_s": t_fact,
                    "solve_wall_s": t_solve,
                    "factor_modeled_s": fact.modeled_time
                    if name == "simulator"
                    else None,
                    "solve_modeled_s": sol.modeled_time
                    if name == "simulator"
                    else None,
                    "num_levels": fact.num_levels,
                    "messages": fact.comm.messages,
                }
            )
            print(
                f"p={p} {name:<10} factor {t_fact:8.4f}s  "
                f"solve {t_solve:8.4f}s"
            )

    return {
        "benchmark": "transport",
        "matrix": f"poisson2d({nx})",
        "n": int(A.shape[0]),
        "params": {"fill": 10, "threshold": 1e-4},
        "repeat": repeat,
        "rows": rows,
        "parity_ok": not mismatches,
        "mismatches": mismatches,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small matrix, 1 repeat")
    ap.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if any transport diverges from the simulator bits",
    )
    ap.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_transport.json"),
        help="output JSON path (default: BENCH_transport.json at repo root)",
    )
    args = ap.parse_args(argv)

    nx = 16 if args.quick else 40
    repeat = 1 if args.quick else 3
    doc = run(nx, repeat)

    Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.output}")
    if doc["mismatches"]:
        for m in doc["mismatches"]:
            print(f"PARITY FAILURE: {m}", file=sys.stderr)
        if args.check:
            return 1
    elif args.check:
        print("parity check passed: all transports bit-identical to simulator")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
