"""SPMD003 FP-reduction twin: drain loop iterable aliased via a copy.

Structural comparison of the two loop iterables sees ``pairs`` vs
``pairs2`` and used to flag the drain; reaching definitions resolve the
unique ``pairs2 = pairs`` alias, so the upgraded rule matches them.
"""


def exchange(sim, pairs):
    for src, dst in pairs:
        sim.send(src, dst, None, 1, tag=("halo", 0))
    pairs2 = pairs
    for src, dst in pairs2:
        sim.recv(dst, src, tag=("halo", 0))
