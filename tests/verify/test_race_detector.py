"""Race-detector tests: the seeded violation is flagged, the shipped
parallel drivers are certified race-free on a G0-style workload."""

import numpy as np
import pytest

from repro.graph import adjacency_from_matrix
from repro.graph.distributed_mis import distributed_two_step_luby_mis
from repro.ilu import parallel_ilut, parallel_ilut_star
from repro.ilu.triangular import parallel_triangular_solve
from repro.machine import CRAY_T3D, MachineModel, Simulator
from repro.matrices import poisson2d
from repro.solvers import parallel_matvec
from repro.verify import find_races, racy_toy_driver

MODEL = MachineModel("test", flop_time=1e-6, latency=1e-4, byte_time=1e-8)


class TestAdversarialDriver:
    def test_racy_toy_driver_reports_exactly_the_conflict(self):
        sim = Simulator(2, MODEL, trace=True)
        racy_toy_driver(sim)
        races = find_races(sim.tracer)
        assert len(races) == 1
        r = races[0]
        assert (r.space, r.index) == ("interface-row", 7)
        assert {r.first.rank, r.second.rank} == {0, 1}
        assert r.first.kind == "write" and r.second.kind == "write"
        assert "interface-row" in r.describe()

    def test_fixed_variant_is_race_free(self):
        sim = Simulator(2, MODEL, trace=True)
        racy_toy_driver(sim, fixed=True)
        assert find_races(sim.tracer) == []

    def test_driver_requires_tracing(self):
        with pytest.raises(ValueError):
            racy_toy_driver(Simulator(2, MODEL))
        with pytest.raises(ValueError):
            racy_toy_driver(Simulator(1, MODEL, trace=True))

    def test_unsynchronised_cross_rank_u_row_read_is_flagged(self):
        # the engine-shaped bug: rank 1 consumes rank 0's freshly
        # factored u-row without the level's send/recv edge
        sim = Simulator(2, MODEL, trace=True)
        tr = sim.tracer
        tr.write(0, "u-row", 11)
        tr.read(1, "u-row", 11)  # no message, no barrier
        races = find_races(tr)
        assert len(races) == 1
        assert (races[0].space, races[0].index) == ("u-row", 11)

    def test_exchange_edge_removes_the_race(self):
        sim = Simulator(2, MODEL, trace=True)
        sim.declare_write(0, "u-row", 11)
        sim.send(0, 1, None, 4.0, tag=("urow", 0))
        sim.recv(1, 0, tag=("urow", 0))
        sim.declare_read(1, "u-row", 11)
        assert find_races(sim.tracer) == []

    def test_find_races_handles_missing_tracer(self):
        assert find_races(None) == []

    def test_one_report_per_object_and_rank_pair(self):
        sim = Simulator(2, MODEL, trace=True)
        tr = sim.tracer
        for _ in range(3):
            tr.write(0, "row", 1)
            tr.on_send(0)  # break dedup without creating edges to rank 1
            tr.write(1, "row", 1)
            tr.on_send(1)
        assert len(find_races(tr)) == 1


class TestShippedDriversRaceFree:
    """Acceptance: zero races across every parallel driver on G0."""

    A = poisson2d(12)
    P = 4

    def test_parallel_ilut(self):
        res = parallel_ilut(self.A, 5, 1e-4, self.P, trace=True)
        assert res.trace is not None
        assert res.trace.num_accesses > 0
        assert find_races(res.trace) == []

    def test_parallel_ilut_star(self):
        res = parallel_ilut_star(self.A, 5, 1e-4, 2, self.P, trace=True)
        assert find_races(res.trace) == []

    def test_distributed_mis(self):
        res = parallel_ilut(self.A, 5, 1e-4, self.P)
        graph = adjacency_from_matrix(self.A, symmetric=True)
        sim = Simulator(self.P, CRAY_T3D, trace=True)
        distributed_two_step_luby_mis(graph, res.decomp.part, sim, seed=0)
        assert sim.tracer.num_accesses > 0
        assert find_races(sim.tracer) == []

    def test_triangular_solve(self):
        res = parallel_ilut(self.A, 5, 1e-4, self.P, trace=True)
        b = np.ones(self.A.shape[0])
        ts = parallel_triangular_solve(res.factors, b, trace=True)
        assert ts.trace is not None
        assert find_races(ts.trace) == []

    def test_distributed_matvec(self):
        res = parallel_ilut(self.A, 5, 1e-4, self.P)
        x = np.linspace(1.0, 2.0, self.A.shape[0])
        mv = parallel_matvec(self.A, res.decomp, x, trace=True)
        assert mv.trace is not None
        assert find_races(mv.trace) == []

    def test_trace_requires_simulation(self):
        with pytest.raises(ValueError):
            parallel_ilut(self.A, 5, 1e-4, 2, simulate=False, trace=True)

    def test_trace_does_not_perturb_results(self):
        plain = parallel_ilut(self.A, 5, 1e-4, self.P)
        traced = parallel_ilut(self.A, 5, 1e-4, self.P, trace=True)
        assert plain.modeled_time == traced.modeled_time
        assert np.array_equal(plain.factors.U.data, traced.factors.U.data)
        assert np.array_equal(plain.factors.perm, traced.factors.perm)
        assert plain.trace is None
