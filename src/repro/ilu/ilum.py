"""ILUM — multi-elimination ILU (Saad '92, the paper's reference [11]).

ILUM applies the independent-set idea to the *whole* matrix rather than
just the interface rows: repeatedly find a maximal independent set of
the current (reduced) matrix, eliminate those unknowns — their pivot
block is diagonal, so the elimination is trivially parallel — apply
threshold dropping to the Schur-complement-like reduced matrix, and
recurse, finishing with a small dense-ish tail factored directly.

This is the closest prior art to the paper's algorithm (which can be
read as "local ILUT + ILUM on the interface"), included both as a
baseline preconditioner and to let the library express the whole design
space: ILU(0)/ILU(k) (static), ILUT (sequential dynamic), ILUM (global
independent sets), parallel ILUT/ILUT* (two-phase).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, two_step_luby_mis
from ..resilience import ZeroPivotError
from ..sparse import COOBuilder, CSRMatrix, SparseRowAccumulator
from .dropping import keep_largest
from .elimination import _merge_rows
from .factors import ILUFactors, LevelStructure

__all__ = ["ilum"]


def ilum(
    A: CSRMatrix,
    m: int,
    t: float,
    *,
    reduced_cap: int | None = None,
    max_levels: int | None = None,
    mis_rounds: int = 5,
    seed: int = 0,
    diag_guard: bool = True,
) -> ILUFactors:
    """Multi-elimination ILU factorization of ``A``.

    Parameters mirror ILUT: ``m`` caps each L/U row, ``t`` is the
    relative drop tolerance, and ``reduced_cap`` (optional, the ILUT*
    trick) caps reduced-matrix rows.  Returns factors whose
    ``LevelStructure`` has one interface level per independent set and
    no interior blocks — every row belongs to some level.
    """
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"ILUM requires a square matrix, got {A.shape}")
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    if max_levels is None:
        max_levels = n + 1

    norms = A.row_norms(ord=2)
    # live reduced rows over unfactored columns, plus accumulated L rows
    reduced: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for i, cols, vals in A.iter_rows():
        on = cols == i
        if not np.any(on):  # ensure a pivot slot exists
            ins = int(np.searchsorted(cols, i))
            cols = np.insert(cols, ins, i)
            vals = np.insert(vals, ins, 0.0)
        reduced[i] = (cols.copy(), vals.copy())
    l_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    u_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    pos = np.full(n, -1, dtype=np.int64)
    order: list[int] = []
    levels: list[np.ndarray] = []
    w = SparseRowAccumulator(n)

    def tau(i: int) -> float:
        return t * norms[i]

    def guard(i: int, d: float) -> float:
        if d != 0.0:
            return d
        if not diag_guard:
            raise ZeroPivotError(f"zero pivot at row {i}", row=i, value=0.0)
        ti = tau(i)
        if ti > 0:
            return ti
        return norms[i] if norms[i] > 0 else 1.0

    level = 0
    while reduced:
        if level >= max_levels:
            raise RuntimeError(f"ILUM did not terminate within {level} levels")
        remaining = np.asarray(sorted(reduced.keys()), dtype=np.int64)
        # MIS of the current directed reduced structure
        local_of = {int(g): idx for idx, g in enumerate(remaining)}
        xadj = np.zeros(remaining.size + 1, dtype=np.int64)
        chunks = []
        for idx, g in enumerate(remaining):
            cols, _ = reduced[int(g)]
            nb = cols[cols != g]
            chunks.append(
                np.asarray([local_of[int(c)] for c in nb], dtype=np.int64)
            )
            xadj[idx + 1] = xadj[idx] + chunks[-1].size
        adjncy = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        iset_local = two_step_luby_mis(
            Graph(xadj, adjncy), seed=seed + 1000 * (level + 1), rounds=mis_rounds
        )
        iset = remaining[iset_local]
        if iset.size == 0:
            raise RuntimeError("empty independent set — cannot make progress")

        # factor the independent rows (all off-diagonals are U entries)
        iset_mask = np.zeros(n, dtype=bool)
        iset_mask[iset] = True
        pos_start = len(order)
        for i_arr in iset:
            i = int(i_arr)
            cols, vals = reduced.pop(i)
            ti = tau(i)
            on = cols == i
            diag = float(vals[on][0]) if np.any(on) else 0.0
            big = (np.abs(vals) >= ti) & ~on
            uc, uv = keep_largest(cols[big], vals[big], m)
            diag = guard(i, diag)
            u_rows[i] = (
                np.concatenate(([i], uc)).astype(np.int64),
                np.concatenate(([diag], uv)),
            )
            pos[i] = len(order)
            order.append(i)
        levels.append(np.arange(pos_start, len(order), dtype=np.int64))

        # eliminate the set from every remaining row (single pass — the
        # set is independent, so no new pivots appear)
        for i in sorted(reduced.keys()):
            cols, vals = reduced[i]
            pivots = cols[iset_mask[cols]]
            if pivots.size == 0:
                continue
            ti = tau(i)
            w.load(cols, vals)
            new_lc: list[int] = []
            new_lv: list[float] = []
            for k_arr in pivots:
                k = int(k_arr)
                wk = w.get(k)
                w.drop(k)
                if wk == 0.0:
                    continue
                ucols, uvals = u_rows[k]
                wk = wk / uvals[0]
                if abs(wk) < ti:
                    continue
                new_lc.append(k)
                new_lv.append(wk)
                if ucols.size > 1:
                    w.axpy(-wk, ucols[1:], uvals[1:])
            rcols, rvals = w.extract()
            w.reset()
            lc_old, lv_old = l_rows.get(i, (np.empty(0, np.int64), np.empty(0)))
            lc_new = np.asarray(new_lc, dtype=np.int64)
            lv_new = np.asarray(new_lv, dtype=np.float64)
            o = np.argsort(lc_new, kind="stable")
            lc_m, lv_m = _merge_rows(lc_old, lv_old, lc_new[o], lv_new[o])
            big = np.abs(lv_m) >= ti
            lc_m, lv_m = keep_largest(lc_m[big], lv_m[big], m)
            l_rows[i] = (lc_m, lv_m)
            on = rcols == i
            diag_val = float(rvals[on][0]) if np.any(on) else 0.0
            keep = (np.abs(rvals) >= ti) & ~on
            rc_k, rv_k = rcols[keep], rvals[keep]
            if reduced_cap is not None:
                rc_k, rv_k = keep_largest(rc_k, rv_k, max(0, reduced_cap - 1))
            ins = int(np.searchsorted(rc_k, i))
            rc_k = np.insert(rc_k, ins, i)
            rv_k = np.insert(rv_k, ins, diag_val)
            reduced[i] = (rc_k, rv_k)
        level += 1

    perm = np.asarray(order, dtype=np.int64)
    l_builder = COOBuilder(n)
    u_builder = COOBuilder(n)
    for i in range(n):
        p = int(pos[i])
        lc, lv = l_rows.get(i, (np.empty(0, np.int64), np.empty(0)))
        if lc.size:
            l_builder.add_batch(np.full(lc.size, p, dtype=np.int64), pos[lc], lv)
        uc, uv = u_rows[i]
        u_builder.add_batch(np.full(uc.size, p, dtype=np.int64), pos[uc], uv)
    struct = LevelStructure(
        interior_ranges=[],
        interface_levels=levels,
        owner=np.zeros(n, dtype=np.int64),
    )
    struct.validate(n)
    return ILUFactors(
        L=l_builder.to_csr(),
        U=u_builder.to_csr(),
        perm=perm,
        levels=struct,
        stats={
            "algo": "ilum",
            "m": m,
            "t": t,
            "reduced_cap": reduced_cap,
            "num_levels": len(levels),
        },
    )
