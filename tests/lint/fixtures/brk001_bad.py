"""BRK001 bad twin: numeric breakdowns raised as bare builtins."""


def pivot(d, i):
    if d == 0.0:
        raise ZeroDivisionError(f"zero pivot at row {i}")


def diag(cols, i):
    if not cols:
        raise ValueError(f"missing diagonal at row {i}")
