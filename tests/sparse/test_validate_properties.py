"""Property tests for COO<->CSR round-trips and ``_validate`` diagnostics.

Every corruption a kernel bug could plausibly introduce into the four
CSR fields must be caught by ``check=True`` with a message that names
the offending row/offset.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import COOBuilder, CSRMatrix


@st.composite
def coo_entries(draw, max_n=10, max_nnz=30):
    n = draw(st.integers(min_value=1, max_value=max_n))
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    vals = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return n, rows, cols, vals


@settings(max_examples=80, deadline=None)
@given(coo_entries())
def test_coo_csr_round_trip(data):
    n, rows, cols, vals = data
    b = COOBuilder(n)
    for i, j, v in zip(rows, cols, vals):
        b.add(i, j, v)
    A = b.to_csr()
    A._validate()  # the finalised matrix is always well-formed

    # re-assemble from the CSR entries: must reproduce the same matrix
    b2 = COOBuilder(n)
    for i in range(n):
        c, v = A.row(i)
        for j, x in zip(c, v):
            b2.add(int(i), int(j), float(x))
    B = b2.to_csr()
    assert np.array_equal(A.indptr, B.indptr)
    assert np.array_equal(A.indices, B.indices)
    assert np.allclose(A.data, B.data)


@settings(max_examples=80, deadline=None)
@given(coo_entries())
def test_round_trip_matches_dense(data):
    n, rows, cols, vals = data
    b = COOBuilder(n)
    b.add_batch(np.array(rows, dtype=np.int64).reshape(-1),
                np.array(cols, dtype=np.int64).reshape(-1),
                np.array(vals, dtype=np.float64).reshape(-1))
    A = b.to_csr()
    D = np.zeros((n, n))
    np.add.at(D, (np.array(rows, dtype=int), np.array(cols, dtype=int)), vals)
    assert np.allclose(A.to_dense(), D)


def _healthy():
    b = COOBuilder(4)
    for i, j, v in [(0, 0, 4.0), (0, 2, -1.0), (1, 1, 4.0), (2, 0, -1.0),
                    (2, 2, 4.0), (3, 3, 4.0)]:
        b.add(i, j, v)
    return b.to_csr()


class TestCorruptedFieldDetection:
    """Each corrupted field is rejected with a located diagnostic."""

    def test_indptr_wrong_start(self):
        A = _healthy()
        p = A.indptr.copy()
        p[0] = 1
        with pytest.raises(ValueError, match=r"indptr\[0\] = 1, expected 0"):
            CSRMatrix(p, A.indices, A.data, A.shape)

    def test_indptr_wrong_end(self):
        A = _healthy()
        p = A.indptr.copy()
        p[-1] = A.nnz + 2
        with pytest.raises(ValueError, match="does not equal nnz"):
            CSRMatrix(p, A.indices, A.data, A.shape)

    def test_indptr_decreasing_names_row(self):
        A = _healthy()
        p = A.indptr.copy()
        p[1], p[2] = p[2], p[1]  # row 1 now decreases
        with pytest.raises(ValueError, match="decreases at row"):
            CSRMatrix(p, A.indices, A.data, A.shape)

    def test_indptr_wrong_length(self):
        A = _healthy()
        with pytest.raises(ValueError, match="indptr has shape"):
            CSRMatrix(A.indptr[:-1].copy(), A.indices, A.data, A.shape)

    def test_indices_out_of_range_names_row_and_offset(self):
        A = _healthy()
        idx = A.indices.copy()
        idx[int(A.indptr[2])] = 11
        with pytest.raises(IndexError, match=r"row 2, offset 0: column index 11"):
            CSRMatrix(A.indptr, idx, A.data, A.shape)

    def test_indices_negative(self):
        A = _healthy()
        idx = A.indices.copy()
        idx[0] = -3
        with pytest.raises(IndexError, match="out of range"):
            CSRMatrix(A.indptr, idx, A.data, A.shape)

    def test_indices_unsorted_names_offsets(self):
        A = _healthy()
        idx = A.indices.copy()
        s = int(A.indptr[0])
        idx[s], idx[s + 1] = idx[s + 1], idx[s]  # row 0 has two entries
        with pytest.raises(ValueError, match="row 0 has unsorted column indices"):
            CSRMatrix(A.indptr, idx, A.data, A.shape)

    def test_indices_duplicate_distinct_from_unsorted(self):
        A = _healthy()
        idx = A.indices.copy()
        idx[int(A.indptr[0]) + 1] = idx[int(A.indptr[0])]
        with pytest.raises(ValueError, match="row 0 has duplicate column indices"):
            CSRMatrix(A.indptr, idx, A.data, A.shape)

    def test_data_length_mismatch(self):
        A = _healthy()
        with pytest.raises(ValueError, match="must have equal length"):
            CSRMatrix(A.indptr, A.indices, A.data[:-1].copy(), A.shape)

    def test_row_boundary_not_flagged_as_unsorted(self):
        # column 2 ends row 0, column 0 starts row 2: the drop across the
        # boundary is legal and must not be reported
        A = _healthy()
        CSRMatrix(A.indptr, A.indices, A.data, A.shape)  # no raise


@settings(max_examples=60, deadline=None)
@given(coo_entries(), st.data())
def test_any_single_index_corruption_is_caught(data, rnd):
    """Randomised: bump one column index out of range -> always caught."""
    n, rows, cols, vals = data
    b = COOBuilder(n)
    for i, j, v in zip(rows, cols, vals):
        b.add(i, j, v)
    A = b.to_csr()
    if A.nnz == 0:
        return
    pos = rnd.draw(st.integers(0, A.nnz - 1))
    idx = A.indices.copy()
    idx[pos] = n + rnd.draw(st.integers(0, 5))
    with pytest.raises((ValueError, IndexError)):
        CSRMatrix(A.indptr, idx, A.data, A.shape)
