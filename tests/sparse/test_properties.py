"""Property-based tests (hypothesis) on the sparse substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CSRMatrix, SparseRowAccumulator

# strategy: small random sparse matrices as (n, rows, cols, vals)


@st.composite
def coo_matrices(draw, max_n=12, max_nnz=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    rows = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return n, np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64), np.array(vals)


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_from_coo_matches_dense_assembly(data):
    n, rows, cols, vals = data
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    D = np.zeros((n, n))
    np.add.at(D, (rows, cols), vals)
    assert np.allclose(A.to_dense(), D)


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_csr_invariants(data):
    n, rows, cols, vals = data
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    # indptr monotone, covers nnz
    assert A.indptr[0] == 0 and A.indptr[-1] == A.nnz
    assert np.all(np.diff(A.indptr) >= 0)
    # rows sorted, unique
    for i in range(n):
        c, _ = A.row(i)
        if c.size > 1:
            assert np.all(np.diff(c) > 0)


@settings(max_examples=60, deadline=None)
@given(coo_matrices(), st.integers(0, 2**31 - 1))
def test_matvec_linear(data, seed):
    n, rows, cols, vals = data
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    rng = np.random.default_rng(seed)
    x, y = rng.standard_normal(n), rng.standard_normal(n)
    a = 2.5
    assert np.allclose(A @ (a * x + y), a * (A @ x) + A @ y, atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_transpose_involution_and_rmatvec(data):
    n, rows, cols, vals = data
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    At = A.transpose()
    assert At.transpose().allclose(A)
    x = np.arange(1.0, n + 1)
    assert np.allclose(A.rmatvec(x), At @ x)


@settings(max_examples=60, deadline=None)
@given(coo_matrices(), st.integers(0, 2**31 - 1))
def test_permutation_preserves_entries(data, seed):
    n, rows, cols, vals = data
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    B = A.permute(perm, perm)
    # B[k, l] == A[perm[k], perm[l]]
    D, DB = A.to_dense(), B.to_dense()
    assert np.allclose(DB, D[np.ix_(perm, perm)])
    # nnz preserved
    assert B.nnz == A.nnz


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_add_commutes_scale_distributes(data):
    n, rows, cols, vals = data
    A = CSRMatrix.from_coo(rows, cols, vals, (n, n))
    B = A.scale(0.5)
    assert (A + B).allclose(B + A)
    assert (A + A).allclose(A.scale(2.0))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 19), st.floats(-5, 5, allow_nan=False)),
        min_size=0,
        max_size=30,
    )
)
def test_accumulator_matches_dense_reference(ops):
    """Random axpy/set/drop sequences agree with a dense working vector."""
    w = SparseRowAccumulator(20)
    dense = np.zeros(20)
    for idx, val in ops:
        w.axpy(1.0, np.array([idx]), np.array([val]))
        dense[idx] += val
    cols, vals = w.extract()
    ref = np.zeros(20)
    ref[cols] = vals
    assert np.allclose(ref, dense)
    w.reset()
    assert len(w) == 0
