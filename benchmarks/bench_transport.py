"""Transport wall-clock harness: simulator vs threads vs processes.

Times the two ends of the preconditioned pipeline — ILUT factorization
and the level-scheduled triangular solve — at ranks 1/2/4 on every
transport backend, verifies the cross-transport bit-identity contract
(DESIGN.md §13) on each configuration, and writes the results to
``BENCH_transport.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_transport.py            # full run
    PYTHONPATH=src python benchmarks/bench_transport.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_transport.py --quick --check

``--check`` exits nonzero if any transport diverges from the simulator's
factors or solution bits (the CI guard for the parity contract).  The
wall-clock columns themselves are reported, not asserted: on one host at
these rank counts the real transports pay their coordination overhead
without any extra hardware, so the interesting number is the *price* of
real workers, not a speedup.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import ILUTParams, poisson2d
from repro.ilu import parallel_ilut
from repro.ilu.triangular import parallel_triangular_solve
from repro.machine import SupervisionPolicy

REPO_ROOT = Path(__file__).resolve().parent.parent

TRANSPORTS = ("simulator", "threads", "processes")
RANKS = (1, 2, 4)

#: supervision must cost < 5% on the no-fault path.  The absolute slack
#: floor absorbs fork-timing noise on short runs (quick mode factors in
#: ~1s with run-to-run swings of ~10%); on full-size runs the ratio gate
#: dominates.
OVERHEAD_RATIO_MAX = 1.05
OVERHEAD_ABS_SLACK_S = 0.25


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _factor_digest(factors) -> tuple:
    return (
        float(factors.L.data.sum()),
        float(factors.U.data.sum()),
        int(factors.L.nnz),
        int(factors.U.nnz),
        factors.perm.tobytes(),
    )


def run(nx: int, repeat: int) -> dict:
    A = poisson2d(nx)
    params = ILUTParams(fill=10, threshold=1e-4)
    b = A @ np.ones(A.shape[0])
    rows: list[dict] = []
    mismatches: list[str] = []

    for p in RANKS:
        baseline_factors = None
        baseline_x = None
        for name in TRANSPORTS:
            fact = parallel_ilut(A, params, p, seed=0, transport=name)
            sol = parallel_triangular_solve(
                fact.factors, b, nranks=p, transport=name
            )
            if name == "simulator":
                baseline_factors = _factor_digest(fact.factors)
                baseline_x = sol.x.tobytes()
            else:
                if _factor_digest(fact.factors) != baseline_factors:
                    mismatches.append(f"p={p} {name}: factor digest diverged")
                if sol.x.tobytes() != baseline_x:
                    mismatches.append(f"p={p} {name}: solution bits diverged")

            t_fact = _best_of(
                lambda: parallel_ilut(A, params, p, seed=0, transport=name),
                repeat,
            )
            t_solve = _best_of(
                lambda: parallel_triangular_solve(
                    fact.factors, b, nranks=p, transport=name
                ),
                repeat,
            )
            # real transports measure wall clock only: they run actual
            # workers, so there is no modeled time to report.  The marker
            # is what downstream checks key on — not the null fields.
            wall_only = name != "simulator"
            rows.append(
                {
                    "transport": name,
                    "ranks": p,
                    "wall_only": wall_only,
                    "factor_wall_s": t_fact,
                    "solve_wall_s": t_solve,
                    "factor_modeled_s": None if wall_only else fact.modeled_time,
                    "solve_modeled_s": None if wall_only else sol.modeled_time,
                    "num_levels": fact.num_levels,
                    "messages": fact.comm.messages,
                }
            )
            print(
                f"p={p} {name:<10} factor {t_fact:8.4f}s  "
                f"solve {t_solve:8.4f}s"
            )

    overhead = supervision_overhead(A, params, max(repeat, 3))

    return {
        "benchmark": "transport",
        "matrix": f"poisson2d({nx})",
        "n": int(A.shape[0]),
        "params": {"fill": 10, "threshold": 1e-4},
        "repeat": repeat,
        "rows": rows,
        "parity_ok": not mismatches,
        "mismatches": mismatches,
        "supervision_overhead": overhead,
        "supervision_overhead_ok": all(row["ok"] for row in overhead),
    }


def supervision_overhead(A, params, repeat: int) -> list[dict]:
    """Price of the region supervisor on the no-fault path (DESIGN.md §14).

    Times the factorization with the default supervision policy (polled
    collection, deadlines, heartbeats armed) against a policy with the
    deadline disabled (legacy blocking collection) on each real
    transport.  The supervised path must stay within
    ``OVERHEAD_RATIO_MAX`` of the unsupervised one — with an absolute
    slack floor so millisecond-scale runs don't flake the gate.
    """
    p = RANKS[-1]
    unsupervised = SupervisionPolicy(deadline=None)
    out: list[dict] = []
    for name in ("threads", "processes"):
        # interleave the two configurations so load drift hits both alike
        t_sup = float("inf")
        t_raw = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            parallel_ilut(A, params, p, seed=0, transport=name)
            t_sup = min(t_sup, time.perf_counter() - t0)
            t0 = time.perf_counter()
            parallel_ilut(
                A, params, p, seed=0, transport=name, supervision=unsupervised
            )
            t_raw = min(t_raw, time.perf_counter() - t0)
        ratio = t_sup / t_raw if t_raw > 0 else 1.0
        ok = ratio <= OVERHEAD_RATIO_MAX or (t_sup - t_raw) <= OVERHEAD_ABS_SLACK_S
        out.append(
            {
                "transport": name,
                "ranks": p,
                "supervised_wall_s": t_sup,
                "unsupervised_wall_s": t_raw,
                "overhead_ratio": ratio,
                "ok": ok,
            }
        )
        print(
            f"p={p} {name:<10} supervised {t_sup:8.4f}s  "
            f"unsupervised {t_raw:8.4f}s  ratio {ratio:5.3f}"
        )
    return out


def modeled_mismatches(rows: list[dict]) -> list[str]:
    """Modeled-time sanity over the result rows.

    Rows from real transports are skipped by their explicit
    ``wall_only`` marker — not by sniffing for null modeled fields, so
    a simulator row that *lost* its modeled numbers is an error rather
    than silently passing as "real transport".
    """
    out: list[str] = []
    for row in rows:
        if row["wall_only"]:
            continue
        for key in ("factor_modeled_s", "solve_modeled_s"):
            v = row[key]
            if not (isinstance(v, float) and v > 0.0):
                out.append(
                    f"p={row['ranks']} {row['transport']}: {key} = {v!r}"
                )
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small matrix, 1 repeat")
    ap.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if any transport diverges from the simulator bits",
    )
    ap.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_transport.json"),
        help="output JSON path (default: BENCH_transport.json at repo root)",
    )
    args = ap.parse_args(argv)

    nx = 16 if args.quick else 40
    repeat = 1 if args.quick else 3
    doc = run(nx, repeat)

    Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.output}")
    failed = False
    if doc["mismatches"]:
        for m in doc["mismatches"]:
            print(f"PARITY FAILURE: {m}", file=sys.stderr)
        failed = True
    elif args.check:
        print("parity check passed: all transports bit-identical to simulator")
    modeled_bad = modeled_mismatches(doc["rows"])
    if modeled_bad:
        for m in modeled_bad:
            print(f"MODELED FIELD FAILURE: {m}", file=sys.stderr)
        failed = True
    elif args.check:
        print("modeled fields present on every non-wall-only row")
    if not doc["supervision_overhead_ok"]:
        for row in doc["supervision_overhead"]:
            if not row["ok"]:
                print(
                    f"SUPERVISION OVERHEAD FAILURE: {row['transport']} "
                    f"ratio {row['overhead_ratio']:.3f} > {OVERHEAD_RATIO_MAX}",
                    file=sys.stderr,
                )
        failed = True
    elif args.check:
        print("supervision overhead check passed: no-fault path within 5%")
    return 1 if args.check and failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
