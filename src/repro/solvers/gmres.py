"""Restarted GMRES with left preconditioning (Saad & Schultz '86).

This is the solver of the paper's Table 3: GMRES(20) and GMRES(50)
preconditioned by parallel ILUT/ILUT* or the diagonal, iterated until
the (preconditioned) residual norm drops by a factor of 1e-8.

The implementation is the standard Arnoldi process with modified
Gram-Schmidt orthogonalisation and Givens rotations to maintain the QR
factorization of the Hessenberg matrix, so the residual norm is
available at every inner step without forming the solution.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..sparse import CSRMatrix
from .preconditioners import Preconditioner, prepare_preconditioner
from .result import GMRESResult

__all__ = ["GMRESResult", "gmres"]


def gmres(
    A: CSRMatrix | Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    *,
    restart: int = 20,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    M: Preconditioner | None = None,
    x0: np.ndarray | None = None,
) -> GMRESResult:
    """Solve ``A x = b`` with left-preconditioned GMRES(restart).

    Parameters
    ----------
    A:
        Sparse matrix or a matvec callable.
    b:
        Right-hand side.
    restart:
        Krylov subspace dimension between restarts (paper: 20 and 50).
    tol:
        Relative reduction of the *preconditioned* residual norm
        (paper: 1e-8).
    maxiter:
        Cap on total matrix-vector products.
    M:
        Left preconditioner — ``None`` for identity, or any conformer of
        the :class:`~repro.solvers.preconditioners.Preconditioner`
        protocol (``setup(A)`` is called once at entry).
    x0:
        Initial guess (default: zero, as in the paper).
    """
    t_start = time.perf_counter()
    matvec = A.matvec if isinstance(A, CSRMatrix) else A
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    M = prepare_preconditioner(M, A)
    # a resilient preconditioner (RobustPreconditioner, retry-driven
    # setup) carries its fallback history; surface it on the result
    failure_report = getattr(M, "failure_report", None)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if restart < 1:
        raise ValueError(f"restart must be >= 1, got {restart}")

    nmv = 0
    nprec = 0
    iters = 0
    breakdown = False
    res_hist: list[float] = []

    r = b - matvec(x) if x.any() else b.copy()
    nmv += int(x.any())
    z = M.apply(r)
    nprec += 1
    beta0 = float(np.linalg.norm(z))
    res_hist.append(beta0)
    if beta0 == 0.0:
        return GMRESResult(
            x=x,
            converged=True,
            iterations=0,
            final_residual=0.0,
            residual_norms=res_hist,
            elapsed=time.perf_counter() - t_start,
            num_matvec=nmv,
            num_precond=nprec,
            failure_report=failure_report,
        )
    target = tol * beta0

    converged = False
    while nmv < maxiter and not converged:
        # Arnoldi basis and Hessenberg (QR-updated via Givens)
        V = np.zeros((restart + 1, n))
        H = np.zeros((restart + 1, restart))
        cs = np.zeros(restart)
        sn = np.zeros(restart)
        g = np.zeros(restart + 1)

        r = b - matvec(x) if x.any() else b.copy()
        if x.any():
            nmv += 1
        z = M.apply(r)
        nprec += 1
        beta = float(np.linalg.norm(z))
        if beta <= target:
            converged = True
            res_hist.append(beta)
            break
        V[0] = z / beta
        g[0] = beta

        j_used = 0
        for j in range(restart):
            if nmv >= maxiter:
                break
            w = M.apply(matvec(V[j]))
            nmv += 1
            nprec += 1
            iters += 1
            # modified Gram-Schmidt
            for i in range(j + 1):
                H[i, j] = float(np.dot(w, V[i]))
                w -= H[i, j] * V[i]
            H[j + 1, j] = float(np.linalg.norm(w))
            if H[j + 1, j] > 1e-300:
                V[j + 1] = w / H[j + 1, j]
            else:
                # happy breakdown: the Krylov space became invariant, so
                # the j+1-dimensional least-squares solution is exact
                breakdown = True
            # apply previous Givens rotations to the new column
            for i in range(j):
                h1 = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                h2 = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j], H[i + 1, j] = h1, h2
            # new rotation to annihilate H[j+1, j]
            denom = float(np.hypot(H[j, j], H[j + 1, j]))
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j] = H[j, j] / denom
                sn[j] = H[j + 1, j] / denom
            H[j, j] = cs[j] * H[j, j] + sn[j] * H[j + 1, j]
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            j_used = j + 1
            res = abs(float(g[j + 1]))
            res_hist.append(res)
            if res <= target:
                converged = True
                break
        # form the update from the j_used-dimensional least-squares solution
        if j_used > 0:
            yk = np.zeros(j_used)
            for i in range(j_used - 1, -1, -1):
                s = g[i] - np.dot(H[i, i + 1 : j_used], yk[i + 1 :])
                yk[i] = s / H[i, i] if H[i, i] != 0.0 else 0.0
            x = x + V[:j_used].T @ yk
        else:
            break  # no progress possible

    # Verify the recursively-updated residual against the explicitly
    # computed one: on a (near-)breakdown with an inconsistent system the
    # Givens recursion can report zero while the true residual is not —
    # never trust the flag without this check.
    final = float(np.linalg.norm(b - matvec(x)))
    if converged:
        z_final = M.apply(b - matvec(x))
        nprec += 1
        if float(np.linalg.norm(z_final)) > 10.0 * max(target, 1e-300):
            # near-lucky breakdown: the Givens recursion reported zero
            # but the true preconditioned residual disagrees
            converged = False
            breakdown = True
    return GMRESResult(
        x=x,
        converged=converged,
        iterations=iters,
        final_residual=final,
        residual_norms=res_hist,
        elapsed=time.perf_counter() - t_start,
        num_matvec=nmv,
        num_precond=nprec,
        breakdown=breakdown,
        failure_report=failure_report,
    )
