"""Benchmark-suite configuration: print recorded paper-style tables."""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

from _reporting import drain_tables  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = drain_tables()
    if not tables:
        return
    for name, text in tables:
        terminalreporter.write_sep("=", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_sep(
        "=", "tables also saved under benchmarks/results/"
    )
