"""PAR002 clean twin: integral flop charges (float casts allowed)."""


def account(sim, rank, n):
    sim.compute(rank, n // 2)
    sim.compute(rank, float(2 * n))
    sim.compute(rank, 2.0 * n)  # integer-valued literal: exact
