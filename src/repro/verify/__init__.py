"""Verification subsystem: race detection + structural invariant checks.

Two pillars (see DESIGN.md §7):

* :mod:`repro.verify.trace` / :mod:`repro.verify.race` — a
  happens-before **race detector** for the SPMD simulator.  Create the
  simulator with ``trace=True``, run an instrumented parallel driver,
  then :func:`find_races` flags any pair of conflicting cross-rank
  accesses not ordered by a barrier, collective, or send→recv edge.
* :mod:`repro.verify.invariants` — composable ``check_*`` functions for
  CSR well-formedness, LU factor validity (including the dual-dropping
  and 3rd-dropping fill bounds), reduced-matrix invariants, MIS
  independence, and partition/interface classification consistency.

``python -m repro check`` drives both pillars end to end.
"""

from .invariants import (
    InvariantViolation,
    check_csr,
    check_decomposition,
    check_independent_set,
    check_lu_factors,
    check_reduced_rows,
    require,
)
from .race import Race, find_races, racy_toy_driver
from .trace import READ, WRITE, Access, AccessTracer, happens_before

__all__ = [
    "READ",
    "WRITE",
    "Access",
    "AccessTracer",
    "happens_before",
    "Race",
    "find_races",
    "racy_toy_driver",
    "InvariantViolation",
    "check_csr",
    "check_decomposition",
    "check_independent_set",
    "check_lu_factors",
    "check_reduced_rows",
    "require",
]
