"""Interprocedural escape/aliasing analysis for transport portability.

The simulator passes message payloads **by reference**: ``send`` stores
the payload object in a mailbox and ``recv`` hands the very same object
to the receiver.  A real transport (ROADMAP item 1) serializes at post
time instead — so any driver that (a) mutates a payload after posting
it, (b) posts an unpicklable object, (c) communicates through hidden
module/closure state, or (d) lets array dtypes follow the platform
default, runs *correctly* under the simulator and *divergently* on real
workers.  This module finds that defect class statically, the same way
:mod:`~repro.lint.flow.protocol` certifies deadlock-freedom.

The four judgements (surfaced as rules TRN001–TRN004):

``aliased-payload`` (TRN001)
    A payload reaching a post by reference is mutated on some path
    *after* the post (CFG forward reachability; loop back-edges make a
    mutation earlier in the body count).  Aliases are tracked
    flow-insensitively through bare-name copies, and **escape
    summaries** carry the judgement across calls: a formal parameter
    that transitively flows into a post's payload slot marks every call
    site's actual argument as posted there.

``unsafe-payload`` (TRN002)
    The abstract type interpreter (:mod:`~repro.lint.flow.pytypes`)
    infers a payload type that ``pickle`` definitely rejects: locks,
    generators, lambdas, open files, live ``Simulator`` handles.

``hidden-state`` (TRN003)
    ``global``/``nonlocal`` state written, or a module-level mutable
    container mutated, inside rank-executed code — updates other
    processes would never see.

``dtype-drift`` (TRN004)
    Arrays built in rank-executed code with a platform-default integer
    dtype or an explicitly narrow one (see
    :func:`~repro.lint.flow.pytypes.dtype_violation`).

Soundness boundary (DESIGN.md §12): every report is a *definite*
hazard — unknown types, opaque calls and unresolvable dtypes pass
silently.  Sanctioned idioms the analysis deliberately accepts: fresh-
object payloads (``x.copy()``, ``np.array(x)``, arithmetic results),
per-rank accumulator arrays indexed by rank, shallow-copy payload
containers (their *elements* still alias — the ``copy_payloads=True``
runtime oracle covers that residue), and mutation of ``self`` state on
engine objects (each rank owns its engine).

**Rank-executed code** is the communication closure: every function
that transitively posts/drains/synchronises, plus everything those
functions transitively call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..astutil import attach_parents, call_name
from .callgraph import CallGraph, FunctionDecl, build_call_graph
from .cfg import build_cfg
from .dataflow import _enclosing_stmt, statements_after, stmt_mutations
from .protocol import DRIVERS, _find_driver, _is_transport_method, _Verifier
from .pytypes import UNKNOWN, dtype_violation, infer_expr, infer_types, unsafe_reason
from .summary import payload_exprs

__all__ = [
    "TransportProblem",
    "TransportReport",
    "analyze_transport",
    "verify_transport",
]

#: Calls that produce a fresh object — posting their result never
#: aliases caller state.  ``asarray`` is deliberately absent: it
#: returns its argument unchanged when the dtype already matches.
_FRESH_CALLS = frozenset(
    {"copy", "deepcopy", "list", "dict", "tuple", "set", "frozenset",
     "array", "tolist", "astype", "sorted", "zeros", "ones", "empty",
     "full", "arange", "concatenate", "repeat"}
)

#: Kinds whose augmented assignment rebinds instead of mutating.
_IMMUTABLE_KINDS = frozenset({"int", "float", "str", "bool", "bytes", "none", "tuple"})

_MAX_ESCAPE_DEPTH = 8


@dataclass(frozen=True)
class TransportProblem:
    """One statically-detected transport-portability hazard."""

    rule: str  # "TRN001" .. "TRN004"
    kind: str  # "aliased-payload" | "unsafe-payload" | "hidden-state" | "dtype-drift"
    message: str
    module: str
    line: int
    col: int
    function: str


@dataclass
class TransportReport:
    """Transport-readiness outcome for one driver's comm closure."""

    module: str
    qualname: str
    certified: bool
    problems: list[TransportProblem] = field(default_factory=list)
    #: Functions in the driver's communication closure (analysed).
    functions: int = 0
    #: Payload expressions checked across the closure.
    payloads: int = 0

    @property
    def key(self) -> str:
        return f"{self.module}::{self.qualname}"


# ----------------------------------------------------------------------
# per-function helpers
# ----------------------------------------------------------------------


def _own_walk(node: ast.AST):
    """``ast.walk`` that does not descend into nested function scopes."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _alias_classes(func: ast.AST) -> dict[str, set[str]]:
    """Union-find over bare-name copies (``a = b``) in ``func``'s scope."""
    parent: dict[str, str] = {}
    names: set[str] = set()

    def find(x: str) -> str:
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        names.update((a, b))
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for node in _own_walk(func):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Name)
            and all(isinstance(t, ast.Name) for t in node.targets)
        ):
            for t in node.targets:
                union(t.id, node.value.id)  # type: ignore[union-attr]
    classes: dict[str, set[str]] = {}
    for n in names:
        classes.setdefault(find(n), set()).add(n)
    return {n: classes[find(n)] for n in names}


def _is_fresh(expr: ast.expr) -> bool:
    """Does ``expr`` evaluate to an object no caller variable aliases?"""
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.BoolOp)):
        return True  # arithmetic/logic builds a new object
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(expr, ast.Call):
        return call_name(expr) in _FRESH_CALLS
    return False


def _payload_names(expr: ast.expr) -> list[str]:
    """Caller-visible names the posted object (or its slots) aliases.

    Bare names, subscript/attribute roots (an ndarray slice is a *view*
    of its base), and names one container level down.  Fresh
    expressions contribute nothing.
    """
    if _is_fresh(expr):
        return []
    out: list[str] = []

    def collect(e: ast.expr, depth: int) -> None:
        if isinstance(e, ast.Name):
            out.append(e.id)
        elif isinstance(e, (ast.Subscript, ast.Attribute)):
            base = e.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and base.id not in ("self", "cls"):
                out.append(base.id)
        elif isinstance(e, (ast.Tuple, ast.List, ast.Set)) and depth < 2:
            for elt in e.elts:
                collect(elt, depth + 1)
        elif isinstance(e, ast.Dict) and depth < 2:
            for v in e.values:
                if v is not None:
                    collect(v, depth + 1)
        elif isinstance(e, ast.Starred):
            collect(e.value, depth)

    collect(expr, 0)
    return out


def _scopes(func: ast.FunctionDef | ast.AsyncFunctionDef):
    """``func`` and every nested function definition, at any depth."""
    yield func
    for node in ast.walk(func):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not func
        ):
            yield node


def _target_names(t: ast.expr) -> list[str]:
    """Bare names *bound* by an assignment target.

    Recurses only through destructuring (tuple/list/starred) — a
    subscript or attribute target mutates an existing object rather
    than binding a name, so its inner names are excluded.
    """
    if isinstance(t, ast.Name):
        return [t.id]
    if isinstance(t, (ast.Tuple, ast.List)):
        return [n for e in t.elts for n in _target_names(e)]
    if isinstance(t, ast.Starred):
        return _target_names(t.value)
    return []


def _bound_names(scope: ast.AST) -> set[str]:
    """Bare names (re)bound in ``scope`` (excluding nested scopes)."""
    out: set[str] = set()
    for node in _own_walk(scope):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                out.update(_target_names(t))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, ast.Name):
                out.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            out.update(_target_names(node.target))
        elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            out.add(node.target.id)
    return out


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    a = func.args
    names = {p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)}
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    return names


# ----------------------------------------------------------------------
# the analyzer
# ----------------------------------------------------------------------


class _TransportAnalyzer:
    """Memoized per-function transport checks over one call graph."""

    def __init__(self, cg: CallGraph) -> None:
        self.cg = cg
        self.v = _Verifier(cg)
        self._checked: dict[str, list[TransportProblem]] = {}
        self._payloads: dict[str, int] = {}
        self._escaping: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------- closure

    def closure(self, seeds: list[FunctionDecl]) -> list[FunctionDecl]:
        """``seeds`` plus transitively-resolved project callees, in a
        stable order; transport methods (the simulator itself) excluded."""
        out: dict[str, FunctionDecl] = {}
        work = list(seeds)
        while work:
            decl = work.pop()
            if decl.key in out or _is_transport_method(decl):
                continue
            out[decl.key] = decl
            cls_name = decl.cls.name if decl.cls is not None else None
            for node in ast.walk(decl.node):
                if isinstance(node, ast.Call):
                    callee = self.cg.resolve_call(node, decl.module, cls_name)
                    if callee is not None and callee.key not in out:
                        work.append(callee)
        return sorted(out.values(), key=lambda d: (d.module, d.qualname))

    def comm_seeds(self) -> list[FunctionDecl]:
        """Every project function that transitively communicates."""
        return [
            d
            for d in self.cg.functions()
            if not _is_transport_method(d) and self.v.has_comm(d)
        ]

    # ------------------------------------------------ escape summaries

    def escaping_params(
        self, decl: FunctionDecl, _visiting: frozenset = frozenset()
    ) -> frozenset[str]:
        """Formals of ``decl`` that transitively reach a post's payload."""
        cached = self._escaping.get(decl.key)
        if cached is not None:
            return cached
        if decl.key in _visiting or len(_visiting) >= _MAX_ESCAPE_DEPTH:
            return frozenset()
        visiting = _visiting | {decl.key}
        params = _param_names(decl.node)
        aliases = _alias_classes(decl.node)
        escaped: set[str] = set()

        def mark(names: list[str]) -> None:
            for n in names:
                group = aliases.get(n, {n})
                escaped.update(group & params)

        cls_name = decl.cls.name if decl.cls is not None else None
        for node in _own_walk(decl.node):
            if not isinstance(node, ast.Call):
                continue
            for payload in payload_exprs(node):
                mark(_payload_names(payload))
            callee = self.cg.resolve_call(node, decl.module, cls_name)
            if callee is None or _is_transport_method(callee):
                continue
            callee_esc = self.escaping_params(callee, visiting)
            if callee_esc:
                for formal, actual in self._bind_args(node, callee):
                    if formal in callee_esc and isinstance(actual, ast.Name):
                        mark([actual.id])
        result = frozenset(escaped)
        if decl.key not in _visiting:
            self._escaping[decl.key] = result
        return result

    @staticmethod
    def _bind_args(call: ast.Call, callee: FunctionDecl):
        """``(formal name, actual expr)`` pairs for a resolved call."""
        a = callee.node.args
        params = [p.arg for p in (*a.posonlyargs, *a.args)]
        # bound method or constructor: the receiver fills ``self``/``cls``
        offset = 1 if params and params[0] in ("self", "cls") else 0
        pairs = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if offset + i < len(params):
                pairs.append((params[offset + i], arg))
        kw_ok = {p.arg for p in (*a.args, *a.kwonlyargs)}
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in kw_ok:
                pairs.append((kw.arg, kw.value))
        return pairs

    # ----------------------------------------------------- per function

    def check(self, decl: FunctionDecl) -> list[TransportProblem]:
        cached = self._checked.get(decl.key)
        if cached is not None:
            return cached
        if not hasattr(decl.node, "_lint_parent"):
            attach_parents(decl.node)
        problems: list[TransportProblem] = []
        self._payloads[decl.key] = 0
        env = infer_types(decl.node)
        self._check_aliasing(decl, env, problems)
        self._check_hidden_state(decl, problems)
        self._check_dtypes(decl, env, problems)
        self._checked[decl.key] = problems
        return problems

    def payload_count(self, decl: FunctionDecl) -> int:
        self.check(decl)
        return self._payloads.get(decl.key, 0)

    def _problem(
        self,
        problems: list[TransportProblem],
        decl: FunctionDecl,
        rule: str,
        kind: str,
        node: ast.AST,
        message: str,
    ) -> None:
        problems.append(
            TransportProblem(
                rule=rule,
                kind=kind,
                message=message,
                module=decl.module,
                line=getattr(node, "lineno", decl.node.lineno),
                col=getattr(node, "col_offset", 0),
                function=decl.qualname,
            )
        )

    # TRN001 + TRN002 share the post-site walk.
    def _check_aliasing(
        self,
        decl: FunctionDecl,
        env: dict,
        problems: list[TransportProblem],
    ) -> None:
        cfg = build_cfg(decl.node)
        aliases = _alias_classes(decl.node)
        cls_name = decl.cls.name if decl.cls is not None else None
        #: (call node, payload names, description of the post)
        posts: list[tuple[ast.Call, list[str], str]] = []
        for node in _own_walk(decl.node):
            if not isinstance(node, ast.Call):
                continue
            for payload in payload_exprs(node):
                self._payloads[decl.key] += 1
                names = _payload_names(payload)
                posts.append((node, names, f"{call_name(node)}()"))
                reason = unsafe_reason(infer_expr(payload, env))
                if reason:
                    self._problem(
                        problems, decl, "TRN002", "unsafe-payload", node,
                        f"payload posted by {call_name(node)}() is not "
                        f"pickle-safe: {reason}",
                    )
            callee = self.cg.resolve_call(node, decl.module, cls_name)
            if callee is None or _is_transport_method(callee):
                continue
            callee_esc = self.escaping_params(callee)
            if not callee_esc:
                continue
            for formal, actual in self._bind_args(node, callee):
                if formal not in callee_esc:
                    continue
                names = _payload_names(actual)
                if names:
                    posts.append(
                        (node, names,
                         f"{callee.qualname}() (escapes via parameter "
                         f"{formal!r})")
                    )
                reason = unsafe_reason(infer_expr(actual, env))
                if reason:
                    self._problem(
                        problems, decl, "TRN002", "unsafe-payload", node,
                        f"argument {formal!r} of {callee.qualname}() flows "
                        f"into a posted payload and is not pickle-safe: "
                        f"{reason}",
                    )
        for call, names, what in posts:
            if not names:
                continue
            alias_set: set[str] = set()
            for n in names:
                alias_set |= aliases.get(n, {n})
            stmt = _enclosing_stmt(call)
            if stmt is None:
                continue
            hit = None
            for later in statements_after(cfg, stmt):
                for name, how, line in stmt_mutations(later):
                    if name not in alias_set:
                        continue
                    if (
                        how == "augmented assignment"
                        and env.get(name, UNKNOWN).kind
                        not in ("ndarray", "list", "dict", "set")
                    ):
                        continue  # scalar += rebinds; the sent object is safe
                    hit = (name, how, line)
                    break
                if hit:
                    break
            if hit:
                name, how, line = hit
                self._problem(
                    problems, decl, "TRN001", "aliased-payload", call,
                    f"payload {name!r} posted via {what} is mutated after "
                    f"the post ({how} at line {line}): a serializing "
                    f"transport would deliver the pre-mutation value",
                )

    # TRN003
    def _check_hidden_state(
        self, decl: FunctionDecl, problems: list[TransportProblem]
    ) -> None:
        mutable_globals = self.cg.mutable_globals(decl.module)
        for scope in _scopes(decl.node):
            written = _bound_names(scope)
            local = written | _param_names(scope)
            declared: list[tuple[str, str, ast.stmt]] = []
            for node in _own_walk(scope):
                if isinstance(node, ast.Global):
                    declared.extend(("global", n, node) for n in node.names)
                elif isinstance(node, ast.Nonlocal):
                    declared.extend(("nonlocal", n, node) for n in node.names)
            for kw, name, node in declared:
                if name in written:
                    self._problem(
                        problems, decl, "TRN003", "hidden-state", node,
                        f"{kw} {name!r} is written inside rank-executed "
                        f"code ({scope.name}): the update is invisible to "
                        f"other processes under a real transport",
                    )
            for stmt in scope.body:
                for name, how, line in stmt_mutations(stmt):
                    if name in mutable_globals and name not in local:
                        self._problem(
                            problems, decl, "TRN003", "hidden-state", stmt,
                            f"module-global {name!r} mutated inside "
                            f"rank-executed code ({how} at line {line}): "
                            f"other processes never see the update",
                        )

    # TRN004
    def _check_dtypes(
        self, decl: FunctionDecl, env: dict, problems: list[TransportProblem]
    ) -> None:
        for node in ast.walk(decl.node):
            if not isinstance(node, ast.Call):
                continue
            msg = dtype_violation(node, env)
            if msg:
                self._problem(
                    problems, decl, "TRN004", "dtype-drift", node,
                    f"{msg}; rank-executed arrays must be explicitly "
                    f"float64/int64 for cross-transport bit-identity",
                )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def analyze_transport(modules: list) -> list[TransportProblem]:
    """Every TRN problem in the project-wide communication closure.

    ``modules`` are ``ModuleContext``-likes (``relpath`` + ``tree``).
    Used by the TRN rule family; :func:`verify_transport` presents the
    same analysis per driver.
    """
    cg = build_call_graph(modules)
    an = _TransportAnalyzer(cg)
    problems: list[TransportProblem] = []
    seen: set[tuple] = set()
    for decl in an.closure(an.comm_seeds()):
        for p in an.check(decl):
            key = (p.rule, p.module, p.line, p.message)
            if key not in seen:
                seen.add(key)
                problems.append(p)
    problems.sort(key=lambda p: (p.module, p.line, p.rule))
    return problems


def verify_transport(modules: list) -> list[TransportReport]:
    """Transport-readiness certification, one report per driver.

    Targets mirror :func:`~repro.lint.flow.protocol.verify_drivers`:
    the registered ``DRIVERS`` plus every call-graph root whose own
    body both posts and drains.  Each target's whole communication
    closure is analysed; the report aggregates the problems found
    anywhere in it.
    """
    cg = build_call_graph(modules)
    an = _TransportAnalyzer(cg)
    targets: dict[str, FunctionDecl] = {}
    for relpath, qualname in DRIVERS:
        decl = _find_driver(cg, relpath, qualname)
        if decl is not None:
            targets.setdefault(decl.key, decl)
    roots = cg.roots()
    for decl in cg.functions():
        if decl.key not in roots or _is_transport_method(decl):
            continue
        kinds = an.v.summary(decl).direct_kinds()
        if {"send", "recv"} <= kinds:
            targets.setdefault(decl.key, decl)
    reports: list[TransportReport] = []
    for decl in sorted(targets.values(), key=lambda d: (d.module, d.qualname)):
        closure = an.closure([decl])
        problems: list[TransportProblem] = []
        seen: set[tuple] = set()
        payloads = 0
        for member in closure:
            for p in an.check(member):
                key = (p.rule, p.module, p.line, p.message)
                if key not in seen:
                    seen.add(key)
                    problems.append(p)
            payloads += an.payload_count(member)
        problems.sort(key=lambda p: (p.module, p.line, p.rule))
        reports.append(
            TransportReport(
                module=decl.module,
                qualname=decl.qualname,
                certified=not problems,
                problems=problems,
                functions=len(closure),
                payloads=payloads,
            )
        )
    return reports
