"""The ``python -m repro lint`` command.

Exit status: 0 when no *new* (non-baselined) findings, 1 otherwise —
the CI contract.  ``--write-baseline`` freezes the current findings and
always exits 0.  ``--fix`` applies the mechanical rewrites (seed
injection, ``sorted(...)`` wrapping, typed-breakdown raises) in place;
with ``--diff`` it prints the would-be patch instead and exits 1 when
anything would change (the pre-commit check mode).
``--verify-protocol`` runs the symbolic SPMD protocol verifier and
prints a per-driver certification table; ``--verify-transport`` does
the same for the transport-portability analysis (escape/aliasing,
pickle-safety, hidden state, dtype discipline); ``--verify-costs``
certifies the statically derived flop/comm cost models against the
simulator's recorded charges on small seeded instances.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from .baseline import Baseline
from .fixes import fix_paths, render_diff
from .output import render_github, render_json, render_sarif, render_text
from .registry import all_rules
from .runner import (
    LintConfig,
    LintStats,
    collect_files,
    find_project_root,
    parse_module,
    run_lint,
)

__all__ = ["add_lint_parser", "cmd_lint"]

DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_parser(sub: "argparse._SubParsersAction") -> argparse.ArgumentParser:
    p = sub.add_parser(
        "lint",
        help="static SPMD/determinism/backend-parity analysis",
        description=(
            "AST-based static analysis: SPMD communication discipline, "
            "determinism hazards, kernel backend parity, breakdown typing, "
            "and symbolic protocol verification. "
            "Exit 1 on findings not frozen in the baseline."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="output format (default: text; github = workflow commands)",
    )
    p.add_argument(
        "-o", "--output", default=None, help="write the report to a file instead of stdout"
    )
    p.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <project root>/{DEFAULT_BASELINE} when present)",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="freeze the current findings into the baseline file and exit 0",
    )
    p.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files modified per `git status` (pre-commit mode)",
    )
    p.add_argument("--select", default="", help="comma-separated rule ids to run")
    p.add_argument("--ignore", default="", help="comma-separated rule ids to skip")
    p.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings frozen in the baseline (text format)",
    )
    p.add_argument(
        "--fix",
        action="store_true",
        help=(
            "apply mechanical fixes (DET001/DET002/DET004/BRK001/"
            "PERF002/PERF004) in place"
        ),
    )
    p.add_argument(
        "--diff",
        action="store_true",
        help="with --fix: print the patch instead of writing; exit 1 if non-empty",
    )
    p.add_argument(
        "--verify-protocol",
        action="store_true",
        help="symbolically verify the SPMD drivers deadlock-free (ranks 2-4)",
    )
    p.add_argument(
        "--verify-transport",
        action="store_true",
        help=(
            "certify the SPMD drivers transport-portable (escape/aliasing, "
            "pickle-safety, hidden state, dtype discipline)"
        ),
    )
    p.add_argument(
        "--verify-costs",
        action="store_true",
        help=(
            "certify the symbolic flop/comm cost models against the "
            "simulator's recorded charges on small seeded instances"
        ),
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule timing and cache statistics to stderr",
    )
    p.add_argument(
        "--stats-json",
        default=None,
        metavar="FILE",
        help="also write the timing/cache statistics as JSON to FILE",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental .repro-lint-cache/ reuse",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule registry and exit"
    )
    p.set_defaults(func=cmd_lint)
    return p


def _git_changed_files(root: Path) -> list[Path] | None:
    """Modified/added/untracked .py files per git, or None if git fails."""
    try:
        proc = subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    out: list[Path] = []
    for line in proc.stdout.splitlines():
        if len(line) < 4 or line[0] == "D" or line[1] == "D":
            continue
        name = line[3:].split(" -> ")[-1].strip().strip('"')
        if name.endswith(".py"):
            p = root / name
            if p.exists():
                out.append(p)
    return out


def _restrict_to_changed(paths: list[Path], root: Path) -> list[Path]:
    changed = _git_changed_files(root)
    if changed is None:
        return paths  # not a git checkout: lint everything requested
    requested = [p.resolve() for p in paths]
    picked = []
    for c in changed:
        rc = c.resolve()
        for req in requested:
            if rc == req or req in rc.parents:
                picked.append(c)
                break
    return picked


def _cmd_fix(args: argparse.Namespace, paths: list[Path], root: Path) -> int:
    select = tuple(s for s in args.select.split(",") if s)
    files = [
        f
        for f in collect_files(paths)
        if "/.repro-lint-cache/" not in f.as_posix()
    ]
    config = LintConfig(project_root=root)
    explicit = {p.resolve() for p in paths if p.is_file()}
    files = [
        f
        for f in files
        if f in explicit
        or not any(_relpath(f, root).startswith(p) for p in config.exclude)
    ]
    outcome = fix_paths(files, root, select=select)
    for rel in outcome.refused:
        print(
            f"repro lint --fix: refused {rel} (AST verification failed)",
            file=sys.stderr,
        )
    if args.diff:
        diff = render_diff(outcome)
        if diff:
            print(diff, end="")
        print(
            f"{len(outcome.fixes)} fix(es) in {len(outcome.changed)} file(s) "
            + ("(not applied; --diff)" if outcome.changed else ""),
            file=sys.stderr,
        )
        return 1 if outcome.changed else 0
    for rel, (_, new_source) in outcome.changed.items():
        (root / rel).write_text(new_source, encoding="utf-8")
    for fix in outcome.fixes:
        print(f"{fix.path}:{fix.line}: {fix.rule}: {fix.description}")
    print(f"applied {len(outcome.fixes)} fix(es) in {len(outcome.changed)} file(s)")
    return 0


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _cmd_verify_protocol(paths: list[Path], root: Path) -> int:
    from .flow import verify_drivers

    config = LintConfig(project_root=root)
    explicit = {p.resolve() for p in paths if p.is_file()}
    modules = [
        m
        for f in collect_files(paths)
        if (m := parse_module(f, root)) is not None
        and (
            f in explicit
            or not any(m.relpath.startswith(p) for p in config.exclude)
        )
    ]
    reports = verify_drivers(modules)
    if not reports:
        print("no drivers found to verify")
        return 1
    all_ok = True
    for r in reports:
        status = "CERTIFIED" if r.certified else "FAILED"
        ranks = ",".join(str(x) for x in r.ranks)
        print(
            f"{status:<9} {r.module}::{r.qualname}  ranks={ranks} "
            f"paths={r.paths} posts={r.posts} drains={r.drains} "
            f"collectives={r.collectives}"
        )
        for p in r.problems:
            print(f"  [{p.kind}] {p.module}:{p.line} in {p.function}: {p.message}")
            all_ok = False
        all_ok = all_ok and r.certified
    print(
        f"{sum(1 for r in reports if r.certified)}/{len(reports)} driver(s) certified "
        "deadlock-free"
    )
    return 0 if all_ok else 1


def _cmd_verify_transport(paths: list[Path], root: Path) -> int:
    from .flow import verify_transport

    config = LintConfig(project_root=root)
    explicit = {p.resolve() for p in paths if p.is_file()}
    modules = [
        m
        for f in collect_files(paths)
        if (m := parse_module(f, root)) is not None
        and (
            f in explicit
            or not any(m.relpath.startswith(p) for p in config.exclude)
        )
    ]
    reports = verify_transport(modules)
    if not reports:
        print("no drivers found to verify")
        return 1
    all_ok = True
    for r in reports:
        status = "CERTIFIED" if r.certified else "FAILED"
        print(
            f"{status:<9} {r.module}::{r.qualname}  "
            f"functions={r.functions} payloads={r.payloads}"
        )
        for p in r.problems:
            print(
                f"  {p.rule} [{p.kind}] {p.module}:{p.line} "
                f"in {p.function}: {p.message}"
            )
            all_ok = False
        all_ok = all_ok and r.certified
    print(
        f"{sum(1 for r in reports if r.certified)}/{len(reports)} driver(s) certified "
        "transport-portable"
    )
    return 0 if all_ok else 1


def _cmd_verify_costs(paths: list[Path], root: Path) -> int:
    from .costverify import verify_costs

    config = LintConfig(project_root=root)
    explicit = {p.resolve() for p in paths if p.is_file()}
    modules = [
        m
        for f in collect_files(paths)
        if (m := parse_module(f, root)) is not None
        and (
            f in explicit
            or not any(m.relpath.startswith(p) for p in config.exclude)
        )
    ]
    reports = verify_costs(modules, root)
    if not reports:
        print("no cost roots found to verify")
        return 1
    all_ok = True
    for r in reports:
        status = "CERTIFIED" if r.certified else "DRIFT"
        model = ", ".join(
            f"{name}={text}" for name, text in r.expressions.items()
        )
        print(
            f"{status:<9} {r.module}::{r.qualname}  "
            f"runs={r.runs} sites={r.sites} checks={len(r.checks)}"
        )
        if model:
            print(f"  model: {model}")
        for p in r.problems:
            print(f"  problem: {p}")
        for c in r.checks:
            if c.status != "ok":
                print(
                    f"  drift: {c.name}: expected {c.expected}, "
                    f"got {c.actual}"
                    + (f" ({c.detail})" if c.detail else "")
                )
        all_ok = all_ok and r.certified
    print(
        f"{sum(1 for r in reports if r.certified)}/{len(reports)} cost model(s) "
        "certified against runtime charges"
    )
    return 0 if all_ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    config = LintConfig(
        select=tuple(s for s in args.select.split(",") if s),
        ignore=tuple(s for s in args.ignore.split(",") if s),
        use_cache=not args.no_cache,
    )
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.severity:<7}  {rule.name}: {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {missing[0]}", file=sys.stderr)
        return 2
    root = find_project_root(paths[0])
    config.project_root = root

    if args.verify_protocol:
        return _cmd_verify_protocol(paths, root)
    if args.verify_transport:
        return _cmd_verify_transport(paths, root)
    if args.verify_costs:
        return _cmd_verify_costs(paths, root)
    if args.fix:
        return _cmd_fix(args, paths, root)

    if args.changed_only:
        paths = _restrict_to_changed(paths, root)
        if not paths:
            print("0 finding(s)")
            return 0

    stats = LintStats() if (args.stats or args.stats_json) else None
    findings = run_lint(paths, config, stats)
    if stats is not None:
        if args.stats:
            print(stats.render(), file=sys.stderr)
        if args.stats_json:
            Path(args.stats_json).write_text(stats.to_json() + "\n", encoding="utf-8")

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"froze {len(findings)} finding(s) into {baseline_path}")
        return 0

    baseline = Baseline()
    if not args.no_baseline and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
    new, frozen = baseline.split(findings)

    if args.format == "json":
        report = render_json(new, frozen)
    elif args.format == "sarif":
        report = render_sarif(new, frozen, all_rules())
    elif args.format == "github":
        report = render_github(new, frozen)
    else:
        report = render_text(new, frozen, verbose_frozen=args.show_baselined)

    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(f"wrote {args.format} report to {args.output} ({len(new)} new finding(s))")
    else:
        print(report)
    return 1 if new else 0
