"""Distributed sparse matrix-vector multiplication on the simulator.

The third computational kernel of a preconditioned iterative method
(paper §1).  Each rank owns its rows; before computing, boundary values
of ``x`` are exchanged along the halo plan of the decomposition — the
communication volume is proportional to the number of interface nodes,
which is why partition quality shows up directly in matvec speedup
(Table 2's last row achieves near-linear speedup on the paper's
partitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..decomp import DomainDecomposition
from ..faults import FaultJournal, FaultPlan
from ..machine import (
    CRAY_T3D,
    CommStats,
    MachineModel,
    Transport,
    is_transport,
    resolve_entry_transport,
    transport_name,
)
from ..sparse import CSRMatrix

if TYPE_CHECKING:
    from ..machine.supervision import SupervisionPolicy
    from ..verify.trace import AccessTracer

__all__ = ["MatvecResult", "parallel_matvec"]


@dataclass
class MatvecResult:
    """Result of one distributed matvec."""

    y: np.ndarray
    modeled_time: float | None
    comm: CommStats | None
    flops: float
    trace: AccessTracer | None = None
    fault_journal: FaultJournal | None = None
    recoveries: int = 0
    transport: str = "none"


def parallel_matvec(
    A: CSRMatrix,
    decomp: DomainDecomposition,
    x: np.ndarray,
    *,
    model: MachineModel = CRAY_T3D,
    transport: str | Transport | None = "simulator",
    simulate: bool | None = None,
    halo_plan: dict[tuple[int, int], np.ndarray] | None = None,
    trace: bool = False,
    backend: str | None = None,
    faults: FaultPlan | None = None,
    copy_payloads: bool = False,
    supervision: "SupervisionPolicy | None" = None,
) -> MatvecResult:
    """Compute ``y = A @ x`` with halo exchange + local compute.

    ``halo_plan`` may be precomputed once (e.g. per GMRES solve) with
    :meth:`DomainDecomposition.halo_plan` and reused across calls.

    With ``backend="vectorized"`` the local products run through
    :func:`repro.kernels.csr.csr_matvec` while the halo messages,
    per-rank charges and (when tracing) access declarations follow the
    reference loop — ``modeled_time``, ``comm`` and race results are
    identical, ``y`` agrees to roundoff.

    ``transport`` selects the execution backend (``"simulator"`` |
    ``"threads"`` | ``"processes"`` | ``"none"`` | a ready
    :class:`~repro.machine.Transport`); the deprecated ``simulate=``
    boolean maps ``True`` to ``"simulator"`` and ``False`` to
    ``"none"`` under a :class:`DeprecationWarning`.

    ``faults`` arms a :class:`~repro.faults.FaultPlan`; the simulator
    honours every fault kind (injected message faults surface as
    :class:`~repro.faults.MessageLost` /
    :class:`~repro.faults.RankFailure`), while the real transports
    honour the portable subset — crash / stall rank faults and corrupt
    message faults (as corrupt-result) — and recover by supervised
    region retry (DESIGN.md §14).  The journal is returned on the
    result.  ``supervision`` tunes the worker supervisor
    (:class:`~repro.machine.SupervisionPolicy`; real transports only).

    ``copy_payloads=True`` pickle round-trips every simulated message at
    post time (the serializing-transport debug oracle; requires
    ``transport="simulator"``) — results are bit-identical.
    """
    x = np.asarray(x, dtype=np.float64)
    n = A.shape[0]
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    sim = resolve_entry_transport(
        "parallel_matvec",
        transport,
        simulate,
        decomp.nranks,
        model=model,
        trace=trace,
        faults=faults,
        copy_payloads=copy_payloads,
        supervision=supervision,
    )
    owned = not is_transport(transport)
    try:
        res = _matvec_on(A, decomp, x, sim, halo_plan, backend)
        res.recoveries = getattr(sim, "region_recoveries", 0)
        res.transport = transport_name(sim)
        return res
    finally:
        if owned and sim is not None:
            sim.close()


def _matvec_on(
    A: CSRMatrix,
    decomp: DomainDecomposition,
    x: np.ndarray,
    sim,
    halo_plan: dict[tuple[int, int], np.ndarray] | None,
    backend: str | None,
) -> MatvecResult:
    """Run one matvec against a resolved transport (or ``None``)."""
    n = A.shape[0]
    tr = getattr(sim, "tracer", None)
    if halo_plan is None:
        halo_plan = decomp.halo_plan()

    if tr is not None:
        # each rank publishes its owned x entries before the exchange
        for r in range(decomp.nranks):
            for j in decomp.owned_rows(r):
                tr.write(r, "x", int(j))
    if sim is not None:
        for (src, dst), nodes in sorted(halo_plan.items()):
            sim.send(src, dst, None, float(nodes.size), tag="halo")
        for (src, dst), _nodes in sorted(halo_plan.items()):
            sim.recv(dst, src, tag="halo")

    from ..kernels.backend import VECTORIZED, resolve_backend

    row_nnz = np.diff(A.indptr)
    flops_total = 0.0
    if resolve_backend(backend) == VECTORIZED:
        # vectorized numerics are computed globally by the coordinator on
        # every transport (trivially transport-invariant — see DESIGN.md
        # §13 on the soundness boundary); per-rank charges/declarations
        # mirror the reference loop, and the costs are integer-valued so
        # the batched sums match bit for bit
        y = A.matvec(x, backend=VECTORIZED)
        for r in range(decomp.nranks):
            rows = decomp.owned_rows(r)
            if tr is not None:
                for i in rows:
                    cols, _ = A.row(int(i))
                    if cols.size:
                        tr.read_many(r, "x", cols)
                    tr.write(r, "y", int(i))
            fl = float((2.0 * row_nnz[rows]).sum())
            if sim is not None:
                sim.compute(r, fl)
            flops_total += fl
    else:
        # reference backend: one parallel region, one pure thunk per rank
        # (read-shared x, write-own rows); the coordinator merges partial
        # results and replays declarations/charges in rank order — the
        # historical inline order, bit-identical on every transport
        y = np.zeros(n)

        def local_rows(r: int) -> tuple[np.ndarray, np.ndarray, float]:
            rows = decomp.owned_rows(r)
            part = np.zeros(rows.size)
            fl = 0.0
            for j, i in enumerate(rows):
                cols, vals = A.row(int(i))
                if cols.size:
                    part[j] = np.dot(vals, x[cols])
                fl += 2.0 * row_nnz[i]
            return rows, part, fl

        if sim is not None:
            results = sim.pardo(
                [(lambda r=r: local_rows(r)) for r in range(decomp.nranks)]
            )
        else:
            results = [local_rows(r) for r in range(decomp.nranks)]
        for r in range(decomp.nranks):
            rows, part, fl = results[r]
            if tr is not None:
                for i in rows:
                    cols, _ = A.row(int(i))
                    if cols.size:
                        tr.read_many(r, "x", cols)
                    tr.write(r, "y", int(i))
            y[rows] = part
            if sim is not None:
                sim.compute(r, fl)
            flops_total += fl
    if sim is not None:
        sim.barrier()
    return MatvecResult(
        y=y,
        modeled_time=sim.elapsed() if sim is not None else None,
        comm=sim.stats() if sim is not None else None,
        flops=flops_total,
        trace=tr,
        fault_journal=getattr(sim, "fault_journal", None),
    )
