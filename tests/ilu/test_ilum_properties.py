"""Property-based tests for ILUM."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilu import ilum
from repro.matrices import random_diag_dominant


@settings(max_examples=12, deadline=None)
@given(n=st.integers(8, 40), seed=st.integers(0, 200))
def test_ilum_no_dropping_exact(n, seed):
    A = random_diag_dominant(n, 4, seed=seed)
    f = ilum(A, n, 0.0, seed=seed)
    R = f.residual_matrix(A)
    assert R.frobenius_norm() < 1e-8 * max(A.frobenius_norm(), 1.0)


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(8, 40),
    m=st.integers(1, 6),
    seed=st.integers(0, 200),
)
def test_ilum_structural_invariants(n, m, seed):
    A = random_diag_dominant(n, 4, seed=seed)
    f = ilum(A, m, 1e-3, seed=seed)
    assert sorted(f.perm.tolist()) == list(range(n))
    f.levels.validate(n)
    assert f.L.row_nnz().max() <= max(m, 1) or f.L.nnz == 0
    for i in range(n):
        uc, uv = f.U.row(i)
        assert uc[0] == i and uv[0] != 0.0
        lc, _ = f.L.row(i)
        assert lc.size == 0 or lc.max() < i


@settings(max_examples=10, deadline=None)
@given(n=st.integers(10, 35), seed=st.integers(0, 100))
def test_ilum_levels_are_independent_sets(n, seed):
    """Rows of the same ILUM level never reference each other in U."""
    A = random_diag_dominant(n, 4, seed=seed)
    f = ilum(A, 5, 1e-4, seed=seed)
    for lvl in f.levels.interface_levels:
        members = set(lvl.tolist())
        for p in lvl:
            cols, _ = f.U.row(int(p))
            assert not (set(cols[1:].tolist()) & members)
