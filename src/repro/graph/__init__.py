"""Graph substrate: adjacency structure, colouring and maximal
independent sets (Luby's algorithm with the paper's two-step variant)."""

from .coloring import color_classes, greedy_coloring, is_proper_coloring
from .distributed_mis import distributed_two_step_luby_mis, mis_comm_setup
from .mis import (
    greedy_mis,
    is_independent_set,
    is_maximal_independent_set,
    luby_mis,
    two_step_luby_mis,
)
from .structure import Graph, adjacency_from_matrix, symmetrize_structure
from .rcm import bandwidth, rcm_ordering, rcm_ordering_matrix
from .traversal import bfs_levels, connected_components, pseudo_peripheral_vertex

__all__ = [
    "Graph",
    "adjacency_from_matrix",
    "symmetrize_structure",
    "distributed_two_step_luby_mis",
    "mis_comm_setup",
    "bfs_levels",
    "connected_components",
    "pseudo_peripheral_vertex",
    "rcm_ordering",
    "rcm_ordering_matrix",
    "bandwidth",
    "greedy_coloring",
    "color_classes",
    "is_proper_coloring",
    "luby_mis",
    "two_step_luby_mis",
    "greedy_mis",
    "is_independent_set",
    "is_maximal_independent_set",
]
