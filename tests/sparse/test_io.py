"""Unit tests for MatrixMarket I/O."""

import numpy as np
import pytest

from repro.matrices import random_diag_dominant
from repro.sparse import CSRMatrix, read_matrix_market, write_matrix_market


class TestRoundtrip:
    def test_roundtrip_exact(self, tmp_path, small_poisson):
        p = tmp_path / "a.mtx"
        write_matrix_market(small_poisson, p)
        B = read_matrix_market(p)
        assert small_poisson.allclose(B, rtol=0, atol=0)

    def test_roundtrip_random(self, tmp_path):
        A = random_diag_dominant(25, 4, seed=5)
        p = tmp_path / "r.mtx"
        write_matrix_market(A, p)
        assert A.allclose(read_matrix_market(p), rtol=0, atol=0)

    def test_empty_matrix(self, tmp_path):
        p = tmp_path / "z.mtx"
        write_matrix_market(CSRMatrix.zeros(3), p)
        B = read_matrix_market(p)
        assert B.shape == (3, 3) and B.nnz == 0


class TestReadVariants:
    def test_symmetric_storage_expanded(self, tmp_path):
        p = tmp_path / "s.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 2\n1 1 4.0\n2 1 -1.0\n"
        )
        A = read_matrix_market(p)
        assert A.get(0, 1) == -1.0 and A.get(1, 0) == -1.0

    def test_pattern_reads_ones(self, tmp_path):
        p = tmp_path / "p.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n"
        )
        A = read_matrix_market(p)
        assert A.get(0, 1) == 1.0

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "c.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n1 1 1\n1 1 3.5\n"
        )
        assert read_matrix_market(p).get(0, 0) == 3.5


class TestReadErrors:
    def test_not_matrixmarket(self, tmp_path):
        p = tmp_path / "bad.mtx"
        p.write_text("hello\n")
        with pytest.raises(ValueError):
            read_matrix_market(p)

    def test_unsupported_format(self, tmp_path):
        p = tmp_path / "arr.mtx"
        p.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError):
            read_matrix_market(p)

    def test_unsupported_field(self, tmp_path):
        p = tmp_path / "cx.mtx"
        p.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")
        with pytest.raises(ValueError):
            read_matrix_market(p)

    def test_truncated(self, tmp_path):
        p = tmp_path / "t.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")
        with pytest.raises(ValueError):
            read_matrix_market(p)
