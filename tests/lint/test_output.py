"""Renderer contracts, including structural SARIF 2.1.0 validation.

``jsonschema`` is not a dependency, so the SARIF check is a hand-rolled
structural validation of the 2.1.0 shapes code-scanning UIs require:
top-level ``version``/``$schema``/``runs``, a ``tool.driver`` with rule
metadata, and results with physical locations, rule indexes in range,
and suppressions on baselined findings.
"""

import json

from repro.lint import Finding, Severity
from repro.lint.output import SARIF_SCHEMA_URI, render_json, render_sarif, render_text
from repro.lint.registry import all_rules

NEW = [
    Finding(
        rule="DET003",
        severity=Severity.WARNING,
        path="src/repro/x.py",
        line=3,
        col=8,
        message="float equality against 0.5",
        snippet="if x == 0.5:",
    ),
    Finding(
        rule="SPMD001",
        severity=Severity.ERROR,
        path="src/repro/y.py",
        line=7,
        col=0,
        message="send with tag 'halo' has no matching recv",
        snippet="sim.send(1, 0, None, 1.0, tag='halo')",
    ),
]
FROZEN = [
    Finding(
        rule="BRK001",
        severity=Severity.ERROR,
        path="src/repro/z.py",
        line=11,
        col=4,
        message="numerical breakdown raised as bare ValueError",
        snippet='raise ValueError("singular")',
    )
]


class TestText:
    def test_counts_line(self):
        out = render_text(NEW, FROZEN)
        assert out.endswith("2 finding(s), 1 baselined")
        assert "src/repro/x.py:3:9" in out

    def test_verbose_frozen(self):
        out = render_text(NEW, FROZEN, verbose_frozen=True)
        assert "[baseline]" in out
        assert "src/repro/z.py" in out

    def test_clean_run(self):
        assert render_text([], []) == "0 finding(s)"


class TestJson:
    def test_document_shape(self):
        doc = json.loads(render_json(NEW, FROZEN))
        assert doc["tool"] == "repro-lint"
        assert doc["new"] == 2 and doc["baselined"] == 1
        assert len(doc["findings"]) == 3
        by_rule = {f["rule"]: f for f in doc["findings"]}
        assert by_rule["BRK001"]["baselined"] is True
        assert by_rule["DET003"]["baselined"] is False
        assert by_rule["DET003"]["column"] == 9  # 1-indexed
        assert all(len(f["fingerprint"]) == 20 for f in doc["findings"])


class TestSarifStructure:
    def _doc(self):
        return json.loads(render_sarif(NEW, FROZEN, all_rules()))

    def test_top_level(self):
        doc = self._doc()
        assert doc["version"] == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert "sarif-schema-2.1.0" in doc["$schema"]
        assert isinstance(doc["runs"], list) and len(doc["runs"]) == 1

    def test_driver_and_rule_metadata(self):
        driver = self._doc()["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["version"]
        ids = [r["id"] for r in driver["rules"]]
        assert ids == sorted(ids) and len(ids) == len(set(ids))
        for r in driver["rules"]:
            assert r["shortDescription"]["text"]
            assert r["defaultConfiguration"]["level"] in ("error", "warning", "note")

    def test_results(self):
        run = self._doc()["runs"][0]
        nrules = len(run["tool"]["driver"]["rules"])
        assert len(run["results"]) == 3
        for res in run["results"]:
            assert res["level"] in ("error", "warning", "note")
            assert res["message"]["text"]
            assert 0 <= res["ruleIndex"] < nrules
            assert res["ruleId"] == run["tool"]["driver"]["rules"][res["ruleIndex"]]["id"]
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uriBaseId"] == "PROJECTROOT"
            assert not loc["artifactLocation"]["uri"].startswith("/")
            assert loc["region"]["startLine"] >= 1
            assert loc["region"]["startColumn"] >= 1
            assert res["partialFingerprints"]["reproLint/v1"]

    def test_baselined_results_are_suppressed(self):
        results = self._doc()["runs"][0]["results"]
        suppressed = [r for r in results if "suppressions" in r]
        assert len(suppressed) == 1
        assert suppressed[0]["ruleId"] == "BRK001"
        assert suppressed[0]["suppressions"][0]["kind"] == "external"
        open_results = [r for r in results if "suppressions" not in r]
        assert {r["ruleId"] for r in open_results} == {"DET003", "SPMD001"}
