"""Parallel forward/backward substitution (paper §5).

The application of the preconditioner — solving ``(I+L) y = b`` then
``U x = y`` — reuses the exact structure the parallel factorization
imposed (Figure 3):

* **forward**: each rank solves its interior block concurrently (the
  interior L blocks are mutually independent), then the interface
  levels are swept in factorization order; after each level the freshly
  computed ``x`` values are sent to the ranks whose later rows reference
  them, and a barrier separates the levels (the ``q`` implicit
  synchronisation points of the paper);
* **backward**: the same in reverse — interface levels last-to-first,
  then the interior blocks.

The communicated volume is proportional to the number of interface
nodes (like a matvec); what distinguishes it from the matvec is the
``q`` level synchronisations, which is why ILUT* (smaller ``q``)
produces cheaper triangular solves — the effect Table 2 and Figure 6
measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..faults import FaultJournal, FaultPlan
from ..machine import (
    CRAY_T3D,
    CommStats,
    MachineModel,
    Transport,
    is_transport,
    resolve_entry_transport,
    transport_name,
)
from .factors import ILUFactors

if TYPE_CHECKING:
    from ..machine.supervision import SupervisionPolicy
    from ..verify.trace import AccessTracer

__all__ = ["TriangularSolveResult", "parallel_triangular_solve"]


@dataclass
class TriangularSolveResult:
    """Solution of one forward+backward substitution on the simulator."""

    x: np.ndarray
    modeled_time: float | None
    comm: CommStats | None
    flops: float
    trace: AccessTracer | None = None
    fault_journal: FaultJournal | None = None
    recoveries: int = 0
    transport: str = "none"


def _cross_rank_receivers(
    M_csc_like: dict[int, set[int]],
    owner: np.ndarray,
    positions: np.ndarray,
) -> dict[tuple[int, int], int]:
    """Words each (src, dst) rank pair exchanges for the given level.

    ``M_csc_like[p]`` is the set of ranks owning rows that reference
    column position ``p``.
    """
    words: dict[tuple[int, int], int] = {}
    for p in positions:
        src = int(owner[p])
        for dst in M_csc_like.get(int(p), ()):  # ranks needing x[p]
            if dst != src:
                key = (src, dst)
                words[key] = words.get(key, 0) + 1
    return words


def _column_consumers(M, owner: np.ndarray) -> dict[int, set[int]]:
    """For each column position, the ranks owning rows that reference it."""
    consumers: dict[int, set[int]] = {}
    nrows = M.shape[0]
    for i in range(nrows):
        cols, _ = M.row(i)
        r = int(owner[i])
        for c in cols:
            consumers.setdefault(int(c), set()).add(r)
    return consumers


def _solve_vectorized(factors, b, sim, tr):
    """Vectorized backend of :func:`parallel_triangular_solve`.

    Numerics run through the cached batched level schedules; the
    simulator is driven with the same per-rank charges, messages and
    barriers as the reference loop (compute costs are integer-valued, so
    batched summation reproduces ``modeled_time`` bit for bit), and when
    a tracer is active the shared-``x`` accesses are declared row by row
    exactly as the reference does — race detection sees the same
    program.
    """
    from ..kernels.triangular import cached_schedules

    levels = factors.levels
    owner = levels.owner
    L, U = factors.L, factors.U
    l_nnz = np.diff(L.indptr)
    u_nnz = np.diff(U.indptr)
    nranks = sim.nranks if sim is not None else (int(owner.max()) + 1 if owner.size else 1)
    # Per-rank accumulator instead of a shared nonlocal: every charge is
    # integer-valued, so the final sum is exact and order-independent.
    flops_rank = np.zeros(nranks, dtype=np.float64)

    def charge(rank: int, fl: float) -> None:
        flops_rank[rank] += fl
        if sim is not None:
            sim.compute(rank, fl)

    fwd, bwd = cached_schedules(factors)
    bp = b[factors.perm]
    y = fwd.solve(bp)

    # ------------------------------------------------------- forward
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        rank = int(owner[s])
        if tr is not None:
            for i in range(s, e):
                cols, _ = L.row(i)
                if cols.size:
                    tr.read_many(rank, "x", cols)
                tr.write(rank, "x", i)
        charge(rank, int(2 * l_nnz[s:e].sum()))
    if sim is not None:
        sim.barrier()

    l_consumers = _column_consumers(L, owner) if sim is not None else {}
    for lvl_idx, positions in enumerate(levels.interface_levels):
        if tr is not None:
            for p in positions:
                cols, _ = L.row(int(p))
                if cols.size:
                    tr.read_many(int(owner[p]), "x", cols)
                tr.write(int(owner[p]), "x", int(p))
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size:
            per = np.bincount(owner[pos], weights=2.0 * l_nnz[pos])
            for rank in np.unique(owner[pos]):
                charge(int(rank), float(per[rank]))
        if sim is not None:
            words = _cross_rank_receivers(l_consumers, owner, positions)
            for (src, dst), w in sorted(words.items()):
                sim.send(src, dst, None, float(w), tag=("fwd", lvl_idx))
            for (src, dst), _w in sorted(words.items()):
                sim.recv(dst, src, tag=("fwd", lvl_idx))
            sim.barrier()

    # ------------------------------------------------------- backward
    u_consumers = _column_consumers(U, owner) if sim is not None else {}
    for lvl_idx in range(len(levels.interface_levels) - 1, -1, -1):
        positions = levels.interface_levels[lvl_idx]
        if tr is not None:
            for p in positions[::-1]:
                cols, _ = U.row(int(p))
                if cols.size > 1:
                    tr.read_many(int(owner[p]), "x", cols[1:])
                tr.write(int(owner[p]), "x", int(p))
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size:
            per = np.bincount(owner[pos], weights=2.0 * (u_nnz[pos] - 1) + 1.0)
            for rank in np.unique(owner[pos]):
                charge(int(rank), float(per[rank]))
        if sim is not None:
            words = _cross_rank_receivers(u_consumers, owner, positions)
            for (src, dst), w in sorted(words.items()):
                sim.send(src, dst, None, float(w), tag=("bwd", lvl_idx))
            for (src, dst), _w in sorted(words.items()):
                sim.recv(dst, src, tag=("bwd", lvl_idx))
            sim.barrier()
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        rank = int(owner[s])
        if tr is not None:
            for i in range(e - 1, s - 1, -1):
                cols, _ = U.row(i)
                if cols.size > 1:
                    tr.read_many(rank, "x", cols[1:])
                tr.write(rank, "x", i)
        charge(rank, float((2.0 * (u_nnz[s:e] - 1) + 1.0).sum()))
    if sim is not None:
        sim.barrier()

    x = bwd.solve(y)
    out = np.empty_like(x)
    out[factors.perm] = x
    return TriangularSolveResult(
        x=out,
        modeled_time=sim.elapsed() if sim is not None else None,
        comm=sim.stats() if sim is not None else None,
        flops=float(flops_rank.sum()),
        trace=tr,
        fault_journal=getattr(sim, "fault_journal", None),
    )


def parallel_triangular_solve(
    factors: ILUFactors,
    b: np.ndarray,
    *,
    nranks: int | None = None,
    model: MachineModel = CRAY_T3D,
    transport: str | Transport | None = "simulator",
    simulate: bool | None = None,
    trace: bool = False,
    backend: str | None = None,
    faults: FaultPlan | None = None,
    copy_payloads: bool = False,
    supervision: "SupervisionPolicy | None" = None,
) -> TriangularSolveResult:
    """Apply the preconditioner ``M^{-1} b`` with the two-phase schedule.

    ``b`` and the returned ``x`` are in *original* ordering.  The factors
    must carry a :class:`~repro.ilu.factors.LevelStructure` (i.e. come
    from a parallel factorization).

    With ``backend="vectorized"`` the substitution itself runs through
    the cached batched level schedules
    (:func:`repro.kernels.triangular.cached_schedules`) while the cost
    accounting, messages and (when tracing) shared-access declarations
    follow the reference schedule row for row: ``modeled_time``, ``comm``
    and race-detection results are identical to the reference backend,
    and ``x`` agrees to roundoff.

    ``transport`` selects the execution backend (``"simulator"`` |
    ``"threads"`` | ``"processes"`` | ``"none"`` | a ready
    :class:`~repro.machine.Transport`); the deprecated ``simulate=``
    boolean maps ``True`` to ``"simulator"`` and ``False`` to
    ``"none"`` under a :class:`DeprecationWarning`.

    ``faults`` arms a :class:`~repro.faults.FaultPlan`: on the simulator
    message-level faults surface as :class:`~repro.faults.MessageLost` /
    :class:`~repro.faults.RankFailure`; on the real transports the
    portable subset (crash / stall / corrupt-result) is injected at the
    worker level and recovered by supervised region retry — tune the
    supervisor with ``supervision=`` (a
    :class:`~repro.machine.SupervisionPolicy`; real transports only).
    The journal and the retry count are returned on the result.

    ``copy_payloads=True`` pickle round-trips every simulated message at
    post time (the serializing-transport debug oracle; requires
    ``transport="simulator"``) — results are bit-identical.
    """
    if factors.levels is None:
        raise ValueError(
            "factors carry no level structure; use a parallel factorization "
            "or the sequential solves in repro.sparse.ops"
        )
    levels = factors.levels
    owner = levels.owner
    n = factors.n
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, expected ({n},)")
    if nranks is None:
        nranks = int(owner.max()) + 1 if owner.size else 1
    sim = resolve_entry_transport(
        "parallel_triangular_solve",
        transport,
        simulate,
        nranks,
        model=model,
        trace=trace,
        faults=faults,
        copy_payloads=copy_payloads,
        supervision=supervision,
    )
    owned = not is_transport(transport)
    try:
        res = _solve_on(factors, b, sim, nranks, backend)
        res.transport = transport_name(sim)
        res.recoveries = getattr(sim, "region_recoveries", 0)
        return res
    finally:
        if owned and sim is not None:
            sim.close()


def _solve_on(
    factors: ILUFactors,
    b: np.ndarray,
    sim,
    nranks: int,
    backend: str | None,
) -> TriangularSolveResult:
    """Run the substitution against a resolved transport (or ``None``)."""
    levels = factors.levels
    owner = levels.owner
    tr = getattr(sim, "tracer", None)
    L, U = factors.L, factors.U
    # Per-rank accumulator instead of a shared nonlocal: every charge is
    # integer-valued, so the final sum is exact and order-independent.
    flops_rank = np.zeros(nranks, dtype=np.float64)

    def charge(rank: int, fl: float) -> None:
        flops_rank[rank] += fl
        if sim is not None:
            sim.compute(rank, fl)

    from ..kernels.backend import VECTORIZED, resolve_backend

    if resolve_backend(backend) == VECTORIZED:
        return _solve_vectorized(factors, b, sim, tr)

    # Reference backend: every sweep stage is a parallel region of pure
    # per-rank thunks (read-shared vector, return own entries); the
    # coordinator merges in the historical inline order and replays
    # declarations/charges there — bit-identical on every transport.
    def pardo(thunks):
        if sim is not None:
            return sim.pardo(thunks)
        return [f() if f is not None else None for f in thunks]

    # ------------------------------------------------------- forward
    bp = b[factors.perm]
    y = bp.copy()

    # interior blocks: independent across ranks; each thunk solves its
    # own contiguous block against a private copy of the segment
    def fwd_interior(s: int, e: int) -> tuple[np.ndarray, float]:
        seg = y[s:e].copy()
        fl = 0.0
        for i in range(s, e):
            cols, vals = L.row(i)
            if cols.size:
                # interior L columns stay within the owner's block by
                # construction; gather defensively so an out-of-block
                # column reads the shared vector instead of mis-indexing
                xv = np.empty(cols.size)
                in_blk = cols >= s
                xv[in_blk] = seg[cols[in_blk] - s]
                xv[~in_blk] = y[cols[~in_blk]]
                seg[i - s] -= np.dot(vals, xv)
                fl += 2 * cols.size
        return seg, fl

    fwd_thunks: list = [None] * nranks
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        fwd_thunks[int(owner[s])] = lambda s=s, e=e: fwd_interior(s, e)
    fwd_results = pardo(fwd_thunks)
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        rank = int(owner[s])
        seg, fl = fwd_results[rank]
        if tr is not None:
            for i in range(s, e):
                cols, _ = L.row(i)
                if cols.size:
                    tr.read_many(rank, "x", cols)
                tr.write(rank, "x", i)
        y[s:e] = seg
        charge(rank, fl)
    if sim is not None:
        sim.barrier()

    def solve_level(vec: np.ndarray, M, positions, backward: bool) -> dict[int, float]:
        """Solve one interface level as parallel sub-rounds.

        The elimination engine's levels are true dependency levels, but
        interface-partitioned factors carry intra-level couplings that
        the historical inline loop resolved sequentially in ``positions``
        order.  Execution here splits the level into dependency
        sub-rounds (each a genuine parallel region); every row still
        reads only *final* dependency values, so the computed entries are
        bit-identical to the inline sweep.  Charges and messages stay at
        the original level granularity — sub-rounds are an execution
        detail, not part of the cost model.
        """
        order = [int(p) for p in (positions[::-1] if backward else positions)]
        seqno = {p: k for k, p in enumerate(order)}
        depth: dict[int, int] = {}
        rounds: list[list[int]] = []
        for p in order:
            cols = M.row(p)[0]
            deps = cols[1:] if backward else cols
            cdepths = [depth[int(c)] for c in deps if int(c) in depth]
            d = (max(cdepths) + 1) if cdepths else 0
            depth[p] = d
            while len(rounds) <= d:
                rounds.append([])
            rounds[d].append(p)

        newvals: dict[int, float] = {}

        def round_thunk(rows: list[int]):
            def thunk() -> list[tuple[int, float]]:
                out = []
                for p in rows:
                    cols, vals = M.row(p)
                    deps = cols[1:] if backward else cols
                    v = vec[p]
                    if deps.size:
                        # a same-level dep earlier in inline order is
                        # final in newvals (strictly smaller depth); one
                        # later in inline order must read the pre-sweep
                        # value, exactly as the inline loop did
                        k = seqno[p]
                        xv = np.array(
                            [
                                newvals[int(c)]
                                if seqno.get(int(c), k) < k
                                else vec[c]
                                for c in deps
                            ],
                            dtype=np.float64,
                        )
                        v -= np.dot(vals[1:] if backward else vals, xv)
                    if backward:
                        v /= vals[0]
                    out.append((p, v))
                return out

            return thunk

        for rnd in rounds:
            rows_by_rank: list[list[int]] = [[] for _ in range(nranks)]
            for p in rnd:
                rows_by_rank[int(owner[p])].append(p)
            res = pardo(
                [round_thunk(rows) if rows else None for rows in rows_by_rank]
            )
            for rr in res:
                if rr:
                    for p, v in rr:
                        newvals[p] = v
        return newvals

    l_consumers = _column_consumers(L, owner) if sim is not None else {}
    for lvl_idx, positions in enumerate(levels.interface_levels):
        newvals = solve_level(y, L, positions, backward=False)
        per_rank_fl: dict[int, float] = {}
        for p in positions:
            cols, _vals = L.row(int(p))
            if tr is not None:
                if cols.size:
                    tr.read_many(int(owner[p]), "x", cols)
                tr.write(int(owner[p]), "x", int(p))
            y[p] = newvals[int(p)]
            per_rank_fl[int(owner[p])] = per_rank_fl.get(int(owner[p]), 0.0) + 2.0 * cols.size
        for rank, fl in sorted(per_rank_fl.items()):
            charge(rank, fl)
        if sim is not None:
            words = _cross_rank_receivers(l_consumers, owner, positions)
            for (src, dst), w in sorted(words.items()):
                sim.send(src, dst, None, float(w), tag=("fwd", lvl_idx))
            for (src, dst), _w in sorted(words.items()):
                sim.recv(dst, src, tag=("fwd", lvl_idx))
            sim.barrier()

    # ------------------------------------------------------- backward
    x = y
    u_consumers = _column_consumers(U, owner) if sim is not None else {}
    for lvl_idx in range(len(levels.interface_levels) - 1, -1, -1):
        positions = levels.interface_levels[lvl_idx]
        newvals = solve_level(x, U, positions, backward=True)
        per_rank_fl = {}
        for p in positions[::-1]:
            cols, _vals = U.row(int(p))
            # diagonal stored first (position p itself)
            if tr is not None:
                if cols.size > 1:
                    tr.read_many(int(owner[p]), "x", cols[1:])
                tr.write(int(owner[p]), "x", int(p))
            x[p] = newvals[int(p)]
            per_rank_fl[int(owner[p])] = (
                per_rank_fl.get(int(owner[p]), 0.0) + 2.0 * (cols.size - 1) + 1.0
            )
        for rank, fl in sorted(per_rank_fl.items()):
            charge(rank, fl)
        if sim is not None:
            words = _cross_rank_receivers(u_consumers, owner, positions)
            # in the backward sweep values flow to *earlier* rows
            for (src, dst), w in sorted(words.items()):
                sim.send(src, dst, None, float(w), tag=("bwd", lvl_idx))
            for (src, dst), _w in sorted(words.items()):
                sim.recv(dst, src, tag=("bwd", lvl_idx))
            sim.barrier()

    def bwd_interior(s: int, e: int) -> tuple[np.ndarray, float]:
        seg = x[s:e].copy()
        fl = 0.0
        for i in range(e - 1, s - 1, -1):
            cols, vals = U.row(i)
            if cols.size > 1:
                # U rows of the interior block may reference interface
                # columns past the block end — those are final in the
                # shared vector by the time this region runs
                c = cols[1:]
                xv = np.empty(c.size)
                in_blk = c < e
                xv[in_blk] = seg[c[in_blk] - s]
                xv[~in_blk] = x[c[~in_blk]]
                seg[i - s] -= np.dot(vals[1:], xv)
            seg[i - s] /= vals[0]
            fl += 2.0 * (cols.size - 1) + 1.0
        return seg, fl

    bwd_thunks: list = [None] * nranks
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        bwd_thunks[int(owner[s])] = lambda s=s, e=e: bwd_interior(s, e)
    bwd_results = pardo(bwd_thunks)
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        rank = int(owner[s])
        seg, fl = bwd_results[rank]
        if tr is not None:
            for i in range(e - 1, s - 1, -1):
                cols, _ = U.row(i)
                if cols.size > 1:
                    tr.read_many(rank, "x", cols[1:])
                tr.write(rank, "x", i)
        x[s:e] = seg
        charge(rank, fl)
    if sim is not None:
        sim.barrier()

    out = np.empty_like(x)
    out[factors.perm] = x
    return TriangularSolveResult(
        x=out,
        modeled_time=sim.elapsed() if sim is not None else None,
        comm=sim.stats() if sim is not None else None,
        flops=float(flops_rank.sum()),
        trace=tr,
        fault_journal=getattr(sim, "fault_journal", None),
    )
