"""Table 3 — GMRES(20)/GMRES(50) with ILUT / ILUT* / diagonal preconditioning.

Paper: on 128 PEs, solve both systems with b = A·e, zero initial guess,
stopping at 1e-8 residual reduction; report run time and NMV (number of
matvecs) for the 18 incomplete factorizations and the diagonal
preconditioner.  Shapes: ILUT and ILUT* comparable in NMV (mixed
winners); both far fewer NMV (and faster) than diagonal; for t=1e-6 the
ILUT* *time* beats ILUT's thanks to cheaper triangular solves.
"""

from functools import lru_cache

import numpy as np
import pytest

from _reporting import record_table
from _workloads import (
    CFG,
    MODEL,
    MS,
    TS,
    KSTAR,
    SEED,
    label,
    matrix,
)

from repro import decompose, parallel_ilut, parallel_ilut_star
from repro.ilu import parallel_triangular_solve
from repro.solvers import (
    DiagonalPreconditioner,
    ILUPreconditioner,
    gmres,
    model_diagonal_precond_time,
    model_gmres_time,
    parallel_matvec,
)

P = CFG["gmres_p"]
RESTARTS = (20, 50)
MAXITER = 20_000


@lru_cache(maxsize=None)
def _decomp(name):
    return decompose(matrix(name), P, seed=SEED)


@lru_cache(maxsize=None)
def _factor(name, algo, m, t):
    A = matrix(name)
    if algo == "ILUT":
        return parallel_ilut(A, m, t, P, decomp=_decomp(name), model=MODEL, seed=SEED)
    return parallel_ilut_star(
        A, m, t, KSTAR, P, decomp=_decomp(name), model=MODEL, seed=SEED
    )


@lru_cache(maxsize=None)
def _kernel_times(name, algo, m, t):
    """Modelled per-application times of matvec and preconditioner."""
    A = matrix(name)
    d = _decomp(name)
    x = np.ones(A.shape[0])
    t_mv = parallel_matvec(A, d, x, model=MODEL).modeled_time
    if algo == "diag":
        return t_mv, model_diagonal_precond_time(A.shape[0], P, MODEL)
    r = _factor(name, algo, m, t)
    t_pc = parallel_triangular_solve(r.factors, x, nranks=P, model=MODEL).modeled_time
    return t_mv, t_pc


@lru_cache(maxsize=None)
def _solve(name, algo, m, t, restart):
    """Run GMRES numerically; model its parallel run time."""
    A = matrix(name)
    b = A @ np.ones(A.shape[0])
    if algo == "diag":
        M = DiagonalPreconditioner(A)
    else:
        M = ILUPreconditioner(_factor(name, algo, m, t).factors)
    res = gmres(A, b, restart=restart, tol=1e-8, maxiter=MAXITER, M=M)
    t_mv, t_pc = _kernel_times(name, algo, m, t)
    time_model = model_gmres_time(
        res.num_matvec, A.shape[0], restart, P, MODEL, t_mv, t_pc
    )
    nmv = res.num_matvec if res.converged else -res.num_matvec  # sign = failed
    return time_model, nmv


def _build_table(name: str) -> tuple[str, dict]:
    from repro.analysis import format_table

    rows = []
    data = {}
    configs = [("ILUT", m, t) for t in TS for m in MS] + [
        ("ILUT*", m, t) for t in TS for m in MS
    ]
    for algo, m, t in configs:
        row = [label(algo, m, t)]
        for restart in RESTARTS:
            tm, nmv = _solve(name, algo, m, t, restart)
            data[(algo, m, t, restart)] = (tm, nmv)
            row += [tm, nmv]
        rows.append(row)
    row = ["Diagonal"]
    for restart in RESTARTS:
        tm, nmv = _solve(name, "diag", 0, 0.0, restart)
        data[("diag", 0, 0.0, restart)] = (tm, nmv)
        row += [tm, nmv]
    rows.append(row)
    headers = ["Preconditioner"]
    for restart in RESTARTS:
        headers += [f"GMRES({restart}) Time", "NMV"]
    table = format_table(
        headers,
        rows,
        title=(
            f"Table 3 [{name}]: GMRES on p={P} (modelled time s; NMV<0 means "
            "not converged within the matvec budget)"
        ),
    )
    return table, data


@pytest.mark.parametrize("name", ["g0_gmres", "torso_gmres"])
def test_table3_gmres(benchmark, name):
    table, data = benchmark.pedantic(_build_table, args=(name,), rounds=1, iterations=1)
    record_table(f"Table 3 ({name})", table)

    # Shape 1: ILUT vs ILUT* comparable (within a small factor) on NMV
    for restart in RESTARTS:
        n_i = abs(data[("ILUT", 10, 1e-4, restart)][1])
        n_s = abs(data[("ILUT*", 10, 1e-4, restart)][1])
        assert 0.25 < n_s / n_i < 4.0

    # Shape 2: good ILUT beats diagonal decisively in NMV
    nd = abs(data[("diag", 0, 0.0, 20)][1])
    ni = abs(data[("ILUT", 20, 1e-6, 20)][1])
    assert ni < nd / 2

    # Shape 3: at t=1e-6 ILUT* time <= ILUT time (cheaper trisolves)
    t_i = data[("ILUT", 20, 1e-6, 20)][0]
    t_s = data[("ILUT*", 20, 1e-6, 20)][0]
    assert t_s <= t_i * 1.2
