"""Parity coverage for widget_vec (named so PAR001's corpus sees it)."""


def check_widget_parity():
    from pkg.kernels.widget import widget_vec

    assert widget_vec(2) == 4
