"""Cross-family comparisons: the full design space on one problem.

The library now expresses the whole landscape the paper situates itself
in: static-pattern factorizations (ILU(0)/ILU(k)), threshold sequential
(ILUT), global multi-elimination (ILUM), the paper's two-phase parallel
ILUT/ILUT*, block-Jacobi ILUT, stationary sweeps, and the diagonal.
These tests pin the qualitative ordering between them.
"""

import numpy as np
import pytest

from repro import poisson2d
from repro.decomp import decompose
from repro.ilu import (
    block_jacobi_ilut,
    ilu0,
    iluk,
    ilum,
    ilut,
    parallel_ilut,
)
from repro.solvers import (
    DiagonalPreconditioner,
    ILUPreconditioner,
    SweepPreconditioner,
    gmres,
)


@pytest.fixture(scope="module")
def system():
    A = poisson2d(18)
    b = A @ np.ones(A.shape[0])
    return A, b


def nmv(A, b, M):
    res = gmres(A, b, restart=20, tol=1e-8, M=M, maxiter=10000)
    assert res.converged
    return res.num_matvec


class TestPreconditionerOrdering:
    def test_ilu_family_beats_pointwise(self, system):
        A, b = system
        n_diag = nmv(A, b, DiagonalPreconditioner(A))
        n_sweep = nmv(A, b, SweepPreconditioner(A, method="sor", sweeps=2))
        n_ilu0 = nmv(A, b, ILUPreconditioner(ilu0(A)))
        assert n_ilu0 < n_diag
        assert n_sweep < n_diag

    def test_threshold_dropping_competitive_with_levels(self, system):
        A, b = system
        n_iluk = nmv(A, b, ILUPreconditioner(iluk(A, 2)))
        f_t = ilut(A, 10, 1e-4)
        n_ilut = nmv(A, b, ILUPreconditioner(f_t))
        # at comparable fill, ILUT should be at least as strong
        assert n_ilut <= n_iluk + 5

    def test_ilum_comparable_to_ilut(self, system):
        A, b = system
        n_ilut = nmv(A, b, ILUPreconditioner(ilut(A, 10, 1e-4)))
        n_ilum = nmv(A, b, ILUPreconditioner(ilum(A, 10, 1e-4)))
        assert n_ilum <= 3 * n_ilut

    def test_parallel_ilut_matches_sequential_quality(self, system):
        A, b = system
        n_seq = nmv(A, b, ILUPreconditioner(ilut(A, 10, 1e-4)))
        r = parallel_ilut(A, 10, 1e-4, 8, seed=0, simulate=False)
        n_par = nmv(A, b, ILUPreconditioner(r.factors))
        # reordering changes the factorization but not its class
        assert n_par <= 3 * n_seq

    def test_block_jacobi_weakest_ilu(self, system):
        A, b = system
        p = 8
        d = decompose(A, p, seed=0)
        bj = block_jacobi_ilut(A, 10, 1e-4, p, decomp=d, simulate=False)
        r = parallel_ilut(A, 10, 1e-4, p, decomp=d, seed=0, simulate=False)
        n_bj = nmv(A, b, bj)
        n_full = nmv(A, b, ILUPreconditioner(r.factors))
        assert n_full < n_bj


class TestFactorizationCosts:
    def test_fill_ordering(self, system):
        A, _ = system
        nnz0 = ilu0(A).nnz
        nnz_k2 = iluk(A, 2).nnz
        nnz_tight = ilut(A, 20, 1e-6).nnz
        assert nnz0 < nnz_k2 < nnz_tight

    def test_ilum_levels_bounded_by_matrix_size(self, system):
        A, _ = system
        f = ilum(A, 5, 1e-3)
        assert 1 <= f.levels.num_levels < A.shape[0]
