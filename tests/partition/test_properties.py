"""Property-based tests for the partitioner."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import adjacency_from_matrix
from repro.matrices import random_geometric_laplacian
from repro.partition import (
    collapse_matching,
    heavy_edge_matching,
    partition_graph_kway,
)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(10, 80),
    st.integers(1, 6),
    st.integers(0, 100),
)
def test_partition_is_total_and_in_range(n, nparts, seed):
    A = random_geometric_laplacian(n, seed=seed % 7)
    g = adjacency_from_matrix(A)
    nparts = min(nparts, n)
    res = partition_graph_kway(g, nparts, seed=seed)
    assert res.part.size == n
    assert res.part.min() >= 0
    assert res.part.max() < nparts
    # every part non-empty when nparts <= n
    assert np.unique(res.part).size == nparts or n < 2 * nparts


@settings(max_examples=25, deadline=None)
@given(st.integers(10, 60), st.integers(0, 100))
def test_matching_involution_property(n, seed):
    A = random_geometric_laplacian(n, seed=seed % 5)
    g = adjacency_from_matrix(A)
    match = heavy_edge_matching(g, seed=seed)
    assert np.array_equal(match[match], np.arange(n))


@settings(max_examples=25, deadline=None)
@given(st.integers(10, 60), st.integers(0, 100))
def test_collapse_conserves_weight_and_shrinks(n, seed):
    A = random_geometric_laplacian(n, seed=seed % 5)
    g = adjacency_from_matrix(A)
    coarse, cmap = collapse_matching(g, heavy_edge_matching(g, seed=seed))
    assert coarse.total_vertex_weight() == g.total_vertex_weight()
    assert coarse.nvertices <= g.nvertices
    assert cmap.min() >= 0 and cmap.max() == coarse.nvertices - 1


@settings(max_examples=20, deadline=None)
@given(st.integers(16, 64), st.integers(2, 4), st.integers(0, 50))
def test_edge_cut_consistency(n, nparts, seed):
    """edge_cut reported by the driver equals a direct recount."""
    from repro.partition import edge_cut

    A = random_geometric_laplacian(n, seed=seed % 3)
    g = adjacency_from_matrix(A)
    res = partition_graph_kway(g, nparts, seed=seed)
    assert res.edge_cut == edge_cut(g, res.part)
