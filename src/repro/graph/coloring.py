"""Greedy graph colouring.

Colourings extract concurrency for **ILU(0)** (paper §3, Figure 1a):
because the sparsity pattern never changes, a colouring of the interface
graph computed once up front gives all the independent sets ``S_l``.
This module provides the colouring used by the parallel ILU(0) baseline
and by tests contrasting it with the dynamic MIS levels of ILUT.
"""

from __future__ import annotations

import numpy as np

from .structure import Graph

__all__ = ["greedy_coloring", "color_classes", "is_proper_coloring"]


def greedy_coloring(graph: Graph, *, order: np.ndarray | None = None) -> np.ndarray:
    """First-fit greedy colouring; returns a colour id per vertex.

    With ``order=None`` vertices are coloured in descending-degree order
    (Welsh-Powell), which tends to use fewer colours than natural order.
    """
    n = graph.nvertices
    if order is None:
        order = np.argsort(-graph.degrees(), kind="stable")
    else:
        order = np.asarray(order, dtype=np.int64)
    colors = np.full(n, -1, dtype=np.int64)
    for v in order:
        nbrs = graph.adjncy[graph.xadj[v] : graph.xadj[v + 1]]
        used = set(int(c) for c in colors[nbrs] if c >= 0)
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def color_classes(colors: np.ndarray) -> list[np.ndarray]:
    """Group vertices by colour; classes are the ILU(0) level sets ``S_l``."""
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size == 0:
        return []
    ncolors = int(colors.max()) + 1
    return [np.flatnonzero(colors == c) for c in range(ncolors)]


def is_proper_coloring(graph: Graph, colors: np.ndarray) -> bool:
    """True iff no stored edge joins two vertices of the same colour."""
    colors = np.asarray(colors, dtype=np.int64)
    for v in range(graph.nvertices):
        nbrs = graph.adjncy[graph.xadj[v] : graph.xadj[v + 1]]
        nbrs = nbrs[nbrs != v]
        if np.any(colors[nbrs] == colors[v]):
            return False
    return True
