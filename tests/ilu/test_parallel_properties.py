"""Property-based tests for the parallel factorization pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilu import parallel_ilut, parallel_ilut_star
from repro.matrices import random_diag_dominant


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(12, 50),
    p=st.integers(1, 6),
    seed=st.integers(0, 100),
)
def test_no_dropping_exact_for_random_matrices(n, p, seed):
    """(I+L)U == P A P^T whenever nothing is dropped — for any n, p, seed."""
    A = random_diag_dominant(n, 4, seed=seed)
    p = min(p, n)
    r = parallel_ilut(A, n, 0.0, p, seed=seed, simulate=False)
    R = r.factors.residual_matrix(A)
    assert R.frobenius_norm() < 1e-8 * max(A.frobenius_norm(), 1.0)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(12, 50),
    p=st.integers(2, 6),
    m=st.integers(1, 8),
    seed=st.integers(0, 100),
)
def test_structural_invariants_hold_under_dropping(n, p, m, seed):
    A = random_diag_dominant(n, 4, seed=seed)
    p = min(p, n)
    r = parallel_ilut(A, m, 1e-3, p, seed=seed, simulate=False)
    f = r.factors
    # permutation is a bijection
    assert sorted(f.perm.tolist()) == list(range(n))
    # triangularity with stored diagonal in U
    for i in range(n):
        lc, _ = f.L.row(i)
        uc, uv = f.U.row(i)
        assert lc.size == 0 or lc.max() < i
        assert uc[0] == i and uv[0] != 0.0
    # level structure tiles the matrix
    f.levels.validate(n)
    # L row cap respected (interior rows obey m; interface rows obey m too)
    assert f.L.row_nnz().max() <= max(m, 1)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(16, 40),
    p=st.integers(2, 4),
    k=st.integers(1, 4),
    seed=st.integers(0, 50),
)
def test_ilutstar_reduced_rows_never_exceed_mis_count(n, p, k, seed):
    """ILUT* must produce no more levels than plain ILUT (same everything)."""
    A = random_diag_dominant(n, 5, seed=seed)
    m = 3
    r_star = parallel_ilut_star(A, m, 0.0, k, p, seed=seed, simulate=False)
    r_full = parallel_ilut(A, m, 0.0, p, seed=seed, simulate=False)
    # the paper's claim is asymptotic (sparser reduced rows -> larger
    # independent sets); on matrices this small MIS tie-breaking noise
    # can exceed a fixed +2 (e.g. n=33, p=3, k=4, seed=23 gives 20 vs 17)
    slack = max(3, r_full.num_levels // 4)
    assert r_star.num_levels <= r_full.num_levels + slack


@settings(max_examples=10, deadline=None)
@given(n=st.integers(12, 40), p=st.integers(1, 5), seed=st.integers(0, 50))
def test_level_sizes_sum_to_interface_count(n, p, seed):
    A = random_diag_dominant(n, 4, seed=seed)
    p = min(p, n)
    r = parallel_ilut(A, 5, 1e-3, p, seed=seed, simulate=False)
    assert sum(r.level_sizes) == r.decomp.n_interface
