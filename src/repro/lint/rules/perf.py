"""Vectorization / performance rules (``PERF001``–``PERF005``).

The ROADMAP's speed phase lives or dies on the hot paths staying
vectorized: every scalar Python loop over CSR structures in a
cost-charged driver multiplies the wall-clock constant the modeled
speedups are normalized by.  These rules hunt the recurring shapes of
accidental devectorization:

* ``PERF001`` — a scalar per-row loop (``A.row(i)`` / ``iter_rows``)
  inside a function that charges the machine model, where the
  ``repro.kernels`` surface has a vectorized twin.  Functions that
  dispatch on a ``backend`` parameter (their scalar path *is* the
  documented reference twin) are exempt.
* ``PERF002`` — array growth in a loop: ``np.append`` per iteration is
  O(n²) copying, and the list-append-then-``np.array`` shape is the
  interpreted version of a preallocation.  ``--fix`` rewrites the
  provably-safe subset to ``np.zeros`` + indexed assignment.
* ``PERF003`` — int-dtype arrays meeting float arithmetic inside a
  loop: each iteration pays an implicit promotion copy.
* ``PERF004`` — ``.copy()`` / ``np.array(...)`` of a buffer the
  function itself just allocated and never reads again: a pure memcpy
  of an already-owned array.  ``--fix`` elides the copy.
* ``PERF005`` — building a triangular level schedule inside a loop with
  loop-invariant arguments where :func:`repro.kernels.cached_schedules`
  already memoizes the construction.

Profiles keep the family scoped to library code (off under ``tests/``
and ``benchmarks/`` — tests exercise scalar shapes on purpose).
"""

from __future__ import annotations

import ast

from ..astutil import call_name, dotted_name
from ..findings import Finding, Severity
from ..registry import Rule, register
from ..runner import ModuleContext

__all__ = [
    "ScalarHotLoop",
    "ArrayGrowthInLoop",
    "DtypePromotionInLoop",
    "RedundantCopy",
    "RecomputedSchedule",
]

#: Simulator charge entry points — a function calling any of these on a
#: sim/transport receiver is on the modeled hot path.
_CHARGE_ATTRS = frozenset(
    {"compute", "advance", "send", "barrier", "allreduce", "allgather"}
)
_CHARGE_RECEIVERS = frozenset({"sim", "simulator", "transport"})

#: Scalar CSR row accessors with vectorized repro.kernels twins.
_SCALAR_ROW_CALLS = frozenset({"row", "iter_rows"})

#: Allocating numpy constructors whose result the caller owns outright.
_FRESH_CALLS = frozenset(
    {"zeros", "ones", "empty", "arange", "full", "zeros_like", "empty_like", "linspace"}
)

#: Integer numpy dtypes as spelled in this codebase.
_INT_DTYPES = frozenset({"int", "int32", "int64", "intp", "np.int32", "np.int64", "np.intp"})

#: Schedule constructors memoized by repro.kernels.cached_schedules.
_SCHEDULE_BUILDERS = frozenset(
    {"triangular_levels", "triangular_levels_vectorized", "BatchedTriangularSchedule"}
)


def _is_charge_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _CHARGE_ATTRS:
        return False
    receiver = dotted_name(func.value).split(".")[-1]
    return receiver in _CHARGE_RECEIVERS


def _charges_model(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        isinstance(node, ast.Call) and _is_charge_call(node)
        for node in ast.walk(func)
    )


def _has_backend_dispatch(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """The function routes between a reference and a vectorized path."""
    argnames = {
        a.arg
        for a in (*func.args.args, *func.args.kwonlyargs, *func.args.posonlyargs)
    }
    if "backend" in argnames:
        return True
    return any(
        isinstance(node, ast.Call) and call_name(node) == "resolve_backend"
        for node in ast.walk(func)
    )


def _docstring_mentions_reference(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    doc = ast.get_docstring(func) or ""
    return "reference" in doc.lower()


def _loops_in(func: ast.AST):
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While)):
            yield node


def _loop_assigned_names(loop: ast.For | ast.While) -> set[str]:
    """Names (re)bound anywhere inside the loop, including its target."""
    names: set[str] = set()
    if isinstance(loop, ast.For):
        for n in ast.walk(loop.target):
            if isinstance(n, ast.Name):
                names.add(n.id)
    for node in ast.walk(loop):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for tgt in targets:
                for n in ast.walk(tgt):
                    if isinstance(n, ast.Name):
                        names.add(n.id)
        elif isinstance(node, ast.For):
            for n in ast.walk(node.target):
                if isinstance(n, ast.Name):
                    names.add(n.id)
    return names


@register
class ScalarHotLoop(Rule):
    """Scalar per-row CSR iteration on the cost-charged path.

    ``A.row(i)`` in a Python loop materializes two slices per row and
    runs the numerics through the interpreter; the ``repro.kernels``
    CSR surface (``csr_matvec``, ``segment_sums``, the batched solvers)
    does the same work in a handful of array ops.  Functions that
    accept a ``backend`` parameter or call ``resolve_backend`` keep
    their scalar branch — it *is* the reference twin the parity suite
    diffs against — as do functions whose docstring says "reference".
    """

    id = "PERF001"
    name = "scalar-hot-loop"
    severity = Severity.WARNING
    description = (
        "cost-charged functions must not iterate CSR rows in scalar "
        "Python loops when a vectorized repro.kernels twin exists"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _charges_model(func):
                continue
            if _has_backend_dispatch(func) or _docstring_mentions_reference(func):
                continue
            flagged: dict[int, ast.Call] = {}
            for loop in _loops_in(func):
                for node in ast.walk(loop):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _SCALAR_ROW_CALLS
                    ):
                        flagged.setdefault(id(node), node)
            for call in flagged.values():
                out.append(
                    self.finding(
                        module,
                        call.lineno,
                        call.col_offset,
                        f".{call.func.attr}(...) per loop iteration in "
                        f"cost-charged {func.name!r}; use the vectorized "
                        "repro.kernels CSR surface (or dispatch on "
                        "backend= and keep this as the reference path)",
                    )
                )
        return out


def _np_append_calls(loop: ast.For | ast.While) -> list[ast.Call]:
    return [
        node
        for node in ast.walk(loop)
        if isinstance(node, ast.Call)
        and dotted_name(node.func) in ("np.append", "numpy.append")
    ]


def _list_grown_then_arrayed(func: ast.AST) -> dict[str, tuple[ast.Call, ast.Call]]:
    """``name -> (append call in a loop, np.array(name) call)`` for names
    initialized to ``[]`` in ``func``."""
    list_inits: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.List):
            if not node.value.elts:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        list_inits.add(tgt.id)
    appends: dict[str, ast.Call] = {}
    for loop in _loops_in(func):
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in list_inits
            ):
                appends.setdefault(node.func.value.id, node)
    out: dict[str, tuple[ast.Call, ast.Call]] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and dotted_name(node.func) in ("np.array", "numpy.array", "np.asarray", "numpy.asarray")
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in appends
        ):
            name = node.args[0].id
            out.setdefault(name, (appends[name], node))
    return out


@register
class ArrayGrowthInLoop(Rule):
    """Growing an array one element at a time.

    ``np.append`` reallocates and copies the whole array every call —
    the loop is O(n²) in memory traffic; the list-append-then-
    ``np.array`` shape boxes every element through the interpreter.
    Preallocate with ``np.zeros``/``np.empty`` and assign by index (the
    ``--fix`` rewrite when the element type is provably float), or build
    the values as one vectorized expression.
    """

    id = "PERF002"
    name = "array-growth-in-loop"
    severity = Severity.WARNING
    description = (
        "arrays must be preallocated, not grown per-iteration with "
        "np.append or list.append + np.array"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for loop in _loops_in(func):
                for call in _np_append_calls(loop):
                    out.append(
                        self.finding(
                            module,
                            call.lineno,
                            call.col_offset,
                            "np.append in a loop reallocates the whole array "
                            "every iteration; preallocate and assign by index",
                        )
                    )
            for name, (append_call, _array_call) in sorted(
                _list_grown_then_arrayed(func).items()
            ):
                out.append(
                    self.finding(
                        module,
                        append_call.lineno,
                        append_call.col_offset,
                        f"list {name!r} grown per-iteration then converted "
                        "with np.array; preallocate np.zeros(n) and assign "
                        "by index",
                    )
                )
        return out


def _int_array_names(func: ast.AST) -> set[str]:
    """Local names bound to an integer-dtype numpy array."""
    names: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        call = node.value
        dotted = dotted_name(call.func)
        is_int = False
        if dotted in ("np.arange", "numpy.arange"):
            # int result unless any argument or dtype says float
            is_int = not any(
                isinstance(a, ast.Constant) and isinstance(a.value, float)
                for a in call.args
            )
        for kw in call.keywords:
            if kw.arg == "dtype":
                spelled = dotted_name(kw.value) or (
                    kw.value.value if isinstance(kw.value, ast.Constant) else ""
                )
                is_int = str(spelled).split(".")[-1] in {"int", "int32", "int64", "intp"}
        if is_int:
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
    return names


def _is_float_expr(node: ast.AST, int_names: set[str]) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return False
    if isinstance(node, ast.Call):
        for kw in node.keywords:
            if kw.arg == "dtype":
                spelled = dotted_name(kw.value)
                return spelled.split(".")[-1] in ("float64", "float32", "float")
    return False


@register
class DtypePromotionInLoop(Rule):
    """Int arrays meeting float arithmetic inside a loop.

    ``int_array * 0.5`` promotes the whole operand to ``float64`` — a
    fresh allocation and copy on every iteration.  Convert once before
    the loop (``arr = arr.astype(np.float64)``) or keep the arithmetic
    integral.
    """

    id = "PERF003"
    name = "dtype-promotion-in-loop"
    severity = Severity.WARNING
    description = (
        "int-dtype arrays must not be promoted by float arithmetic "
        "inside loops; convert once outside"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            int_names = _int_array_names(func)
            if not int_names:
                continue
            for loop in _loops_in(func):
                for node in ast.walk(loop):
                    if not isinstance(node, ast.BinOp):
                        continue
                    sides = (node.left, node.right)
                    has_int = any(
                        isinstance(s, ast.Name) and s.id in int_names for s in sides
                    )
                    has_float = any(_is_float_expr(s, int_names) for s in sides) or (
                        isinstance(node.op, ast.Div)
                    )
                    if has_int and has_float:
                        name = next(
                            s.id
                            for s in sides
                            if isinstance(s, ast.Name) and s.id in int_names
                        )
                        out.append(
                            self.finding(
                                module,
                                node.lineno,
                                node.col_offset,
                                f"int-dtype array {name!r} promoted to float "
                                "inside a loop (allocation + copy per "
                                "iteration); convert once before the loop",
                            )
                        )
        return out


def _fresh_names(func: ast.AST) -> dict[str, int]:
    """Names assigned exactly once, by an allocating call: name -> line."""
    assigned: dict[str, list[tuple[int, bool]]] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            fresh = False
            v = node.value
            if isinstance(v, ast.Call):
                dotted = dotted_name(v.func)
                terminal = dotted.split(".")[-1]
                fresh = (
                    dotted.split(".")[0] in ("np", "numpy") and terminal in _FRESH_CALLS
                ) or terminal == "copy"
            elif isinstance(v, ast.BinOp):
                fresh = True  # array arithmetic yields a fresh buffer
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    assigned.setdefault(tgt.id, []).append((node.lineno, fresh))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            tgt = node.target
            if isinstance(tgt, ast.Name):
                assigned.setdefault(tgt.id, []).append((node.lineno, False))
        elif isinstance(node, ast.For):
            for n in ast.walk(node.target):
                if isinstance(n, ast.Name):
                    assigned.setdefault(n.id, []).append((node.lineno, False))
    return {
        name: defs[0][0]
        for name, defs in assigned.items()
        if len(defs) == 1 and defs[0][1]
    }


def _copy_calls_of_fresh(func: ast.AST):
    """(call, name) for ``name.copy()`` / ``np.array(name)`` of fresh names."""
    fresh = _fresh_names(func)
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name: str | None = None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "copy"
            and not node.args
            and not node.keywords
            and isinstance(node.func.value, ast.Name)
        ):
            name = node.func.value.id
        elif (
            dotted_name(node.func) in ("np.array", "numpy.array")
            and len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Name)
        ):
            name = node.args[0].id
        if name is None or name not in fresh or node.lineno <= fresh[name]:
            continue
        # the name must be dead outside this copy: its only appearances
        # are the defining store and the load inside the copy call itself
        # (a second load anywhere — even on the same line — means the
        # caller keeps the original, and eliding would alias it)
        in_copy = {
            id(n) for n in ast.walk(node) if isinstance(n, ast.Name) and n.id == name
        }
        other_loads = sum(
            1
            for n in ast.walk(func)
            if isinstance(n, ast.Name)
            and n.id == name
            and isinstance(n.ctx, ast.Load)
            and id(n) not in in_copy
        )
        if other_loads == 0:
            yield node, name


@register
class RedundantCopy(Rule):
    """Copying a buffer the function already owns and never reuses.

    When the source array came from an allocating call in the same
    function (``np.zeros``, arithmetic, an earlier ``.copy()``) and is
    never read after the copy, the ``.copy()`` / ``np.array(...)`` is a
    pure memcpy of a dead value — drop it and hand the buffer over
    directly (the ``--fix`` rewrite).
    """

    id = "PERF004"
    name = "redundant-copy"
    severity = Severity.NOTE
    description = (
        "freshly allocated, never-reused buffers must not be defensively "
        "copied; hand them over directly"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for call, name in _copy_calls_of_fresh(func):
                out.append(
                    self.finding(
                        module,
                        call.lineno,
                        call.col_offset,
                        f"{name!r} is freshly allocated here and never used "
                        "after this copy; the copy is redundant",
                    )
                )
        return out


@register
class RecomputedSchedule(Rule):
    """Rebuilding a triangular level schedule inside a loop.

    The level-schedule construction is an O(nnz) sweep; rebuilding it
    per solve inside an iteration loop with the same factors multiplies
    that into the solver's critical path.
    :func:`repro.kernels.cached_schedules` memoizes the pair by factor
    identity — build once, reuse every iteration.
    """

    id = "PERF005"
    name = "recomputed-schedule"
    severity = Severity.WARNING
    description = (
        "level schedules must not be rebuilt inside loops with "
        "loop-invariant factors; use repro.kernels.cached_schedules"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for loop in _loops_in(func):
                rebound = _loop_assigned_names(loop)
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Call):
                        continue
                    terminal = dotted_name(node.func).split(".")[-1] or call_name(node)
                    if terminal not in _SCHEDULE_BUILDERS:
                        continue
                    arg_names = {
                        n.id
                        for a in (*node.args, *[kw.value for kw in node.keywords])
                        for n in ast.walk(a)
                        if isinstance(n, ast.Name)
                    }
                    if arg_names & rebound:
                        continue  # argument changes per iteration: legit
                    out.append(
                        self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"{terminal}(...) rebuilt every iteration with "
                            "loop-invariant arguments; hoist it or use "
                            "repro.kernels.cached_schedules",
                        )
                    )
        return out
