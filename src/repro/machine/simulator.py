"""Deterministic SPMD machine simulator.

The parallel algorithms in this library (parallel ILUT/ILUT*, the
level-scheduled triangular solves, the distributed matvec, the
distributed two-step Luby MIS) are written against this simulator the
way an MPI code is written against a communicator: ranks do local
compute, exchange point-to-point messages, and synchronise at barriers
and collectives.  The simulator

* executes the *real* computation (the factorizations it produces are
  bit-identical to what a real message-passing run would produce, since
  the algorithms are deterministic given the ordering), and
* maintains a **virtual clock per rank**, advanced by a
  :class:`~repro.machine.model.MachineModel`, so the modelled elapsed
  time reflects load imbalance, message latency/volume and the number of
  synchronisation supersteps — the three effects the paper's evaluation
  is about.

Timing semantics
----------------
- ``compute(rank, flops)`` advances one rank's clock.
- ``send``/``recv`` implement asynchronous point-to-point messages: a
  message arrives no earlier than the sender's clock at send time plus
  the transfer cost; ``recv`` advances the receiver to the arrival time
  if it was ahead of it ("waiting").
- ``barrier()`` sets every clock to the global maximum.
- ``allreduce``/``allgather`` charge a log2(p) tree cost and act as a
  barrier.

The simulator is single-threaded and deterministic: "ranks" are just
indices, and the driver code interleaves their work explicitly, which is
exactly the superstep structure of the algorithms in the paper.

Fault injection
---------------
Constructing the simulator with ``faults=FaultPlan(...)`` arms a
deterministic, seeded fault harness (see :mod:`repro.faults`): matching
point-to-point messages can be dropped, delayed, duplicated or
corrupted, and ranks can be stalled or crashed at a chosen superstep
(the count of completed barriers + collectives).  Every injected event
is appended to :attr:`Simulator.fault_journal`.  Under an active plan a
receive that finds its mailbox empty raises
:class:`~repro.faults.MessageLost` instead of the hard deadlock error,
so drivers can retransmit; an armed crash raises
:class:`~repro.faults.RankFailure` at the victim's next activity.
:meth:`snapshot` / :meth:`restore` capture and roll back the full
timing + mailbox state so a checkpointing driver can resume from the
last completed level after a crash (crash faults are one-shot and stay
disarmed across a restore).  The default ``faults=None`` keeps the hot
path at a ``None`` check per call.

Race detection
--------------
With ``trace=True`` the simulator carries an
:class:`~repro.verify.trace.AccessTracer`: every ``send`` attaches the
sender's vector clock to the message, every ``recv`` joins it into the
receiver's, and barriers/collectives join all clocks — so instrumented
drivers can declare shared-object accesses via :meth:`declare_read` /
:meth:`declare_write` and :func:`repro.verify.find_races` can check that
conflicting cross-rank accesses are ordered by synchronisation.  The
default ``trace=False`` keeps ``self.tracer`` as ``None`` and the hot
path pays nothing beyond a ``None`` check per communication call.
"""

from __future__ import annotations

import pickle
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

import numpy as np

from ..faults import FaultJournal, FaultPlan, FaultRuntime, MessageLost
from .ledger import ChargeLedger
from .model import MachineModel

if TYPE_CHECKING:
    from ..verify.trace import AccessTracer

__all__ = ["Simulator", "CommStats", "SimulatorSnapshot"]


@dataclass
class CommStats:
    """Aggregate communication/computation counters of a simulation."""

    nranks: int = 0
    total_flops: float = 0.0
    messages: int = 0
    words_sent: float = 0.0
    barriers: int = 0
    collectives: int = 0
    per_rank_flops: list[float] = field(default_factory=list)

    def max_flops(self) -> float:
        return max(self.per_rank_flops) if self.per_rank_flops else 0.0

    def load_imbalance(self) -> float:
        """Max over mean per-rank flops (1.0 = perfectly balanced)."""
        if not self.per_rank_flops or self.total_flops == 0:
            return 1.0
        mean = self.total_flops / self.nranks
        return self.max_flops() / mean if mean > 0 else 1.0


@dataclass
class SimulatorSnapshot:
    """Frozen copy of a :class:`Simulator`'s timing + mailbox state.

    Produced by :meth:`Simulator.snapshot`; consumed by
    :meth:`Simulator.restore`.  Fault-runtime state (which faults have
    already fired) deliberately lives *outside* the snapshot so a
    restored run does not re-arm a one-shot crash.
    """

    clock: np.ndarray
    flops: np.ndarray
    busy: np.ndarray
    mail: dict[
        tuple[int, int, Any],
        deque[tuple[float, Any, float, tuple[int, ...] | None]],
    ]
    messages: int
    words: float
    barriers: int
    collectives: int


class Simulator:
    """A virtual ``nranks``-PE distributed-memory machine.

    Conforms structurally to the :class:`~repro.machine.transport.Transport`
    contract (it predates the abstraction and is not a subclass).  It is
    the deterministic oracle of the transport family: the only backend
    carrying the cost model, fault injection and race tracing, and the
    reference the real transports' results are bit-compared against.
    """

    #: transport-contract identity (see repro.machine.transport)
    name = "simulator"
    supports_faults = True
    supports_trace = True
    is_simulated = True

    def __init__(
        self,
        nranks: int,
        model: MachineModel,
        *,
        trace: bool = False,
        faults: FaultPlan | None = None,
        copy_payloads: bool = False,
        ledger: ChargeLedger | None = None,
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = int(nranks)
        self.model = model
        #: Opt-in charge introspection (``repro lint --verify-costs``):
        #: every compute/advance/send/barrier/collective charge is
        #: recorded with the driver line that issued it.  ``None`` (the
        #: default) keeps the hot path at a ``None`` check per call and
        #: results bit-identical either way.
        self.ledger = ledger
        #: Debug oracle for transport portability: with
        #: ``copy_payloads=True`` every posted payload is pickle
        #: round-tripped *at post time*, exactly what a serializing
        #: multi-process transport would do.  Unpicklable payloads fail
        #: immediately at the offending ``send``, and any
        #: mutate-after-post aliasing bug shows up as a value divergence
        #: (the receiver sees the post-time snapshot, not the mutated
        #: buffer).  Drivers certified by ``repro lint
        #: --verify-transport`` produce bit-identical results either way.
        self.copy_payloads = bool(copy_payloads)
        self.clock = np.zeros(self.nranks, dtype=np.float64)
        self._flops = np.zeros(self.nranks, dtype=np.float64)
        self._busy = np.zeros(self.nranks, dtype=np.float64)
        # mailbox[(src, dst, tag)] -> FIFO of
        # (arrival_time, payload, nwords, attached_vector_clock_or_None)
        self._mail: dict[
            tuple[int, int, Any],
            deque[tuple[float, Any, float, tuple[int, ...] | None]],
        ] = defaultdict(deque)
        self._messages = 0
        self._words = 0.0
        self._barriers = 0
        self._collectives = 0
        self.faults: FaultRuntime | None = faults.runtime() if faults is not None else None
        self.tracer: AccessTracer | None = None
        if trace:
            # imported lazily: verify pulls in the ilu/graph layers, which
            # depend on this module — eager import would cycle.
            from ..verify.trace import AccessTracer

            self.tracer = AccessTracer(self.nranks)

    # ------------------------------------------------------------------
    # local work
    # ------------------------------------------------------------------

    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
        return int(rank)

    @property
    def superstep(self) -> int:
        """Synchronisation count: completed barriers + collectives.

        This is the clock rank faults are scheduled against — it is
        deterministic across kernel backends, unlike the modelled time.
        """
        return self._barriers + self._collectives

    @property
    def fault_journal(self) -> FaultJournal | None:
        """The structured fault journal, or ``None`` without a plan."""
        return self.faults.journal if self.faults is not None else None

    def _guard_rank(self, rank: int) -> None:
        """Fire pending rank faults (crash raises, stall charges time)."""
        if self.faults is not None:
            stall = self.faults.on_rank_activity(rank, self.superstep)
            if stall > 0:
                self.clock[rank] += stall

    def compute(self, rank: int, flops: float) -> None:
        """Charge ``flops`` floating-point operations to ``rank``."""
        rank = self._check_rank(rank)
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        self._guard_rank(rank)
        if self.ledger is not None:
            self.ledger.record("compute", rank, flops)
        cost = self.model.compute_cost(flops)
        self.clock[rank] += cost
        self._busy[rank] += cost
        self._flops[rank] += flops

    def advance(self, rank: int, seconds: float) -> None:
        """Charge raw wall time (e.g. a memory-copy estimate) to ``rank``."""
        rank = self._check_rank(rank)
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._guard_rank(rank)
        if self.ledger is not None:
            self.ledger.record("advance", rank, seconds)
        self.clock[rank] += seconds

    def pardo(self, thunks: Sequence[Callable[[], Any] | None]) -> list[Any]:
        """Execute one parallel region: one thunk per rank, ``None`` = idle.

        The simulator is the deterministic oracle of the transport
        family: thunks run *sequentially in rank order* on the
        coordinator thread.  Combined with the drivers' read-shared /
        write-own discipline (a thunk returns its updates rather than
        mutating shared state), this fixes the reference semantics that
        :class:`~repro.machine.threads.ThreadTransport` and
        :class:`~repro.machine.processes.ProcessTransport` must
        reproduce bit for bit.  Rank clocks are independent between
        synchronisation points, so sequential execution is
        indistinguishable from concurrent execution under the cost
        model; fault scheduling keys on the superstep clock, which a
        region does not advance.
        """
        if len(thunks) != self.nranks:
            raise ValueError(
                f"pardo expects one thunk per rank ({self.nranks}), got {len(thunks)}"
            )
        return [f() if f is not None else None for f in thunks]

    def heartbeat(self) -> None:
        """Transport-contract conformance: no supervisor to signal.

        Long-running thunks call ``transport.heartbeat()`` so the real
        transports' region supervisor (DESIGN.md §14) knows they are
        alive; on the simulator the region runs inline and the call is
        free — drivers need no backend switch.
        """

    def close(self) -> None:
        """Transport-contract conformance: the simulator holds no workers."""

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, nwords: float, tag: Any = None) -> None:
        """Post a message; the sender is charged the injection overhead.

        Under an active fault plan the message may be dropped (charged
        to the sender, never enqueued), delayed, duplicated or — for
        float payloads — corrupted; every effect is journaled.  Local
        ``src == dst`` hand-offs are not messages and bypass the plan.
        """
        src = self._check_rank(src)
        dst = self._check_rank(dst)
        if nwords < 0:
            raise ValueError("nwords must be non-negative")
        if self.copy_payloads and payload is not None:
            # serialize at post time, before fault effects — a real
            # transport corrupts/duplicates the serialized bytes, not
            # the sender's live object
            payload = pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        self._guard_rank(src)
        attached = self.tracer.on_send(src) if self.tracer is not None else None
        if src == dst:
            # local hand-off: free, but keep FIFO semantics
            self._mail[(src, dst, tag)].append((self.clock[src], payload, 0.0, attached))
            return
        if self.ledger is not None:
            self.ledger.record("send", src, nwords)
        cost = self.model.message_cost(nwords)
        arrival = self.clock[src] + cost
        # sender pays the injection (latency) portion; overlap of the
        # transfer with computation is the usual MPI eager-protocol model
        self.clock[src] += self.model.latency
        self._messages += 1
        self._words += nwords
        if self.faults is not None:
            effect = self.faults.on_send(src, dst, tag, payload, self.superstep)
            if not effect.deliver:
                return
            arrival += effect.extra_delay
            for _ in range(effect.copies):
                self._mail[(src, dst, tag)].append((arrival, effect.payload, nwords, attached))
            if effect.copies > 1:
                self._messages += effect.copies - 1
                self._words += nwords * (effect.copies - 1)
            return
        self._mail[(src, dst, tag)].append((arrival, payload, nwords, attached))

    def recv(self, dst: int, src: int, tag: Any = None) -> Any:
        """Blocking receive: waits (advances the clock) until arrival.

        Under an active fault plan an empty mailbox raises the typed
        :class:`~repro.faults.MessageLost` (the message was dropped and
        the caller may retransmit); without a plan it is a programming
        error and raises the hard deadlock ``RuntimeError``.
        """
        dst = self._check_rank(dst)
        src = self._check_rank(src)
        self._guard_rank(dst)
        box = self._mail[(src, dst, tag)]
        if not box:
            if self.faults is not None:
                self.faults.on_lost(src, dst, tag, self.superstep)
                raise MessageLost(src, dst, tag)
            raise RuntimeError(
                f"deadlock: rank {dst} receives from {src} (tag={tag!r}) "
                "but no message was sent"
            )
        arrival, payload, _, attached = box.popleft()
        if arrival > self.clock[dst]:
            self.clock[dst] = arrival
        if self.tracer is not None:
            self.tracer.on_recv(dst, attached)
        return payload

    def exchange(
        self, messages: list[tuple[int, int, Any, float]], tag: Any = None
    ) -> dict[int, list[tuple[int, Any]]]:
        """Superstep all-to-some exchange.

        ``messages`` is a list of ``(src, dst, payload, nwords)``.  All
        sends are posted, then every destination drains its inbox.
        Returns ``{dst: [(src, payload), ...]}`` in deterministic order.
        """
        for src, dst, payload, nwords in messages:
            self.send(src, dst, payload, nwords, tag=tag)
        out: dict[int, list[tuple[int, Any]]] = defaultdict(list)
        per_dst: dict[int, list[int]] = defaultdict(list)
        for src, dst, _, _ in messages:
            per_dst[dst].append(src)
        for dst in sorted(per_dst):
            for src in per_dst[dst]:
                out[dst].append((src, self.recv(dst, src, tag=tag)))
        return dict(out)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def _guard_all(self) -> None:
        """Every rank participates in a collective — fire pending faults."""
        if self.faults is not None:
            for rank in range(self.nranks):
                self._guard_rank(rank)

    def barrier(self) -> None:
        """Synchronise all ranks: wait for the slowest, plus the cost of a
        log2(p)-step synchronisation tree (zero-payload collective)."""
        self._guard_all()
        if self.ledger is not None:
            self.ledger.record("barrier", -1, 0.0)
        self.clock[:] = self.clock.max() + self.model.collective_cost(self.nranks, 0.0)
        self._barriers += 1
        if self.tracer is not None:
            self.tracer.on_collective()

    def allreduce(self, values: np.ndarray | list, op: str = "sum") -> Any:
        """Reduce a per-rank scalar/array; all ranks get the result.

        Charges a ``log2(p)`` tree of messages and synchronises.
        """
        arr = np.asarray(values)
        if arr.shape[0] != self.nranks:
            raise ValueError(
                f"allreduce expects one value per rank ({self.nranks}), got {arr.shape}"
            )
        self._guard_all()
        nwords = float(np.prod(arr.shape[1:])) if arr.ndim > 1 else 1.0
        if self.ledger is not None:
            self.ledger.record("allreduce", -1, nwords)
        cost = self.model.collective_cost(self.nranks, nwords)
        self.clock[:] = self.clock.max() + cost
        self._collectives += 1
        if self.tracer is not None:
            self.tracer.on_collective()
        if op == "sum":
            return arr.sum(axis=0)
        if op == "max":
            return arr.max(axis=0)
        if op == "min":
            return arr.min(axis=0)
        if op == "or":
            return np.logical_or.reduce(arr, axis=0)
        raise ValueError(f"unsupported allreduce op {op!r}")

    def allgather(self, values: list, nwords_each: float = 1.0) -> list:
        """Every rank contributes one payload; all ranks get the list."""
        if len(values) != self.nranks:
            raise ValueError(
                f"allgather expects one payload per rank ({self.nranks}), got {len(values)}"
            )
        self._guard_all()
        if self.ledger is not None:
            self.ledger.record("allgather", -1, nwords_each * self.nranks)
        cost = self.model.collective_cost(self.nranks, nwords_each * self.nranks)
        self.clock[:] = self.clock.max() + cost
        self._collectives += 1
        if self.tracer is not None:
            self.tracer.on_collective()
        return list(values)

    # ------------------------------------------------------------------
    # access declarations (no-ops unless trace=True)
    # ------------------------------------------------------------------

    def declare_read(self, rank: int, space: str, indices: int | Iterable[int]) -> None:
        """Declare that ``rank`` reads shared object(s) ``(space, indices)``.

        Free when the simulator was built with ``trace=False``.
        """
        if self.tracer is not None:
            if isinstance(indices, (int, np.integer)):
                self.tracer.read(rank, space, int(indices))
            else:
                self.tracer.read_many(rank, space, indices)

    def declare_write(self, rank: int, space: str, index: int) -> None:
        """Declare that ``rank`` writes shared object ``(space, index)``."""
        if self.tracer is not None:
            self.tracer.write(rank, space, int(index))

    # ------------------------------------------------------------------
    # checkpoint / restart
    # ------------------------------------------------------------------

    def snapshot(self) -> SimulatorSnapshot:
        """Capture the timing + mailbox state for a later :meth:`restore`.

        Payloads are not deep-copied: drivers in this codebase treat
        message payloads as immutable once posted.  Fault-runtime state
        (fired crash/stall flags, corruption RNG position) is *not*
        captured — a one-shot crash stays fired across a restore.
        """
        return SimulatorSnapshot(
            clock=self.clock.copy(),
            flops=self._flops.copy(),
            busy=self._busy.copy(),
            mail={key: deque(box) for key, box in self._mail.items() if box},
            messages=self._messages,
            words=self._words,
            barriers=self._barriers,
            collectives=self._collectives,
        )

    def restore(self, snap: SimulatorSnapshot, *, reason: str = "") -> None:
        """Roll clocks, counters and mailboxes back to ``snap``.

        Journals a ``restore`` event when a fault plan is active.
        """
        self.clock[:] = snap.clock
        self._flops[:] = snap.flops
        self._busy[:] = snap.busy
        self._mail = defaultdict(deque, {key: deque(box) for key, box in snap.mail.items()})
        self._messages = snap.messages
        self._words = snap.words
        self._barriers = snap.barriers
        self._collectives = snap.collectives
        if self.faults is not None:
            self.faults.journal.record(
                "restore", superstep=self.superstep, detail=reason
            )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def elapsed(self) -> float:
        """Modelled wall-clock time so far (the slowest rank)."""
        return float(self.clock.max())

    def utilization(self) -> np.ndarray:
        """Per-rank fraction of elapsed time spent computing.

        Everything that is not local computation — message injection,
        waiting at receives, barriers and collectives — counts as
        overhead, so ``1 - utilization`` is the parallel-overhead share
        the paper's speedup discussion revolves around.
        """
        total = self.elapsed()
        if total <= 0:
            return np.ones(self.nranks)
        return self._busy / total

    def pending_messages(self) -> int:
        """Messages sent but never received (should be 0 at the end)."""
        return sum(len(q) for q in self._mail.values())

    def stats(self) -> CommStats:
        return CommStats(
            nranks=self.nranks,
            total_flops=float(self._flops.sum()),
            messages=self._messages,
            words_sent=self._words,
            barriers=self._barriers,
            collectives=self._collectives,
            per_rank_flops=[float(f) for f in self._flops],
        )
