"""DET003 bad twin: equality against nonzero float literals."""


def classify(x, y):
    if x == 0.5:
        return "half"
    if y != 2.5:
        return "other"
    return "match"
