"""File collection, parsing, and rule execution."""

from __future__ import annotations

import ast
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from .astutil import attach_parents
from .cache import AnalysisCache
from .findings import Finding, sort_findings
from .registry import Rule, all_rules

__all__ = [
    "LintConfig",
    "ModuleContext",
    "ProjectContext",
    "run_lint",
    "find_project_root",
    "DEFAULT_PROFILES",
    "DEFAULT_EXCLUDE",
]

#: Per-directory rule profiles: ``relpath prefix -> disabled rule-id
#: prefixes``.  The SPMD protocol rules, the kernels-parity rules, and
#: the transport-portability rules describe obligations of the
#: *drivers*; test and benchmark code exercises the simulator in
#: intentionally-partial ways, so only the determinism/breakdown
#: families apply there.  Tests additionally assert exact float values
#: against constructed data on purpose, so DET003 (float-equality) is
#: off for them.  The PERF vectorization family is likewise scoped to
#: library code — tests and benchmarks build scalar shapes deliberately
#: (oracles, per-element assertions, timing loops).
DEFAULT_PROFILES: dict[str, tuple[str, ...]] = {
    "tests/": ("SPMD", "PAR", "TRN", "DET003", "PERF"),
    "benchmarks/": ("SPMD", "PAR", "TRN", "PERF"),
}

#: Paths never linted: rule fixtures are deliberate violations.
DEFAULT_EXCLUDE: tuple[str, ...] = ("tests/lint/fixtures/",)


@dataclass
class LintConfig:
    """Knobs for a lint run (all optional)."""

    #: Restrict to these rule ids (empty = all registered).
    select: tuple[str, ...] = ()
    #: Drop these rule ids after selection.
    ignore: tuple[str, ...] = ()
    #: Project root; auto-discovered from the lint paths when None.
    project_root: Path | None = None
    #: Directory holding the kernels parity tests, relative to the root.
    kernels_test_dir: str = "tests/kernels"
    #: ``relpath prefix -> disabled rule-id prefixes`` (see module docs).
    profiles: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_PROFILES)
    )
    #: Project-relative path prefixes to skip entirely.
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE
    #: Reuse per-module findings from ``.repro-lint-cache/``.
    use_cache: bool = False

    def signature(self) -> str:
        """Stable digest input covering everything that affects results."""
        return json.dumps(
            {
                "select": self.select,
                "ignore": self.ignore,
                "profiles": {k: list(v) for k, v in sorted(self.profiles.items())},
                "exclude": list(self.exclude),
            },
            sort_keys=True,
        )


@dataclass
class ModuleContext:
    """One parsed source file handed to ``check_module``."""

    path: Path
    relpath: str
    tree: ast.Module
    lines: list[str]


@dataclass
class ProjectContext:
    """Everything a cross-file rule needs."""

    root: Path
    modules: list[ModuleContext]
    config: LintConfig = field(default_factory=LintConfig)


@dataclass
class LintStats:
    """Optional per-run instrumentation (``repro lint --stats``)."""

    rule_seconds: dict[str, float] = field(default_factory=dict)
    files: int = 0
    cached_files: int = 0
    total_seconds: float = 0.0

    def add(self, rule_id: str, seconds: float) -> None:
        self.rule_seconds[rule_id] = self.rule_seconds.get(rule_id, 0.0) + seconds

    def render(self) -> str:
        lines = [
            f"{self.files} file(s) analyzed, {self.cached_files} from cache, "
            f"{self.total_seconds:.3f}s total"
        ]
        for rid, sec in sorted(
            self.rule_seconds.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {rid:<8} {sec * 1000:8.1f} ms")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable form for the CI timing artifact."""
        return json.dumps(
            {
                "files": self.files,
                "cached_files": self.cached_files,
                "total_seconds": round(self.total_seconds, 6),
                "rule_seconds": {
                    rid: round(sec, 6)
                    for rid, sec in sorted(self.rule_seconds.items())
                },
            },
            indent=2,
            sort_keys=True,
        )


def find_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the nearest ``pyproject.toml``/``.git``."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return cur


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand directories to ``**/*.py``, de-duplicated, sorted."""
    seen: dict[Path, None] = {}
    for p in paths:
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f.resolve(), None)
        elif p.suffix == ".py":
            seen.setdefault(p.resolve(), None)
    return sorted(seen)


def parse_module(path: Path, root: Path) -> ModuleContext | None:
    """Parse one file; unreadable/unparsable files are skipped (None)."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    attach_parents(tree)
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return ModuleContext(path=path, relpath=rel, tree=tree, lines=source.splitlines())


def _active_rules(config: LintConfig) -> list[Rule]:
    rules = all_rules()
    if config.select:
        rules = [r for r in rules if r.id in config.select]
    if config.ignore:
        rules = [r for r in rules if r.id not in config.ignore]
    return rules


def _disabled_prefixes(relpath: str, config: LintConfig) -> tuple[str, ...]:
    for prefix, disabled in config.profiles.items():
        if relpath.startswith(prefix):
            return disabled
    return ()


def _rule_allowed(rule_id: str, relpath: str, config: LintConfig) -> bool:
    return not any(
        rule_id.startswith(p) for p in _disabled_prefixes(relpath, config)
    )


def _excluded(relpath: str, config: LintConfig) -> bool:
    return any(relpath.startswith(p) for p in config.exclude)


def run_lint(
    paths: list[Path | str],
    config: LintConfig | None = None,
    stats: LintStats | None = None,
) -> list[Finding]:
    """Lint ``paths`` (files or directories) and return sorted findings.

    Per-module rules honour the directory profiles and the incremental
    cache; project rules always run, with their findings filtered
    through the same profiles afterwards.
    """
    config = config or LintConfig()
    t_start = time.perf_counter()
    path_objs = [Path(p) for p in paths]
    root = config.project_root or (
        find_project_root(path_objs[0]) if path_objs else Path.cwd()
    )
    # a file named explicitly is always linted with every rule — the
    # exclude list and directory profiles govern *discovered* files only
    explicit = {p.resolve() for p in path_objs if p.is_file()}
    modules = [
        m
        for f in collect_files(path_objs)
        if (m := parse_module(f, root)) is not None
        and (f in explicit or not _excluded(m.relpath, config))
    ]
    explicit_rel = {m.relpath for m in modules if m.path.resolve() in explicit}
    project = ProjectContext(root=root, modules=modules, config=config)
    rules = _active_rules(config)
    cache = (
        AnalysisCache(root, config_sig=config.signature())
        if config.use_cache
        else None
    )

    findings: list[Finding] = []
    for module in modules:
        if stats is not None:
            stats.files += 1
        mod_rules = [
            r
            for r in rules
            if module.relpath in explicit_rel
            or _rule_allowed(r.id, module.relpath, config)
        ]
        key = None
        if cache is not None:
            source = "\n".join(module.lines)
            # explicit files run the full ruleset; key them separately
            tag = "!" if module.relpath in explicit_rel else ""
            key = cache.key(module.relpath + tag, source)
            cached = cache.get(key)
            if cached is not None:
                findings.extend(cached)
                if stats is not None:
                    stats.cached_files += 1
                continue
        mod_findings: list[Finding] = []
        for rule in mod_rules:
            t0 = time.perf_counter()
            mod_findings.extend(rule.check_module(module))
            if stats is not None:
                stats.add(rule.id, time.perf_counter() - t0)
        if cache is not None and key is not None:
            cache.put(key, mod_findings)
        findings.extend(mod_findings)

    for rule in rules:
        t0 = time.perf_counter()
        project_findings = [
            f
            for f in rule.check_project(project)
            if f.path in explicit_rel or _rule_allowed(f.rule, f.path, config)
        ]
        if stats is not None:
            stats.add(rule.id, time.perf_counter() - t0)
        findings.extend(project_findings)

    if stats is not None:
        stats.total_seconds = time.perf_counter() - t_start
    return sort_findings(findings)
