"""Parity of the vectorized dropping kernels with repro.ilu.dropping.

The vectorized selection must be *bit-exact* against the reference —
same lexicographic ``(-|v|, col)`` order, same tie-break toward the
lower column index — so every comparison here is ``array_equal``, not
``allclose``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilu.dropping import keep_largest, second_rule
from repro.kernels import keep_largest_vec, second_rule_vec
from repro.kernels.dropping import keep_largest_sorted


@st.composite
def sparse_rows(draw, max_n=24):
    """A row: unique columns in [0, n) with finite values, plus n."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    cols = draw(
        st.lists(st.integers(0, n - 1), unique=True, min_size=0, max_size=n)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=len(cols),
            max_size=len(cols),
        )
    )
    return n, np.array(cols, dtype=np.int64), np.array(vals, dtype=np.float64)


class TestKeepLargestVec:
    @settings(max_examples=200, deadline=None)
    @given(sparse_rows(), st.integers(-1, 8))
    def test_bit_exact_vs_reference(self, row, m):
        _n, cols, vals = row
        rc, rv = keep_largest(cols, vals, m)
        vc, vv = keep_largest_vec(cols, vals, m)
        assert np.array_equal(rc, vc)
        assert np.array_equal(rv, vv)

    def test_tie_break_toward_lower_column(self):
        cols = np.array([5, 1, 3], dtype=np.int64)
        vals = np.array([2.0, -2.0, 2.0])
        vc, vv = keep_largest_vec(cols, vals, 2)
        assert np.array_equal(vc, [1, 3])
        assert np.array_equal(vv, [-2.0, 2.0])

    def test_empty_and_nonpositive_m(self):
        cols = np.array([0, 1], dtype=np.int64)
        vals = np.array([1.0, 2.0])
        for c, v in (keep_largest_vec(cols, vals, 0), keep_largest_vec(cols[:0], vals[:0], 3)):
            assert c.size == 0 and v.size == 0


class TestKeepLargestSorted:
    @settings(max_examples=200, deadline=None)
    @given(sparse_rows(), st.integers(-1, 8))
    def test_matches_vec_on_sorted_input(self, row, m):
        _n, cols, vals = row
        order = np.argsort(cols, kind="stable")
        cols, vals = cols[order], vals[order]
        rc, rv = keep_largest_vec(cols, vals, m)
        sc, sv = keep_largest_sorted(cols, vals, m)
        assert np.array_equal(rc, sc)
        assert np.array_equal(rv, sv)


class TestSecondRuleVec:
    @settings(max_examples=200, deadline=None)
    @given(
        sparse_rows(),
        st.integers(0, 23),
        st.floats(0, 3, allow_nan=False),
        st.integers(0, 6),
    )
    def test_bit_exact_vs_reference(self, row, i, tau, m):
        n, cols, vals = row
        i = i % n
        (rlc, rlv), rd, (ruc, ruv) = second_rule(cols, vals, i, tau, m)
        (vlc, vlv), vd, (vuc, vuv) = second_rule_vec(cols, vals, i, tau, m)
        assert rd == vd
        assert np.array_equal(rlc, vlc) and np.array_equal(rlv, vlv)
        assert np.array_equal(ruc, vuc) and np.array_equal(ruv, vuv)

    def test_diagonal_always_survives(self):
        cols = np.array([0, 1, 2], dtype=np.int64)
        vals = np.array([1e-12, 5.0, -4.0])
        (lc, _lv), diag, (uc, _uv) = second_rule_vec(cols, vals, 0, 1.0, 2)
        assert diag == 1e-12
        assert lc.size == 0
        assert np.array_equal(uc, [1, 2])
