"""Property-based corruption tests (hypothesis): for a random CSR
system with one randomly corrupted factor entry, a guarded
preconditioner apply either raises the typed NaN/Inf error or returns
an all-finite vector — corruption can never silently escape the apply
boundary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilu import ILUTParams, ilut
from repro.resilience import (
    NonFiniteError,
    NumericalBreakdown,
    RobustPreconditioner,
    assert_finite,
)
from repro.solvers import DiagonalPreconditioner, ILUPreconditioner
from repro.sparse import CSRMatrix


@st.composite
def csr_systems(draw):
    """Small random diagonally-dominant CSR matrix + dense rhs."""
    n = draw(st.integers(4, 16))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((n, n)) < 0.3, rng.standard_normal((n, n)), 0.0)
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(dense), rng.standard_normal(n)


CORRUPTIONS = st.sampled_from(["nan", "inf", "-inf", "huge", "zero"])


def _poison(value: str, rng: np.random.Generator) -> float:
    return {
        "nan": float("nan"),
        "inf": float("inf"),
        "-inf": float("-inf"),
        "huge": 1e308,
        "zero": 0.0,
    }[value]


@pytest.mark.filterwarnings("ignore::RuntimeWarning")  # inf/nan arithmetic is the point
@settings(max_examples=60, deadline=None)
@given(csr_systems(), CORRUPTIONS, st.integers(0, 2**31 - 1))
def test_guarded_apply_detects_or_stays_finite(system, corruption, pick_seed):
    A, r = system
    factors = ilut(A, ILUTParams(fill=A.shape[0], threshold=0.0))
    rng = np.random.default_rng(pick_seed)
    target = factors.U if rng.random() < 0.5 else factors.L
    if target.data.size == 0:
        target = factors.U  # L can be empty for tiny/diagonal systems
    idx = int(rng.integers(target.data.size))
    target.data[idx] = _poison(corruption, rng)

    M = ILUPreconditioner(factors, fast=False, guard=True)
    try:
        out = M.apply(r)
    except NumericalBreakdown as err:
        # typed detection: NonFiniteError at the apply boundary, or
        # ZeroPivotError from the triangular solve on a zeroed diagonal
        assert 0 <= err.row < A.shape[0]
    else:
        assert np.all(np.isfinite(out))


@settings(max_examples=40, deadline=None)
@given(csr_systems(), st.integers(0, 2**31 - 1))
def test_fallback_chain_survives_nan_poisoning(system, pick_seed):
    A, r = system
    factors = ilut(A, ILUTParams(fill=A.shape[0], threshold=0.0))
    rng = np.random.default_rng(pick_seed)
    idx = int(rng.integers(factors.U.data.size))
    factors.U.data[idx] = np.nan

    M = RobustPreconditioner(
        [ILUPreconditioner(factors, fast=False), DiagonalPreconditioner()]
    ).setup(A)
    out = M.apply(r)
    assert np.all(np.isfinite(out))
    if M.failure_report:
        # the poisoned tier was detected at the probe, not silently used
        assert M.failure_report.records[0].error_type == "NonFiniteError"
        assert isinstance(M.active, DiagonalPreconditioner)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(allow_nan=True, allow_infinity=True, width=64),
        min_size=1,
        max_size=64,
    )
)
def test_assert_finite_is_exact(values):
    x = np.asarray(values, dtype=np.float64)
    if np.all(np.isfinite(x)):
        assert assert_finite(x) is x
    else:
        first_bad = int(np.flatnonzero(~np.isfinite(x))[0])
        try:
            assert_finite(x)
        except NonFiniteError as err:
            assert err.row == first_bad
        else:
            raise AssertionError("guard missed a non-finite entry")
