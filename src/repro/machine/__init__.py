"""Distributed-memory machine layer: the transport abstraction behind
the SPMD drivers.

Three interchangeable transports implement one contract (see
``transport.py`` / DESIGN.md §13): the cost-model :class:`Simulator`
(per-rank virtual clocks, Cray T3D preset and others; the deterministic
oracle and the only fault/race-instrumented backend), the
:class:`ThreadTransport` (one worker thread per rank), and the
:class:`ProcessTransport` (forked worker processes, shared-memory
arrays).  ``resolve_transport`` maps the drivers' ``transport=``
keyword onto an instance.
"""

from .ledger import ChargeEvent, ChargeLedger
from .model import CRAY_T3D, IDEAL, WORKSTATION_CLUSTER, MachineModel
from .processes import ProcessTransport
from .simulator import CommStats, Simulator, SimulatorSnapshot
from .supervision import (
    PortableFaultRuntime,
    SupervisionPolicy,
    unportable_faults,
)
from .threads import ThreadTransport
from .transport import (
    SUPERVISED_FAILURES,
    TRANSPORT_NAMES,
    LocalTransport,
    ResultUnpicklable,
    Transport,
    TransportCapabilityError,
    TransportError,
    TransportWorkerError,
    WorkerCrashed,
    WorkerHung,
    is_transport,
    resolve_entry_transport,
    resolve_transport,
    transport_name,
)

__all__ = [
    "MachineModel",
    "CRAY_T3D",
    "WORKSTATION_CLUSTER",
    "IDEAL",
    "Simulator",
    "CommStats",
    "ChargeEvent",
    "ChargeLedger",
    "SimulatorSnapshot",
    "Transport",
    "LocalTransport",
    "ThreadTransport",
    "ProcessTransport",
    "TransportError",
    "TransportCapabilityError",
    "TransportWorkerError",
    "WorkerCrashed",
    "WorkerHung",
    "ResultUnpicklable",
    "SUPERVISED_FAILURES",
    "SupervisionPolicy",
    "PortableFaultRuntime",
    "unportable_faults",
    "is_transport",
    "resolve_transport",
    "resolve_entry_transport",
    "transport_name",
    "TRANSPORT_NAMES",
]
