"""The shared SolveResult hierarchy and the Preconditioner protocol."""

import numpy as np
import pytest

from repro import ILUTParams, poisson2d
from repro.ilu import ilut
from repro.solvers import (
    DiagonalPreconditioner,
    IdentityPreconditioner,
    ILUPreconditioner,
    Preconditioner,
    SolveResult,
    bicgstab,
    cg,
    gmres,
    jacobi,
    prepare_preconditioner,
)
from repro.solvers.result import (
    BiCGSTABResult,
    CGResult,
    GMRESResult,
    StationaryResult,
)


@pytest.fixture(scope="module")
def system():
    A = poisson2d(10)
    b = A @ np.ones(A.shape[0])
    return A, b


class TestSolveResultShape:
    def test_every_solver_returns_a_solve_result(self, system):
        A, b = system
        for res in [
            gmres(A, b, restart=10),
            cg(A, b),
            bicgstab(A, b),
            jacobi(A, b, maxiter=5),
        ]:
            assert isinstance(res, SolveResult)
            assert res.x.shape == b.shape
            assert isinstance(res.converged, bool)
            assert res.iterations >= 0
            assert res.elapsed > 0.0
            assert res.residual_history, "history must include the initial norm"

    def test_subclass_types(self, system):
        A, b = system
        assert isinstance(gmres(A, b), GMRESResult)
        assert isinstance(cg(A, b), CGResult)
        assert isinstance(bicgstab(A, b), BiCGSTABResult)
        assert isinstance(jacobi(A, b, maxiter=3), StationaryResult)

    def test_residual_history_is_alias(self, system):
        A, b = system
        res = cg(A, b)
        assert res.residual_history is res.residual_norms

    def test_counters_present(self, system):
        A, b = system
        g = gmres(A, b, restart=10)
        assert g.num_matvec > 0 and g.num_precond > 0
        assert cg(A, b).num_matvec > 0
        assert bicgstab(A, b).breakdown is False

    def test_exact_initial_guess_short_circuits(self, system):
        A, b = system
        res = gmres(A, b, x0=np.ones(b.shape[0]))
        assert res.converged and res.iterations == 0
        assert res.elapsed >= 0.0


class TestPreconditionerProtocol:
    def test_base_setup_returns_self(self, system):
        p = Preconditioner()
        assert p.setup(system[0]) is p

    def test_base_apply_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Preconditioner().apply(np.ones(3))

    def test_base_flops_zero(self):
        assert Preconditioner().flops() == 0.0

    def test_call_delegates_to_apply(self):
        r = np.arange(3.0)
        assert np.array_equal(IdentityPreconditioner()(r), r)

    def test_diagonal_deferred_setup(self, system):
        A, b = system
        res = cg(A, b, M=DiagonalPreconditioner())
        assert res.converged

    def test_diagonal_setup_idempotent(self, system):
        A, _ = system
        M = DiagonalPreconditioner().setup(A)
        inv = M._inv_diag
        assert M.setup(A) is M and M._inv_diag is inv

    def test_diagonal_apply_before_setup_raises(self):
        with pytest.raises(RuntimeError):
            DiagonalPreconditioner().apply(np.ones(3))

    def test_diagonal_flops(self, system):
        A, _ = system
        assert DiagonalPreconditioner(A).flops() == float(A.shape[0])

    def test_ilu_requires_factors_or_params(self):
        with pytest.raises(TypeError):
            ILUPreconditioner()

    def test_ilu_rejects_both(self, system):
        A, _ = system
        f = ilut(A, ILUTParams(fill=5, threshold=1e-3))
        with pytest.raises(TypeError):
            ILUPreconditioner(f, params=ILUTParams(fill=5, threshold=1e-3))

    def test_ilu_deferred_setup_through_gmres(self, system):
        A, b = system
        M = ILUPreconditioner(params=ILUTParams(fill=10, threshold=1e-4))
        res = gmres(A, b, restart=10, M=M)
        assert res.converged
        assert M.factors is not None

    def test_ilu_flops_formula(self, system):
        A, _ = system
        f = ilut(A, ILUTParams(fill=5, threshold=1e-3))
        n = f.n
        expected = float(2 * f.L.nnz + 2 * (f.U.nnz - n) + n)
        assert ILUPreconditioner(f).flops() == expected

    def test_ilu_fast_and_reference_agree(self, system):
        A, b = system
        f = ilut(A, ILUTParams(fill=10, threshold=1e-4))
        r = np.sin(np.arange(b.shape[0]))
        y_slow = ILUPreconditioner(f, fast=False).apply(r)
        y_fast = ILUPreconditioner(f, fast=True).apply(r)
        scale = np.max(np.abs(y_slow))
        assert np.max(np.abs(y_slow - y_fast)) / scale <= 1e-12


class TestPreparePreconditioner:
    def test_none_becomes_identity(self, system):
        M = prepare_preconditioner(None, system[0])
        assert isinstance(M, IdentityPreconditioner)

    def test_conformer_gets_setup(self, system):
        A, _ = system
        M = prepare_preconditioner(DiagonalPreconditioner(), A)
        assert M._inv_diag is not None

    def test_bare_apply_object_passes_through(self, system):
        class Bare:
            def apply(self, r):
                return r * 2.0

        bare = Bare()
        assert prepare_preconditioner(bare, system[0]) is bare

    def test_bare_callable_works_in_solver(self, system):
        A, b = system

        class Bare:
            def apply(self, r):
                return r.copy()

        res = cg(A, b, M=Bare())
        assert res.converged
