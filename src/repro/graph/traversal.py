"""Graph traversal utilities: BFS levels, connected components,
pseudo-peripheral vertices.

Used by the partitioner (component handling), the nested-dissection
ordering, and tests that verify domain connectivity.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .structure import Graph

__all__ = ["bfs_levels", "connected_components", "pseudo_peripheral_vertex"]


def bfs_levels(graph: Graph, source: int, *, mask: np.ndarray | None = None) -> np.ndarray:
    """BFS distance of every vertex from ``source`` (-1 if unreachable).

    ``mask`` restricts the traversal to a vertex subset (others are
    treated as removed).
    """
    n = graph.nvertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range")
    levels = np.full(n, -1, dtype=np.int64)
    if mask is not None and not mask[source]:
        raise ValueError("source vertex is masked out")
    levels[source] = 0
    q = deque([source])
    while q:
        v = q.popleft()
        for u in graph.neighbors(v):
            u = int(u)
            if levels[u] == -1 and (mask is None or mask[u]):
                levels[u] = levels[v] + 1
                q.append(u)
    return levels


def connected_components(graph: Graph, *, mask: np.ndarray | None = None) -> np.ndarray:
    """Component id per vertex (masked-out vertices get -1)."""
    n = graph.nvertices
    comp = np.full(n, -1, dtype=np.int64)
    cid = 0
    for s in range(n):
        if comp[s] != -1 or (mask is not None and not mask[s]):
            continue
        comp[s] = cid
        q = deque([s])
        while q:
            v = q.popleft()
            for u in graph.neighbors(v):
                u = int(u)
                if comp[u] == -1 and (mask is None or mask[u]):
                    comp[u] = cid
                    q.append(u)
        cid += 1
    return comp


def pseudo_peripheral_vertex(graph: Graph, *, start: int = 0, mask: np.ndarray | None = None) -> int:
    """A vertex of (near-)maximal eccentricity (George-Liu heuristic).

    Repeatedly BFS from the current vertex and jump to a farthest vertex
    until the eccentricity stops growing.  Standard seed for bandwidth-
    and dissection-style orderings.
    """
    v = start
    if mask is not None and not mask[v]:
        cand = np.flatnonzero(mask)
        if cand.size == 0:
            raise ValueError("mask excludes every vertex")
        v = int(cand[0])
    ecc = -1
    while True:
        levels = bfs_levels(graph, v, mask=mask)
        new_ecc = int(levels.max())
        if new_ecc <= ecc:
            return v
        ecc = new_ecc
        far = np.flatnonzero(levels == new_ecc)
        v = int(far[0])
