"""TRN003 clean twin: module-level reads and function-local state.

Reading a module constant is transport-safe (every process has the
same copy); a container created inside the function is owned by the
executing process, so mutating it hides nothing.
"""

_TAGS = {"halo": 7}


def tagged_exchange(sim, rank, nbr, val):
    tag = _TAGS["halo"]
    sim.send(rank, nbr, val, 1.0, tag=tag)
    return sim.recv(rank, nbr, tag=tag)


def local_count(sim, rank, nbr, vals):
    sent = {}
    for i, v in enumerate(vals):
        sim.send(rank, nbr, v, 1.0, tag=i)
        sent[i] = sim.recv(rank, nbr, tag=i)
    return sent
