"""Block-Jacobi ILUT preconditioner — the zero-communication strawman.

The cheapest way to "parallelise" an incomplete factorization is to
ignore the coupling between domains entirely: each processor ILUT-
factors its diagonal block and applies it with no communication at all.
The paper's whole point is that this throws away the interface coupling
that makes ILUT effective; this module implements the strawman so the
library (and the ablation bench) can quantify exactly how much the
two-phase interface factorization buys as p grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decomp import DomainDecomposition, decompose
from ..machine import CRAY_T3D, MachineModel, Simulator
from ..sparse import CSRMatrix
from .factors import ILUFactors
from .ilut import ilut
from .params import ILUTParams

__all__ = ["BlockJacobiILU", "block_jacobi_ilut"]


@dataclass
class BlockJacobiILU:
    """Per-domain ILUT factors applied block-wise (no coupling).

    ``apply`` solves each domain's block system independently — the
    application is embarrassingly parallel, but the preconditioner
    ignores every cross-domain entry of A.
    """

    decomp: DomainDecomposition
    blocks: list[ILUFactors]
    rows: list[np.ndarray]
    modeled_factor_time: float | None = None

    @property
    def nranks(self) -> int:
        return self.decomp.nranks

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        n = self.decomp.A.shape[0]
        if r.shape != (n,):
            raise ValueError(f"r has shape {r.shape}, expected ({n},)")
        out = np.zeros(n)
        for rows, factors in zip(self.rows, self.blocks):
            if rows.size:
                out[rows] = factors.solve(r[rows])
        return out

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)

    def total_nnz(self) -> int:
        return sum(f.nnz for f in self.blocks)


def block_jacobi_ilut(
    A: CSRMatrix,
    m: int,
    t: float,
    nranks: int,
    *,
    decomp: DomainDecomposition | None = None,
    model: MachineModel = CRAY_T3D,
    simulate: bool = True,
    seed: int = 0,
) -> BlockJacobiILU:
    """Factor each domain's diagonal block with ILUT(m, t).

    The modelled factorization time is the slowest rank's local ILUT —
    no communication, no synchronisation beyond the trailing barrier.
    """
    if decomp is None:
        decomp = decompose(A, nranks, seed=seed)
    elif decomp.nranks != nranks:
        raise ValueError(
            f"decomp has {decomp.nranks} ranks but nranks={nranks} was requested"
        )
    sim = Simulator(nranks, model) if simulate else None
    blocks: list[ILUFactors] = []
    row_sets: list[np.ndarray] = []
    for r in range(nranks):
        rows = decomp.owned_rows(r)
        row_sets.append(rows)
        if rows.size == 0:
            blocks.append(
                ILUFactors(
                    L=CSRMatrix.zeros(0),
                    U=CSRMatrix.zeros(0),
                    perm=np.empty(0, dtype=np.int64),
                )
            )
            continue
        block = A.submatrix(rows, rows)
        factors = ilut(block, ILUTParams(fill=m, threshold=t))
        blocks.append(factors)
        if sim is not None:
            sim.compute(r, float(factors.stats.get("flops", 0)))
    if sim is not None:
        sim.barrier()
    return BlockJacobiILU(
        decomp=decomp,
        blocks=blocks,
        rows=row_sets,
        modeled_factor_time=sim.elapsed() if sim is not None else None,
    )
