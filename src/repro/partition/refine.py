"""Greedy k-way boundary refinement (KL/FM style).

After projecting a coarse partition to a finer graph, boundary vertices
are swept in random order; each is moved to the neighbouring part with
the largest positive gain (reduction in edge-cut), subject to a balance
constraint.  A few passes of this simple refinement recover most of the
quality of full Kernighan-Lin at a fraction of the cost — the same
trade the multilevel k-way algorithm makes.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["edge_cut", "partition_balance", "refine_kway"]


def edge_cut(graph: Graph, part: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    part = np.asarray(part, dtype=np.int64)
    rows = np.repeat(np.arange(graph.nvertices, dtype=np.int64), np.diff(graph.xadj))
    cut = graph.adjwgt[part[rows] != part[graph.adjncy]].sum()
    return float(cut) / 2.0  # each undirected edge stored twice


def partition_balance(graph: Graph, part: np.ndarray, nparts: int) -> float:
    """Load imbalance: max part weight / ideal part weight (>= 1)."""
    weights = np.zeros(nparts, dtype=np.float64)
    np.add.at(weights, np.asarray(part, dtype=np.int64), graph.vwgt)
    ideal = graph.total_vertex_weight() / nparts
    if ideal == 0:
        return 1.0
    return float(weights.max() / ideal)


def refine_kway(
    graph: Graph,
    part: np.ndarray,
    nparts: int,
    *,
    max_imbalance: float = 1.05,
    passes: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """In-place greedy refinement; returns the (modified) part array."""
    part = np.asarray(part, dtype=np.int64)
    n = graph.nvertices
    rng = np.random.default_rng(seed)
    weights = np.zeros(nparts, dtype=np.float64)
    np.add.at(weights, part, graph.vwgt)
    ideal = graph.total_vertex_weight() / max(nparts, 1)
    max_weight = max_imbalance * ideal

    for _ in range(passes):
        moved = 0
        # boundary vertices only
        boundary = []
        for v in range(n):
            nbrs = graph.neighbors(v)
            if nbrs.size and np.any(part[nbrs] != part[v]):
                boundary.append(v)
        if not boundary:
            break
        order = rng.permutation(len(boundary))
        for bi in order:
            v = boundary[bi]
            pv = part[v]
            nbrs = graph.neighbors(v)
            wgts = graph.neighbor_weights(v)
            # connectivity to each adjacent part
            conn: dict[int, float] = {}
            for u, w in zip(nbrs, wgts):
                conn[int(part[u])] = conn.get(int(part[u]), 0.0) + float(w)
            internal = conn.get(int(pv), 0.0)
            best_part, best_gain = -1, 0.0
            for q, c in conn.items():
                if q == pv:
                    continue
                if weights[q] + graph.vwgt[v] > max_weight:
                    continue
                # don't empty a part entirely
                if weights[pv] - graph.vwgt[v] <= 0 and nparts > 1:
                    continue
                gain = c - internal
                if gain > best_gain + 1e-12:
                    best_part, best_gain = q, gain
            if best_part >= 0:
                weights[pv] -= graph.vwgt[v]
                weights[best_part] += graph.vwgt[v]
                part[v] = best_part
                moved += 1
        if moved == 0:
            break
    return part
