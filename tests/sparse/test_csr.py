"""Unit tests for the CSR matrix."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix

from ..conftest import to_scipy


def dense_example():
    return np.array(
        [
            [4.0, -1.0, 0.0, 0.0],
            [-1.0, 4.0, -1.0, 0.0],
            [0.0, -1.0, 4.0, -1.0],
            [0.0, 0.0, -1.0, 4.0],
        ]
    )


class TestConstruction:
    def test_from_dense_roundtrip(self):
        D = dense_example()
        A = CSRMatrix.from_dense(D)
        assert np.allclose(A.to_dense(), D)
        assert A.nnz == 10

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.ones(3))

    def test_from_coo_sums_duplicates(self):
        A = CSRMatrix.from_coo([0, 0], [1, 1], [2.0, 3.0], (2, 2))
        assert A.get(0, 1) == 5.0

    def test_from_coo_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            CSRMatrix.from_coo([5], [0], [1.0], (2, 2))
        with pytest.raises(IndexError):
            CSRMatrix.from_coo([0], [5], [1.0], (2, 2))

    def test_identity(self):
        eye = CSRMatrix.identity(4)
        assert np.allclose(eye.to_dense(), np.eye(4))

    def test_zeros(self):
        Z = CSRMatrix.zeros(3, 5)
        assert Z.shape == (3, 5)
        assert Z.nnz == 0

    def test_validation_catches_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 2]), np.array([0]), np.array([1.0]), (1, 1))

    def test_validation_catches_unsorted_row(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                np.array([0, 2]),
                np.array([1, 0]),
                np.array([1.0, 2.0]),
                (1, 2),
            )

    def test_validation_catches_col_out_of_range(self):
        with pytest.raises(IndexError):
            CSRMatrix(np.array([0, 1]), np.array([4]), np.array([1.0]), (1, 2))


class TestAccessors:
    def test_row_view(self):
        A = CSRMatrix.from_dense(dense_example())
        cols, vals = A.row(1)
        assert cols.tolist() == [0, 1, 2]
        assert vals.tolist() == [-1.0, 4.0, -1.0]

    def test_get_missing_is_zero(self):
        A = CSRMatrix.from_dense(dense_example())
        assert A.get(0, 3) == 0.0

    def test_diagonal(self):
        A = CSRMatrix.from_dense(dense_example())
        assert np.allclose(A.diagonal(), 4.0)

    def test_row_nnz(self):
        A = CSRMatrix.from_dense(dense_example())
        assert A.row_nnz().tolist() == [2, 3, 3, 2]

    def test_iter_rows_covers_all(self):
        A = CSRMatrix.from_dense(dense_example())
        seen = [i for i, _, _ in A.iter_rows()]
        assert seen == [0, 1, 2, 3]


class TestAlgebra:
    def test_matvec_matches_dense(self, rng):
        D = rng.standard_normal((6, 4))
        D[np.abs(D) < 0.7] = 0.0
        A = CSRMatrix.from_dense(D)
        x = rng.standard_normal(4)
        assert np.allclose(A @ x, D @ x)

    def test_matvec_shape_check(self):
        A = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            A.matvec(np.ones(4))

    def test_matvec_empty_rows(self):
        A = CSRMatrix.zeros(3)
        assert np.allclose(A @ np.ones(3), 0.0)

    def test_rmatvec_matches_transpose(self, rng):
        D = rng.standard_normal((5, 7))
        D[np.abs(D) < 0.5] = 0.0
        A = CSRMatrix.from_dense(D)
        y = rng.standard_normal(5)
        assert np.allclose(A.rmatvec(y), D.T @ y)

    def test_transpose(self, rng):
        D = rng.standard_normal((5, 3))
        D[np.abs(D) < 0.5] = 0.0
        A = CSRMatrix.from_dense(D)
        assert np.allclose(A.transpose().to_dense(), D.T)

    def test_double_transpose_identity(self, small_poisson):
        A = small_poisson
        assert A.transpose().transpose().allclose(A)

    def test_add(self):
        A = CSRMatrix.from_dense(dense_example())
        B = CSRMatrix.identity(4)
        assert np.allclose((A + B).to_dense(), dense_example() + np.eye(4))

    def test_sub_self_is_zero(self, small_poisson):
        R = small_poisson - small_poisson
        assert np.allclose(R.data, 0.0)

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix.identity(3) + CSRMatrix.identity(4)

    def test_scale(self):
        A = CSRMatrix.identity(3).scale(2.5)
        assert np.allclose(A.to_dense(), 2.5 * np.eye(3))

    def test_matmat_matches_dense(self, rng):
        D1 = rng.standard_normal((4, 5))
        D2 = rng.standard_normal((5, 3))
        D1[np.abs(D1) < 0.5] = 0
        D2[np.abs(D2) < 0.5] = 0
        A, B = CSRMatrix.from_dense(D1), CSRMatrix.from_dense(D2)
        assert np.allclose(A.matmat(B).to_dense(), D1 @ D2)

    def test_matmat_dim_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix.identity(3).matmat(CSRMatrix.identity(4))

    def test_matvec_matches_scipy(self, small_poisson, rng):
        x = rng.standard_normal(small_poisson.shape[1])
        assert np.allclose(small_poisson @ x, to_scipy(small_poisson) @ x)


class TestStructure:
    def test_permute_rows(self):
        A = CSRMatrix.from_dense(dense_example())
        perm = np.array([3, 2, 1, 0])
        B = A.permute(perm, None)
        assert np.allclose(B.to_dense(), dense_example()[perm])

    def test_permute_symmetric(self):
        A = CSRMatrix.from_dense(dense_example())
        perm = np.array([2, 0, 3, 1])
        B = A.permute(perm, perm)
        D = dense_example()[np.ix_(perm, perm)]
        assert np.allclose(B.to_dense(), D)

    def test_permute_rejects_non_bijection(self):
        A = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            A.permute(np.array([0, 0, 1]))

    def test_permute_rejects_wrong_length(self):
        A = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            A.permute(np.array([0, 1]))

    def test_submatrix(self):
        A = CSRMatrix.from_dense(dense_example())
        S = A.submatrix(np.array([1, 2]), np.array([0, 2]))
        assert np.allclose(S.to_dense(), dense_example()[np.ix_([1, 2], [0, 2])])

    def test_submatrix_empty_selection(self):
        A = CSRMatrix.from_dense(dense_example())
        S = A.submatrix(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert S.shape == (0, 0)

    def test_drop_small(self):
        A = CSRMatrix.from_dense(np.array([[1.0, 0.01], [0.001, 2.0]]))
        B = A.drop_small(0.05)
        assert B.nnz == 2
        assert B.get(0, 1) == 0.0

    def test_copy_is_independent(self, small_poisson):
        B = small_poisson.copy()
        B.data[0] = 999.0
        assert small_poisson.data[0] != 999.0


class TestNorms:
    def test_row_norms_2(self):
        A = CSRMatrix.from_dense(np.array([[3.0, 4.0], [0.0, 5.0]]))
        assert np.allclose(A.row_norms(2), [5.0, 5.0])

    def test_row_norms_1_inf(self):
        A = CSRMatrix.from_dense(np.array([[3.0, -4.0], [0.0, 5.0]]))
        assert np.allclose(A.row_norms(1), [7.0, 5.0])
        assert np.allclose(A.row_norms(np.inf), [4.0, 5.0])

    def test_row_norms_bad_order(self, small_poisson):
        with pytest.raises(ValueError):
            small_poisson.row_norms(3)

    def test_frobenius(self):
        A = CSRMatrix.from_dense(np.array([[3.0, 0.0], [0.0, 4.0]]))
        assert A.frobenius_norm() == pytest.approx(5.0)

    def test_allclose_detects_value_change(self, small_poisson):
        B = small_poisson.copy()
        B.data[0] += 1.0
        assert not small_poisson.allclose(B)
        assert small_poisson.allclose(small_poisson.copy())

    def test_allclose_shape_mismatch(self):
        assert not CSRMatrix.identity(2).allclose(CSRMatrix.identity(3))
