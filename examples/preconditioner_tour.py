#!/usr/bin/env python
"""Tour of the preconditioner zoo on a convection-diffusion problem.

The paper's §2 argument in one script: static-pattern factorizations
(ILU(0), ILU(k)) drop fill by *position* and are blind to magnitudes,
while threshold-based ILUT drops by *value* — on a convection-dominated
problem the threshold family wins at comparable fill.

Compares: no preconditioner, diagonal, ILU(0), ILU(1), ILU(2),
ILUT(5,1e-2), ILUT(10,1e-4) inside GMRES(20).

Run:  python examples/preconditioner_tour.py
"""

import numpy as np

from repro import (
    DiagonalPreconditioner,
    ILUPreconditioner,
    ILUTParams,
    convection_diffusion2d,
    gmres,
    ilu0,
    iluk,
    ilut,
)
from repro.analysis import format_table
from repro.solvers import IdentityPreconditioner


def main(nx: int = 40) -> None:
    A = convection_diffusion2d(nx, bx=60.0, by=40.0)
    n = A.shape[0]
    b = A @ np.ones(n)
    print(f"convection-diffusion system: n={n}, nnz={A.nnz}\n")

    candidates = [
        ("none", IdentityPreconditioner(), 0),
        ("diagonal", DiagonalPreconditioner(A), n),
        ("ILU(0)", None, None),
        ("ILU(1)", None, None),
        ("ILU(2)", None, None),
        ("ILUT(5,1e-2)", None, None),
        ("ILUT(10,1e-4)", None, None),
    ]
    factories = {
        "ILU(0)": lambda: ilu0(A),
        "ILU(1)": lambda: iluk(A, 1),
        "ILU(2)": lambda: iluk(A, 2),
        "ILUT(5,1e-2)": lambda: ilut(A, ILUTParams(fill=5, threshold=1e-2)),
        "ILUT(10,1e-4)": lambda: ilut(A, ILUTParams(fill=10, threshold=1e-4)),
    }

    rows = []
    for name, M, fill in candidates:
        if M is None:
            f = factories[name]()
            M = ILUPreconditioner(f)
            fill = f.nnz
        res = gmres(A, b, restart=20, tol=1e-8, M=M, maxiter=6000)
        rows.append(
            [
                name,
                fill,
                res.num_matvec if res.converged else -res.num_matvec,
                res.final_residual,
            ]
        )
    print(
        format_table(
            ["preconditioner", "stored nnz", "NMV (<0: failed)", "final residual"],
            rows,
            title="GMRES(20), tol 1e-8 — fewer NMV is better",
            floatfmt="{:.2e}",
        )
    )


if __name__ == "__main__":
    main()
