"""PERF002 bad twin: per-iteration array growth."""

import numpy as np


def grown_with_np_append(n):
    out = np.zeros(0)
    for i in range(n):
        out = np.append(out, float(i) * 0.5)
    return out


def grown_via_list(n):
    vals = []
    for i in range(n):
        vals.append(float(i) * 0.5)
    return np.array(vals)
