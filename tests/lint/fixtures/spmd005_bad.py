"""SPMD005 bad twin: rank taint reaches collective guards via copies.

SPMD002 only sees rank *names* in the condition; both guards here are
one assignment removed from the rank, so only the taint analysis
(SPMD005) connects them.
"""


def leader_barrier(sim, rank):
    leader = rank == 0
    if leader:
        sim.barrier()


def staged_allreduce(sim, nranks):
    for r in range(nranks):
        parity = r % 2
    is_even = parity == 0
    if is_even:
        sim.allreduce(1.0)
