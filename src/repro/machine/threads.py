"""One-worker-thread-per-rank transport (``transport="threads"``).

Each rank gets a persistent worker thread fed through a task queue; a
``pardo`` dispatches one thunk per rank and collects completions under
the region supervisor (DESIGN.md §14): the coordinator polls the done
queue at ``supervision.poll_interval``, and a rank that delivers
neither its result nor a heartbeat within ``supervision.deadline``
seconds is declared :class:`~repro.machine.transport.WorkerHung` —
its thread is abandoned (a daemon; it receives a stop token for
whenever it wakes) and a fresh worker is respawned for the rank, so
the transport survives the failure and the region can be retried.
Point-to-point messages match through the shared condition-guarded
mailboxes of :class:`~repro.machine.transport.LocalTransport` — a
worker-context ``recv`` genuinely blocks until the matching ``send``
lands (with a deadlock timeout), and ``barrier`` called from worker
context is a real :class:`threading.Barrier` across the ranks
participating in the current parallel region.

Payloads are delivered **by reference**: the ranks share one address
space, so a message is the object itself, exactly like the simulator's
default (non-``copy_payloads``) mode.  The drivers' read-shared /
write-own discipline (DESIGN.md §13) is what keeps this safe — thunks
never mutate coordinator state, they return updates that the
coordinator merges in rank order, which is also what makes the factors
bit-identical to the simulator's (and what makes region retry safe).
"""

from __future__ import annotations

import queue
import threading
import time
import warnings
from typing import TYPE_CHECKING, Any, Callable, Sequence

from .supervision import (
    RegionInjection,
    _InjectedWorkerCrash,
    _PoisonResult,
    wrap_injected_thunk,
)
from .transport import (
    LocalTransport,
    ResultUnpicklable,
    TransportError,
    WorkerCrashed,
    WorkerHung,
)

if TYPE_CHECKING:
    from ..faults import FaultPlan
    from .supervision import SupervisionPolicy

__all__ = ["ThreadTransport"]

_STOP = object()


class ThreadTransport(LocalTransport):
    """Real threaded execution of the SPMD drivers' parallel regions."""

    name = "threads"
    #: thunks share one address space and run concurrently — drivers must
    #: not share scratch state (accumulators) between region thunks
    concurrent_regions = True
    #: seconds ``close()`` waits per worker before declaring it stuck
    close_join_timeout: float = 5.0

    def __init__(
        self,
        nranks: int,
        *,
        supervision: "SupervisionPolicy | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> None:
        super().__init__(nranks, supervision=supervision, faults=faults)
        self._local = threading.local()
        self._done: queue.Queue = queue.Queue()
        self._region_barrier: threading.Barrier | None = None
        # last heartbeat (or dispatch) timestamp per rank; plain float
        # writes are atomic under the GIL, no lock needed
        self._beats = [0.0] * self.nranks
        self._tasks: list[queue.Queue] = []
        self._workers: list[threading.Thread] = []
        self._abandoned: list[tuple[int, threading.Thread]] = []
        self._stuck_ranks: list[int] = []
        for r in range(self.nranks):
            q: queue.Queue = queue.Queue()
            self._tasks.append(q)
            self._workers.append(self._spawn_worker(r, q))

    # -- worker machinery ---------------------------------------------

    def _spawn_worker(self, rank: int, tasks: queue.Queue) -> threading.Thread:
        worker = threading.Thread(
            target=self._worker_loop,
            args=(rank, tasks),
            name=f"repro-rank-{rank}",
            daemon=True,
        )
        worker.start()
        return worker

    def _worker_loop(self, rank: int, tasks: queue.Queue) -> None:
        # the task queue is bound at spawn time: an abandoned worker keeps
        # draining its own (retired) queue and can never steal work from
        # the replacement thread that took over the rank
        self._local.rank = rank
        while True:
            task = tasks.get()
            if task is _STOP:
                return
            seq, thunk = task
            try:
                result = thunk()
            except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
                self._done.put((seq, rank, False, exc))
            else:
                self._done.put((seq, rank, True, result))

    def _in_worker(self) -> bool:
        return getattr(self._local, "rank", None) is not None

    def current_rank(self) -> int | None:
        """The rank of the calling worker thread (None in the coordinator)."""
        return getattr(self._local, "rank", None)

    def heartbeat(self) -> None:
        rank = getattr(self._local, "rank", None)
        if rank is not None:
            self._beats[rank] = time.perf_counter()

    def _abandon_worker(self, rank: int) -> None:
        """Give up on a hung worker and respawn a fresh one for its rank.

        The hung thread is a daemon holding the *old* task queue: a stop
        token is queued so it exits whenever its thunk finally returns,
        and any late result it posts carries a stale region token and is
        discarded by the collector.
        """
        stale = self._workers[rank]
        self._abandoned.append((rank, stale))
        self._tasks[rank].put(_STOP)
        fresh: queue.Queue = queue.Queue()
        self._tasks[rank] = fresh
        self._workers[rank] = self._spawn_worker(rank, fresh)

    # -- parallel region ----------------------------------------------

    def _run_region(
        self,
        thunks: Sequence[Callable[[], Any] | None],
        active: list[int],
        inject: dict[int, RegionInjection],
    ) -> list[Any]:
        """One supervised execution attempt (see ``LocalTransport.pardo``).

        Collects completions in arrival order; a failing rank's typed
        error is raised after every participant resolved (completed,
        failed, or was declared hung), so a failure cannot leave a
        worker wedged mid-region.
        """
        policy = self.supervision
        seq = object()  # unique token ties results to this region
        self._region_barrier = threading.Barrier(len(active)) if len(active) > 1 else None
        try:
            now = time.perf_counter()
            for r in active:
                self._beats[r] = now
                self._tasks[r].put((seq, wrap_injected_thunk(thunks[r], inject.get(r))))
            results: list[Any] = [None] * self.nranks
            failures: dict[int, BaseException] = {}
            remaining = set(active)
            while remaining:
                timeout = None if policy.deadline is None else policy.poll_interval
                try:
                    got_seq, rank, ok, value = self._done.get(timeout=timeout)
                except queue.Empty:
                    pass
                else:
                    if got_seq is not seq or rank not in remaining:
                        continue  # stale result from an abandoned worker/region
                    remaining.discard(rank)
                    if ok:
                        if isinstance(value, _PoisonResult):
                            failures[rank] = ResultUnpicklable(
                                rank, "injected corrupt-result: payload undecodable"
                            )
                        else:
                            results[rank] = value
                    elif isinstance(value, _InjectedWorkerCrash):
                        failures[rank] = WorkerCrashed(
                            rank, "worker thread crashed (injected)",
                            remote_traceback=str(value),
                        )
                    elif isinstance(value, Exception):
                        failures[rank] = value  # application error: re-raise as-is
                    else:
                        failures[rank] = WorkerCrashed(
                            rank,
                            f"worker thread died on non-Exception {value!r}",
                            remote_traceback=repr(value),
                        )
                if policy.deadline is None:
                    continue
                now = time.perf_counter()
                hung = [r for r in sorted(remaining) if now - self._beats[r] > policy.deadline]
                for r in hung:
                    remaining.discard(r)
                    failures[r] = WorkerHung(r, policy.deadline)
                    self._abandon_worker(r)
                if hung and self._region_barrier is not None:
                    # siblings blocked on the region barrier must not wait
                    # out their own deadlines for a rank that will never
                    # arrive; their BrokenBarrierError is collateral and
                    # outranked by the WorkerHung when the region fails
                    self._region_barrier.abort()
            if failures:
                self._raise_region_failure(failures)
            return results
        finally:
            self._region_barrier = None

    # -- collectives from worker context -------------------------------

    def _sync_workers(self) -> bool:
        if not self._in_worker():
            return True
        bar = self._region_barrier
        if bar is None:
            return True  # single-rank region: trivially synchronised
        try:
            # Barrier.wait returns a unique 0..parties-1 index; exactly
            # one participant (index 0) accounts the barrier.
            return bar.wait(timeout=self.recv_timeout) == 0
        except threading.BrokenBarrierError as exc:
            raise TransportError(
                "barrier broken: a participating rank failed or timed out"
            ) from exc

    # -- lifecycle -----------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed and self._stuck_ranks:
            raise TransportError(
                f"transport is closed and unusable: worker thread(s) for "
                f"rank(s) {self._stuck_ranks} never terminated"
            )
        super()._ensure_open()

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        for q in self._tasks:
            q.put(_STOP)
        stuck: set[int] = set()
        for r, w in enumerate(self._workers):
            w.join(timeout=self.close_join_timeout)
            if w.is_alive():
                stuck.add(r)
        for r, w in self._abandoned:
            if w.is_alive():
                w.join(timeout=self.close_join_timeout)
                if w.is_alive():
                    stuck.add(r)
        if stuck:
            self._stuck_ranks = sorted(stuck)
            warnings.warn(
                f"ThreadTransport.close(): worker thread(s) for rank(s) "
                f"{self._stuck_ranks} did not terminate within "
                f"{self.close_join_timeout:g}s; the transport is marked "
                "unusable and the daemon threads will be reaped at exit",
                RuntimeWarning,
                stacklevel=2,
            )
