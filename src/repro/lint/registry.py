"""Rule protocol and the plugin registry.

A rule is a class with an ``id``, a ``severity`` and one or both hooks:

* ``check_module(module)`` — called once per parsed source file; the
  vast majority of rules live here.
* ``check_project(project)`` — called once per lint run with every
  parsed module plus the project root; for cross-file disciplines like
  the kernels parity requirement.

Registering is one decorator::

    @register
    class MyRule(Rule):
        id = "XYZ001"
        ...

Third-party extensions can register the same way before calling
:func:`repro.lint.run_lint`; the CLI's ``--select``/``--ignore`` filter
by id against whatever is registered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .findings import Finding, Severity

if TYPE_CHECKING:
    from .runner import ModuleContext, ProjectContext

__all__ = ["Rule", "register", "all_rules", "get_rule"]


class Rule:
    """Base class for lint rules; subclass and :func:`register`."""

    #: Stable identifier, e.g. ``"SPMD001"`` — used in output, baselines
    #: and ``--select``/``--ignore``.
    id: str = ""
    #: Short human name, e.g. ``"unmatched-tag"``.
    name: str = ""
    severity: Severity = Severity.WARNING
    #: One-line description (shown by ``--list-rules`` and in SARIF).
    description: str = ""

    def check_module(self, module: "ModuleContext") -> list[Finding]:
        return []

    def check_project(self, project: "ProjectContext") -> list[Finding]:
        return []

    # ------------------------------------------------------------------

    def finding(
        self,
        module: "ModuleContext",
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        """Build a :class:`Finding` at ``line`` (1-based) in ``module``."""
        snippet = ""
        if 1 <= line <= len(module.lines):
            snippet = module.lines[line - 1].strip()
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add ``cls`` to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY and type(_REGISTRY[rule.id]) is not cls:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id (imports the built-ins)."""
    from . import rules as _builtin  # noqa: F401  (registration side effect)

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    from . import rules as _builtin  # noqa: F401

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
