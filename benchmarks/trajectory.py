"""Benchmark trajectory: append runs, gate on wall-clock regressions.

Collects every ``BENCH_*.json`` artifact at the repo root into one
tagged entry appended to ``BENCH_TRAJECTORY.json``, then compares the
entry's wall-clock metrics against the previous entry: any metric that
regressed by more than ``--tolerance`` (default 10%) fails the run.
Modeled times are excluded from the gate — they are deterministic
outputs of the machine model and certified elsewhere (``repro lint
--verify-costs``); only measured wall seconds belong in a noise-aware
trajectory gate.

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py --tag pr10
    PYTHONPATH=src python benchmarks/trajectory.py --tag pr10 --dry-run
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_NAME = "BENCH_TRAJECTORY.json"
DEFAULT_TOLERANCE = 0.10


def _flatten(doc, prefix: str = "") -> dict[str, float]:
    """Wall-clock leaves of a benchmark document, keyed by dotted path.

    A metric is a float whose key ends in ``_s`` and does not mention
    ``modeled``.  List elements of dicts are keyed by their identifying
    fields (``transport``/``ranks``) when present so the path stays
    stable under row reordering; otherwise by index.
    """
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in sorted(doc.items()):
            path = f"{prefix}.{key}" if prefix else str(key)
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and key.endswith("_s")
                and "modeled" not in key
            ):
                out[path] = float(value)
            elif isinstance(value, (dict, list)):
                out.update(_flatten(value, path))
    elif isinstance(doc, list):
        for idx, item in enumerate(doc):
            label = str(idx)
            if isinstance(item, dict):
                ident = [
                    str(item[k]) for k in ("transport", "ranks") if k in item
                ]
                if ident:
                    label = "@".join(ident)
            out.update(_flatten(item, f"{prefix}[{label}]"))
    return out


def collect_metrics(root: Path) -> dict[str, float]:
    """One flat metric map over every ``BENCH_*.json`` at ``root``."""
    metrics: dict[str, float] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name == TRAJECTORY_NAME:
            continue
        doc = json.loads(path.read_text())
        stem = path.stem.removeprefix("BENCH_")
        metrics.update(_flatten(doc, stem))
    return metrics


def regressions(
    previous: dict[str, float],
    current: dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Metrics that got slower than ``(1 + tolerance) * previous``.

    Only metrics present in both entries participate: renamed or new
    benchmarks start a fresh baseline rather than failing the gate.
    """
    out = []
    for name in sorted(set(previous) & set(current)):
        old, new = previous[name], current[name]
        if old > 0 and new > old * (1.0 + tolerance):
            out.append(
                f"{name}: {old:.4f}s -> {new:.4f}s "
                f"(+{100.0 * (new / old - 1.0):.1f}%)"
            )
    return out


def append_run(
    root: Path,
    tag: str,
    tolerance: float = DEFAULT_TOLERANCE,
    dry_run: bool = False,
) -> tuple[list[str], dict]:
    """Append a tagged entry to the trajectory; return (regressions, entry)."""
    metrics = collect_metrics(root)
    trajectory_path = root / TRAJECTORY_NAME
    entries: list[dict] = []
    if trajectory_path.exists():
        entries = json.loads(trajectory_path.read_text())["entries"]
    entry = {"tag": tag, "metrics": metrics}
    regressed = (
        regressions(entries[-1]["metrics"], metrics, tolerance)
        if entries
        else []
    )
    if not dry_run:
        entries.append(entry)
        trajectory_path.write_text(
            json.dumps({"tolerance": tolerance, "entries": entries}, indent=2)
            + "\n"
        )
    return regressed, entry


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tag", required=True, help="label for this run (e.g. the PR)")
    ap.add_argument(
        "--root",
        default=str(REPO_ROOT),
        help="directory holding the BENCH_*.json artifacts",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown before the gate fails (default 0.10)",
    )
    ap.add_argument(
        "--dry-run",
        action="store_true",
        help="report regressions without appending to the trajectory",
    )
    args = ap.parse_args(argv)

    root = Path(args.root)
    regressed, entry = append_run(
        root, args.tag, tolerance=args.tolerance, dry_run=args.dry_run
    )
    print(f"tag {entry['tag']}: {len(entry['metrics'])} wall-clock metric(s)")
    if regressed:
        for line in regressed:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    print(f"no regression beyond {100.0 * args.tolerance:.0f}% vs previous entry")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
