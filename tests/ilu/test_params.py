"""ILUTParams validation and the legacy-keyword deprecation shims."""

import dataclasses

import numpy as np
import pytest

from repro import ILUTParams, poisson2d
from repro.ilu import ilut, parallel_ilut, parallel_ilut_star


@pytest.fixture(scope="module")
def A():
    return poisson2d(8)


def factors_equal(fa, fb):
    return all(
        np.array_equal(x, y)
        for x, y in [
            (fa.L.data, fb.L.data),
            (fa.L.indices, fb.L.indices),
            (fa.U.data, fb.U.data),
            (fa.U.indices, fb.U.indices),
        ]
    )


class TestValidation:
    def test_negative_fill(self):
        with pytest.raises(ValueError, match="fill"):
            ILUTParams(fill=-1, threshold=1e-3)

    def test_negative_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            ILUTParams(fill=5, threshold=-1e-3)

    def test_nan_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            ILUTParams(fill=5, threshold=float("nan"))

    def test_k_below_one(self):
        with pytest.raises(ValueError, match="k must be"):
            ILUTParams(fill=5, threshold=1e-3, k=0)

    def test_frozen(self):
        p = ILUTParams(fill=5, threshold=1e-3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.fill = 10

    def test_hashable_and_equal(self):
        a = ILUTParams(fill=5, threshold=1e-3, k=2)
        b = ILUTParams(fill=5, threshold=1e-3, k=2)
        assert a == b and hash(a) == hash(b)

    def test_reduced_cap(self):
        assert ILUTParams(fill=5, threshold=0.0).reduced_cap is None
        assert ILUTParams(fill=5, threshold=0.0, k=3).reduced_cap == 15

    def test_describe(self):
        assert ILUTParams(fill=5, threshold=1e-4).describe() == "ILUT(m=5, t=0.0001)"
        assert (
            ILUTParams(fill=5, threshold=1e-4, k=2).describe()
            == "ILUT*(m=5, t=0.0001, k=2)"
        )


class TestLegacyShims:
    def test_ilut_legacy_warns_and_agrees(self, A):
        new = ilut(A, ILUTParams(fill=5, threshold=1e-3))
        with pytest.deprecated_call():
            old = ilut(A, 5, 1e-3)
        assert factors_equal(new, old)

    def test_ilut_legacy_keyword_form(self, A):
        with pytest.deprecated_call():
            old = ilut(A, m=5, t=1e-3)
        assert factors_equal(old, ilut(A, ILUTParams(fill=5, threshold=1e-3)))

    def test_parallel_ilut_legacy_warns_and_agrees(self, A):
        new = parallel_ilut(
            A, ILUTParams(fill=5, threshold=1e-3), 4, seed=0, simulate=False
        )
        with pytest.deprecated_call():
            old = parallel_ilut(A, 5, 1e-3, 4, seed=0, simulate=False)
        assert factors_equal(new.factors, old.factors)

    def test_parallel_ilut_star_legacy_warns_and_agrees(self, A):
        new = parallel_ilut_star(
            A, ILUTParams(fill=5, threshold=1e-3, k=2), 4, seed=0, simulate=False
        )
        with pytest.deprecated_call():
            old = parallel_ilut_star(A, 5, 1e-3, 2, 4, seed=0, simulate=False)
        assert factors_equal(new.factors, old.factors)

    def test_warning_names_the_replacement(self, A):
        with pytest.warns(DeprecationWarning, match="ILUTParams"):
            ilut(A, 5, 1e-3)


class TestCallingConventionErrors:
    def test_params_plus_legacy_conflict(self, A):
        with pytest.raises(TypeError, match="both an ILUTParams and legacy"):
            ilut(A, ILUTParams(fill=5, threshold=1e-3), m=5)

    def test_ilut_missing_arguments(self, A):
        with pytest.raises(TypeError, match="requires an ILUTParams"):
            ilut(A)

    def test_multiple_values_for_m(self, A):
        with pytest.raises(TypeError, match="multiple values for 'm'"):
            ilut(A, 5, 1e-3, m=5)

    def test_parallel_missing_nranks(self, A):
        with pytest.raises(TypeError, match="missing required argument 'nranks'"):
            parallel_ilut(A, ILUTParams(fill=5, threshold=1e-3))

    def test_parallel_multiple_nranks(self, A):
        with pytest.raises(TypeError, match="multiple values for 'nranks'"):
            parallel_ilut(A, ILUTParams(fill=5, threshold=1e-3), 4, nranks=4)

    def test_parallel_multiple_t(self, A):
        with pytest.raises(TypeError, match="multiple values for 't'"):
            parallel_ilut(A, 5, 1e-3, 4, t=1e-3)

    def test_star_requires_k(self, A):
        with pytest.raises(ValueError, match="requires ILUTParams with k set"):
            parallel_ilut_star(A, ILUTParams(fill=5, threshold=1e-3), 4)

    def test_star_new_style_rejects_extra_positionals(self, A):
        with pytest.raises(TypeError, match="new style"):
            parallel_ilut_star(A, ILUTParams(fill=5, threshold=1e-3, k=2), 4, 2)

    def test_star_duplicate_legacy(self, A):
        with pytest.raises(TypeError, match="duplicate legacy"):
            parallel_ilut_star(A, 5, 1e-3, 2, 4, k=2)


class TestInternalCallersAreMigrated:
    """Internal repro.* code must never hit the deprecation shim.

    ``pyproject.toml`` escalates repro-attributed DeprecationWarnings to
    errors, so driving the high-level entry points with new-style params
    proves every internal call site was migrated.
    """

    def test_block_jacobi(self, A):
        from repro.ilu.block_jacobi import block_jacobi_ilut

        bj = block_jacobi_ilut(A, 5, 1e-3, 2, simulate=False)
        assert bj.apply(np.ones(A.shape[0])).shape == (A.shape[0],)

    def test_cli_factor(self, capsys):
        from repro.cli import main

        assert main(["factor", "g0:8", "-p", "2", "-m", "3"]) == 0
        assert "ILUT(3," in capsys.readouterr().out
