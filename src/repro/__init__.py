"""repro — Parallel Threshold-based ILU Factorization (Karypis & Kumar, SC'97).

A from-scratch Python reproduction of the paper's system:

* :mod:`repro.sparse` — CSR sparse-matrix substrate,
* :mod:`repro.graph` — adjacency, colouring, Luby MIS (two-step variant),
* :mod:`repro.partition` — multilevel k-way graph partitioning,
* :mod:`repro.machine` — distributed-memory machine simulator + cost model,
* :mod:`repro.decomp` — domain decomposition (interior/interface),
* :mod:`repro.ilu` — ILUT, ILUT*, ILU(0), ILU(k), parallel factorization
  and level-scheduled triangular solves,
* :mod:`repro.solvers` — GMRES/CG, preconditioners, distributed matvec,
* :mod:`repro.matrices` — G0/TORSO-class problem generators,
* :mod:`repro.analysis` — fill/speedup metrics and paper-style tables.

Quickstart::

    from repro import ILUTParams, poisson2d, parallel_ilut_star
    from repro import gmres, ILUPreconditioner
    A = poisson2d(64)
    result = parallel_ilut_star(A, ILUTParams(fill=10, threshold=1e-4, k=2), 16)
    sol = gmres(A, b, restart=20, M=ILUPreconditioner(result.factors))
"""

from .decomp import DomainDecomposition, decompose
from .faults import FaultJournal, FaultPlan, MessageFault, RankFault
from .graph import (
    Graph,
    adjacency_from_matrix,
    greedy_coloring,
    luby_mis,
    two_step_luby_mis,
)
from .ilu import (
    ILUFactors,
    ILUTParams,
    ParallelILUResult,
    ilu0,
    iluk,
    ilut,
    parallel_ilut,
    parallel_ilut_partitioned,
    parallel_ilut_star,
    parallel_triangular_solve,
)
from .machine import CRAY_T3D, IDEAL, WORKSTATION_CLUSTER, MachineModel, Simulator
from .matrices import (
    convection_diffusion2d,
    fem_unstructured,
    poisson2d,
    poisson3d,
    random_diag_dominant,
    torso_like,
)
from .partition import partition_graph_kway, partition_matrix_kway
from .resilience import (
    NumericalBreakdown,
    PivotPolicy,
    RetryPolicy,
    RobustPreconditioner,
    ZeroPivotError,
)
from .solvers import (
    DiagonalPreconditioner,
    IdentityPreconditioner,
    ILU0Preconditioner,
    ILUPreconditioner,
    cg,
    gmres,
    parallel_matvec,
)
from .sparse import COOBuilder, CSRMatrix

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # sparse
    "CSRMatrix",
    "COOBuilder",
    # graph
    "Graph",
    "adjacency_from_matrix",
    "greedy_coloring",
    "luby_mis",
    "two_step_luby_mis",
    # partition
    "partition_graph_kway",
    "partition_matrix_kway",
    # machine
    "MachineModel",
    "Simulator",
    "CRAY_T3D",
    "WORKSTATION_CLUSTER",
    "IDEAL",
    # decomp
    "DomainDecomposition",
    "decompose",
    # ilu
    "ILUTParams",
    "ilut",
    "ilu0",
    "iluk",
    "ILUFactors",
    "parallel_ilut",
    "parallel_ilut_star",
    "parallel_ilut_partitioned",
    "parallel_triangular_solve",
    "ParallelILUResult",
    # solvers
    "gmres",
    "cg",
    "parallel_matvec",
    "ILUPreconditioner",
    "ILU0Preconditioner",
    "DiagonalPreconditioner",
    "IdentityPreconditioner",
    # faults
    "FaultPlan",
    "FaultJournal",
    "MessageFault",
    "RankFault",
    # resilience
    "NumericalBreakdown",
    "ZeroPivotError",
    "PivotPolicy",
    "RobustPreconditioner",
    "RetryPolicy",
    # matrices
    "poisson2d",
    "poisson3d",
    "convection_diffusion2d",
    "fem_unstructured",
    "torso_like",
    "random_diag_dominant",
]
