"""DET001 clean twin: every RNG is an explicitly seeded Generator."""

import numpy as np


def jitter(x, seed=0):
    rng = np.random.default_rng(seed)
    return x + rng.standard_normal(x.size)


def pick(items, rng):
    return items[int(rng.integers(len(items)))]
