"""Breakdown-typing rule (``BRK001``).

The resilience layer (:mod:`repro.resilience`) can only route a
numerical breakdown into the fallback/retry machinery if the raise site
uses the typed :class:`~repro.resilience.NumericalBreakdown` hierarchy.
A bare ``ZeroDivisionError`` or a ``ValueError("zero pivot ...")``
short-circuits that dispatch (and loses the ``row``/``value`` payload
failure reports localise with).
"""

from __future__ import annotations

import ast
import re

from ..astutil import literal_text
from ..findings import Finding, Severity
from ..registry import Rule, register
from ..runner import ModuleContext

__all__ = ["UntypedBreakdownRaise"]

#: Message shapes that identify a raise as a *numerical* event (vs
#: argument validation, which legitimately stays a ValueError).
_NUMERIC_MESSAGE = re.compile(
    r"zero pivot|zero diagonal|stored diagonal|missing diagonal"
    r"|singular|non-?finite|\bnan\b|\binf(inite|inity)?\b|divide[sd]? by zero",
    re.IGNORECASE,
)

_SUGGESTION = {
    "ZeroDivisionError": "ZeroPivotError",
    "ValueError": "ZeroDiagonalError / NonFiniteError",
    "ArithmeticError": "NumericalBreakdown",
    "FloatingPointError": "NonFiniteError",
}


@register
class UntypedBreakdownRaise(Rule):
    """A numeric breakdown raised as a bare builtin exception.

    ``raise ZeroDivisionError`` is always a breakdown; ``raise
    ValueError``/``ArithmeticError`` count when the message text names a
    numerical event (zero/missing diagonal, zero pivot, singular,
    NaN/Inf).  The typed subclasses multiple-inherit the builtins, so
    switching a raise site never breaks existing ``except`` clauses.
    """

    id = "BRK001"
    name = "untyped-breakdown-raise"
    severity = Severity.ERROR
    description = (
        "numeric raise sites must use the typed NumericalBreakdown "
        "hierarchy so the resilience layer can dispatch on them"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        # the hierarchy's own module defines the types; skip it
        if module.relpath.endswith("resilience/breakdown.py"):
            return []
        out: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            exc_name = ""
            message = ""
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                exc_name = exc.func.id
                if exc.args:
                    message = literal_text(exc.args[0])
            elif isinstance(exc, ast.Name):
                exc_name = exc.id
            if exc_name not in _SUGGESTION:
                continue
            if exc_name in ("ZeroDivisionError", "FloatingPointError") or (
                message and _NUMERIC_MESSAGE.search(message)
            ):
                out.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"numerical breakdown raised as bare {exc_name}; use "
                        f"the typed hierarchy ({_SUGGESTION[exc_name]}) so "
                        "fallback/retry can dispatch and reports keep "
                        "row/value context",
                    )
                )
        return out
