"""Sequential ILUT(m, t) — Saad's dual-threshold incomplete LU.

This is Algorithm 3.1 of the paper, implemented with the classic
full-working-row + nonzero-pointer data structure
(:class:`~repro.sparse.SparseRowAccumulator`).  It is both the serial
baseline of the evaluation and the kernel each simulated processor runs
on its interior rows in phase 1 of the parallel algorithm (via
:mod:`repro.ilu.elimination`).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..sparse import COOBuilder, CSRMatrix, SparseRowAccumulator
from .dropping import second_rule
from .factors import ILUFactors

__all__ = ["ilut", "ilut_row_norms"]


def ilut_row_norms(A: CSRMatrix) -> np.ndarray:
    """Per-row 2-norms of A, used for the relative drop tolerances."""
    return A.row_norms(ord=2)


def ilut(
    A: CSRMatrix,
    m: int,
    t: float,
    *,
    diag_guard: bool = True,
) -> ILUFactors:
    """Compute the ILUT(m, t) factorization of ``A`` in natural order.

    Parameters
    ----------
    A:
        Square sparse matrix.
    m:
        Maximum number of off-diagonal entries kept per row in L and
        (separately) in U.
    t:
        Relative drop tolerance; row ``i`` uses ``tau_i = t * ||a_i||_2``.
    diag_guard:
        If a pivot ``u_ii`` ends up exactly zero (dropped or missing),
        substitute ``tau_i`` (or the row-norm if ``tau_i`` is zero) so
        the factorization remains applicable.  With ``diag_guard=False``
        a zero pivot raises :class:`ZeroDivisionError`.

    Returns
    -------
    ILUFactors
        With identity permutation and a ``stats`` dict containing
        ``flops`` (multiply-adds + divides of the elimination) and
        ``fill_nnz``.
    """
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"ILUT requires a square matrix, got {A.shape}")
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")

    norms = ilut_row_norms(A)
    w = SparseRowAccumulator(n)
    # U rows stored as (cols, vals) with the diagonal first-by-column
    u_rows: list[tuple[np.ndarray, np.ndarray]] = []
    l_builder = COOBuilder(n)
    u_builder = COOBuilder(n)
    flops = 0

    for i in range(n):
        cols, vals = A.row(i)
        w.load(cols, vals)
        tau = t * norms[i]

        # min-heap of candidate pivot columns k < i (lazy duplicates)
        heap = [int(c) for c in cols if c < i]
        heapq.heapify(heap)
        done = -1  # last processed k (guards duplicates)
        while heap:
            k = heapq.heappop(heap)
            if k <= done:
                continue
            done = k
            wk = w.get(k)
            if wk == 0.0:
                continue
            ucols, uvals = u_rows[k]
            pivot = uvals[0]  # diagonal stored first
            wk = wk / pivot
            flops += 1
            if abs(wk) < tau:  # 1st dropping rule
                w.drop(k)
                continue
            w.set(k, wk)
            if ucols.size > 1:
                tail_cols = ucols[1:]
                w.axpy(-wk, tail_cols, uvals[1:])
                flops += 2 * int(tail_cols.size)
                for c in tail_cols:
                    if c < i:
                        heapq.heappush(heap, int(c))

        # 2nd dropping rule
        rcols, rvals = w.extract()
        (lcols, lvals), diag, (ucols, uvals) = second_rule(rcols, rvals, i, tau, m)
        if diag == 0.0:
            if not diag_guard:
                raise ZeroDivisionError(f"zero pivot at row {i}")
            diag = tau if tau > 0 else (norms[i] if norms[i] > 0 else 1.0)
        if lcols.size:
            l_builder.add_batch(np.full(lcols.size, i, dtype=np.int64), lcols, lvals)
        u_builder.add(i, i, diag)
        if ucols.size:
            u_builder.add_batch(np.full(ucols.size, i, dtype=np.int64), ucols, uvals)
        # store U row with diagonal first for the pivot lookup above
        u_rows.append(
            (
                np.concatenate(([i], ucols)).astype(np.int64),
                np.concatenate(([diag], uvals)),
            )
        )
        w.reset()

    L = l_builder.to_csr()
    U = u_builder.to_csr()
    return ILUFactors(
        L=L,
        U=U,
        perm=np.arange(n, dtype=np.int64),
        levels=None,
        stats={"flops": flops, "fill_nnz": L.nnz + U.nnz, "m": m, "t": t},
    )
