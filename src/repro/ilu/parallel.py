"""Public API for the parallel ILUT / ILUT* factorizations.

``parallel_ilut`` and ``parallel_ilut_star`` run the two-phase
elimination of the paper on a simulated ``p``-processor machine and
return the factors together with the modelled time, communication
statistics and the independent-set level structure (the paper's ``q``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..decomp import DomainDecomposition, decompose
from ..machine import CRAY_T3D, CommStats, MachineModel, Simulator
from ..sparse import CSRMatrix
from .elimination import EliminationEngine
from .factors import ILUFactors

if TYPE_CHECKING:
    from ..verify.trace import AccessTracer

__all__ = ["ParallelILUResult", "parallel_ilut", "parallel_ilut_star"]


@dataclass
class ParallelILUResult:
    """Result of a simulated parallel incomplete factorization.

    Attributes
    ----------
    factors:
        The L/U factors in elimination order, with level structure.
    decomp:
        The domain decomposition used.
    num_levels:
        Number of independent sets ``q`` needed for the interface rows.
    level_sizes:
        Size of each independent set.
    modeled_time:
        Virtual wall-clock seconds on the simulated machine (``None``
        when run without a simulator).
    comm:
        Aggregate simulator counters (``None`` without a simulator).
    trace:
        The simulator's access tracer when run with ``trace=True`` —
        feed it to :func:`repro.verify.find_races`.
    """

    factors: ILUFactors
    decomp: DomainDecomposition
    num_levels: int
    level_sizes: list[int]
    modeled_time: float | None
    comm: CommStats | None
    flops: float
    words_copied: float
    trace: AccessTracer | None = None

    @property
    def nranks(self) -> int:
        return self.decomp.nranks


def parallel_ilut(
    A: CSRMatrix,
    m: int,
    t: float,
    nranks: int,
    *,
    reduced_cap: int | None = None,
    model: MachineModel = CRAY_T3D,
    simulate: bool = True,
    decomp: DomainDecomposition | None = None,
    method: str = "multilevel",
    mis_rounds: int = 5,
    seed: int = 0,
    diag_guard: bool = True,
    trace: bool = False,
) -> ParallelILUResult:
    """Factor ``A`` with parallel ILUT(m, t) on ``nranks`` simulated PEs.

    Parameters
    ----------
    A:
        Square sparse matrix.
    m, t:
        ILUT dual dropping parameters (max kept per L/U row; relative
        drop tolerance).
    nranks:
        Number of simulated processors.
    reduced_cap:
        Cap on reduced-row length; ``None`` reproduces plain ILUT.
        (Use :func:`parallel_ilut_star` for the paper's ILUT*(m,t,k).)
    model:
        Machine cost model (default: the Cray T3D preset).
    simulate:
        ``False`` executes the identical algorithm without cost
        accounting (slightly faster; used heavily in tests).
    decomp:
        Reuse a precomputed decomposition; otherwise one is computed
        with ``method`` (``"multilevel"``/``"block"``/``"random"``).
    mis_rounds:
        Luby augmentation rounds per level (paper: 5).
    seed:
        Seed for partitioning and MIS randomness.
    trace:
        Record shared-object accesses for race detection (requires
        ``simulate=True``); see :mod:`repro.verify`.
    """
    if decomp is None:
        decomp = decompose(A, nranks, method=method, seed=seed)
    elif decomp.nranks != nranks:
        raise ValueError(
            f"decomp has {decomp.nranks} ranks but nranks={nranks} was requested"
        )
    if trace and not simulate:
        raise ValueError("trace=True requires simulate=True")
    sim = Simulator(nranks, model, trace=trace) if simulate else None
    engine = EliminationEngine(
        decomp,
        m,
        t,
        reduced_cap=reduced_cap,
        sim=sim,
        mis_rounds=mis_rounds,
        seed=seed,
        diag_guard=diag_guard,
    )
    outcome = engine.run()
    return ParallelILUResult(
        factors=outcome.factors,
        decomp=decomp,
        num_levels=outcome.num_levels,
        level_sizes=outcome.level_sizes,
        modeled_time=sim.elapsed() if sim is not None else None,
        comm=sim.stats() if sim is not None else None,
        flops=outcome.flops,
        words_copied=outcome.words_copied,
        trace=sim.tracer if sim is not None else None,
    )


def parallel_ilut_star(
    A: CSRMatrix,
    m: int,
    t: float,
    k: int,
    nranks: int,
    **kwargs,
) -> ParallelILUResult:
    """Factor ``A`` with parallel ILUT*(m, t, k) — paper §4.2.

    Identical to :func:`parallel_ilut` except the 3rd dropping rule caps
    every reduced-matrix row at ``k*m`` entries, keeping the reduced
    matrices sparse, the independent sets large and the level count low.
    The paper finds ``k = 2`` matches ILUT's preconditioning quality.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return parallel_ilut(A, m, t, nranks, reduced_cap=k * m, **kwargs)
