"""Unit tests for the breakdown hierarchy, pivot policies and the
apply-boundary finiteness guard."""

import numpy as np
import pytest

from repro.ilu import ILUTParams, ilut
from repro.matrices import poisson2d
from repro.resilience import (
    NonFiniteError,
    NumericalBreakdown,
    PivotPolicy,
    ZeroDiagonalError,
    ZeroPivotError,
    assert_finite,
)
from repro.sparse import CSRMatrix


class TestHierarchy:
    def test_zero_pivot_is_both_families(self):
        err = ZeroPivotError("zero pivot at row 3", row=3, value=0.0)
        assert isinstance(err, NumericalBreakdown)
        assert isinstance(err, ZeroDivisionError)
        assert err.row == 3 and err.value == 0.0

    def test_zero_diagonal_is_value_error(self):
        assert issubclass(ZeroDiagonalError, ValueError)
        assert issubclass(ZeroDiagonalError, NumericalBreakdown)

    def test_non_finite_is_value_error(self):
        assert issubclass(NonFiniteError, ValueError)

    def test_default_row_is_unset(self):
        assert NumericalBreakdown("boom").row == -1


class TestAssertFinite:
    def test_passes_through_clean_arrays(self):
        x = np.arange(5, dtype=np.float64)
        assert assert_finite(x) is x

    def test_ignores_integer_arrays(self):
        assert_finite(np.arange(5))

    def test_raises_with_location(self):
        x = np.ones(6)
        x[4] = np.inf
        with pytest.raises(NonFiniteError, match="index 4") as exc:
            assert_finite(x, where="unit test")
        assert exc.value.row == 4
        assert "unit test" in str(exc.value)

    def test_nan_detected(self):
        with pytest.raises(NonFiniteError):
            assert_finite(np.array([0.0, np.nan]))


class TestPivotPolicy:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="unknown pivot policy"):
            PivotPolicy("pray")

    def test_healthy_pivot_untouched(self):
        p = PivotPolicy("guard")
        assert p.resolve(0, 2.5, 0.1, 1.0) == 2.5

    def test_guard_matches_legacy_substitution(self):
        p = PivotPolicy("guard")
        assert p.resolve(0, 0.0, 0.5, 3.0) == 0.5  # tau wins when positive
        assert p.resolve(0, 0.0, 0.0, 3.0) == 3.0  # then the row norm
        assert p.resolve(0, 0.0, 0.0, 0.0) == 1.0  # then 1.0

    def test_raise_mode_is_typed(self):
        p = PivotPolicy("raise")
        with pytest.raises(ZeroPivotError, match="zero pivot at row 7") as exc:
            p.resolve(7, 0.0, 0.1, 1.0)
        assert exc.value.row == 7

    def test_shift_preserves_sign_and_scales(self):
        p = PivotPolicy("shift")
        assert p.resolve(0, 0.0, 1e-2, 10.0) == pytest.approx(0.1)
        p_tol = PivotPolicy("shift", breakdown_tol=1e-1)
        assert p_tol.resolve(0, -1e-4, 1e-2, 10.0) == pytest.approx(-0.1)

    def test_breakdown_tol_widens_detection(self):
        strict = PivotPolicy("raise")
        loose = PivotPolicy("raise", breakdown_tol=1e-2)
        assert strict.resolve(0, 1e-5, 0.0, 1.0) == 1e-5
        with pytest.raises(ZeroPivotError):
            loose.resolve(0, 1e-5, 0.0, 1.0)

    def test_nan_pivot_is_breakdown(self):
        assert PivotPolicy("guard").is_breakdown(float("nan"), 1.0)

    def test_from_diag_guard(self):
        assert PivotPolicy.from_diag_guard(True).mode == "guard"
        assert PivotPolicy.from_diag_guard(False).mode == "raise"


def _singular_arrow(n=6):
    """A matrix whose elimination annihilates the last pivot exactly."""
    b = CSRMatrix.identity(n).to_dense()
    b[n - 1, n - 1] = 1.0
    b[0, n - 1] = 1.0
    b[n - 1, 0] = 1.0
    b[0, 0] = 1.0  # row n-1 becomes linearly dependent on row 0
    return CSRMatrix.from_dense(b)


class TestPolicyInILUT:
    def test_guard_policy_matches_diag_guard_factors(self):
        A = poisson2d(8)
        params = ILUTParams(fill=5, threshold=1e-3)
        f1 = ilut(A, params)
        f2 = ilut(A, params, pivot_policy=PivotPolicy("guard"))
        assert np.array_equal(f1.U.data, f2.U.data)
        assert np.array_equal(f1.L.data, f2.L.data)

    def test_raise_policy_raises_typed_error(self):
        A = _singular_arrow()
        with pytest.raises(ZeroPivotError) as exc:
            ilut(A, ILUTParams(fill=6, threshold=0.0),
                 pivot_policy=PivotPolicy("raise"))
        assert exc.value.row >= 0

    def test_shift_policy_produces_finite_factors(self):
        A = _singular_arrow()
        f = ilut(A, ILUTParams(fill=6, threshold=0.0),
                 pivot_policy=PivotPolicy("shift"))
        assert np.all(np.isfinite(f.U.data))
        diag = np.array([f.U.data[f.U.indptr[i]] for i in range(f.n)])
        assert np.all(diag != 0.0)
