"""Dataflow-powered rules (``SPMD004``, ``SPMD005``, ``DET005``).

These rules consume the :mod:`repro.lint.flow` engine — the CFG/
dataflow layer, the project call graph, the symbolic protocol executor
and the taint analyses — and therefore see through indirection the
syntactic rules (SPMD001–003, DET001–004) cannot:

* ``SPMD004`` certifies whole drivers deadlock-free by symbolic
  execution over rank counts 2–4, composing per-function summaries
  interprocedurally.  It reports *semantic* protocol violations —
  drains with no matching post, collectives reached with messages in
  flight, posts leaked at exit — each located at the offending call.
* ``SPMD005`` tracks rank taint through copies and arithmetic into
  branch conditions guarding collectives (``leader = rank == 0`` …
  ``if leader: sim.barrier()``), with the def-use chain in the message.
* ``DET005`` tracks RNG taint into posted payloads and dropping
  decisions — randomness crossing the communication or dropping
  boundary breaks run-to-run reproducibility of the factorization.
"""

from __future__ import annotations

import ast

from ..astutil import call_name, enclosing_function, names_in
from ..comm import branch_conditions, comm_sites
from ..findings import Finding, Severity
from ..flow import rank_tainted_names, rng_taint_chains, verify_drivers
from ..flow.dataflow import NAC, constant_env_at, eval_const_expr
from ..registry import Rule, register
from ..runner import ModuleContext, ProjectContext
from .spmd import RANK_NAMES

__all__ = ["ProtocolDeadlock", "RankTaintedCollective", "RngTaintedComm"]


@register
class ProtocolDeadlock(Rule):
    """Symbolic protocol execution found a deadlock or message leak.

    The verifier enumerates every driver path over 2–4 ranks; a finding
    here is a concrete schedule on which the simulator would hang or
    leave messages undrained (see ``repro lint --verify-protocol`` for
    the certification view of the same analysis).
    """

    id = "SPMD004"
    name = "protocol-deadlock"
    severity = Severity.ERROR
    description = (
        "symbolically executed send/recv/collective protocol must "
        "certify deadlock-free for 2-4 ranks"
    )

    def check_project(self, project: ProjectContext) -> list[Finding]:
        by_relpath = {m.relpath: m for m in project.modules}
        out: list[Finding] = []
        seen: set[tuple[str, str, int]] = set()
        for report in verify_drivers(project.modules):
            for p in report.problems:
                module = by_relpath.get(p.module)
                if module is None:
                    continue
                # one finding per (kind, site): the executor reports the
                # same defect once per rank count / path otherwise
                key = (p.kind, p.module, p.line)
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    self.finding(
                        module,
                        p.line,
                        0,
                        f"[{p.kind}] in {p.function}: {p.message}",
                    )
                )
        return out


def _const_folds(func: ast.AST | None, test: ast.expr) -> bool:
    """True when ``test`` evaluates to a compile-time constant here."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    env = constant_env_at(func, test)
    return eval_const_expr(test, env) is not NAC


@register
class RankTaintedCollective(Rule):
    """A collective guarded by a condition *derived from* the rank.

    SPMD002 catches ``if rank == 0: sim.barrier()``; this rule follows
    the value through assignments (``leader = rank == 0``), reporting
    the def-use chain that carried the taint into the guard.
    """

    id = "SPMD005"
    name = "rank-tainted-collective"
    severity = Severity.ERROR
    description = (
        "collectives must not be guarded by values derived from the "
        "rank (taint tracked through copies and arithmetic)"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        taint_cache: dict[int, dict] = {}
        for site in comm_sites(module.tree):
            if site.kind != "collective" or site.func is None:
                continue
            func = site.func
            if id(func) not in taint_cache:
                taint_cache[id(func)] = rank_tainted_names(func)
            tainted = taint_cache[id(func)]
            if not tainted:
                continue
            for test in branch_conditions(site):
                hit = sorted(names_in(test) & set(tainted))
                # direct rank names are SPMD002's report; only the
                # flowed-through ones are new information here
                hit = [n for n in hit if n not in RANK_NAMES]
                if not hit:
                    continue
                if _const_folds(func, test):
                    continue  # guard is actually compile-time constant
                chain = tainted[hit[0]].describe()
                out.append(
                    self.finding(
                        module,
                        site.line,
                        site.col,
                        f"collective guarded by rank-derived value "
                        f"{hit[0]!r} (condition at line {test.lineno}); "
                        f"taint chain: {chain}",
                    )
                )
                break
        return out


#: ``send(src, dst, payload, nwords, tag=...)`` — payload position.
_SEND_PAYLOAD_ARG = 2


def _is_dropping_call(call: ast.Call) -> bool:
    name = call_name(call)
    return bool(name) and ("drop" in name or name in ("keep", "keep_entry"))


@register
class RngTaintedComm(Rule):
    """RNG-derived data in a posted payload or a dropping decision.

    The paper's threshold-ILU dropping rule and the deterministic MIS
    are both designed so the factorization is a pure function of the
    matrix and the seed.  A payload or drop/keep decision computed from
    an *unpinned* generator draw silently varies across runs; the
    finding's def-use chain shows where the randomness entered.
    """

    id = "DET005"
    name = "rng-tainted-comm"
    severity = Severity.WARNING
    description = (
        "posted payloads and dropping decisions must not depend on "
        "RNG draws (taint tracked through assignments)"
    )

    def check_module(self, module: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        chains_cache: dict[int, dict] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            is_send = name == "send"
            is_drop = _is_dropping_call(node)
            if not (is_send or is_drop):
                continue
            func = enclosing_function(node)
            if func is None:
                continue
            if id(func) not in chains_cache:
                chains_cache[id(func)] = rng_taint_chains(func)
            chains = chains_cache[id(func)]
            if not chains:
                continue
            if is_send:
                if len(node.args) <= _SEND_PAYLOAD_ARG:
                    continue
                exprs = [node.args[_SEND_PAYLOAD_ARG]]
                what = "posted payload"
            else:
                exprs = list(node.args)
                what = f"dropping decision {name}()"
            for expr in exprs:
                hit = sorted(names_in(expr) & set(chains))
                if hit:
                    out.append(
                        self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"{what} depends on RNG-derived value "
                            f"{hit[0]!r}; taint chain: "
                            f"{chains[hit[0]].describe()}",
                        )
                    )
                    break
        return out
