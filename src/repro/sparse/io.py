"""Minimal Matrix Market (coordinate, real, general) reader/writer.

Enough of the MatrixMarket format to persist test matrices and exchange
them with other tools; pattern and symmetric variants are handled on
read.
"""

from __future__ import annotations

import os

import numpy as np

from .coo import COOBuilder
from .csr import CSRMatrix

__all__ = ["write_matrix_market", "read_matrix_market"]


def write_matrix_market(A: CSRMatrix, path: str | os.PathLike[str]) -> None:
    """Write ``A`` in MatrixMarket coordinate/real/general format (1-based)."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write(f"{A.shape[0]} {A.shape[1]} {A.nnz}\n")
        for i, cols, vals in A.iter_rows():
            for j, v in zip(cols, vals, strict=True):
                fh.write(f"{i + 1} {j + 1} {float(v)!r}\n")


def read_matrix_market(path: str | os.PathLike[str]) -> CSRMatrix:
    """Read a MatrixMarket coordinate file into a :class:`CSRMatrix`."""
    with open(path, encoding="ascii") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: not a MatrixMarket file")
        tokens = header.strip().lower().split()
        if len(tokens) < 5:
            raise ValueError(f"{path}: malformed MatrixMarket header: {header!r}")
        _, obj, fmt, field, symmetry = tokens[:5]
        if obj != "matrix" or fmt != "coordinate":
            raise ValueError(f"{path}: only coordinate matrices are supported")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"{path}: malformed size line: {line!r}")
        nrows, ncols, nnz = (int(p) for p in parts)

        builder = COOBuilder(nrows, ncols)
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            entry = fh.readline().split()
            if not entry:
                raise ValueError(f"{path}: truncated file at entry {k}")
            rows[k] = int(entry[0]) - 1
            cols[k] = int(entry[1]) - 1
            vals[k] = 1.0 if field == "pattern" else float(entry[2])
        builder.add_batch(rows, cols, vals)
        if symmetry == "symmetric":
            off = rows != cols
            builder.add_batch(cols[off], rows[off], vals[off])
        return builder.to_csr()
