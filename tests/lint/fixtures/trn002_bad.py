"""TRN002 bad twin: payloads that cannot cross a pickling transport.

A ``threading.Lock`` fails ``pickle.dumps`` outright; a lambda does
too (and would be a different function object on the remote side even
if it could be serialized).
"""

import threading


def share_lock(sim, rank, nbr):
    guard = threading.Lock()
    sim.send(rank, nbr, guard, 1.0, tag="lock")
    return sim.recv(rank, nbr, tag="lock")


def share_rule(sim, rank, nbr):
    rule = lambda x: x + 1  # noqa: E731
    sim.send(rank, nbr, rule, 1.0, tag="fn")
    return sim.recv(rank, nbr, tag="fn")
