"""Project-wide call graph with import- and class-aware name resolution.

Built once per lint run from every parsed module, the graph answers the
question the protocol verifier and the interprocedural SPMD rules need:
*which function body does this call site execute?* — across

* plain module-level calls (``helper(...)``),
* imported names (``from .elimination import EliminationEngine``,
  including relative imports and aliasing),
* module-attribute calls (``mod.helper(...)`` through ``import``),
* ``self.method(...)`` dispatch, resolved through a linearised
  single-inheritance MRO that itself follows imports (e.g.
  ``InterfacePartitionEngine`` inheriting ``EliminationEngine`` from a
  sibling module).

Resolution is best-effort and *sound for composition*: an unresolvable
call simply contributes no summary (the verifier treats it as opaque),
never a wrong one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["FunctionDecl", "ClassDecl", "CallGraph", "build_call_graph"]


@dataclass
class FunctionDecl:
    """One function/method definition in the project."""

    module: str  # project-root-relative posix path
    qualname: str  # "func" or "Class.method"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: "ClassDecl | None" = None

    @property
    def key(self) -> str:
        return f"{self.module}::{self.qualname}"


@dataclass
class ClassDecl:
    """One class definition with its (unresolved) base names."""

    module: str
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionDecl] = field(default_factory=dict)


def _dotted_module(relpath: str) -> str:
    """``src/repro/ilu/elimination.py`` -> ``repro.ilu.elimination``."""
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _is_mutable_value(expr: ast.expr) -> bool:
    """Module-level values whose in-place mutation TRN003 tracks."""
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = expr.func.attr if isinstance(expr.func, ast.Attribute) else (
            expr.func.id if isinstance(expr.func, ast.Name) else ""
        )
        return name in _MUTABLE_CTORS
    return False


def _attr_chain(node: ast.expr) -> str:
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class _ModuleInfo:
    relpath: str
    dotted: str
    functions: dict[str, FunctionDecl] = field(default_factory=dict)
    classes: dict[str, ClassDecl] = field(default_factory=dict)
    #: local name -> (defining module dotted name, remote name | None).
    #: remote None means the name *is* the module (``import x.y as z``).
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)
    #: Module-level names bound to mutable containers (list/dict/set
    #: displays or constructor calls) — the TRN003 mutation targets.
    mutable_globals: frozenset[str] = frozenset()


class CallGraph:
    """Declarations, import tables, and call-site resolution."""

    def __init__(self) -> None:
        self._by_dotted: dict[str, _ModuleInfo] = {}
        self._by_relpath: dict[str, _ModuleInfo] = {}

    # ------------------------------------------------------------ build

    def add_module(self, relpath: str, tree: ast.Module) -> None:
        info = _ModuleInfo(relpath=relpath, dotted=_dotted_module(relpath))
        is_pkg = relpath.replace("\\", "/").endswith("/__init__.py")
        info.mutable_globals = frozenset(
            t.id
            for node in tree.body
            if isinstance(node, ast.Assign) and _is_mutable_value(node.value)
            for t in node.targets
            if isinstance(t, ast.Name)
        )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[node.name] = FunctionDecl(
                    module=relpath, qualname=node.name, node=node
                )
            elif isinstance(node, ast.ClassDef):
                cls = ClassDecl(
                    module=relpath,
                    name=node.name,
                    node=node,
                    bases=[b for b in map(_attr_chain, node.bases) if b],
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        cls.methods[item.name] = FunctionDecl(
                            module=relpath,
                            qualname=f"{node.name}.{item.name}",
                            node=item,
                            cls=cls,
                        )
                info.classes[node.name] = cls
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[local] = (target, None)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_relative(info.dotted, node, is_pkg=is_pkg)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    info.imports[alias.asname or alias.name] = (base, alias.name)
        self._by_dotted[info.dotted] = info
        self._by_relpath[relpath] = info

    @staticmethod
    def _resolve_relative(
        dotted: str, node: ast.ImportFrom, *, is_pkg: bool = False
    ) -> str:
        if node.level == 0:
            return node.module or ""
        parts = dotted.split(".")
        # level 1 = current package.  A plain module's dotted path ends
        # with its own leaf name, so strip `level` components; a package
        # ``__init__``'s dotted path *is* the current package already,
        # so strip one fewer (``from .kway import ...`` inside
        # ``repro/partition/__init__.py`` stays in ``repro.partition``).
        drop = node.level - 1 if is_pkg else node.level
        parts = parts[: max(0, len(parts) - drop)]
        if node.module:
            parts += node.module.split(".")
        return ".".join(parts)

    # ---------------------------------------------------------- queries

    def module(self, relpath: str) -> bool:
        return relpath in self._by_relpath

    def mutable_globals(self, relpath: str) -> frozenset[str]:
        """Module-level mutable-container names of ``relpath``."""
        info = self._by_relpath.get(relpath)
        return info.mutable_globals if info is not None else frozenset()

    def functions(self) -> list[FunctionDecl]:
        out: list[FunctionDecl] = []
        for info in self._by_relpath.values():
            out.extend(info.functions.values())
            for cls in info.classes.values():
                out.extend(cls.methods.values())
        return out

    def lookup(self, relpath: str, qualname: str) -> FunctionDecl | None:
        info = self._by_relpath.get(relpath)
        if info is None:
            return None
        if "." in qualname:
            cls_name, _, meth = qualname.partition(".")
            cls = info.classes.get(cls_name)
            if cls is not None:
                return self._method_in_mro(cls, meth)
            return None
        return info.functions.get(qualname)

    def _resolve_name(
        self, info: _ModuleInfo, name: str, *, depth: int = 0
    ) -> FunctionDecl | ClassDecl | None:
        """A name in ``info``'s namespace -> its declaration (if ours)."""
        if depth > 8:
            return None
        if name in info.functions:
            return info.functions[name]
        if name in info.classes:
            return info.classes[name]
        if name in info.imports:
            src_dotted, remote = info.imports[name]
            src = self._by_dotted.get(src_dotted)
            if src is None or remote is None:
                return None
            return self._resolve_name(src, remote, depth=depth + 1)
        return None

    def mro(self, cls: ClassDecl) -> list[ClassDecl]:
        """Linearised single-inheritance chain (first base wins)."""
        out = [cls]
        seen = {id(cls)}
        cur: ClassDecl | None = cls
        while cur is not None and cur.bases:
            base_decl = None
            info = self._by_relpath.get(cur.module)
            if info is not None:
                for b in cur.bases:
                    resolved = self._resolve_name(info, b.split(".")[-1])
                    if isinstance(resolved, ClassDecl):
                        base_decl = resolved
                        break
            if base_decl is None or id(base_decl) in seen:
                break
            out.append(base_decl)
            seen.add(id(base_decl))
            cur = base_decl
        return out

    def _method_in_mro(self, cls: ClassDecl, name: str) -> FunctionDecl | None:
        for c in self.mro(cls):
            if name in c.methods:
                return c.methods[name]
        return None

    def resolve_call(
        self,
        call: ast.Call,
        relpath: str,
        enclosing_class: str | None = None,
    ) -> FunctionDecl | None:
        """The project function a call site executes, or None if opaque."""
        info = self._by_relpath.get(relpath)
        if info is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self._resolve_name(info, func.id)
            if isinstance(resolved, FunctionDecl):
                return resolved
            if isinstance(resolved, ClassDecl):  # constructor: __init__
                return self._method_in_mro(resolved, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                if enclosing_class is None:
                    return None
                cls = info.classes.get(enclosing_class)
                if cls is None:
                    return None
                return self._method_in_mro(cls, func.attr)
            if isinstance(base, ast.Name) and base.id in info.imports:
                src_dotted, remote = info.imports[base.id]
                if remote is None:  # module alias: mod.func(...)
                    src = self._by_dotted.get(src_dotted)
                    if src is not None:
                        resolved = self._resolve_name(src, func.attr)
                        if isinstance(resolved, FunctionDecl):
                            return resolved
            return None
        return None

    def edges(self) -> dict[str, set[str]]:
        """``caller key -> {callee keys}`` over every resolvable call."""
        out: dict[str, set[str]] = {}
        for decl in self.functions():
            cls_name = decl.cls.name if decl.cls is not None else None
            callees = out.setdefault(decl.key, set())
            for node in ast.walk(decl.node):
                if isinstance(node, ast.Call):
                    callee = self.resolve_call(node, decl.module, cls_name)
                    if callee is not None:
                        callees.add(callee.key)
        return out

    def roots(self) -> set[str]:
        """Function keys never called from inside the project."""
        edges = self.edges()
        called: set[str] = set()
        for callees in edges.values():
            called |= callees
        return {d.key for d in self.functions()} - called


def build_call_graph(modules: list) -> CallGraph:
    """Build from ``ModuleContext``-likes (``relpath`` + ``tree`` attrs)."""
    cg = CallGraph()
    for m in modules:
        cg.add_module(m.relpath, m.tree)
    return cg
