"""Deterministic, seeded fault plans for the SPMD simulator.

A :class:`FaultPlan` is an immutable description of *what goes wrong*:
point-to-point message faults (drop / delay / duplicate / corrupt) and
rank faults (crash / stall at a chosen superstep).  The plan itself is
reusable; each :class:`~repro.machine.Simulator` built with a plan
instantiates a fresh :class:`FaultRuntime` carrying the mutable match
counters, the seeded RNG used for payload corruption, and the
:class:`~repro.faults.journal.FaultJournal` — so the same plan replayed
with the same seed produces a bit-identical journal, factors and
modelled time (the determinism suite asserts this across backends).

Failure semantics
-----------------
* ``drop``   — the message is charged to the sender but never delivered;
  the eventual ``recv`` raises :class:`MessageLost` (a resilient driver
  retransmits, a non-resilient one surfaces the typed error).
* ``delay``  — arrival time is pushed back by ``delay`` seconds.
* ``duplicate`` — a second copy is enqueued (stale copies left in the
  mailbox at the end of the run are visible via ``pending_messages``).
* ``corrupt`` — float payloads get one entry replaced by NaN/Inf or one
  mantissa bit flipped; opaque payloads are journaled but left intact.
* ``crash``  — the rank raises :class:`RankFailure` at its first
  participation at or after ``superstep``; the crash is one-shot (the
  model is fail-once-then-restart), so a driver that restores a
  checkpoint and retries makes progress.
* ``stall``  — the rank's clock is advanced by ``stall`` seconds once,
  modelling a straggler; numerics are unaffected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from .journal import FaultJournal

__all__ = [
    "FaultError",
    "RankFailure",
    "MessageLost",
    "MessageFault",
    "RankFault",
    "FaultPlan",
    "FaultRuntime",
    "SendEffect",
]

_MESSAGE_ACTIONS = ("drop", "delay", "duplicate", "corrupt")
_RANK_ACTIONS = ("crash", "stall")
_CORRUPTIONS = ("nan", "inf", "bitflip")


class FaultError(RuntimeError):
    """Base class for errors surfaced by injected faults."""


class RankFailure(FaultError):
    """An injected crash: the rank cannot participate any further."""

    def __init__(self, rank: int, superstep: int) -> None:
        super().__init__(f"rank {rank} crashed at superstep {superstep}")
        self.rank = rank
        self.superstep = superstep


class MessageLost(FaultError):
    """A receive found no message — it was dropped by the fault plan."""

    def __init__(self, src: int, dst: int, tag: Any) -> None:
        super().__init__(
            f"message {src}->{dst} (tag={tag!r}) was lost; "
            "retransmit or surface the failure"
        )
        self.src = src
        self.dst = dst
        self.tag = tag


@dataclass(frozen=True)
class MessageFault:
    """Affect up to ``count`` matching point-to-point messages.

    ``src``/``dst`` of ``None`` match any endpoint; ``tag`` of ``None``
    matches any tag (a string matches the tag itself or the first
    element of a tuple tag, e.g. ``"urow"`` for ``("urow", level)``).
    The first ``skip`` matching messages are let through unharmed.
    """

    action: str
    src: int | None = None
    dst: int | None = None
    tag: str | None = None
    count: int = 1
    skip: int = 0
    delay: float = 0.0
    corruption: str = "nan"

    def __post_init__(self) -> None:
        if self.action not in _MESSAGE_ACTIONS:
            raise ValueError(
                f"unknown message fault action {self.action!r}; "
                f"choose from {_MESSAGE_ACTIONS}"
            )
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")
        if self.action == "delay" and self.delay <= 0:
            raise ValueError("delay faults need delay > 0")
        if self.corruption not in _CORRUPTIONS:
            raise ValueError(
                f"unknown corruption {self.corruption!r}; choose from {_CORRUPTIONS}"
            )

    def matches(self, src: int, dst: int, tag: Any) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.tag is not None:
            head = tag[0] if isinstance(tag, tuple) and tag else tag
            if head != self.tag and tag != self.tag:
                return False
        return True


@dataclass(frozen=True)
class RankFault:
    """Crash or stall ``rank`` at its first activity >= ``superstep``."""

    action: str
    rank: int
    superstep: int = 0
    stall: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in _RANK_ACTIONS:
            raise ValueError(
                f"unknown rank fault action {self.action!r}; "
                f"choose from {_RANK_ACTIONS}"
            )
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.superstep < 0:
            raise ValueError(f"superstep must be >= 0, got {self.superstep}")
        if self.action == "stall" and self.stall <= 0:
            raise ValueError("stall faults need stall > 0")


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seeded description of the faults to inject."""

    message_faults: tuple[MessageFault, ...] = ()
    rank_faults: tuple[RankFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # tolerate lists at the call site; store tuples for hashability
        object.__setattr__(self, "message_faults", tuple(self.message_faults))
        object.__setattr__(self, "rank_faults", tuple(self.rank_faults))

    def runtime(self, journal: FaultJournal | None = None) -> FaultRuntime:
        """Fresh mutable state for one simulation of this plan."""
        return FaultRuntime(self, journal if journal is not None else FaultJournal())

    def describe(self) -> str:
        return (
            f"FaultPlan({len(self.message_faults)} message fault(s), "
            f"{len(self.rank_faults)} rank fault(s), seed={self.seed})"
        )


@dataclass
class SendEffect:
    """What the fault runtime decided for one posted message."""

    deliver: bool = True
    copies: int = 1
    extra_delay: float = 0.0
    payload: Any = None


def _corrupt_payload(
    payload: Any, mode: str, rng: np.random.Generator
) -> tuple[Any, str]:
    """Corrupt one value of a float payload; opaque payloads pass through."""
    if isinstance(payload, np.ndarray) and payload.size and payload.dtype.kind == "f":
        out = payload.copy()
        idx = int(rng.integers(out.size))
        if mode == "nan":
            out.flat[idx] = np.nan
        elif mode == "inf":
            out.flat[idx] = np.inf
        else:  # bitflip: one mantissa bit of the chosen entry
            bit = int(rng.integers(52))
            bits = out.reshape(-1).view(np.uint64)
            bits[idx] = bits[idx] ^ np.uint64(1 << bit)
        return out, f"{mode} at payload index {idx}"
    if isinstance(payload, float) and math.isfinite(payload):
        if mode == "nan":
            return float("nan"), f"{mode} scalar"
        if mode == "inf":
            return float("inf"), f"{mode} scalar"
        return -payload, "bitflip scalar (sign)"
    return payload, f"{mode} requested but payload is opaque; left intact"


class FaultRuntime:
    """Mutable per-simulation state of a :class:`FaultPlan`.

    Created by the simulator; consulted on every send and on every rank
    activity.  Crash/stall faults disarm after firing (fail-once model);
    the engine-level recovery layer appends ``retransmit``/``restore``
    events through :attr:`journal`.
    """

    def __init__(self, plan: FaultPlan, journal: FaultJournal) -> None:
        self.plan = plan
        self.journal = journal
        self._rng = np.random.default_rng(plan.seed)
        self._seen = [0] * len(plan.message_faults)
        self._fired = [False] * len(plan.rank_faults)

    def on_send(
        self, src: int, dst: int, tag: Any, payload: Any, superstep: int
    ) -> SendEffect:
        """Apply message faults to one posted message (first match wins)."""
        effect = SendEffect(payload=payload)
        for fi, fault in enumerate(self.plan.message_faults):
            if not fault.matches(src, dst, tag):
                continue
            seen = self._seen[fi]
            self._seen[fi] = seen + 1
            if seen < fault.skip or seen >= fault.skip + fault.count:
                continue
            if fault.action == "drop":
                effect.deliver = False
                self.journal.record(
                    "drop", superstep=superstep, src=src, dst=dst, tag=tag
                )
            elif fault.action == "delay":
                effect.extra_delay += fault.delay
                self.journal.record(
                    "delay",
                    superstep=superstep,
                    src=src,
                    dst=dst,
                    tag=tag,
                    detail=f"+{fault.delay:g}s",
                )
            elif fault.action == "duplicate":
                effect.copies += 1
                self.journal.record(
                    "duplicate", superstep=superstep, src=src, dst=dst, tag=tag
                )
            else:  # corrupt
                effect.payload, detail = _corrupt_payload(
                    effect.payload, fault.corruption, self._rng
                )
                self.journal.record(
                    "corrupt",
                    superstep=superstep,
                    src=src,
                    dst=dst,
                    tag=tag,
                    detail=detail,
                )
            return effect  # one fault per message keeps semantics composable
        return effect

    def on_rank_activity(self, rank: int, superstep: int) -> float:
        """Fire pending rank faults; returns stall seconds (usually 0).

        Raises :class:`RankFailure` when an armed crash fault fires.
        """
        stall = 0.0
        for fi, fault in enumerate(self.plan.rank_faults):
            if self._fired[fi] or fault.rank != rank or superstep < fault.superstep:
                continue
            self._fired[fi] = True
            if fault.action == "crash":
                self.journal.record("crash", superstep=superstep, rank=rank)
                raise RankFailure(rank, superstep)
            self.journal.record(
                "stall",
                superstep=superstep,
                rank=rank,
                detail=f"+{fault.stall:g}s",
            )
            stall += fault.stall
        return stall

    def on_lost(self, src: int, dst: int, tag: Any, superstep: int) -> None:
        """Journal a receive that found its message missing."""
        self.journal.record("lost", superstep=superstep, src=src, dst=dst, tag=tag)
