"""Numerical-breakdown exception hierarchy and pivot remediation.

Incomplete factorizations break down when elimination drives a pivot to
(near) zero, and iterative solves break down when a preconditioner
apply produces NaN/Inf.  This module gives every layer of the stack one
shared vocabulary for those events:

* :class:`NumericalBreakdown` — the root.  Subclasses also inherit the
  builtin exception callers historically caught (``ZeroDivisionError``
  for sweep/Jacobi diagonals, ``ValueError`` for zero diagonals and
  non-finite values) so existing ``except`` clauses keep working while
  new code can catch the whole family with one clause.
* :class:`PivotPolicy` — the configurable small/zero-pivot remediation
  used by ``ilu/ilut.py``, ``ilu/elimination.py`` and both kernel
  backends.  ``"guard"`` reproduces the historical substitution
  bit-exactly, ``"raise"`` turns breakdown into a typed error for the
  fallback/retry layer, and ``"shift"`` applies a threshold-scaled
  sign-preserving perturbation in the spirit of Bollhöfer et al.'s
  block-ILU pivot treatment.
* :func:`assert_finite` — the NaN/Inf guard applied at preconditioner
  apply boundaries.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "NumericalBreakdown",
    "ZeroPivotError",
    "ZeroDiagonalError",
    "NonFiniteError",
    "FallbackExhausted",
    "PivotPolicy",
    "assert_finite",
]

#: Relative floor used by the ``"shift"`` policy when the drop threshold
#: is zero: perturbations never fall below sqrt(eps) times the row scale,
#: which keeps the perturbed factor bounded (Bollhöfer's condition-number
#: motivated choice).
_SHIFT_FLOOR = float(np.sqrt(np.finfo(np.float64).eps))


class NumericalBreakdown(ArithmeticError):
    """A numerical event the algorithm cannot proceed through.

    Carries the offending ``row`` (or ``-1`` when not row-specific) and
    the offending ``value`` so failure reports and logs can localise the
    breakdown without parsing messages.
    """

    def __init__(self, message: str, *, row: int = -1, value: float = float("nan")) -> None:
        super().__init__(message)
        self.row = int(row)
        self.value = float(value)


class ZeroPivotError(NumericalBreakdown, ZeroDivisionError):
    """Elimination hit an exactly/near zero pivot.

    Also a ``ZeroDivisionError`` so callers of the historical
    ``diag_guard=False`` paths and the stationary sweeps keep working.
    """


class ZeroDiagonalError(NumericalBreakdown, ValueError):
    """A zero entry on a diagonal that must be zero-free.

    Also a ``ValueError`` for backward compatibility with
    ``DiagonalPreconditioner`` callers.
    """


class NonFiniteError(NumericalBreakdown, ValueError):
    """NaN or Inf detected at a guarded boundary."""


class FallbackExhausted(NumericalBreakdown):
    """Every candidate in a fallback chain (or retry schedule) failed."""


def assert_finite(x: np.ndarray, *, where: str = "") -> np.ndarray:
    """Raise :class:`NonFiniteError` if ``x`` has a NaN/Inf entry.

    Returns ``x`` unchanged so the guard composes as an expression.  The
    error names the first offending index (as ``row``) and its value.
    """
    arr = np.asarray(x)
    if arr.dtype.kind != "f" or bool(np.isfinite(arr).all()):
        return x
    flat = arr.reshape(-1)
    bad = int(np.flatnonzero(~np.isfinite(flat))[0])
    label = where or "array"
    raise NonFiniteError(
        f"non-finite value {float(flat[bad])!r} at index {bad} in {label}",
        row=bad,
        value=float(flat[bad]),
    )


class PivotPolicy:
    """What to do when elimination meets a small/zero pivot.

    Parameters
    ----------
    mode:
        ``"guard"`` — substitute the historical fallback pivot (the drop
        threshold ``tau`` if positive, else the row norm, else 1.0);
        bit-exact with the legacy ``diag_guard=True`` behaviour.
        ``"raise"`` — raise :class:`ZeroPivotError` (legacy
        ``diag_guard=False``, but typed).
        ``"shift"`` — replace the pivot by a sign-preserving
        threshold-scaled perturbation ``±shift_scale * max(tau,
        sqrt(eps)) * rownorm`` (à la Bollhöfer), so the factor stays
        bounded without abandoning the sparsity pattern.
    breakdown_tol:
        Pivots with ``|diag| <= breakdown_tol * rownorm`` are treated as
        broken down in addition to exact zeros.  The default ``0.0``
        triggers on exact zeros only — required for bit-exactness with
        the legacy guard.
    shift_scale:
        Multiplier on the ``"shift"`` perturbation magnitude.
    """

    __slots__ = ("mode", "breakdown_tol", "shift_scale")

    _MODES = ("guard", "raise", "shift")

    def __init__(
        self,
        mode: str = "guard",
        *,
        breakdown_tol: float = 0.0,
        shift_scale: float = 1.0,
    ) -> None:
        if mode not in self._MODES:
            raise ValueError(f"unknown pivot policy {mode!r}; choose from {self._MODES}")
        if breakdown_tol < 0:
            raise ValueError(f"breakdown_tol must be >= 0, got {breakdown_tol}")
        if shift_scale <= 0:
            raise ValueError(f"shift_scale must be > 0, got {shift_scale}")
        self.mode = mode
        self.breakdown_tol = float(breakdown_tol)
        self.shift_scale = float(shift_scale)

    @classmethod
    def from_diag_guard(cls, diag_guard: bool) -> "PivotPolicy":
        """Map the legacy boolean switch onto a policy."""
        return cls("guard" if diag_guard else "raise")

    def is_breakdown(self, diag: float, norm: float) -> bool:
        if diag == 0.0 or math.isnan(diag):
            return True
        return self.breakdown_tol > 0.0 and abs(diag) <= self.breakdown_tol * (
            norm if norm > 0 else 1.0
        )

    def resolve(self, row: int, diag: float, tau: float, norm: float) -> float:
        """Return the pivot to divide by, remediating a breakdown.

        ``tau`` is the (absolute) drop threshold in effect for the row
        and ``norm`` the row's scaling (the same norm dropping uses).
        """
        if not self.is_breakdown(diag, norm):
            return diag
        if self.mode == "raise":
            raise ZeroPivotError(f"zero pivot at row {row}", row=row, value=diag)
        if self.mode == "guard":
            return tau if tau > 0 else (norm if norm > 0 else 1.0)
        # "shift": sign-preserving threshold-scaled perturbation
        scale = norm if norm > 0 else 1.0
        magnitude = self.shift_scale * max(tau, _SHIFT_FLOOR) * scale
        sign = 1.0 if (diag >= 0 or math.isnan(diag)) else -1.0
        return sign * magnitude

    def describe(self) -> str:
        extra = ""
        if self.breakdown_tol:
            extra += f", breakdown_tol={self.breakdown_tol:g}"
        if self.mode == "shift" and self.shift_scale - 1.0 != 0.0:
            extra += f", shift_scale={self.shift_scale:g}"
        return f"PivotPolicy({self.mode}{extra})"

    def __repr__(self) -> str:
        return self.describe()
