"""PERF001 clean twin: backend dispatch, reference paths, cold paths."""


def dispatched_matvec(A, x, sim, *, backend=None):
    # has a backend parameter: the scalar branch is the reference twin
    y = x * 0
    for i in range(A.shape[0]):
        cols, vals = A.row(i)
        y[i] = (vals * x[cols]).sum()
    sim.compute(0, 2.0 * A.nnz)
    return y


def resolved_matvec(A, x, sim):
    from repro.kernels.backend import resolve_backend

    if resolve_backend(None) == "reference":
        for i in range(A.shape[0]):
            cols, vals = A.row(i)
            x[i] += vals.sum()
    sim.compute(0, 2.0 * A.nnz)
    return x


def documented_reference(A, x, sim):
    """Scalar reference implementation the parity suite diffs against."""
    for i in range(A.shape[0]):
        cols, vals = A.row(i)
        x[i] += vals.sum()
    sim.compute(0, 2.0 * A.nnz)
    return x


def uncharged_helper(A):
    # no machine-model charges: not a hot path this rule polices
    out = []
    for i in range(A.shape[0]):
        cols, vals = A.row(i)
        out.append(vals.sum())
    return out
