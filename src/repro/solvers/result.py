"""Shared result type for the iterative solvers.

Every solver (GMRES, CG, BiCGSTAB, the stationary iterations) returns a
subclass of :class:`SolveResult`, so driver code, benchmarks and tables
can consume ``converged`` / ``iterations`` / ``residual_history`` /
``elapsed`` without caring which Krylov method produced them; each
subclass only adds its method-specific counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..resilience import FailureReport

__all__ = [
    "SolveResult",
    "GMRESResult",
    "CGResult",
    "BiCGSTABResult",
    "StationaryResult",
]


@dataclass
class SolveResult:
    """Outcome of an iterative linear solve.

    Attributes
    ----------
    x:
        The computed solution.
    converged:
        Whether the stopping criterion was met.
    iterations:
        Iteration count (inner iterations across restarts for GMRES).
    final_residual:
        ``||b - A x||`` recomputed explicitly at exit.
    residual_norms:
        Residual norm per iteration, including the initial one (the
        *preconditioned* norm where the method iterates on it).
    elapsed:
        Wall-clock seconds spent inside the solver.
    failure_report:
        The :class:`~repro.resilience.FailureReport` of the
        preconditioner's fallback/retry history when one was attached
        (``None`` means nothing broke down — or nothing was tracked).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    final_residual: float
    residual_norms: list[float] = field(default_factory=list)
    elapsed: float = 0.0
    failure_report: FailureReport | None = None

    @property
    def residual_history(self) -> list[float]:
        """Alias for :attr:`residual_norms`."""
        return self.residual_norms


@dataclass
class GMRESResult(SolveResult):
    """Restarted-GMRES outcome; adds the paper's NMV counter.

    ``breakdown`` flags a (near-)lucky breakdown of the Arnoldi process:
    either ``H[j+1, j]`` collapsed below the representable floor (happy
    breakdown — the Krylov space became invariant) or the exit
    verification demoted a converged flag because the recursive residual
    disagreed with the true one (near-lucky breakdown on an
    inconsistent/singular preconditioned system).
    """

    num_matvec: int = 0
    num_precond: int = 0
    breakdown: bool = False


@dataclass
class CGResult(SolveResult):
    """Preconditioned-CG outcome."""

    num_matvec: int = 0


@dataclass
class BiCGSTABResult(SolveResult):
    """BiCGSTAB outcome; ``breakdown`` marks a rho/omega early exit."""

    num_matvec: int = 0
    breakdown: bool = False


@dataclass
class StationaryResult(SolveResult):
    """Jacobi / Gauss-Seidel / SOR outcome."""
