"""Smoke tests: every example runs end-to-end at reduced scale."""

import importlib
import sys

import pytest


@pytest.fixture(scope="module")
def examples_path():
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
    path = os.path.abspath(path)
    sys.path.insert(0, path)
    yield path
    sys.path.remove(path)


def _run(module_name, examples_path, *args, **kwargs):
    mod = importlib.import_module(module_name)
    mod.main(*args, **kwargs)


def test_quickstart(examples_path, capsys):
    _run("quickstart", examples_path, nx=20, nranks=4)
    out = capsys.readouterr().out
    assert "converged=True" in out


def test_torso_ecg(examples_path, capsys):
    _run("torso_ecg", examples_path, 500)
    out = capsys.readouterr().out
    assert "ILUT*" in out and "yes" in out


def test_machine_scaling(examples_path, capsys):
    _run("machine_scaling", examples_path, nx=16, procs=(2, 4))
    out = capsys.readouterr().out
    assert "cray-t3d" in out and "workstation-cluster" in out


def test_preconditioner_tour(examples_path, capsys):
    _run("preconditioner_tour", examples_path, nx=14)
    out = capsys.readouterr().out
    assert "ILUT(10,1e-4)" in out

def test_orderings(examples_path, capsys):
    _run("orderings", examples_path, nx=12)
    out = capsys.readouterr().out
    assert "nested dissection" in out


def test_paper_figures(examples_path, capsys):
    _run("paper_figures", examples_path, nx=10)
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 3" in out
