"""Stationary iterations: Jacobi, Gauss-Seidel, SOR (paper's reference [9]
context — distributed ILU(0)/SOR preconditioners were the state of the
art the ILUT work competes with).

Provided both as standalone solvers and as preconditioners (a fixed
number of sweeps approximating ``A^{-1}``).
"""

from __future__ import annotations

import time

import numpy as np

from ..resilience import ZeroPivotError
from ..sparse import CSRMatrix
from .preconditioners import Preconditioner
from .result import StationaryResult

__all__ = [
    "StationaryResult",
    "jacobi",
    "gauss_seidel",
    "sor",
    "SweepPreconditioner",
]


def _prepare(A: CSRMatrix, b: np.ndarray, x0: np.ndarray | None):
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"square matrix required, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    n = A.shape[0]
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, expected ({n},)")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    return b, x


def jacobi(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    x0: np.ndarray | None = None,
    damping: float = 1.0,
) -> StationaryResult:
    """(Damped) Jacobi iteration ``x += w D^{-1} (b - A x)``."""
    t_start = time.perf_counter()
    b, x = _prepare(A, b, x0)
    d = A.diagonal()
    if np.any(d == 0.0):
        row = int(np.flatnonzero(d == 0.0)[0])
        raise ZeroPivotError(
            f"Jacobi requires a zero-free diagonal (row {row} is zero)", row=row, value=0.0
        )
    inv_d = damping / d
    r = b - A @ x
    r0 = float(np.linalg.norm(r)) or 1.0
    hist = [float(np.linalg.norm(r))]
    it = 0
    converged = False
    while it < maxiter:
        x += inv_d * r
        r = b - A @ x
        it += 1
        rn = float(np.linalg.norm(r))
        hist.append(rn)
        if rn <= tol * r0:
            converged = True
            break
    return StationaryResult(
        x=x,
        converged=converged,
        iterations=it,
        final_residual=hist[-1],
        residual_norms=hist,
        elapsed=time.perf_counter() - t_start,
    )


def sor(
    A: CSRMatrix,
    b: np.ndarray,
    *,
    omega: float = 1.0,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    x0: np.ndarray | None = None,
) -> StationaryResult:
    """Successive over-relaxation (``omega=1`` → Gauss-Seidel)."""
    if not 0.0 < omega < 2.0:
        raise ValueError(f"SOR requires 0 < omega < 2, got {omega}")
    t_start = time.perf_counter()
    b, x = _prepare(A, b, x0)
    d = A.diagonal()
    if np.any(d == 0.0):
        row = int(np.flatnonzero(d == 0.0)[0])
        raise ZeroPivotError(
            f"SOR requires a zero-free diagonal (row {row} is zero)", row=row, value=0.0
        )
    n = A.shape[0]
    r = b - A @ x
    r0 = float(np.linalg.norm(r)) or 1.0
    hist = [float(np.linalg.norm(r))]
    it = 0
    converged = False
    while it < maxiter:
        for i in range(n):
            cols, vals = A.row(i)
            sigma = float(np.dot(vals, x[cols])) - d[i] * x[i]
            x[i] = (1.0 - omega) * x[i] + omega * (b[i] - sigma) / d[i]
        r = b - A @ x
        it += 1
        rn = float(np.linalg.norm(r))
        hist.append(rn)
        if rn <= tol * r0:
            converged = True
            break
    return StationaryResult(
        x=x,
        converged=converged,
        iterations=it,
        final_residual=hist[-1],
        residual_norms=hist,
        elapsed=time.perf_counter() - t_start,
    )


def gauss_seidel(A: CSRMatrix, b: np.ndarray, **kwargs) -> StationaryResult:
    """Gauss-Seidel — SOR with ``omega = 1``."""
    return sor(A, b, omega=1.0, **kwargs)


class SweepPreconditioner(Preconditioner):
    """A fixed number of stationary sweeps as a preconditioner.

    ``method`` is ``"jacobi"`` or ``"sor"``; ``sweeps`` fixed-iteration
    applications approximate ``A^{-1} r`` (starting from zero, so the
    operator is linear — safe inside CG/GMRES for Jacobi; SOR sweeps are
    nonsymmetric, use with GMRES).
    """

    def __init__(
        self,
        A: CSRMatrix,
        *,
        method: str = "jacobi",
        sweeps: int = 2,
        omega: float = 1.0,
        damping: float = 0.8,
    ) -> None:
        if method not in ("jacobi", "sor"):
            raise ValueError(f"unknown method {method!r}")
        if sweeps < 1:
            raise ValueError(f"sweeps must be >= 1, got {sweeps}")
        self.A = A
        self.method = method
        self.sweeps = sweeps
        self.omega = omega
        self.damping = damping
        self._diag = A.diagonal()
        if np.any(self._diag == 0.0):
            row = int(np.flatnonzero(self._diag == 0.0)[0])
            raise ZeroPivotError(
                f"sweep preconditioner needs a zero-free diagonal (row {row} is zero)",
                row=row,
                value=0.0,
            )

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=np.float64)
        if self.method == "jacobi":
            res = jacobi(
                self.A, r, maxiter=self.sweeps, tol=0.0, damping=self.damping
            )
        else:
            res = sor(self.A, r, omega=self.omega, maxiter=self.sweeps, tol=0.0)
        return res.x

    def flops(self) -> float:
        # per sweep: one matvec-like pass (2 nnz) plus a diagonal scale
        return float(self.sweeps * (2 * self.A.nnz + self.A.shape[0]))
