"""Table 1 — parallel factorization run time.

Paper: for G0 and TORSO, the run time (seconds) of the 9 ILUT(m,t) and 9
ILUT*(m,t,2) factorizations on 16/32/64/128 Cray T3D processors.  Shapes
to reproduce: time grows with m and 1/t; ILUT* ≤ ILUT everywhere; the
ILUT/ILUT* gap widens with p and with smaller t.
"""

import pytest

from _reporting import record_table
from _workloads import MODEL, PROCS, all_configs, factorize, label, matrix


def _build_table(name: str) -> str:
    from repro.analysis import format_table

    rows = []
    for algo, m, t in all_configs():
        row = [label(algo, m, t)]
        for p in PROCS:
            row.append(factorize(name, algo, m, t, p).modeled_time)
        rows.append(row)
    headers = ["Factorization"] + [f"p={p}" for p in PROCS]
    A = matrix(name)
    return format_table(
        headers,
        rows,
        title=(
            f"Table 1 [{name}]: factorization time (modelled s, {MODEL.name}), "
            f"n={A.shape[0]}, nnz={A.nnz}"
        ),
    )


@pytest.mark.parametrize("name", ["g0", "torso"])
def test_table1(benchmark, name):
    table = benchmark.pedantic(_build_table, args=(name,), rounds=1, iterations=1)
    record_table(f"Table 1 ({name})", table)
    # shape assertions from the paper
    pmax = PROCS[-1]
    t_cheap = factorize(name, "ILUT", 5, 1e-2, pmax).modeled_time
    t_dear = factorize(name, "ILUT", 20, 1e-6, pmax).modeled_time
    assert t_dear > t_cheap, "cost must grow with m and 1/t"
    ti = factorize(name, "ILUT", 20, 1e-6, pmax).modeled_time
    ts = factorize(name, "ILUT*", 20, 1e-6, pmax).modeled_time
    assert ts <= ti, "ILUT* must not be slower than ILUT"


def test_gap_widens_with_p(benchmark):
    """Paper: on TORSO, ILUT(20,1e-6) is 1.?x slower than ILUT* at p=16
    but ~2.7x slower at p=128 — the ratio must grow with p."""

    def ratios():
        return [
            factorize("torso", "ILUT", 20, 1e-6, p).modeled_time
            / factorize("torso", "ILUT*", 20, 1e-6, p).modeled_time
            for p in PROCS
        ]

    r = benchmark.pedantic(ratios, rounds=1, iterations=1)
    record_table(
        "Table 1 ILUT-over-ILUT* ratio (torso, m=20, t=1e-6)",
        "  ".join(f"p={p}: {x:.2f}" for p, x in zip(PROCS, r)),
    )
    assert r[-1] >= r[0] * 0.95, f"gap should widen with p, got {r}"


def test_wall_clock_single_factorization(benchmark):
    """Real (host) wall time of one mid-grade parallel factorization."""
    A = matrix("g0")
    from repro import parallel_ilut

    benchmark.pedantic(
        lambda: parallel_ilut(A, 10, 1e-4, PROCS[1], seed=0),
        rounds=1,
        iterations=1,
    )
