"""Vectorized CSR kernels: matvec, row norms, diagonal and L/D/U split.

These are the ``backend="vectorized"`` counterparts of the scalar code
in :mod:`repro.sparse.csr` and :mod:`repro.sparse.ops`.  All of them are
pure whole-array numpy; the per-row segment sums use the prefix-sum
trick (``cumsum`` differenced at the row pointers) rather than
``np.add.at``, which keeps them O(nnz) without the dispatch overhead of
ufunc.at and handles empty rows for free.

Parity: entry *selection* (split, diagonal) is element-exact against the
reference; floating-point *sums* (matvec, row norms) agree to <= 1e-12
relative because prefix-sum association differs from per-row ``np.dot``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..sparse.csr import CSRMatrix

__all__ = [
    "segment_sums",
    "csr_matvec",
    "csr_row_norms",
    "csr_diagonal",
    "csr_gather_rows",
    "split_lu_vectorized",
]


def segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` delimited by ``indptr`` boundaries.

    ``out[i] = values[indptr[i]:indptr[i+1]].sum()`` for every segment,
    including empty ones, via one prefix sum and one gather/difference.
    """
    prefix = np.empty(values.size + 1, dtype=np.float64)
    prefix[0] = 0.0
    np.cumsum(values, out=prefix[1:])
    return prefix[indptr[1:]] - prefix[indptr[:-1]]


def csr_matvec(
    A: CSRMatrix, x: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Vectorized ``y = A @ x`` (prefix-sum segment reduction)."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (A.shape[1],):
        raise ValueError(f"x has shape {x.shape}, expected ({A.shape[1]},)")
    sums = segment_sums(A.data * x[A.indices], A.indptr)
    if out is None:
        return sums
    out[:] = sums
    return out


def csr_row_norms(A: CSRMatrix, ord: int | float = 2) -> np.ndarray:
    """Vectorized per-row vector norms (2, 1 or inf)."""
    if ord == 2:
        return np.sqrt(segment_sums(A.data * A.data, A.indptr))
    if ord == 1:
        return segment_sums(np.abs(A.data), A.indptr)
    if ord == np.inf:
        out = np.zeros(A.shape[0], dtype=np.float64)
        np.maximum.at(out, _row_ids(A), np.abs(A.data))
        return out
    raise ValueError(f"unsupported norm order {ord!r}")


def _row_ids(A: CSRMatrix) -> np.ndarray:
    return np.repeat(
        np.arange(A.shape[0], dtype=np.int64), np.diff(A.indptr)
    )


def csr_gather_rows(
    A: CSRMatrix, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stored entries of ``rows`` as flat ``(row, col, flat-index)`` arrays.

    The entries come out in the caller's row order, storage order within
    each row — exactly the order a scalar ``for i in rows: A.row(i)``
    walk visits them, which is what lets driver loops swap to this
    without perturbing any order-sensitive accumulation.  The third
    array indexes into ``A.indices``/``A.data`` for value gathers.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = A.indptr[rows]
    lens = A.indptr[rows + 1] - starts
    flat = np.arange(int(lens.sum()), dtype=np.int64)
    if rows.size:
        ends = np.cumsum(lens)
        flat += np.repeat(starts - (ends - lens), lens)
    return np.repeat(rows, lens), A.indices[flat], flat


def csr_diagonal(A: CSRMatrix) -> np.ndarray:
    """Vectorized main diagonal (zeros where unstored)."""
    n = min(A.shape)
    rows = _row_ids(A)
    on = (A.indices == rows) & (rows < n)
    d = np.zeros(n, dtype=np.float64)
    d[rows[on]] = A.data[on]
    return d


def split_lu_vectorized(
    A: CSRMatrix,
) -> tuple[CSRMatrix, np.ndarray, CSRMatrix]:
    """Vectorized split of ``A`` into (strict lower, diagonal, strict upper).

    Entry selection and ordering are identical to the reference
    :func:`repro.sparse.ops.split_lu`; no per-row Python loop.  The
    diagonal-presence check (and the :class:`InvariantViolation` it
    raises) lives in the dispatching wrapper, not here.
    """
    from ..sparse.csr import CSRMatrix

    n = A.shape[0]
    rows = _row_ids(A)
    below = A.indices < rows
    above = A.indices > rows
    on = ~below & ~above
    diag = np.zeros(n, dtype=np.float64)
    diag[rows[on]] = A.data[on]

    def build(mask: np.ndarray) -> CSRMatrix:
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows[mask], minlength=n), out=indptr[1:])
        return CSRMatrix(
            indptr, A.indices[mask], A.data[mask], (n, n), check=False
        )

    return build(below), diag, build(above)
