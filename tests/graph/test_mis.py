"""Unit tests for Luby MIS and the paper's two-step variant."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    adjacency_from_matrix,
    greedy_mis,
    is_independent_set,
    is_maximal_independent_set,
    luby_mis,
    two_step_luby_mis,
)
from repro.matrices import poisson2d, random_geometric_laplacian


def cycle_graph(n):
    xadj = np.arange(0, 2 * n + 1, 2, dtype=np.int64)
    adjncy = np.empty(2 * n, dtype=np.int64)
    for v in range(n):
        adjncy[2 * v] = (v - 1) % n
        adjncy[2 * v + 1] = (v + 1) % n
    return Graph(xadj, adjncy)


def directed_edge_graph():
    """Two vertices with a single directed edge 0 -> 1 (paper's example)."""
    return Graph(np.array([0, 1, 1]), np.array([1]))


class TestLubyMIS:
    def test_empty_graph(self):
        g = Graph(np.array([0]), np.empty(0, dtype=np.int64))
        assert luby_mis(g).size == 0

    def test_edgeless_graph_takes_all(self):
        g = Graph(np.zeros(6, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert luby_mis(g).tolist() == [0, 1, 2, 3, 4]

    def test_cycle_maximal(self):
        g = cycle_graph(9)
        mis = luby_mis(g, seed=0)
        assert is_maximal_independent_set(g, mis)

    def test_poisson_maximal(self):
        g = adjacency_from_matrix(poisson2d(8))
        mis = luby_mis(g, seed=1)
        assert is_maximal_independent_set(g, mis)

    def test_deterministic_given_seed(self):
        g = adjacency_from_matrix(poisson2d(6))
        assert np.array_equal(luby_mis(g, seed=5), luby_mis(g, seed=5))

    def test_round_cap_yields_independent_subset(self):
        g = adjacency_from_matrix(random_geometric_laplacian(60, seed=2))
        mis = luby_mis(g, seed=0, max_rounds=1)
        assert is_independent_set(g, mis)

    def test_candidates_restriction(self):
        g = cycle_graph(8)
        cand = np.array([0, 1, 2, 3])
        mis = luby_mis(g, seed=0, candidates=cand)
        assert set(mis.tolist()) <= set(cand.tolist())
        assert is_independent_set(g, mis)


class TestTwoStepLuby:
    def test_symmetric_graph_independent_and_eventually_maximal(self):
        g = adjacency_from_matrix(poisson2d(7))
        mis = two_step_luby_mis(g, seed=3, rounds=50)
        assert is_maximal_independent_set(g, mis)

    def test_five_rounds_cover_most(self):
        g = adjacency_from_matrix(poisson2d(10))
        mis5 = two_step_luby_mis(g, seed=3, rounds=5)
        full = two_step_luby_mis(g, seed=3, rounds=200)
        assert is_independent_set(g, mis5)
        assert mis5.size >= 0.7 * full.size  # paper: first rounds find most

    def test_directed_edge_both_cannot_join(self):
        # Luby on the directed structure would admit both vertices; the
        # two-step variant must reject one (the paper's u/v example).
        g = directed_edge_graph()
        mis = two_step_luby_mis(g, seed=0, rounds=10)
        assert mis.size >= 1
        assert not (0 in mis and 1 in mis)

    def test_many_directed_structures_stay_independent(self, rng):
        for trial in range(10):
            n = 30
            # random directed adjacency
            xadj = [0]
            adjncy = []
            for v in range(n):
                nbrs = rng.choice(n - 1, size=rng.integers(0, 5), replace=False)
                nbrs = np.where(nbrs >= v, nbrs + 1, nbrs)
                adjncy.extend(int(u) for u in nbrs)
                xadj.append(len(adjncy))
            g = Graph(np.array(xadj), np.array(adjncy, dtype=np.int64))
            mis = two_step_luby_mis(g, seed=trial, rounds=6)
            # independence w.r.t. the union of both edge directions
            mask = np.zeros(n, dtype=bool)
            mask[mis] = True
            for v in range(n):
                if not mask[v]:
                    continue
                for u in g.neighbors(v):
                    assert not mask[u], f"edge {v}->{u} inside the set"

    def test_progress_on_adversarial_graph(self):
        # complete graph: only one vertex per round can win
        n = 6
        xadj = np.arange(0, n * (n - 1) + 1, n - 1, dtype=np.int64)
        adjncy = np.concatenate(
            [np.delete(np.arange(n), v) for v in range(n)]
        ).astype(np.int64)
        g = Graph(xadj, adjncy)
        mis = two_step_luby_mis(g, seed=0, rounds=3)
        assert mis.size == 1  # exactly one vertex of a clique

    def test_zero_rounds_empty(self):
        g = cycle_graph(5)
        assert two_step_luby_mis(g, rounds=0).size == 0


class TestGreedyMIS:
    def test_maximal(self):
        g = adjacency_from_matrix(poisson2d(6))
        assert is_maximal_independent_set(g, greedy_mis(g))

    def test_order_respected(self):
        g = cycle_graph(4)
        mis = greedy_mis(g, order=np.array([2, 0, 1, 3]))
        assert 2 in mis


class TestPredicates:
    def test_is_independent_detects_violation(self):
        g = cycle_graph(4)
        assert not is_independent_set(g, np.array([0, 1]))
        assert is_independent_set(g, np.array([0, 2]))

    def test_is_maximal_detects_extendable(self):
        g = cycle_graph(6)
        assert not is_maximal_independent_set(g, np.array([0]))
        assert is_maximal_independent_set(g, np.array([0, 2, 4]))
