"""DET002 bad twin: unordered iteration inside a communicating function."""


def drain(sim, plan):
    for (src, dst), nodes in plan.items():
        sim.send(src, dst, None, 1.0, tag="halo")
    return [k for k in plan.keys()]


def ghosts_loop(sim):
    ghosts = {3, 1, 2}
    for g in ghosts:
        sim.recv(0, g, tag="halo")
