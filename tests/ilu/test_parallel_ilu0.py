"""Unit tests for the colouring-based parallel ILU(0)."""

import numpy as np
import pytest

from repro.decomp import decompose
from repro.ilu import ilu0, parallel_ilu0, parallel_ilut, parallel_triangular_solve
from repro.matrices import poisson2d, random_diag_dominant


class TestCorrectness:
    def test_p1_matches_sequential(self, medium_poisson):
        r = parallel_ilu0(medium_poisson, 1, simulate=False)
        f = ilu0(medium_poisson)
        assert r.factors.L.allclose(f.L)
        assert r.factors.U.allclose(f.U)

    def test_pattern_preserved(self, medium_poisson):
        r = parallel_ilu0(medium_poisson, 4, seed=0, simulate=False)
        assert r.factors.nnz == medium_poisson.nnz

    def test_exact_on_pattern(self, small_poisson):
        r = parallel_ilu0(small_poisson, 4, seed=0, simulate=False)
        perm = r.factors.perm
        Ap = small_poisson.permute(perm, perm)
        R = r.factors.residual_matrix(small_poisson)
        for i, cols, vals in R.iter_rows():
            pa, _ = Ap.row(i)
            on = np.isin(cols, pa)
            assert np.allclose(vals[on], 0.0, atol=1e-10)

    def test_exact_when_no_fill_possible_p1(self):
        # tridiagonal in natural order: ILU(0) == LU (note: only at p=1 —
        # the two-phase reordering reintroduces fill positions, which
        # ILU(0) then legitimately drops)
        from repro.sparse import COOBuilder

        n = 24
        b = COOBuilder(n)
        for i in range(n):
            b.add(i, i, 4.0)
            if i:
                b.add(i, i - 1, -1.0)
                b.add(i - 1, i, -1.0)
        A = b.to_csr()
        r = parallel_ilu0(A, 1, simulate=False)
        assert r.factors.residual_matrix(A).frobenius_norm() < 1e-12

    def test_trisolve_compatible(self, medium_poisson, rng):
        r = parallel_ilu0(medium_poisson, 4, seed=0, simulate=False)
        b = rng.standard_normal(256)
        out = parallel_triangular_solve(r.factors, b, simulate=False)
        assert np.allclose(out.x, r.factors.solve(b))

    def test_simulation_invariance(self, medium_poisson):
        r1 = parallel_ilu0(medium_poisson, 4, seed=0, simulate=True)
        r2 = parallel_ilu0(medium_poisson, 4, seed=0, simulate=False)
        assert r1.factors.L.allclose(r2.factors.L, rtol=0, atol=0)

    def test_level_structure_valid(self, medium_poisson):
        r = parallel_ilu0(medium_poisson, 8, seed=0, simulate=False)
        r.factors.levels.validate(256)

    def test_decomp_mismatch_rejected(self, small_poisson):
        d = decompose(small_poisson, 2, seed=0)
        with pytest.raises(ValueError):
            parallel_ilu0(small_poisson, 4, decomp=d)


class TestStaticVsDynamic:
    def test_far_fewer_levels_than_ilut(self, medium_poisson):
        """The paper's §3 point: ILU(0)'s level count is the chromatic
        number of the interface graph (tiny and static), while ILUT's
        grows with fill."""
        r0 = parallel_ilu0(medium_poisson, 8, seed=0, simulate=False)
        rt = parallel_ilut(medium_poisson, 10, 1e-6, 8, seed=0, simulate=False)
        assert r0.num_levels < rt.num_levels

    def test_levels_independent_of_values(self):
        """ILU(0) level sets are structural: scaling values changes
        nothing (unlike ILUT, whose sets depend on magnitudes)."""
        A = poisson2d(10)
        B = A.scale(123.0)
        ra = parallel_ilu0(A, 4, seed=0, simulate=False)
        rb = parallel_ilu0(B, 4, seed=0, simulate=False)
        assert ra.level_sizes == rb.level_sizes
        assert np.array_equal(ra.factors.perm, rb.factors.perm)

    def test_quality_below_tight_ilut(self, medium_poisson, rng):
        """ILU(0) is cheaper but weaker than a tight ILUT (paper §2)."""
        A = medium_poisson
        b = rng.standard_normal(256)
        y0 = parallel_ilu0(A, 4, seed=0, simulate=False).factors.solve(b)
        yt = parallel_ilut(A, 10, 1e-6, 4, seed=0, simulate=False).factors.solve(b)
        r0 = np.linalg.norm(b - A @ y0)
        rt = np.linalg.norm(b - A @ yt)
        assert rt < r0


class TestRobustness:
    def test_zero_diag_guard(self):
        from repro.sparse import CSRMatrix

        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        r = parallel_ilu0(A, 1, simulate=False)
        assert np.all(r.factors.U.diagonal() != 0.0)

    def test_unstructured(self):
        A = random_diag_dominant(60, 5, seed=2)
        r = parallel_ilu0(A, 4, seed=0, simulate=False)
        r.factors.levels.validate(60)
