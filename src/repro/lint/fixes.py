"""Auto-fixes for mechanically-correctable findings (``repro lint --fix``).

Fixers exist for the rules whose remedy is a *local* rewrite:

``DET001``
    ``np.random.default_rng()`` → ``np.random.default_rng(0)`` — seed
    injection.  The global-state variants (``np.random.rand`` …) need a
    Generator threaded through the API and are *not* auto-fixed.
``DET002`` / ``DET004``
    Wrap the offending unordered iterable / reduction source in
    ``sorted(...)``.
``BRK001``
    Rewrite the raised builtin to the matching typed breakdown
    (``ZeroDivisionError`` → ``ZeroPivotError``, ``FloatingPointError``
    → ``NonFiniteError``, message-routed for ``ValueError``/
    ``ArithmeticError``) and inject the ``repro.resilience`` import.

Safety contract
---------------
Each pass plans surgical text edits *and* the intended AST mutation
together, applies the edits, re-parses, and requires ``ast.dump``
equality between the intended tree and the re-parsed one; any mismatch
rolls the file back untouched.  Fixing is idempotent by construction —
a fixed file produces no further fixable findings — and
``tests/lint/test_fixes.py`` locks both properties in.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path

from .astutil import attach_parents, call_name, dotted_name, is_sorted_call, literal_text
from .rules.breakdown import _NUMERIC_MESSAGE, _SUGGESTION
from .rules.determinism import (
    _function_has_comm,
    _is_set_expr,
    _REDUCERS,
    _set_bound_names,
    _unordered_iter_reason,
)

__all__ = ["AppliedFix", "FixOutcome", "fix_source", "fix_paths", "render_diff"]

_FIXABLE_RULES = ("BRK001", "DET001", "DET002", "DET004")
_MAX_PASSES = 4


@dataclass(frozen=True)
class AppliedFix:
    """One rewrite that was applied (or would be, under ``--diff``)."""

    rule: str
    path: str
    line: int
    description: str


@dataclass
class FixOutcome:
    """Result of fixing a set of files."""

    #: relpath -> (old source, new source); only files that changed.
    changed: dict[str, tuple[str, str]] = field(default_factory=dict)
    fixes: list[AppliedFix] = field(default_factory=list)
    #: relpaths where verification refused the rewrite (left untouched).
    refused: list[str] = field(default_factory=list)


# ---------------------------------------------------------------- edits


@dataclass
class _Edit:
    start: int  # absolute offset into the source
    end: int
    replacement: str


def _offsets(source: str) -> list[int]:
    """Absolute offset of the start of each (1-based) line."""
    offs = [0]
    for line in source.splitlines(keepends=True):
        offs.append(offs[-1] + len(line))
    return offs


def _span(offs: list[int], node: ast.AST) -> tuple[int, int]:
    start = offs[node.lineno - 1] + node.col_offset
    end = offs[node.end_lineno - 1] + node.end_col_offset
    return start, end


def _apply_edits(source: str, edits: list[_Edit]) -> str | None:
    """Apply non-overlapping edits; None when any two overlap."""
    ordered = sorted(edits, key=lambda e: e.start)
    for a, b in zip(ordered, ordered[1:]):
        if a.end > b.start:
            return None
    out = source
    for e in reversed(ordered):
        out = out[: e.start] + e.replacement + out[e.end :]
    return out


# --------------------------------------------------------------- fixers


def _route_valueerror(message: str) -> str:
    low = message.lower()
    if "pivot" in low or "divide" in low:
        return "ZeroPivotError"
    if "diagonal" in low:
        return "ZeroDiagonalError"
    if "finite" in low or "nan" in low or "inf" in low:
        return "NonFiniteError"
    return "NumericalBreakdown"


_DIRECT_RENAME = {
    "ZeroDivisionError": "ZeroPivotError",
    "FloatingPointError": "NonFiniteError",
    "ArithmeticError": "NumericalBreakdown",
}


def _resilience_import_line(relpath: str) -> str:
    """Import statement prefix matching the module's package position."""
    parts = Path(relpath).as_posix().split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if len(parts) >= 2 and parts[0] == "repro":
        # depth below the repro package decides the number of dots
        dots = "." * max(1, len(parts) - 2)
        return f"from {dots}resilience import "
    return "from repro.resilience import "


def _bound_top_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
    return names


class _Pass:
    """One fix pass over one module: plan edits + the intended AST."""

    def __init__(self, source: str, relpath: str, select: tuple[str, ...]) -> None:
        self.source = source
        self.relpath = relpath
        self.select = select
        self.tree = ast.parse(source)
        attach_parents(self.tree)
        self.offs = _offsets(source)
        self.edits: list[_Edit] = []
        #: deferred mutations of ``self.tree`` into the intended result
        self.mutations: list = []
        self.fixes: list[AppliedFix] = []
        self._wrapped: set[int] = set()

    def enabled(self, rule: str) -> bool:
        return not self.select or rule in self.select

    # -- DET001 -------------------------------------------------------

    def plan_det001(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted not in ("np.random.default_rng", "numpy.random.default_rng"):
                continue
            if node.args or node.keywords:
                continue
            _, func_end = _span(self.offs, node.func)
            _, call_end = _span(self.offs, node)
            self.edits.append(_Edit(func_end, call_end, "(0)"))
            self.mutations.append(
                lambda n=node: n.args.append(ast.Constant(value=0))
            )
            self.fixes.append(
                AppliedFix(
                    rule="DET001",
                    path=self.relpath,
                    line=node.lineno,
                    description="seeded np.random.default_rng() with 0",
                )
            )

    # -- DET002 / DET004 ----------------------------------------------

    def _wrap_sorted(self, expr: ast.expr, setter, rule: str, line: int) -> None:
        if id(expr) in self._wrapped:
            return
        self._wrapped.add(id(expr))
        start, end = _span(self.offs, expr)
        segment = self.source[start:end]
        self.edits.append(_Edit(start, end, f"sorted({segment})"))

        def mutate(e=expr, s=setter):
            s(ast.Call(func=ast.Name(id="sorted", ctx=ast.Load()), args=[e], keywords=[]))

        self.mutations.append(mutate)
        self.fixes.append(
            AppliedFix(
                rule=rule,
                path=self.relpath,
                line=line,
                description="wrapped unordered iterable in sorted(...)",
            )
        )

    def plan_det002(self) -> None:
        for func in ast.walk(self.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _function_has_comm(func):
                continue
            set_names = _set_bound_names(func)
            for node in ast.walk(func):
                if isinstance(node, ast.For):
                    expr = node.iter
                    if not is_sorted_call(expr) and _unordered_iter_reason(
                        expr, set_names
                    ):
                        self._wrap_sorted(
                            expr,
                            lambda v, n=node: setattr(n, "iter", v),
                            "DET002",
                            node.lineno,
                        )
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for gen in node.generators:
                        if not is_sorted_call(gen.iter) and _unordered_iter_reason(
                            gen.iter, set_names
                        ):
                            self._wrap_sorted(
                                gen.iter,
                                lambda v, g=gen: setattr(g, "iter", v),
                                "DET002",
                                node.lineno,
                            )

    def plan_det004(self) -> None:
        module_set_names = _set_bound_names(self.tree)
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in _REDUCERS or not node.args:
                continue
            arg = node.args[0]
            if _is_set_expr(arg) or (
                isinstance(arg, ast.Name) and arg.id in module_set_names
            ):
                if not is_sorted_call(arg):
                    self._wrap_sorted(
                        arg,
                        lambda v, n=node: n.args.__setitem__(0, v),
                        "DET004",
                        node.lineno,
                    )
            elif isinstance(arg, ast.GeneratorExp):
                src = arg.generators[0].iter
                if (
                    _is_set_expr(src)
                    or (isinstance(src, ast.Name) and src.id in module_set_names)
                ) and not is_sorted_call(src):
                    self._wrap_sorted(
                        src,
                        lambda v, g=arg.generators[0]: setattr(g, "iter", v),
                        "DET004",
                        node.lineno,
                    )

    # -- BRK001 -------------------------------------------------------

    def plan_brk001(self) -> None:
        if self.relpath.endswith("resilience/breakdown.py"):
            return
        needed: list[str] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name_node: ast.Name | None = None
            message = ""
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name_node = exc.func
                if exc.args:
                    message = literal_text(exc.args[0])
            elif isinstance(exc, ast.Name):
                name_node = exc
            if name_node is None or name_node.id not in _SUGGESTION:
                continue
            exc_name = name_node.id
            if exc_name in ("ZeroDivisionError", "FloatingPointError"):
                new_name = _DIRECT_RENAME[exc_name]
            elif message and _NUMERIC_MESSAGE.search(message):
                new_name = (
                    _route_valueerror(message)
                    if exc_name == "ValueError"
                    else _DIRECT_RENAME[exc_name]
                )
            else:
                continue
            start, end = _span(self.offs, name_node)
            self.edits.append(_Edit(start, end, new_name))
            self.mutations.append(
                lambda n=name_node, nn=new_name: setattr(n, "id", nn)
            )
            self.fixes.append(
                AppliedFix(
                    rule="BRK001",
                    path=self.relpath,
                    line=node.lineno,
                    description=f"retyped raise {exc_name} -> {new_name}",
                )
            )
            if new_name not in needed:
                needed.append(new_name)
        if needed:
            self._plan_import(needed)

    def _plan_import(self, names: list[str]) -> None:
        bound = _bound_top_level_names(self.tree)
        missing = [n for n in names if n not in bound]
        if not missing:
            return
        # extend an existing resilience import when one is present
        for node in self.tree.body:
            if (
                isinstance(node, ast.ImportFrom)
                and node.module is not None
                and node.module.split(".")[-1] == "resilience"
            ):
                existing = [a.name for a in node.names]
                combined = sorted(set(existing) | set(missing))
                dots = "." * node.level
                start, end = _span(self.offs, node)
                self.edits.append(
                    _Edit(
                        start,
                        end,
                        f"from {dots}{node.module} import {', '.join(combined)}",
                    )
                )

                def mutate(n=node, c=combined):
                    n.names = [ast.alias(name=x, asname=None) for x in c]

                self.mutations.append(mutate)
                return
        # otherwise inject a fresh import after the last top-level import
        stmt_text = _resilience_import_line(self.relpath) + ", ".join(
            sorted(missing)
        )
        anchor_idx = 0
        for i, node in enumerate(self.tree.body):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                anchor_idx = i + 1
            elif (
                i == 0
                and isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                anchor_idx = 1  # after the module docstring
        if anchor_idx == 0:
            insert_at = 0
        else:
            insert_at = self.offs[self.tree.body[anchor_idx - 1].end_lineno]
        self.edits.append(_Edit(insert_at, insert_at, stmt_text + "\n"))
        new_stmt = ast.parse(stmt_text).body[0]

        def mutate(idx=anchor_idx, stmt=new_stmt):
            self.tree.body.insert(idx, stmt)

        self.mutations.append(mutate)

    # -- drive --------------------------------------------------------

    def run(self) -> tuple[str | None, list[AppliedFix]]:
        """Plan, apply, verify.  Returns (new source | None, fixes)."""
        if self.enabled("DET001"):
            self.plan_det001()
        if self.enabled("DET002"):
            self.plan_det002()
        if self.enabled("DET004"):
            self.plan_det004()
        if self.enabled("BRK001"):
            self.plan_brk001()
        if not self.edits:
            return self.source, []
        new_source = _apply_edits(self.source, self.edits)
        if new_source is None:
            return None, []  # overlapping edits: refuse the whole pass
        for mutate in self.mutations:
            mutate()
        try:
            reparsed = ast.parse(new_source)
        except SyntaxError:
            return None, []
        if ast.dump(reparsed) != ast.dump(self.tree):
            return None, []  # intended AST != actual AST: refuse
        return new_source, self.fixes


def fix_source(
    source: str,
    relpath: str,
    *,
    select: tuple[str, ...] = (),
) -> tuple[str, list[AppliedFix], bool]:
    """Fix one module's source.

    Returns ``(new_source, fixes, verified)``; ``verified`` is False
    when a planned rewrite failed AST verification (the source is then
    returned unchanged from the point of failure, earlier passes kept).
    """
    fixable = tuple(r for r in (select or _FIXABLE_RULES) if r in _FIXABLE_RULES)
    if not fixable:
        return source, [], True
    fixes: list[AppliedFix] = []
    current = source
    for _ in range(_MAX_PASSES):
        try:
            p = _Pass(current, relpath, fixable)
        except SyntaxError:
            return current, fixes, True  # unparsable: nothing to fix
        new_source, pass_fixes = p.run()
        if new_source is None:
            return current, fixes, False
        if not pass_fixes or new_source == current:
            break
        fixes.extend(pass_fixes)
        current = new_source
    return current, fixes, True


def fix_paths(
    files: list[Path],
    root: Path,
    *,
    select: tuple[str, ...] = (),
) -> FixOutcome:
    """Plan fixes for every file (no writes — the CLI decides that)."""
    outcome = FixOutcome()
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        new_source, fixes, verified = fix_source(source, rel, select=select)
        if not verified:
            outcome.refused.append(rel)
        if fixes and new_source != source:
            outcome.changed[rel] = (source, new_source)
            outcome.fixes.extend(fixes)
    return outcome


def render_diff(outcome: FixOutcome) -> str:
    """Unified diff of every planned change (``--fix --diff``)."""
    chunks: list[str] = []
    for rel in sorted(outcome.changed):
        old, new = outcome.changed[rel]
        diff = difflib.unified_diff(
            old.splitlines(keepends=True),
            new.splitlines(keepends=True),
            fromfile=f"a/{rel}",
            tofile=f"b/{rel}",
        )
        chunks.append("".join(diff))
    return "".join(chunks)
