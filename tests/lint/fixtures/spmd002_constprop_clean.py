"""SPMD002 FP-reduction twin: rank-named guards that constant-fold.

The syntactic rule flagged both collectives (``r`` and ``rank`` appear
in the conditions); constant propagation pins the guards to one value,
so every rank evaluates them identically and the upgraded rule
discharges them.
"""


def warm_start(sim):
    r = 0
    if r == 0:
        sim.barrier()


def debug_path(sim, nranks):
    rank = 3 - 3
    if rank != 0:
        sim.allreduce(0.0)
