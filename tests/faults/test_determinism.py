"""Fault-plan determinism: the same seed and plan must produce a
bit-identical fault journal, factors and modelled time — per backend,
and (for journals/factors) *across* the reference and vectorized
backends, since faults are scheduled against the backend-independent
superstep counter."""

import numpy as np
import pytest

from repro.faults import FaultPlan, MessageFault, RankFault
from repro.ilu import ILUTParams, parallel_ilut
from repro.matrices import poisson2d

PLAN_CASES = {
    "drop-urow": FaultPlan(message_faults=[MessageFault("drop", tag="urow")]),
    "drop-mis": FaultPlan(message_faults=[MessageFault("drop", tag="mis")]),
    "crash": FaultPlan(rank_faults=[RankFault("crash", rank=2, superstep=3)]),
    "crash+drop": FaultPlan(
        message_faults=[MessageFault("drop", tag="urow", skip=1)],
        rank_faults=[RankFault("crash", rank=1, superstep=2)],
        seed=42,
    ),
}


def factor(plan, backend, copy_payloads=False):
    A = poisson2d(12)
    return parallel_ilut(
        A,
        ILUTParams(fill=5, threshold=1e-4),
        4,
        seed=0,
        faults=plan,
        backend=backend,
        copy_payloads=copy_payloads,
    )


def assert_same_factors(a, b):
    assert np.array_equal(a.factors.L.data, b.factors.L.data)
    assert np.array_equal(a.factors.L.indices, b.factors.L.indices)
    assert np.array_equal(a.factors.U.data, b.factors.U.data)
    assert np.array_equal(a.factors.U.indices, b.factors.U.indices)
    assert np.array_equal(a.factors.perm, b.factors.perm)


@pytest.mark.parametrize("name", sorted(PLAN_CASES))
@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_replay_is_bit_identical(name, backend):
    plan = PLAN_CASES[name]
    r1 = factor(plan, backend)
    r2 = factor(plan, backend)
    assert r1.fault_journal.signature() == r2.fault_journal.signature()
    assert r1.fault_journal.signature()  # the plan actually fired
    assert_same_factors(r1, r2)
    assert r1.modeled_time == r2.modeled_time
    assert r1.recoveries == r2.recoveries


@pytest.mark.parametrize("name", sorted(PLAN_CASES))
def test_journal_and_factors_agree_across_backends(name):
    plan = PLAN_CASES[name]
    ref = factor(plan, "reference")
    vec = factor(plan, "vectorized")
    assert ref.fault_journal.signature() == vec.fault_journal.signature()
    assert_same_factors(ref, vec)
    assert ref.modeled_time == vec.modeled_time
    assert ref.recoveries == vec.recoveries


@pytest.mark.parametrize("name", sorted(PLAN_CASES))
def test_copy_payloads_oracle_is_bit_identical(name):
    """The serializing-transport oracle: pickling every message at post
    time must not change the journal, the factors or the clock — the
    drivers are certified free of aliased/unsafe payloads."""
    plan = PLAN_CASES[name]
    plain = factor(plan, "reference")
    oracle = factor(plan, "reference", copy_payloads=True)
    assert plain.fault_journal.signature() == oracle.fault_journal.signature()
    assert_same_factors(plain, oracle)
    assert plain.modeled_time == oracle.modeled_time
    assert plain.recoveries == oracle.recoveries


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_injected_crash_recovers_to_uninjected_factors(backend):
    clean = factor(None, backend)
    faulted = factor(PLAN_CASES["crash"], backend)
    assert faulted.recoveries >= 1
    assert_same_factors(clean, faulted)
    assert clean.num_levels == faulted.num_levels
