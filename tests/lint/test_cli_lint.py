"""The ``python -m repro lint`` command end to end."""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def test_bad_fixture_exits_1(capsys):
    rc = main(["lint", str(FIXTURES / "det003_bad.py"), "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "DET003" in out
    assert out.strip().endswith("2 finding(s)")


def test_clean_fixture_exits_0(capsys):
    rc = main(["lint", str(FIXTURES / "det003_clean.py"), "--no-baseline"])
    assert rc == 0
    assert capsys.readouterr().out.strip() == "0 finding(s)"


def test_missing_path_exits_2(capsys):
    rc = main(["lint", str(FIXTURES / "no_such_file.py")])
    assert rc == 2
    assert "no such path" in capsys.readouterr().err


def test_repo_acceptance_command(capsys):
    """`python -m repro lint src/repro` run from the repo: exit 0."""
    rc = main(["lint", str(REPO / "src" / "repro")])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "0 finding(s)" in out


def test_list_rules(capsys):
    rc = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for rid in ("SPMD001", "DET001", "PAR001", "BRK001"):
        assert rid in out


def test_select_and_ignore(capsys):
    path = str(FIXTURES / "det001_bad.py")
    assert main(["lint", path, "--no-baseline", "--select", "SPMD001"]) == 0
    capsys.readouterr()
    assert main(["lint", path, "--no-baseline", "--ignore", "DET001"]) == 0


def test_json_format(capsys):
    rc = main(["lint", str(FIXTURES / "brk001_bad.py"), "--no-baseline",
               "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["new"] == 2
    assert {f["rule"] for f in doc["findings"]} == {"BRK001"}


def test_sarif_to_file(tmp_path, capsys):
    out_file = tmp_path / "report.sarif"
    rc = main(["lint", str(FIXTURES / "spmd001_bad.py"), "--no-baseline",
               "--select", "SPMD001",
               "--format", "sarif", "-o", str(out_file)])
    assert rc == 1
    assert "wrote sarif report" in capsys.readouterr().out
    doc = json.loads(out_file.read_text())
    assert doc["version"] == "2.1.0"
    assert len(doc["runs"][0]["results"]) == 2


def test_github_format_emits_workflow_commands(capsys):
    rc = main(["lint", str(FIXTURES / "det003_bad.py"), "--no-baseline",
               "--format", "github"])
    out = capsys.readouterr().out
    assert rc == 1
    lines = [ln for ln in out.splitlines() if ln.startswith("::")]
    assert len(lines) == 2
    for ln in lines:
        assert ln.startswith("::warning file=")
        assert "title=DET003" in ln
    assert "2 finding(s)" in out


def test_github_format_escapes_message_payload(capsys):
    rc = main(["lint", str(FIXTURES / "spmd001_bad.py"), "--no-baseline",
               "--select", "SPMD001", "--format", "github"])
    out = capsys.readouterr().out
    assert rc == 1
    # tag messages contain commas/colons; they must survive as data, and
    # the property fields must never carry a raw newline
    assert "::error file=" in out
    for ln in out.splitlines():
        if ln.startswith("::"):
            props = ln.split("::", 2)[1]
            assert "\n" not in props


def test_stats_flag_reports_rule_timings(capsys):
    rc = main(["lint", str(FIXTURES / "det003_bad.py"), "--no-baseline",
               "--stats", "--no-cache"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "file(s) analyzed" in err
    assert "DET003" in err


def test_verify_protocol_certifies_the_repo(capsys):
    rc = main(["lint", "--verify-protocol", str(REPO / "src" / "repro")])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "CERTIFIED" in out and "FAILED" not in out
    assert "certified" in out.splitlines()[-1]


def test_verify_protocol_fails_on_deadlock_fixture(capsys):
    rc = main(["lint", "--verify-protocol", str(FIXTURES / "deadlock_bad.py")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAILED" in out
    assert "[deadlock]" in out


def test_verify_transport_certifies_the_repo(capsys):
    rc = main(["lint", "--verify-transport", str(REPO / "src" / "repro")])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "CERTIFIED" in out and "FAILED" not in out
    assert "transport-portable" in out.splitlines()[-1]


def test_verify_transport_fails_on_aliasing_fixture(capsys):
    rc = main(["lint", "--verify-transport", str(FIXTURES / "trn001_bad.py")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAILED" in out
    assert "TRN001" in out


def test_stats_json_writes_machine_readable_timings(tmp_path):
    import json

    dest = tmp_path / "stats.json"
    rc = main(["lint", str(FIXTURES / "det003_bad.py"), "--no-baseline",
               "--stats-json", str(dest), "--no-cache"])
    assert rc == 1
    data = json.loads(dest.read_text())
    assert data["files"] == 1
    assert "DET003" in data["rule_seconds"]
    assert data["total_seconds"] > 0


class TestFixCli:
    def _proj(self, tmp_path):
        work = tmp_path / "proj"
        (work / "src").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "src" / "mod.py"
        shutil.copyfile(FIXTURES / "det001_bad.py", mod)
        return work, mod

    def test_fix_diff_is_check_only(self, tmp_path, capsys):
        work, mod = self._proj(tmp_path)
        before = mod.read_text()
        rc = main(["lint", str(mod), "--fix", "--diff"])
        captured = capsys.readouterr()
        assert rc == 1  # pending fixes -> pre-commit failure
        assert mod.read_text() == before  # nothing written
        assert "+++ b/src/mod.py" in captured.out
        assert "default_rng(0)" in captured.out

    def test_fix_applies_and_reports(self, tmp_path, capsys):
        work, mod = self._proj(tmp_path)
        rc = main(["lint", str(mod), "--fix"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "default_rng(0)" in mod.read_text()
        assert "applied 1 fix(es) in 1 file(s)" in out
        # second run: nothing left to do, still exit 0
        rc = main(["lint", str(mod), "--fix", "--diff"])
        assert rc == 0
        assert "0 fix(es)" in capsys.readouterr().err

    def test_repo_fix_diff_is_clean(self, capsys):
        """Acceptance: --fix is a no-op on the checked-in tree."""
        rc = main(["lint", str(REPO / "src" / "repro"), "--fix", "--diff"])
        captured = capsys.readouterr()
        assert rc == 0, captured.out
        assert "0 fix(es) in 0 file(s)" in captured.err


class TestDirectoryProfiles:
    def test_spmd_rules_off_under_tests_dir(self, tmp_path, capsys):
        work = tmp_path / "proj"
        (work / "tests").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "tests" / "helper.py"
        shutil.copyfile(FIXTURES / "spmd002_bad.py", mod)
        # directory discovery applies the tests/ profile -> no findings
        rc = main(["lint", str(work / "tests"), "--no-baseline"])
        assert rc == 0
        capsys.readouterr()
        # naming the file explicitly bypasses the profile (ruff convention)
        rc = main(["lint", str(mod), "--no-baseline"])
        assert rc == 1
        assert "SPMD002" in capsys.readouterr().out

    def test_det_rules_still_apply_under_tests_dir(self, tmp_path, capsys):
        work = tmp_path / "proj"
        (work / "tests").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        shutil.copyfile(FIXTURES / "det001_bad.py", work / "tests" / "helper.py")
        rc = main(["lint", str(work / "tests"), "--no-baseline"])
        assert rc == 1
        assert "DET001" in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_write_then_gate(self, tmp_path, capsys):
        work = tmp_path / "proj"
        (work / "src").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "src" / "mod.py"
        shutil.copyfile(FIXTURES / "det003_bad.py", mod)

        bl = work / "lint-baseline.json"
        rc = main(["lint", str(mod), "--write-baseline", "--baseline", str(bl)])
        assert rc == 0
        assert "froze 2 finding(s)" in capsys.readouterr().out

        # gated run: everything frozen -> exit 0
        rc = main(["lint", str(mod), "--baseline", str(bl)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s), 2 baselined" in out

        # a new defect appears -> exit 1, only the new finding reported
        mod.write_text(mod.read_text() + "\n\ndef fresh(z):\n    return z == 1.25\n")
        rc = main(["lint", str(mod), "--baseline", str(bl)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1.25" in out
        assert "1 finding(s), 2 baselined" in out

    def test_default_baseline_from_project_root(self, tmp_path, capsys, monkeypatch):
        work = tmp_path / "proj"
        (work / "src").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "src" / "mod.py"
        shutil.copyfile(FIXTURES / "det004_bad.py", mod)
        # write to the root-default location, then gate without --baseline
        assert main(["lint", str(mod), "--write-baseline"]) == 0
        capsys.readouterr()
        assert (work / "lint-baseline.json").exists()
        assert main(["lint", str(mod)]) == 0
        assert "2 baselined" in capsys.readouterr().out

    def test_show_baselined(self, tmp_path, capsys):
        work = tmp_path / "proj"
        (work / "src").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "src" / "mod.py"
        shutil.copyfile(FIXTURES / "brk001_bad.py", mod)
        assert main(["lint", str(mod), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", str(mod), "--show-baselined"]) == 0
        assert "[baseline]" in capsys.readouterr().out


class TestChangedOnly:
    def test_changed_only_outside_git_lints_everything(self, tmp_path, capsys):
        work = tmp_path / "notgit"
        (work / "src").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "src" / "mod.py"
        shutil.copyfile(FIXTURES / "det003_bad.py", mod)
        rc = main(["lint", str(mod), "--no-baseline", "--changed-only"])
        # `git status` still resolves inside the enclosing repo checkout,
        # so the fixture path (untracked or not applicable) yields either
        # a full lint (rc 1) or an empty changed set (rc 0); both are
        # exercised without crashing.
        assert rc in (0, 1)
        assert "finding(s)" in capsys.readouterr().out
