"""SPMD004 clean twin: every level drains exactly what it posted."""


def levelled_sweep(sim, plan, nranks):
    for lvl, pairs in enumerate(plan):
        for src, dst in pairs:
            sim.send(src, dst, None, 1.0, tag=("fwd", lvl))
        for src, dst in pairs:
            sim.recv(dst, src, tag=("fwd", lvl))
        sim.barrier()
