"""Property-based tests: the parallel triangular solve equals the
sequential reference for arbitrary factorizations and right-hand sides."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilu import parallel_ilut, parallel_ilut_star, parallel_triangular_solve
from repro.matrices import random_diag_dominant


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(12, 45),
    p=st.integers(1, 5),
    m=st.integers(1, 8),
    seed=st.integers(0, 100),
)
def test_parallel_trisolve_matches_reference(n, p, m, seed):
    A = random_diag_dominant(n, 4, seed=seed)
    p = min(p, n)
    r = parallel_ilut(A, m, 1e-3, p, seed=seed, simulate=False)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n)
    out = parallel_triangular_solve(r.factors, b, simulate=False)
    assert np.allclose(out.x, r.factors.solve(b), rtol=1e-10, atol=1e-12)


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(12, 45),
    p=st.integers(2, 5),
    k=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_ilutstar_trisolve_matches_reference(n, p, k, seed):
    A = random_diag_dominant(n, 4, seed=seed)
    p = min(p, n)
    r = parallel_ilut_star(A, 4, 1e-4, k, p, seed=seed, simulate=False)
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal(n)
    out = parallel_triangular_solve(r.factors, b, simulate=False)
    assert np.allclose(out.x, r.factors.solve(b), rtol=1e-10, atol=1e-12)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(12, 40), p=st.integers(1, 4), seed=st.integers(0, 60))
def test_solve_is_linear_operator(n, p, seed):
    """M^{-1} is linear: solve(a x + y) == a solve(x) + solve(y)."""
    A = random_diag_dominant(n, 4, seed=seed)
    p = min(p, n)
    f = parallel_ilut(A, 5, 1e-3, p, seed=seed, simulate=False).factors
    rng = np.random.default_rng(seed)
    x, y = rng.standard_normal(n), rng.standard_normal(n)
    assert np.allclose(
        f.solve(2.5 * x + y), 2.5 * f.solve(x) + f.solve(y), rtol=1e-9, atol=1e-10
    )


@settings(max_examples=10, deadline=None)
@given(n=st.integers(12, 40), seed=st.integers(0, 60))
def test_exact_factors_invert_matrix(n, seed):
    """With no dropping, solve(A x) == x for any x."""
    A = random_diag_dominant(n, 4, seed=seed)
    f = parallel_ilut(A, n, 0.0, min(3, n), seed=seed, simulate=False).factors
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    assert np.allclose(f.solve(A @ x), x, rtol=1e-7, atol=1e-8)
