"""Compressed sparse row (CSR) matrix.

This is the workhorse storage scheme of the whole library: the ILUT
factorization, the reduced-matrix elimination, triangular solves and the
distributed matvec all operate on CSR row slices.  Only numpy is used;
scipy appears solely in the test suite as an oracle.

Column indices within each row are kept **sorted** — several kernels
(merges, halo extraction, binary search for the diagonal) rely on it, and
the constructor enforces it.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A real sparse matrix in compressed sparse row format.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``nrows + 1``; row ``i`` occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64`` column indices, sorted within each row.
    data:
        ``float64`` values, parallel to ``indices``.
    shape:
        ``(nrows, ncols)``.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
        *,
        check: bool = True,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
        *,
        drop_zeros: bool = False,
    ) -> CSRMatrix:
        """Build from coordinate triplets, summing duplicates."""
        nrows, ncols = int(shape[0]), int(shape[1])
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if rows.size:
            if rows.min() < 0 or rows.max() >= nrows:
                raise IndexError("row index out of range")
            if cols.min() < 0 or cols.max() >= ncols:
                raise IndexError("column index out of range")
        # Sort lexicographically by (row, col), then merge duplicates.
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if rows.size:
            keys = rows * np.int64(ncols if ncols > 0 else 1) + cols
            new_group = np.empty(rows.size, dtype=bool)
            new_group[0] = True
            np.not_equal(keys[1:], keys[:-1], out=new_group[1:])
            group_ids = np.cumsum(new_group) - 1
            merged_vals = np.zeros(int(group_ids[-1]) + 1, dtype=np.float64)
            np.add.at(merged_vals, group_ids, vals)
            rows = rows[new_group]
            cols = cols[new_group]
            vals = merged_vals
        if drop_zeros and vals.size:
            keep = vals != 0.0
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, cols, vals, (nrows, ncols), check=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, tol: float = 0.0) -> CSRMatrix:
        """Build from a dense 2-D array, keeping entries with ``|a| > tol``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(np.abs(dense) > tol)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def identity(cls, n: int) -> CSRMatrix:
        """The n-by-n identity matrix."""
        idx = np.arange(n, dtype=np.int64)
        return cls(
            np.arange(n + 1, dtype=np.int64),
            idx,
            np.ones(n, dtype=np.float64),
            (n, n),
            check=False,
        )

    @classmethod
    def zeros(cls, nrows: int, ncols: int | None = None) -> CSRMatrix:
        """An all-zero (empty pattern) matrix."""
        ncols = nrows if ncols is None else ncols
        return cls(
            np.zeros(nrows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            (nrows, ncols),
            check=False,
        )

    def _validate(self) -> None:
        nrows, ncols = self.shape
        if self.indptr.shape != (nrows + 1,):
            raise ValueError(
                f"indptr has shape {self.indptr.shape}, expected ({nrows + 1},)"
            )
        if self.indptr[0] != 0:
            raise ValueError(f"indptr[0] = {int(self.indptr[0])}, expected 0")
        if self.indptr[-1] != self.indices.size:
            raise ValueError(
                f"indptr[-1] = {int(self.indptr[-1])} does not equal "
                f"nnz = {self.indices.size}"
            )
        drops = np.flatnonzero(np.diff(self.indptr) < 0)
        if drops.size:
            i = int(drops[0])
            raise ValueError(
                f"indptr decreases at row {i} "
                f"({int(self.indptr[i])} -> {int(self.indptr[i + 1])})"
            )
        if self.indices.size != self.data.size:
            raise ValueError(
                f"indices ({self.indices.size}) and data ({self.data.size}) "
                "must have equal length"
            )
        if self.indices.size:
            bad = (self.indices < 0) | (self.indices >= ncols)
            if bad.any():
                pos = int(np.argmax(bad))
                row = int(np.searchsorted(self.indptr, pos, side="right") - 1)
                off = pos - int(self.indptr[row])
                raise IndexError(
                    f"row {row}, offset {off}: column index "
                    f"{int(self.indices[pos])} out of range [0, {ncols})"
                )
        if self.indices.size > 1:
            d = np.diff(self.indices)
            # adjacent-pair positions that straddle a row boundary are exempt
            boundary = np.zeros(d.size, dtype=bool)
            starts = self.indptr[1:-1]
            starts = starts[(starts >= 1) & (starts < self.indices.size)]
            boundary[starts - 1] = True
            viol = (d <= 0) & ~boundary
            if viol.any():
                k = int(np.argmax(viol))
                row = int(np.searchsorted(self.indptr, k, side="right") - 1)
                off = k - int(self.indptr[row])
                kind = (
                    "duplicate" if self.indices[k + 1] == self.indices[k] else "unsorted"
                )
                raise ValueError(
                    f"row {row} has {kind} column indices at offsets "
                    f"{off} -> {off + 1} (columns {int(self.indices[k])} -> "
                    f"{int(self.indices[k + 1])})"
                )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of (column indices, values) of row ``i`` — do not mutate."""
        s, e = self.indptr[i], self.indptr[i + 1]
        return self.indices[s:e], self.data[s:e]

    def row_nnz(self) -> np.ndarray:
        """Per-row entry counts."""
        return np.diff(self.indptr)

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(i, cols, vals)`` for every row."""
        for i in range(self.shape[0]):
            cols, vals = self.row(i)
            yield i, cols, vals

    def get(self, i: int, j: int) -> float:
        """Entry ``A[i, j]`` (zero if not stored)."""
        cols, vals = self.row(i)
        pos = np.searchsorted(cols, j)
        if pos < cols.size and cols[pos] == j:
            return float(vals[pos])
        return 0.0

    def diagonal(self, *, backend: str | None = None) -> np.ndarray:
        """The main diagonal as a dense vector (zeros where unstored).

        ``backend`` selects the scalar reference loop or the vectorized
        kernel (element-exact); ``None`` uses the process default — see
        :mod:`repro.kernels.backend`.
        """
        from ..kernels.backend import VECTORIZED, resolve_backend

        if resolve_backend(backend) == VECTORIZED:
            from ..kernels.csr import csr_diagonal

            return csr_diagonal(self)
        n = min(self.shape)
        d = np.zeros(n, dtype=np.float64)
        for i in range(n):
            d[i] = self.get(i, i)
        return d

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def matvec(
        self,
        x: np.ndarray,
        out: np.ndarray | None = None,
        *,
        backend: str | None = None,
    ) -> np.ndarray:
        """Compute ``y = A @ x``.

        ``backend="vectorized"`` uses the prefix-sum segment reduction
        of :func:`repro.kernels.csr.csr_matvec` (agrees with the
        reference to <= 1e-12 relative; summation association differs).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"x has shape {x.shape}, expected ({self.shape[1]},)")
        from ..kernels.backend import VECTORIZED, resolve_backend

        if resolve_backend(backend) == VECTORIZED:
            from ..kernels.csr import csr_matvec

            return csr_matvec(self, x, out)
        prods = self.data * x[self.indices]
        y = np.zeros(self.shape[0], dtype=np.float64) if out is None else out
        if out is not None:
            y[:] = 0.0
        # segment-sum per row; add.at handles empty rows naturally
        row_ids = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        np.add.at(y, row_ids, prods)
        return y

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Compute ``x = A.T @ y`` without materialising the transpose."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.shape[0],):
            raise ValueError(f"y has shape {y.shape}, expected ({self.shape[0]},)")
        row_ids = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        x = np.zeros(self.shape[1], dtype=np.float64)
        np.add.at(x, self.indices, self.data * y[row_ids])
        return x

    def transpose(self) -> CSRMatrix:
        """Return ``A.T`` as a new CSR matrix."""
        nrows, ncols = self.shape
        row_ids = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(self.indptr))
        return CSRMatrix.from_coo(
            self.indices, row_ids, self.data, (ncols, nrows)
        )

    def scale(self, alpha: float) -> CSRMatrix:
        """Return ``alpha * A``."""
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data * alpha, self.shape,
            check=False,
        )

    def add(self, other: CSRMatrix) -> CSRMatrix:
        """Return ``A + B`` (patterns merged)."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        nrows = self.shape[0]
        my_rows = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(self.indptr))
        ot_rows = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(other.indptr))
        return CSRMatrix.from_coo(
            np.concatenate([my_rows, ot_rows]),
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.data, other.data]),
            self.shape,
        )

    def __add__(self, other: CSRMatrix) -> CSRMatrix:
        return self.add(other)

    def __sub__(self, other: CSRMatrix) -> CSRMatrix:
        return self.add(other.scale(-1.0))

    def matmat(self, other: CSRMatrix) -> CSRMatrix:
        """Sparse matrix-matrix product ``A @ B`` (row-merge algorithm)."""
        if self.shape[1] != other.shape[0]:
            raise ValueError(f"inner dims mismatch: {self.shape} @ {other.shape}")
        nrows = self.shape[0]
        out_rows: list[np.ndarray] = []
        out_cols: list[np.ndarray] = []
        out_vals: list[np.ndarray] = []
        for i in range(nrows):
            acols, avals = self.row(i)
            if acols.size == 0:
                continue
            # accumulate sum_k a_ik * B[k, :]
            pieces_c = []
            pieces_v = []
            for k, a in zip(acols, avals, strict=True):
                bcols, bvals = other.row(int(k))
                if bcols.size:
                    pieces_c.append(bcols)
                    pieces_v.append(a * bvals)
            if not pieces_c:
                continue
            cc = np.concatenate(pieces_c)
            vv = np.concatenate(pieces_v)
            out_rows.append(np.full(cc.size, i, dtype=np.int64))
            out_cols.append(cc)
            out_vals.append(vv)
        if not out_rows:
            return CSRMatrix.zeros(nrows, other.shape[1])
        return CSRMatrix.from_coo(
            np.concatenate(out_rows),
            np.concatenate(out_cols),
            np.concatenate(out_vals),
            (nrows, other.shape[1]),
        )

    # ------------------------------------------------------------------
    # structure manipulation
    # ------------------------------------------------------------------

    def permute(
        self, row_perm: np.ndarray | None = None, col_perm: np.ndarray | None = None
    ) -> CSRMatrix:
        """Symmetric-style permutation ``B = A[row_perm][:, col_perm]``.

        ``row_perm[k]`` gives the *original* index placed at new position
        ``k`` (i.e. ``B[k, :] = A[row_perm[k], :]``), and likewise for
        columns.  Pass ``None`` to leave a dimension unpermuted.
        """
        nrows, ncols = self.shape
        if row_perm is None:
            row_perm = np.arange(nrows, dtype=np.int64)
        else:
            row_perm = _check_perm(np.asarray(row_perm, dtype=np.int64), nrows, "row")
        if col_perm is None:
            inv_col = np.arange(ncols, dtype=np.int64)
        else:
            col_perm = _check_perm(np.asarray(col_perm, dtype=np.int64), ncols, "col")
            inv_col = np.empty(ncols, dtype=np.int64)
            inv_col[col_perm] = np.arange(ncols, dtype=np.int64)
        counts = np.diff(self.indptr)[row_perm]
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(self.indices.size, dtype=np.int64)
        data = np.empty(self.data.size, dtype=np.float64)
        for k in range(nrows):
            s, e = self.indptr[row_perm[k]], self.indptr[row_perm[k] + 1]
            cols = inv_col[self.indices[s:e]]
            order = np.argsort(cols, kind="stable")
            ds, de = indptr[k], indptr[k + 1]
            indices[ds:de] = cols[order]
            data[ds:de] = self.data[s:e][order]
        return CSRMatrix(indptr, indices, data, self.shape, check=False)

    def submatrix(self, rows: np.ndarray, cols: np.ndarray) -> CSRMatrix:
        """Extract ``A[rows][:, cols]`` with re-numbered indices.

        ``rows`` and ``cols`` are arrays of original indices; the result
        has shape ``(len(rows), len(cols))`` with position ``k`` holding
        original index ``rows[k]`` / ``cols[k]``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        ncols = self.shape[1]
        col_map = np.full(ncols, -1, dtype=np.int64)
        col_map[cols] = np.arange(cols.size, dtype=np.int64)
        out_r: list[np.ndarray] = []
        out_c: list[np.ndarray] = []
        out_v: list[np.ndarray] = []
        for k, i in enumerate(rows):
            rc, rv = self.row(int(i))
            mapped = col_map[rc]
            keep = mapped >= 0
            if np.any(keep):
                out_r.append(np.full(int(keep.sum()), k, dtype=np.int64))
                out_c.append(mapped[keep])
                out_v.append(rv[keep])
        if not out_r:
            return CSRMatrix.zeros(rows.size, cols.size)
        return CSRMatrix.from_coo(
            np.concatenate(out_r),
            np.concatenate(out_c),
            np.concatenate(out_v),
            (rows.size, cols.size),
        )

    def drop_small(self, tol: float) -> CSRMatrix:
        """Return a copy without entries of magnitude ``< tol``."""
        keep = np.abs(self.data) >= tol
        nrows = self.shape[0]
        row_ids = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(self.indptr))
        return CSRMatrix.from_coo(
            row_ids[keep], self.indices[keep], self.data[keep], self.shape
        )

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense 2-D array."""
        out = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.shape[0]):
            cols, vals = self.row(i)
            out[i, cols] = vals
        return out

    def copy(self) -> CSRMatrix:
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape,
            check=False,
        )

    # ------------------------------------------------------------------
    # norms and comparison
    # ------------------------------------------------------------------

    def row_norms(
        self, ord: int | float = 2, *, backend: str | None = None
    ) -> np.ndarray:
        """Per-row vector norms (the ILUT relative threshold uses ord=2).

        The vectorized backend sums via prefix differences, so its 2- and
        1-norms can differ from the reference in the last bits; ILUT
        always computes its thresholds with the reference path so the
        factors stay backend-independent.
        """
        from ..kernels.backend import VECTORIZED, resolve_backend

        if resolve_backend(backend) == VECTORIZED:
            from ..kernels.csr import csr_row_norms

            return csr_row_norms(self, ord)
        n = self.shape[0]
        out = np.zeros(n, dtype=np.float64)
        for i in range(n):
            _, vals = self.row(i)
            if vals.size:
                if ord == 2:
                    out[i] = float(np.sqrt(np.dot(vals, vals)))
                elif ord == 1:
                    out[i] = float(np.abs(vals).sum())
                elif ord == np.inf:
                    out[i] = float(np.abs(vals).max())
                else:
                    raise ValueError(f"unsupported norm order {ord!r}")
        return out

    def frobenius_norm(self) -> float:
        return float(np.sqrt(np.dot(self.data, self.data)))

    def allclose(self, other: CSRMatrix, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Structural-and-numeric comparison after canonicalisation."""
        if self.shape != other.shape:
            return False
        a = self.drop_small(0.0)  # canonicalise (already canonical, but cheap)
        b = other.drop_small(0.0)
        if not np.array_equal(a.indptr, b.indptr):
            return False
        if not np.array_equal(a.indices, b.indices):
            return False
        return bool(np.allclose(a.data, b.data, rtol=rtol, atol=atol))

    def __repr__(self) -> str:
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.nnz / max(1, self.shape[0] * self.shape[1]):.2e})"
        )


def _check_perm(perm: np.ndarray, n: int, what: str) -> np.ndarray:
    if perm.shape != (n,):
        raise ValueError(f"{what} permutation has length {perm.size}, expected {n}")
    seen = np.zeros(n, dtype=bool)
    if perm.size and (perm.min() < 0 or perm.max() >= n):
        raise ValueError(f"{what} permutation entries out of range")
    seen[perm] = True
    if not seen.all():
        raise ValueError(f"{what} permutation is not a bijection")
    return perm
