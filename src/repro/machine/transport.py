"""The transport abstraction behind the SPMD API (ROADMAP item 1).

Every parallel driver in this reproduction is a *centralised* SPMD
program: one coordinator loop drives ``nranks`` ranks through
alternating **parallel regions** (per-rank local numerics) and
**communication supersteps** (point-to-point messages, barriers,
collectives).  This module extracts the contract those drivers actually
use from :class:`~repro.machine.simulator.Simulator` into a
:class:`Transport` protocol with three interchangeable implementations:

``Simulator`` (``transport="simulator"``)
    The deterministic oracle.  Executes parallel regions sequentially in
    rank order, maintains per-rank virtual clocks driven by a
    :class:`~repro.machine.model.MachineModel`, and keeps **exclusive
    ownership of fault injection, race tracing and the cost model**.

``ThreadTransport`` (``transport="threads"``)
    One persistent worker thread per rank; parallel regions execute
    concurrently on the workers, messages match through real
    condition-guarded mailboxes keyed on ``(src, dst, tag)``.

``ProcessTransport`` (``transport="processes"``)
    One forked worker process per rank per parallel region; thunk
    results travel back pickled (the TRN002 certification from the
    transport-portability analyzer guarantees the payloads survive
    this), with large numpy operands handed over through POSIX shared
    memory instead of the pipe.

The contract (DESIGN.md §13)
----------------------------
A transport provides:

* ``pardo(thunks)`` — the parallel region: ``nranks`` zero-argument
  callables, one per rank (``None`` for an idle rank), executed with
  **read-shared / write-own** semantics: a thunk may read any
  coordinator state but must mutate nothing — it *returns* its updates,
  and the coordinator merges them in deterministic rank order.  This is
  the discipline that makes the three transports bit-identical.
* the messaging surface ``send`` / ``recv`` / ``exchange`` / ``barrier``
  / ``allreduce`` / ``allgather`` and the accounting surface ``compute``
  / ``advance`` / ``superstep`` / ``elapsed`` / ``stats``;
* the tracing hooks ``declare_read`` / ``declare_write`` (no-ops except
  on a tracing simulator) and ``snapshot`` / ``restore`` for the
  checkpoint layer.

``resolve_transport`` is the single entry-point factory the
``transport=`` keyword of every ``parallel_*`` driver goes through; it
raises the typed :class:`TransportCapabilityError` when ``faults=`` or
``trace=True`` is combined with a backend that cannot honour it — the
simulator is the only fully fault/race-instrumented transport.  Real
transports accept the *portable* fault subset (crash / stall / corrupt-
result; see :mod:`repro.machine.supervision`) and run every ``pardo``
region under a supervisor (DESIGN.md §14): per-rank deadlines with
heartbeats, the typed failure taxonomy (:class:`WorkerCrashed` /
:class:`WorkerHung` / :class:`ResultUnpicklable`), and bounded region
retry from the coordinator's intact state — bit-identical by the
pure-thunk discipline.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import defaultdict, deque
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

import numpy as np

from .model import CRAY_T3D, MachineModel
from .simulator import CommStats

if TYPE_CHECKING:
    from ..faults import FaultJournal, FaultPlan
    from ..verify.trace import AccessTracer
    from .supervision import PortableFaultRuntime, RegionInjection, SupervisionPolicy

__all__ = [
    "Transport",
    "LocalTransport",
    "TransportError",
    "TransportCapabilityError",
    "TransportWorkerError",
    "WorkerCrashed",
    "WorkerHung",
    "ResultUnpicklable",
    "SUPERVISED_FAILURES",
    "TransportSnapshot",
    "is_transport",
    "resolve_transport",
    "resolve_entry_transport",
    "transport_name",
    "TRANSPORT_NAMES",
]

#: The spellings ``resolve_transport`` accepts as strings.  ``"none"``
#: (or ``None``) runs the identical algorithm with no transport at all —
#: the old ``simulate=False`` fast path used heavily in tests.
TRANSPORT_NAMES = ("simulator", "threads", "processes", "none")


class TransportError(RuntimeError):
    """A transport-layer failure (deadlock, worker death, misuse)."""


class TransportCapabilityError(TransportError, ValueError):
    """A feature was requested from a transport that cannot honour it.

    Raised by :func:`resolve_transport` when ``faults=`` or
    ``trace=True`` (or ``copy_payloads=True``) is combined with a
    non-simulator transport: the simulator is the only backend carrying
    the fault harness and the race tracer, and silently ignoring the
    request would certify nothing.  Subclasses :class:`ValueError` so
    legacy callers catching the old validation error keep working.
    """


class TransportWorkerError(TransportError):
    """A worker rank died with an exception that could not be re-raised.

    Carries the rank and the worker-side traceback text.  The
    supervision layer (DESIGN.md §14) refines it into the typed
    taxonomy below; only those subclasses trigger region retry — a bare
    :class:`TransportWorkerError` is an *application* failure crossing
    a serialisation boundary and surfaces immediately.
    """

    def __init__(self, rank: int, message: str) -> None:
        super().__init__(f"rank {rank} failed: {message}")
        self.rank = rank


class WorkerCrashed(TransportWorkerError):
    """A worker died mid-region without delivering its result.

    For process workers carries the child ``exitcode`` (negative means
    killed by ``-exitcode``) and, when the death was a classified
    signal, ``signum``; ``remote_traceback`` holds the worker-side
    traceback when one made it out before the death.
    """

    def __init__(
        self,
        rank: int,
        message: str,
        *,
        exitcode: int | None = None,
        signum: int | None = None,
        remote_traceback: str = "",
    ) -> None:
        super().__init__(rank, message)
        self.exitcode = exitcode
        self.signum = signum
        self.remote_traceback = remote_traceback


class WorkerHung(TransportWorkerError):
    """A worker delivered neither result nor heartbeat within the deadline."""

    def __init__(self, rank: int, deadline: float) -> None:
        super().__init__(
            rank,
            f"no result or heartbeat within the {deadline:g}s supervision deadline",
        )
        self.deadline = deadline


class ResultUnpicklable(TransportWorkerError):
    """A worker finished but its result could not cross the boundary.

    ``remote_traceback`` carries the worker-side pickling traceback when
    the failure was detected in the worker; parent-side unpickling
    failures report the coordinator's exception instead.
    """

    def __init__(self, rank: int, message: str, *, remote_traceback: str = "") -> None:
        super().__init__(rank, message)
        self.remote_traceback = remote_traceback


#: The failure taxonomy the region supervisor retries on.
SUPERVISED_FAILURES = (WorkerCrashed, WorkerHung, ResultUnpicklable)


class TransportSnapshot:
    """Frozen counter + mailbox state of a real (non-simulated) transport."""

    __slots__ = ("flops", "mail", "messages", "words", "barriers", "collectives")

    def __init__(self, flops, mail, messages, words, barriers, collectives) -> None:
        self.flops = flops
        self.mail = mail
        self.messages = messages
        self.words = words
        self.barriers = barriers
        self.collectives = collectives


class Transport:
    """Structural base/documentation class for the transport contract.

    :class:`~repro.machine.simulator.Simulator` conforms structurally
    without inheriting (it predates this module and tests construct it
    directly); the real backends subclass :class:`LocalTransport`.
    ``isinstance`` checks are therefore deliberately avoided — use
    :func:`is_transport` / :func:`resolve_transport`.
    """

    #: Short spelling used in reports and ``transport=`` round-trips.
    name: str = "abstract"
    #: Whether :class:`~repro.faults.FaultPlan` injection is available.
    supports_faults: bool = False
    #: Whether ``trace=True`` race tracing is available.
    supports_trace: bool = False
    #: True for the modelled (virtual-clock) backend.
    is_simulated: bool = False
    #: True when region thunks run concurrently in one address space —
    #: drivers must then use per-thunk scratch state (accumulators).
    concurrent_regions: bool = False

    nranks: int


def is_transport(obj: object) -> bool:
    """Duck-typed contract check used by :func:`resolve_transport`."""
    return all(
        callable(getattr(obj, meth, None))
        for meth in ("pardo", "send", "recv", "barrier", "compute", "stats")
    ) and hasattr(obj, "nranks")


class LocalTransport(Transport):
    """Shared machinery of the real in-host transports.

    Maintains the same counters :class:`CommStats` reports for the
    simulator (flops, messages, words, barriers, collectives) — without
    a virtual clock: ``elapsed()`` is real wall-clock time since
    construction.  Mailboxes live in the coordinator and match on
    ``(src, dst, tag)`` exactly like the simulator's.

    Subclasses implement :meth:`pardo`; everything else is common.
    """

    #: seconds a worker-context ``recv`` waits before declaring deadlock
    recv_timeout: float = 30.0

    def __init__(
        self,
        nranks: int,
        *,
        supervision: "SupervisionPolicy | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = int(nranks)
        self._flops = np.zeros(self.nranks, dtype=np.float64)
        self._mail: dict[tuple[int, int, Any], deque[tuple[Any, float]]] = defaultdict(deque)
        self._mail_lock = threading.Lock()
        self._mail_ready = threading.Condition(self._mail_lock)
        self._messages = 0
        self._words = 0.0
        self._barriers = 0
        self._collectives = 0
        self._t0 = time.perf_counter()
        self._closed = False
        # ranks never carry a tracer or a simulator fault runtime on a
        # real transport; portable faults live in the supervision layer
        self.tracer: AccessTracer | None = None
        self.faults = None
        from .supervision import PortableFaultRuntime, SupervisionPolicy

        self.supervision = supervision if supervision is not None else SupervisionPolicy()
        self._fault_runtime: PortableFaultRuntime | None = (
            PortableFaultRuntime(faults) if faults is not None else None
        )
        self._region_recoveries = 0

    # -- identity ------------------------------------------------------

    @property
    def fault_journal(self) -> FaultJournal | None:
        """The portable-fault journal, when a plan is armed."""
        return self._fault_runtime.journal if self._fault_runtime is not None else None

    @property
    def region_recoveries(self) -> int:
        """Parallel regions re-executed after a supervised worker failure."""
        return self._region_recoveries

    @property
    def superstep(self) -> int:
        """Completed barriers + collectives (same clock as the simulator)."""
        return self._barriers + self._collectives

    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
        return int(rank)

    # -- parallel region ----------------------------------------------

    def pardo(self, thunks: Sequence[Callable[[], Any] | None]) -> list[Any]:
        """Run one thunk per rank under the region supervisor.

        Dispatches any armed portable faults, snapshots the transport
        counters, and delegates to the backend's :meth:`_run_region`.
        A supervised failure (:data:`SUPERVISED_FAILURES`: worker
        crashed / hung / result unpicklable) rolls the counters back
        and re-executes the whole region from the coordinator's intact
        state, up to ``supervision.region_retries`` times — safe and
        bit-reproducible because thunks are pure (read-shared /
        write-own, DESIGN.md §13/§14).  Application exceptions raised
        by a thunk are never retried.
        """
        self._check_thunks(thunks)
        self._ensure_open()
        active = [r for r, f in enumerate(thunks) if f is not None]
        if not active:
            return [None] * self.nranks
        attempts = self.supervision.region_retries + 1
        for attempt in range(attempts):
            inject: dict[int, RegionInjection] = (
                self._fault_runtime.plan_region(active, self.superstep)
                if self._fault_runtime is not None
                else {}
            )
            snap = self.snapshot()
            try:
                return self._run_region(thunks, active, inject)
            except SUPERVISED_FAILURES as err:
                self.restore(snap, reason=f"region retry after {type(err).__name__}")
                if attempt + 1 >= attempts:
                    raise
                self._region_recoveries += 1
                if self._fault_runtime is not None:
                    self._fault_runtime.journal.record(
                        "region-retry",
                        superstep=self.superstep,
                        rank=err.rank,
                        detail=f"attempt {attempt + 1}: {type(err).__name__}",
                    )
        raise TransportError("unreachable")  # pragma: no cover

    def _run_region(
        self,
        thunks: Sequence[Callable[[], Any] | None],
        active: list[int],
        inject: "dict[int, RegionInjection]",
    ) -> list[Any]:
        """One supervised execution attempt of a region (backend hook)."""
        raise NotImplementedError

    def _ensure_open(self) -> None:
        if self._closed:
            raise TransportError("transport is closed")

    def _raise_region_failure(self, failures: dict[int, BaseException]) -> None:
        """Raise the failure that decides the region's fate.

        Supervised failures (the retryable taxonomy) take precedence
        over application errors and collateral transport errors (a
        broken barrier on a sibling rank of a crashed worker must not
        mask the crash); within a class, lowest rank first — the same
        deterministic order the pre-supervision transports used.
        """
        supervised = {
            r: e for r, e in failures.items() if isinstance(e, SUPERVISED_FAILURES)
        }
        pick = supervised if supervised else failures
        rank = min(pick)
        exc = pick[rank]
        if isinstance(exc, Exception):
            raise exc
        raise TransportWorkerError(rank, repr(exc))

    def heartbeat(self) -> None:
        """Progress signal from a long-running thunk (worker context).

        Resets the calling rank's supervision deadline; a no-op in
        coordinator context and on the simulator, so drivers may call
        it unconditionally.
        """

    def _check_thunks(self, thunks: Sequence[Callable[[], Any] | None]) -> None:
        if len(thunks) != self.nranks:
            raise ValueError(
                f"pardo expects one thunk per rank ({self.nranks}), got {len(thunks)}"
            )

    # -- accounting (counters only; wall time is real) -----------------

    def compute(self, rank: int, flops: float) -> None:
        rank = self._check_rank(rank)
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        self._flops[rank] += flops

    def advance(self, rank: int, seconds: float) -> None:
        self._check_rank(rank)
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        # wall time is real on this transport; the modelled charge is moot

    # -- point-to-point ------------------------------------------------

    def _deliver(self, payload: Any) -> Any:
        """Transport-specific payload boundary (reference vs serialized)."""
        return payload

    def send(self, src: int, dst: int, payload: Any, nwords: float, tag: Any = None) -> None:
        src = self._check_rank(src)
        dst = self._check_rank(dst)
        if nwords < 0:
            raise ValueError("nwords must be non-negative")
        payload = self._deliver(payload)
        with self._mail_ready:
            self._mail[(src, dst, tag)].append((payload, float(nwords)))
            if src != dst:
                self._messages += 1
                self._words += nwords
            self._mail_ready.notify_all()

    def recv(self, dst: int, src: int, tag: Any = None) -> Any:
        dst = self._check_rank(dst)
        src = self._check_rank(src)
        key = (src, dst, tag)
        deadline = time.perf_counter() + self.recv_timeout
        with self._mail_ready:
            while True:
                box = self._mail.get(key)
                if box:
                    payload, _ = box.popleft()
                    return payload
                if not self._in_worker():
                    # coordinator context: a missing message is a protocol
                    # bug, exactly the simulator's hard deadlock error
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._mail_ready.wait(remaining)
        raise TransportError(
            f"deadlock: rank {dst} receives from {src} (tag={tag!r}) "
            "but no message was sent"
        )

    def exchange(
        self, messages: list[tuple[int, int, Any, float]], tag: Any = None
    ) -> dict[int, list[tuple[int, Any]]]:
        """Superstep all-to-some exchange; deterministic drain order."""
        for src, dst, payload, nwords in messages:
            self.send(src, dst, payload, nwords, tag=tag)
        out: dict[int, list[tuple[int, Any]]] = defaultdict(list)
        per_dst: dict[int, list[int]] = defaultdict(list)
        for src, dst, _, _ in messages:
            per_dst[dst].append(src)
        for dst in sorted(per_dst):
            for src in per_dst[dst]:
                out[dst].append((src, self.recv(dst, src, tag=tag)))
        return dict(out)

    # -- collectives ---------------------------------------------------

    def _in_worker(self) -> bool:
        """True when called from rank-executed (worker) context."""
        return False

    def barrier(self) -> None:
        if self._sync_workers():
            self._barriers += 1

    def _sync_workers(self) -> bool:
        """Hook for subclasses whose workers can reach a barrier.

        Returns True when this caller should account the barrier (the
        coordinator always does; of N workers meeting at one barrier,
        exactly one must).
        """
        return True

    def allreduce(self, values: np.ndarray | list, op: str = "sum") -> Any:
        arr = np.asarray(values)
        if arr.shape[0] != self.nranks:
            raise ValueError(
                f"allreduce expects one value per rank ({self.nranks}), got {arr.shape}"
            )
        self._collectives += 1
        if op == "sum":
            return arr.sum(axis=0)
        if op == "max":
            return arr.max(axis=0)
        if op == "min":
            return arr.min(axis=0)
        if op == "or":
            return np.logical_or.reduce(arr, axis=0)
        raise ValueError(f"unsupported allreduce op {op!r}")

    def allgather(self, values: list, nwords_each: float = 1.0) -> list:
        if len(values) != self.nranks:
            raise ValueError(
                f"allgather expects one payload per rank ({self.nranks}), got {len(values)}"
            )
        self._collectives += 1
        return list(values)

    # -- tracing hooks (free: no tracer ever on a real transport) ------

    def declare_read(self, rank: int, space: str, indices: int | Iterable[int]) -> None:
        pass

    def declare_write(self, rank: int, space: str, index: int) -> None:
        pass

    # -- checkpoint / restart ------------------------------------------

    def snapshot(self) -> TransportSnapshot:
        with self._mail_lock:
            return TransportSnapshot(
                flops=self._flops.copy(),
                mail={key: deque(box) for key, box in self._mail.items() if box},
                messages=self._messages,
                words=self._words,
                barriers=self._barriers,
                collectives=self._collectives,
            )

    def restore(self, snap: TransportSnapshot, *, reason: str = "") -> None:
        with self._mail_lock:
            self._flops[:] = snap.flops
            self._mail = defaultdict(
                deque, {key: deque(box) for key, box in snap.mail.items()}
            )
            self._messages = snap.messages
            self._words = snap.words
            self._barriers = snap.barriers
            self._collectives = snap.collectives

    # -- results -------------------------------------------------------

    def elapsed(self) -> float:
        """Real wall-clock seconds since the transport was created."""
        return time.perf_counter() - self._t0

    def utilization(self) -> np.ndarray:
        """Unknown on a real transport — reported as all-ones."""
        return np.ones(self.nranks)

    def pending_messages(self) -> int:
        with self._mail_lock:
            return sum(len(q) for q in self._mail.values())

    def stats(self) -> CommStats:
        return CommStats(
            nranks=self.nranks,
            total_flops=float(self._flops.sum()),
            messages=self._messages,
            words_sent=self._words,
            barriers=self._barriers,
            collectives=self._collectives,
            per_rank_flops=[float(f) for f in self._flops],
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release worker resources; the transport is unusable after."""
        self._closed = True

    def __enter__(self) -> "LocalTransport":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def transport_name(transport: object | None) -> str:
    """The report-facing name of a transport instance (``"none"`` for no
    accounting), tolerating bare Simulators that predate ``.name``."""
    if transport is None:
        return "none"
    return getattr(transport, "name", type(transport).__name__.lower())


def resolve_transport(
    spec: object,
    nranks: int,
    *,
    model: MachineModel = CRAY_T3D,
    trace: bool = False,
    faults: "FaultPlan | None" = None,
    copy_payloads: bool = False,
    supervision: "SupervisionPolicy | None" = None,
):
    """Resolve a ``transport=`` argument into a transport instance.

    Parameters
    ----------
    spec:
        ``"simulator"`` | ``"threads"`` | ``"processes"`` | ``"none"`` |
        ``None`` | a ready :class:`Transport` / ``Simulator`` instance.
        ``"none"``/``None`` returns ``None`` — run the identical
        algorithm with no transport (the legacy ``simulate=False``).
    nranks:
        Rank count a string spec is instantiated with; an instance must
        already match it.
    model, trace, faults, copy_payloads:
        Simulator configuration.  ``trace=True`` and ``copy_payloads=``
        remain simulator-only.  ``faults=`` runs anywhere a fault can
        be honoured: in full on the simulator, and as the *portable*
        subset (crash / stall / corrupt-result, DESIGN.md §14) on the
        real transports — a plan containing drop / delay / duplicate
        message faults still raises :class:`TransportCapabilityError`
        off-simulator rather than silently certifying nothing.
    supervision:
        A :class:`~repro.machine.supervision.SupervisionPolicy` for the
        worker supervisor — real (worker-backed) transports only.

    Returns
    -------
    A transport instance, or ``None`` for the accounting-free path.
    """
    from .simulator import Simulator

    def _require_simulator(cap: str) -> None:
        raise TransportCapabilityError(
            f"{cap} requires the simulator transport "
            f"(got transport={transport_name(spec) if not isinstance(spec, str) else spec!r}); "
            "the simulator is the only fault/race-instrumented backend"
        )

    def _require_workers(cap: str) -> None:
        raise TransportCapabilityError(
            f"{cap} requires a worker-backed transport (threads/processes) "
            f"(got transport={transport_name(spec) if not isinstance(spec, str) else spec!r}); "
            "only real workers run under the region supervisor"
        )

    def _check_portable(plan: "FaultPlan") -> None:
        from .supervision import unportable_faults

        bad = unportable_faults(plan)
        if bad:
            raise TransportCapabilityError(
                f"faults= on transport "
                f"{transport_name(spec) if not isinstance(spec, str) else spec!r} "
                f"supports only the portable subset (crash/stall rank faults, "
                f"corrupt message faults as corrupt-result); not portable: "
                f"{', '.join(bad)} — use transport='simulator' for those"
            )

    if spec is None or (isinstance(spec, str) and spec == "none"):
        if trace:
            _require_simulator("trace=True")
        if faults is not None:
            _require_simulator("faults=")
        if copy_payloads:
            _require_simulator("copy_payloads=True")
        if supervision is not None:
            _require_workers("supervision=")
        return None

    if isinstance(spec, str):
        if spec == "simulator":
            if supervision is not None:
                _require_workers("supervision=")
            return Simulator(
                nranks, model, trace=trace, faults=faults, copy_payloads=copy_payloads
            )
        if spec in ("threads", "processes"):
            if trace:
                _require_simulator("trace=True")
            if copy_payloads:
                _require_simulator("copy_payloads=True")
            if faults is not None:
                _check_portable(faults)
            if spec == "threads":
                from .threads import ThreadTransport

                return ThreadTransport(nranks, supervision=supervision, faults=faults)
            from .processes import ProcessTransport

            return ProcessTransport(nranks, supervision=supervision, faults=faults)
        raise ValueError(
            f"unknown transport {spec!r}; choose from {TRANSPORT_NAMES} "
            "or pass a Transport instance"
        )

    # a ready instance: validate rank count and capability requests
    if not is_transport(spec):
        raise TypeError(
            f"transport= expects one of {TRANSPORT_NAMES} or a Transport "
            f"instance, got {type(spec).__name__}"
        )
    if spec.nranks != nranks:
        raise ValueError(
            f"transport has {spec.nranks} ranks but nranks={nranks} was requested"
        )
    simulated = bool(getattr(spec, "is_simulated", isinstance(spec, Simulator)))
    if trace and not simulated:
        _require_simulator("trace=True")
    if faults is not None:
        # a fault plan cannot be retrofitted onto a live instance
        raise TransportCapabilityError(
            "faults= cannot be combined with a ready transport instance; "
            "construct Simulator(nranks, model, faults=plan) or "
            "ThreadTransport/ProcessTransport(nranks, faults=plan) and pass that"
        )
    if supervision is not None:
        raise TransportCapabilityError(
            "supervision= cannot be retrofitted onto a ready transport "
            "instance; construct ThreadTransport/ProcessTransport(nranks, "
            "supervision=policy) and pass that"
        )
    if copy_payloads and not simulated:
        _require_simulator("copy_payloads=True")
    if trace and simulated and getattr(spec, "tracer", None) is None:
        raise TransportCapabilityError(
            "trace=True cannot be retrofitted onto a live instance; "
            "construct Simulator(nranks, model, trace=True) and pass that"
        )
    return spec


def resolve_entry_transport(
    func_name: str,
    transport: object,
    simulate: "bool | None",
    nranks: int,
    *,
    model: MachineModel = CRAY_T3D,
    trace: bool = False,
    faults: "FaultPlan | None" = None,
    copy_payloads: bool = False,
    supervision: "SupervisionPolicy | None" = None,
    stacklevel: int = 3,
):
    """Entry-point shim shared by every ``transport=`` driver.

    Handles the deprecated ``simulate=`` boolean: ``simulate=True`` maps
    to ``transport="simulator"`` and ``simulate=False`` to
    ``transport="none"``, each under a :class:`DeprecationWarning`.
    Passing both spellings (with a non-default ``transport``) raises
    ``TypeError``.  Everything else defers to :func:`resolve_transport`.
    """
    if simulate is not None:
        if not (isinstance(transport, str) and transport == "simulator"):
            raise TypeError(
                f"{func_name}() got both the deprecated simulate= and "
                "transport=; pass only transport="
            )
        warnings.warn(
            f"{func_name}(simulate=...) is deprecated; pass "
            "transport='simulator' (simulate=True) or transport='none' "
            "(simulate=False) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        transport = "simulator" if simulate else "none"
    return resolve_transport(
        transport,
        nranks,
        model=model,
        trace=trace,
        faults=faults,
        copy_payloads=copy_payloads,
        supervision=supervision,
    )
