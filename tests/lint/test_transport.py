"""Transport-portability analyzer: real drivers certify, seeded bugs
don't, and the static pickle-safety judgement agrees with runtime
pickling (hypothesis)."""

import ast
import pickle
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lint.flow import (
    AbsType,
    analyze_transport,
    infer_types,
    is_pickle_safe,
    unsafe_reason,
    verify_transport,
)
from repro.lint.flow.pytypes import dtype_violation
from repro.lint.runner import collect_files, parse_module

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def _modules(path: Path):
    return [
        m
        for f in collect_files([path])
        if (m := parse_module(f, REPO)) is not None
    ]


class _FakeModule:
    def __init__(self, relpath: str, source: str):
        self.relpath = relpath
        self.tree = ast.parse(source)


@pytest.fixture(scope="module")
def repo_modules():
    return _modules(REPO / "src" / "repro")


@pytest.fixture(scope="module")
def repo_reports(repo_modules):
    return verify_transport(repo_modules)


# ---------------------------------------------------------------- repo


def test_every_driver_certifies(repo_reports):
    assert repo_reports
    for r in repo_reports:
        assert r.certified, [(p.rule, p.module, p.line, p.message) for p in r.problems]
    quals = {r.qualname for r in repo_reports}
    # the registered drivers plus the auto-discovered comm roots
    assert "EliminationEngine.run" in quals
    assert "parallel_triangular_solve" in quals
    assert "parallel_matvec" in quals


def test_certification_covers_real_payloads(repo_reports):
    # the certificate is vacuous unless the analyzer actually walked
    # functions and payload expressions across the drivers
    assert sum(r.payloads for r in repo_reports) >= 5
    assert sum(r.functions for r in repo_reports) >= 20


def test_repo_comm_closure_has_no_problems(repo_modules):
    assert analyze_transport(repo_modules) == []


# ------------------------------------------------------------ fixtures


@pytest.mark.parametrize("name", ["trn001", "trn002", "trn003", "trn004"])
def test_seeded_fixture_fails_certification(name):
    reports = verify_transport(_modules(FIXTURES / f"{name}_bad.py"))
    assert reports, "fixture comm roots not discovered as drivers"
    assert any(not r.certified for r in reports)
    rules = {p.rule for r in reports for p in r.problems}
    assert rules == {name.upper()}, rules


@pytest.mark.parametrize("name", ["trn001", "trn002", "trn003", "trn004"])
def test_clean_twin_certifies(name):
    reports = verify_transport(_modules(FIXTURES / f"{name}_clean.py"))
    assert reports
    for r in reports:
        assert r.certified, [(p.rule, p.line, p.message) for p in r.problems]


def test_escape_is_interprocedural():
    """A payload posted by a *callee* still pins the caller's buffer."""
    src = (
        "def post_row(sim, rank, dst, row):\n"
        "    sim.send(rank, dst, row, 1.0, tag='row')\n"
        "\n"
        "def driver(sim, rank, dst, buf):\n"
        "    post_row(sim, rank, dst, buf)\n"
        "    buf[0] = 1.0\n"
        "    return sim.recv(rank, dst, tag='row')\n"
    )
    problems = analyze_transport([_FakeModule("pkg/mod.py", src)])
    trn001 = [p for p in problems if p.rule == "TRN001"]
    assert len(trn001) == 1
    assert trn001[0].function == "driver"
    assert "post_row" in trn001[0].message


def test_mutation_before_post_is_fine():
    src = (
        "def driver(sim, rank, dst, buf):\n"
        "    buf[0] = 1.0\n"
        "    sim.send(rank, dst, buf, 1.0, tag='row')\n"
        "    return sim.recv(rank, dst, tag='row')\n"
    )
    assert analyze_transport([_FakeModule("pkg/mod.py", src)]) == []


def test_mutation_in_loop_after_post_is_flagged():
    """The loop back-edge makes an earlier-line mutation follow the post."""
    src = (
        "def driver(sim, rank, dst, buf, n):\n"
        "    for i in range(n):\n"
        "        buf[i] = float(i)\n"
        "        sim.send(rank, dst, buf, 1.0, tag=i)\n"
        "    for i in range(n):\n"
        "        sim.recv(rank, dst, tag=i)\n"
    )
    problems = analyze_transport([_FakeModule("pkg/mod.py", src)])
    assert [p.rule for p in problems] == ["TRN001"]


# ------------------------------------------------------------- pytypes


class TestTypeInference:
    def _env(self, src: str):
        func = ast.parse(src).body[0]
        return infer_types(func)

    def test_numpy_ctor_and_annotation_seeding(self):
        env = self._env(
            "def f(sim, n: int):\n"
            "    a = np.zeros(n)\n"
            "    b = np.arange(n)\n"
            "    c = np.arange(n, dtype=np.int64)\n"
        )
        assert env["sim"].kind == "simulator"
        assert env["n"].kind == "int"
        assert env["a"] == AbsType("ndarray", dtype="float64")
        assert env["b"].dtype == "int_default"
        assert env["c"] == AbsType("ndarray", dtype="int64", dtype_explicit=True)

    def test_conflicting_rebinds_merge_to_unknown(self):
        env = self._env(
            "def f(flag):\n"
            "    x = 1\n"
            "    x = 'two'\n"
        )
        assert env["x"].kind == "unknown"

    def test_unsafe_kinds_have_reasons(self):
        env = self._env(
            "def f():\n"
            "    guard = threading.Lock()\n"
            "    rule = lambda x: x\n"
            "    rows = (i for i in range(3))\n"
        )
        for name in ("guard", "rule", "rows"):
            assert unsafe_reason(env[name]), name
        assert not unsafe_reason(AbsType("ndarray"))
        assert not unsafe_reason(AbsType("unknown"))

    def test_container_of_unsafe_is_unsafe(self):
        t = AbsType("list", elems=(AbsType("lambda"),))
        assert "lambda" in unsafe_reason(t)
        assert not is_pickle_safe(t)

    def test_dtype_violation_judgements(self):
        def first_call(src):
            tree = ast.parse(src, mode="eval")
            return tree.body

        assert dtype_violation(first_call("np.arange(5)"))
        assert not dtype_violation(first_call("np.arange(0.0, 1.0, 0.1)"))
        assert dtype_violation(first_call("np.asarray(x, dtype=np.float32)"))
        assert not dtype_violation(first_call("np.zeros(5)"))
        assert not dtype_violation(first_call("np.array(rows)"))  # unknown content
        assert dtype_violation(first_call("np.array([1, 2, 3])"))


# ---------------------------------------------- pickle-safety property

_safe_scalars = (
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20)
)
_safe_values = st.recursive(
    _safe_scalars,
    lambda children: st.lists(children, max_size=4)
    | st.lists(children, max_size=4).map(tuple)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=12,
)


def _abs_of(v) -> AbsType:
    """The abstract type of a concrete runtime value."""
    if v is None:
        return AbsType("none")
    if isinstance(v, bool):
        return AbsType("bool")
    if isinstance(v, int):
        return AbsType("int")
    if isinstance(v, float):
        return AbsType("float")
    if isinstance(v, str):
        return AbsType("str")
    if isinstance(v, bytes):
        return AbsType("bytes")
    if isinstance(v, np.ndarray):
        return AbsType("ndarray", dtype=str(v.dtype))
    if isinstance(v, (list, tuple, set)):
        kind = type(v).__name__
        return AbsType(kind, elems=tuple(_abs_of(e) for e in v) or (AbsType("none"),))
    if isinstance(v, dict):
        elems = tuple(_abs_of(e) for kv in v.items() for e in kv)
        return AbsType("dict", elems=elems or (AbsType("none"),))
    return AbsType("unknown")


@given(_safe_values)
def test_statically_safe_values_round_trip_pickle_equal(v):
    """The runtime oracle of ``is_pickle_safe``: everything the static
    judgement certifies really survives ``pickle`` unchanged."""
    t = _abs_of(v)
    assert is_pickle_safe(t), t
    assert pickle.loads(pickle.dumps(v, protocol=pickle.HIGHEST_PROTOCOL)) == v


@given(st.lists(st.floats(allow_nan=False), max_size=8))
def test_ndarray_payloads_round_trip_bit_identical(xs):
    a = np.asarray(xs, dtype=np.float64)
    assert is_pickle_safe(_abs_of(a))
    b = pickle.loads(pickle.dumps(a, protocol=pickle.HIGHEST_PROTOCOL))
    assert b.dtype == a.dtype and np.array_equal(a, b)


def test_statically_unsafe_values_really_fail_pickle():
    for v in (lambda x: x, (i for i in range(3)),):
        with pytest.raises(Exception):
            pickle.dumps(v)
