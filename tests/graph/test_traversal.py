"""Unit tests for BFS, components and pseudo-peripheral vertices."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    adjacency_from_matrix,
    bfs_levels,
    connected_components,
    pseudo_peripheral_vertex,
)
from repro.matrices import poisson2d
from repro.sparse import CSRMatrix


def path_graph(n):
    rows, cols = [], []
    for i in range(n - 1):
        rows += [i, i + 1]
        cols += [i + 1, i]
    A = CSRMatrix.from_coo(rows, cols, np.ones(len(rows)), (n, n))
    return adjacency_from_matrix(A)


def two_components():
    # 0-1-2 and 3-4
    rows = [0, 1, 1, 2, 3, 4]
    cols = [1, 0, 2, 1, 4, 3]
    A = CSRMatrix.from_coo(rows, cols, np.ones(6), (5, 5))
    return adjacency_from_matrix(A)


class TestBFS:
    def test_path_distances(self):
        g = path_graph(5)
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3, 4]
        assert bfs_levels(g, 2).tolist() == [2, 1, 0, 1, 2]

    def test_grid_distance_manhattan(self):
        g = adjacency_from_matrix(poisson2d(5))
        lv = bfs_levels(g, 0)
        assert lv[24] == 8  # opposite corner of a 5x5 grid

    def test_unreachable_minus_one(self):
        g = two_components()
        lv = bfs_levels(g, 0)
        assert lv[3] == -1 and lv[4] == -1

    def test_mask_restricts(self):
        g = path_graph(5)
        mask = np.array([True, True, False, True, True])
        lv = bfs_levels(g, 0, mask=mask)
        assert lv[1] == 1 and lv[3] == -1  # cut at the masked vertex

    def test_masked_source_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            bfs_levels(g, 1, mask=np.array([True, False, True]))

    def test_bad_source(self):
        with pytest.raises(IndexError):
            bfs_levels(path_graph(3), 5)


class TestComponents:
    def test_connected_graph_one_component(self):
        g = adjacency_from_matrix(poisson2d(4))
        assert np.all(connected_components(g) == 0)

    def test_two_components(self):
        comp = connected_components(two_components())
        assert comp[0] == comp[1] == comp[2]
        assert comp[3] == comp[4]
        assert comp[0] != comp[3]

    def test_masked_vertices_excluded(self):
        g = path_graph(5)
        mask = np.array([True, True, False, True, True])
        comp = connected_components(g, mask=mask)
        assert comp[2] == -1
        assert comp[0] == comp[1]
        assert comp[3] == comp[4]
        assert comp[0] != comp[3]

    def test_isolated_vertices(self):
        g = Graph(np.zeros(4, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert connected_components(g).tolist() == [0, 1, 2]


class TestPseudoPeripheral:
    def test_path_finds_endpoint(self):
        g = path_graph(9)
        v = pseudo_peripheral_vertex(g, start=4)
        assert v in (0, 8)

    def test_grid_finds_corner_distance(self):
        g = adjacency_from_matrix(poisson2d(6))
        v = pseudo_peripheral_vertex(g, start=14)
        lv = bfs_levels(g, v)
        assert lv.max() == 10  # full grid diameter

    def test_empty_mask_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            pseudo_peripheral_vertex(g, mask=np.zeros(3, dtype=bool))
