"""Parallel ILU(0) via static colouring (paper §3, Figure 1a).

ILU(0) never creates fill, so the sparsity structure of every reduced
matrix is known before any numerics: a single greedy colouring of the
interface graph yields all the level sets ``S_l`` up front.  This module
implements that formulation — the foil against which the paper's
dynamic-MIS ILUT algorithm is defined — using the same two-phase
ordering and the same simulator cost accounting, so the two can be
compared level-for-level (see ``benchmarks/bench_ablation_ilu0.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..decomp import DomainDecomposition, decompose
from ..faults import FaultPlan
from ..graph import Graph, color_classes, greedy_coloring
from ..kernels import csr_gather_rows
from ..machine import (
    CRAY_T3D,
    MachineModel,
    Transport,
    is_transport,
    resolve_entry_transport,
    transport_name,
)
from ..resilience import ZeroPivotError
from ..sparse import COOBuilder, CSRMatrix, SparseRowAccumulator
from .factors import ILUFactors, LevelStructure
from .parallel import ParallelILUResult

if TYPE_CHECKING:
    from ..machine.supervision import SupervisionPolicy

__all__ = ["parallel_ilu0"]


def _interface_coloring(decomp: DomainDecomposition) -> list[np.ndarray]:
    """Colour classes of the interface subgraph (original indices)."""
    iface = decomp.all_interface
    if iface.size == 0:
        return []
    local_of = np.full(decomp.A.shape[0], -1, dtype=np.int64)
    local_of[iface] = np.arange(iface.size, dtype=np.int64)
    xadj = np.zeros(iface.size + 1, dtype=np.int64)
    chunks = []
    for idx, v in enumerate(iface):
        nbrs = decomp.graph.neighbors(int(v))
        mapped = local_of[nbrs]
        mapped = mapped[mapped >= 0]
        chunks.append(mapped)
        xadj[idx + 1] = xadj[idx] + mapped.size
    adjncy = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    g = Graph(xadj, adjncy)
    classes = color_classes(greedy_coloring(g))
    return [iface[c] for c in classes]


def parallel_ilu0(
    A: CSRMatrix,
    nranks: int,
    *,
    model: MachineModel = CRAY_T3D,
    transport: str | Transport | None = "simulator",
    simulate: bool | None = None,
    decomp: DomainDecomposition | None = None,
    method: str = "multilevel",
    seed: int = 0,
    diag_guard: bool = True,
    faults: FaultPlan | None = None,
    supervision: "SupervisionPolicy | None" = None,
) -> ParallelILUResult:
    """Zero-fill incomplete factorization on the simulated machine.

    Same two-phase schedule as :func:`~repro.ilu.parallel.parallel_ilut`
    (interior blocks, then interface levels), but the interface levels
    are the colour classes of the interface graph, computed *before* the
    numeric factorization — the concurrency structure ILU(0) admits and
    ILUT does not.  ``faults`` / ``supervision`` behave as in
    :func:`~repro.ilu.parallel.parallel_ilut`: real transports honour
    the portable fault subset and recover by supervised region retry
    (DESIGN.md §14).
    """
    if decomp is None:
        decomp = decompose(A, nranks, method=method, seed=seed)
    elif decomp.nranks != nranks:
        raise ValueError(
            f"decomp has {decomp.nranks} ranks but nranks={nranks} was requested"
        )
    sim = resolve_entry_transport(
        "parallel_ilu0",
        transport,
        simulate,
        nranks,
        model=model,
        faults=faults,
        supervision=supervision,
    )
    owned = not is_transport(transport)
    n = A.shape[0]
    part = decomp.part

    # elimination order: interiors per rank, then interface colour classes
    order_chunks: list[np.ndarray] = []
    interior_ranges: list[tuple[int, int]] = []
    start = 0
    for r in range(nranks):
        rows = decomp.interior_rows(r)
        order_chunks.append(rows)
        interior_ranges.append((start, start + rows.size))
        start += rows.size
    classes = _interface_coloring(decomp)
    interface_levels: list[np.ndarray] = []
    for cls in classes:
        interface_levels.append(np.arange(start, start + cls.size, dtype=np.int64))
        order_chunks.append(cls)
        start += cls.size
    perm = (
        np.concatenate(order_chunks) if order_chunks else np.empty(0, dtype=np.int64)
    )
    pos = np.empty(n, dtype=np.int64)
    pos[perm] = np.arange(n, dtype=np.int64)

    # numeric factorization in that order, zero-fill.  Each parallel
    # region runs pure per-rank thunks (DESIGN.md §13): a thunk factors
    # its rows against thunk-local scratch plus the coordinator's merged
    # u-rows (stable during a region) and returns per-row records; the
    # coordinator applies them in the historical inline order, so the
    # builders, u-rows and charges are bit-identical on every transport.
    norms = A.row_norms(ord=2)
    u_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    l_builder = COOBuilder(n)
    u_builder = COOBuilder(n)

    def pardo(thunks):
        if sim is not None:
            return sim.pardo(thunks)
        return [f() if f is not None else None for f in thunks]

    def make_row_kernel():
        # thunk-local scratch: accumulator, pattern mask, and u-rows
        # factored by this thunk but not yet merged by the coordinator
        w = SparseRowAccumulator(n)
        in_pattern = np.zeros(n, dtype=bool)
        u_new: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        def factor_row(i: int):
            cols, vals = A.row(i)
            w.load(cols, vals)
            in_pattern[cols] = True
            ops = 0.0
            pivots = sorted(
                (int(pos[c]), int(c)) for c in cols if pos[c] < pos[i]
            )
            for _, k in pivots:
                wk = w.get(k)
                if wk == 0.0:
                    continue
                ucols, uvals = u_new[k] if k in u_new else u_rows[k]
                wk = wk / uvals[0]
                ops += 1
                w.set(k, wk)
                if ucols.size > 1:
                    tail = ucols[1:]
                    keep = in_pattern[tail]
                    if np.any(keep):
                        w.axpy(-wk, tail[keep], uvals[1:][keep])
                        ops += 2.0 * keep.sum()
            rcols, rvals = w.extract()
            lmask = pos[rcols] < pos[i]
            dmask = rcols == i
            umask = ~lmask & ~dmask
            diag = float(rvals[dmask][0]) if np.any(dmask) else 0.0
            if diag == 0.0:
                if not diag_guard:
                    raise ZeroPivotError(f"zero pivot at row {i}", row=i, value=0.0)
                diag = norms[i] if norms[i] > 0 else 1.0
            l_rec = (
                (pos[rcols[lmask]], rvals[lmask]) if np.any(lmask) else None
            )
            u_rec = (
                (pos[rcols[umask]], rvals[umask]) if np.any(umask) else None
            )
            uc = rcols[umask]
            uo = np.argsort(pos[uc], kind="stable")  # by elimination position
            u_row = (
                np.concatenate(([i], uc[uo])).astype(np.int64),
                np.concatenate(([diag], rvals[umask][uo])),
            )
            u_new[i] = u_row
            in_pattern[cols] = False
            w.reset()
            return (i, l_rec, diag, u_rec, u_row, ops)

        return factor_row

    def block_thunk(rows: list[int]):
        def thunk():
            factor_row = make_row_kernel()
            return [factor_row(i) for i in rows]

        return thunk

    def apply_row(rec) -> float:
        i, l_rec, diag, u_rec, u_row, ops = rec
        p_i = int(pos[i])
        if l_rec is not None:
            lc, lv = l_rec
            l_builder.add_batch(np.full(lc.size, p_i, dtype=np.int64), lc, lv)
        u_builder.add(p_i, p_i, diag)
        if u_rec is not None:
            uc, uv = u_rec
            u_builder.add_batch(np.full(uc.size, p_i, dtype=np.int64), uc, uv)
        u_rows[i] = u_row
        return ops

    # phase 1: interiors (independent blocks) + interface prep rows local.
    # Interior pivots stay within the owner's interior block, so a
    # thunk's u_new overlay covers every pivot it needs.
    phase1_thunks: list = [None] * nranks
    for r in range(nranks):
        rows = [int(i) for i in decomp.interior_rows(r)]
        if rows:
            phase1_thunks[r] = block_thunk(rows)
    phase1_results = pardo(phase1_thunks)
    for r in range(nranks):
        ops = 0.0
        for rec in phase1_results[r] or []:
            ops += apply_row(rec)
        if sim is not None:
            sim.compute(r, ops)
    if sim is not None:
        sim.barrier()

    # phase 2: colour classes in order; u-row exchange per class.  The
    # colouring guarantees no same-class pivots, so class thunks read
    # only coordinator-merged u-rows.
    for lvl_idx, cls in enumerate(classes):
        per_rank_ops: dict[int, float] = {}
        # comm: remaining rows need u_k of earlier classes — but within a
        # class, rows only need *already factored* rows, known statically:
        # rows of this class reference factored interface rows of earlier
        # classes on other ranks.  Charge the per-class exchange.
        if sim is not None:
            # vectorized gather keeps the scalar walk's (row, storage)
            # entry order, so the need accumulation below charges in the
            # exact order the per-row loop used to
            ii, cc, _ = csr_gather_rows(A, np.asarray(cls, dtype=np.int64))
            earlier = (
                (pos[cc] < pos[ii]) & decomp.is_interface[cc] & (part[cc] != part[ii])
            )
            need: dict[tuple[int, int], float] = {}
            for i, c in zip(ii[earlier], cc[earlier]):
                c = int(c)
                nw = u_rows[c][0].size * 2.0 if c in u_rows else 2.0
                need[(int(part[c]), int(part[i]))] = (
                    need.get((int(part[c]), int(part[i])), 0.0) + nw
                )
            for (src, dst), words in sorted(need.items()):
                sim.send(src, dst, None, words, tag=("ilu0", lvl_idx))
            for (src, dst), _words in sorted(need.items()):
                sim.recv(dst, src, tag=("ilu0", lvl_idx))
        rows_by_rank: list[list[int]] = [[] for _ in range(nranks)]
        for i in cls:
            rows_by_rank[int(part[i])].append(int(i))
        cls_results = pardo(
            [block_thunk(rows) if rows else None for rows in rows_by_rank]
        )
        rec_by_row = {
            rec[0]: rec for res in cls_results if res for rec in res
        }
        for i in cls:
            ops = apply_row(rec_by_row[int(i)])
            r = int(part[i])
            per_rank_ops[r] = per_rank_ops.get(r, 0.0) + ops
        if sim is not None:
            for r, ops in sorted(per_rank_ops.items()):
                sim.compute(r, ops)
            sim.barrier()

    L = l_builder.to_csr()
    U = u_builder.to_csr()
    owner = part[perm]
    levels = LevelStructure(
        interior_ranges=interior_ranges,
        interface_levels=interface_levels,
        owner=owner,
    )
    levels.validate(n)
    factors = ILUFactors(
        L=L,
        U=U,
        perm=perm,
        levels=levels,
        stats={"algo": "parallel-ilu0", "num_levels": len(interface_levels)},
    )
    try:
        return ParallelILUResult(
            factors=factors,
            decomp=decomp,
            num_levels=len(interface_levels),
            level_sizes=[int(c.size) for c in classes],
            modeled_time=sim.elapsed() if sim is not None else None,
            comm=sim.stats() if sim is not None else None,
            flops=0.0 if sim is None else sim.stats().total_flops,
            words_copied=0.0,
            fault_journal=getattr(sim, "fault_journal", None),
            recoveries=getattr(sim, "region_recoveries", 0),
            transport=transport_name(sim),
        )
    finally:
        if owned and sim is not None:
            sim.close()
