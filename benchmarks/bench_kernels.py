"""Kernel-backend regression harness: reference vs vectorized hot paths.

Times the three hot paths behind the ``backend`` switch — sequential
ILUT factorization, level-scheduled triangular apply, and preconditioned
GMRES — on the Poisson-G0 and torso workloads, verifies parity
(bit-identical factors; applier within 1e-12), replays the vectorized
parallel drivers under the race detector, and writes the results to
``BENCH_kernels.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full run
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick --check

``--check`` exits nonzero if the vectorized triangular apply is not
faster than the reference row loop (the CI guard against kernel-layer
regressions).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import ILUTParams, gmres, poisson2d, torso_like
from repro.decomp import decompose
from repro.ilu import ilut, parallel_ilut, parallel_ilut_star
from repro.ilu.apply import LevelScheduledApplier
from repro.ilu.triangular import parallel_triangular_solve
from repro.kernels import clear_schedule_cache
from repro.solvers import ILUPreconditioner, parallel_matvec
from repro.verify import find_races

REPO_ROOT = Path(__file__).resolve().parent.parent


def _best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _factors_identical(fa, fb) -> bool:
    return all(
        np.array_equal(x, y)
        for x, y in [
            (fa.L.indptr, fb.L.indptr),
            (fa.L.indices, fb.L.indices),
            (fa.L.data, fb.L.data),
            (fa.U.indptr, fb.U.indptr),
            (fa.U.indices, fb.U.indices),
            (fa.U.data, fb.U.data),
        ]
    )


def bench_factorization(cfg: dict) -> dict:
    A = poisson2d(cfg["fact_nx"])
    p = ILUTParams(fill=cfg["m"], threshold=cfg["t"])
    t_ref = _best_of(lambda: ilut(A, p, backend="reference"), cfg["fact_repeat"])
    t_vec = _best_of(lambda: ilut(A, p, backend="vectorized"), cfg["fact_repeat"])
    f_ref = ilut(A, p, backend="reference")
    f_vec = ilut(A, p, backend="vectorized")
    return {
        "workload": f"poisson2d({cfg['fact_nx']}) n={A.shape[0]} "
        f"m={cfg['m']} t={cfg['t']:g}",
        "reference_s": t_ref,
        "vectorized_s": t_vec,
        "speedup": t_ref / t_vec,
        "bit_identical": _factors_identical(f_ref, f_vec)
        and f_ref.stats["flops"] == f_vec.stats["flops"],
    }


def bench_triangular_apply(cfg: dict) -> dict:
    A = poisson2d(cfg["fact_nx"])
    params = ILUTParams(fill=cfg["m"], threshold=cfg["t"], k=cfg["k"])
    r = parallel_ilut_star(A, params, cfg["apply_p"], seed=0, transport="none")
    f = r.factors
    b = np.arange(1, A.shape[0] + 1, dtype=np.float64) / A.shape[0]
    clear_schedule_cache()
    app = LevelScheduledApplier(f)  # schedule build outside the timed region
    reps = cfg["apply_repeat"]

    def ref():
        for _ in range(cfg["apply_inner"]):
            f.solve(b)

    def vec():
        for _ in range(cfg["apply_inner"]):
            app.apply(b)

    t_ref = _best_of(ref, reps)
    t_vec = _best_of(vec, reps)
    x_ref = f.solve(b)
    x_vec = app.apply(b)
    rel = float(np.max(np.abs(x_ref - x_vec)) / np.max(np.abs(x_ref)))
    return {
        "workload": f"ILUT*({cfg['m']},{cfg['t']:g},{cfg['k']}) factors, "
        f"p={cfg['apply_p']}, poisson2d({cfg['fact_nx']}), "
        f"{cfg['apply_inner']} applies",
        "forward_levels": app.forward_levels,
        "backward_levels": app.backward_levels,
        "reference_s": t_ref,
        "vectorized_s": t_vec,
        "speedup": t_ref / t_vec,
        "max_rel_diff": rel,
        "parity_ok": rel <= 1e-12,
    }


def bench_gmres(cfg: dict) -> dict:
    out = {}
    for name, A in [
        ("g0", poisson2d(cfg["gmres_nx"])),
        ("torso", torso_like(cfg["torso_n"], seed=0)),
    ]:
        n = A.shape[0]
        b = A @ np.ones(n)
        f = ilut(A, ILUTParams(fill=cfg["m"], threshold=cfg["t"]))
        runs = {}
        for mode, fast in [("reference", False), ("vectorized", True)]:
            t0 = time.perf_counter()
            res = gmres(A, b, restart=20, M=ILUPreconditioner(f, fast=fast))
            dt = time.perf_counter() - t0
            runs[mode] = {
                "elapsed_s": dt,
                "converged": bool(res.converged),
                "num_matvec": res.num_matvec,
            }
        out[name] = {
            "workload": f"{name} n={n}, GMRES(20), "
            f"ILUT({cfg['m']},{cfg['t']:g}) preconditioner",
            **runs,
            "speedup": runs["reference"]["elapsed_s"] / runs["vectorized"]["elapsed_s"],
        }
    return out


def bench_race_free(cfg: dict) -> dict:
    """Replay every vectorized parallel driver under the race detector."""
    A = poisson2d(cfg["race_nx"])
    p = cfg["race_p"]
    params = ILUTParams(fill=5, threshold=1e-3)
    r = parallel_ilut(A, params, p, seed=0, trace=True, backend="vectorized")
    races = {"parallel_ilut": len(find_races(r.trace))}
    b = np.ones(A.shape[0])
    ts = parallel_triangular_solve(r.factors, b, trace=True, backend="vectorized")
    races["parallel_triangular_solve"] = len(find_races(ts.trace))
    d = decompose(A, p, seed=0)
    mv = parallel_matvec(A, d, b, trace=True, backend="vectorized")
    races["parallel_matvec"] = len(find_races(mv.trace))
    return {
        "workload": f"poisson2d({cfg['race_nx']}), p={p}, vectorized backend",
        "races": races,
        "race_free": all(v == 0 for v in races.values()),
    }


FULL = dict(
    fact_nx=128, m=10, t=1e-3, k=5, fact_repeat=2,
    apply_p=64, apply_inner=10, apply_repeat=3,
    gmres_nx=48, torso_n=1200, race_nx=16, race_p=4,
)
QUICK = dict(
    fact_nx=32, m=10, t=1e-3, k=5, fact_repeat=2,
    apply_p=8, apply_inner=5, apply_repeat=2,
    gmres_nx=16, torso_n=300, race_nx=10, race_p=4,
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="tiny CI-smoke workload")
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 unless vectorized triangular apply beats reference",
    )
    ap.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_kernels.json"),
        help="output JSON path (default: BENCH_kernels.json at repo root)",
    )
    args = ap.parse_args(argv)
    cfg = QUICK if args.quick else FULL

    results: dict = {"scale": "quick" if args.quick else "full"}
    print(f"[bench_kernels] scale={results['scale']}")
    results["ilut_factorization"] = bench_factorization(cfg)
    r = results["ilut_factorization"]
    print(f"  factorization: {r['speedup']:.2f}x  (bit_identical={r['bit_identical']})")
    results["triangular_apply"] = bench_triangular_apply(cfg)
    r = results["triangular_apply"]
    print(f"  triangular apply: {r['speedup']:.2f}x  (max_rel_diff={r['max_rel_diff']:.2e})")
    results["gmres"] = bench_gmres(cfg)
    for name, g in results["gmres"].items():
        print(f"  gmres/{name}: {g['speedup']:.2f}x  "
              f"(nmv {g['reference']['num_matvec']} -> {g['vectorized']['num_matvec']})")
    results["race_free"] = bench_race_free(cfg)
    print(f"  race-free: {results['race_free']['race_free']}")

    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[bench_kernels] wrote {out}")

    if args.check:
        apply = results["triangular_apply"]
        ok = (
            apply["speedup"] > 1.0
            and apply["parity_ok"]
            and results["ilut_factorization"]["bit_identical"]
            and results["race_free"]["race_free"]
        )
        if not ok:
            print("[bench_kernels] CHECK FAILED", file=sys.stderr)
            return 1
        print("[bench_kernels] check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
