"""Structured-grid PDE matrices (the paper's G0 workload).

G0 in the paper is "a PDE discretized with centered differences on a
grid".  We generate the standard 5-point (2-D) and 7-point (3-D)
centered-difference Laplacians, plus an anisotropic variant and a
convection-diffusion variant whose nonsymmetry exercises the
nonsymmetric-structure path of the MIS computation.
"""

from __future__ import annotations

import numpy as np

from ..sparse import COOBuilder, CSRMatrix

__all__ = [
    "poisson2d",
    "poisson3d",
    "anisotropic2d",
    "convection_diffusion2d",
]


def poisson2d(nx: int, ny: int | None = None) -> CSRMatrix:
    """5-point centered-difference Laplacian on an ``nx × ny`` grid.

    Row ordering is natural (row-major over grid points); the matrix is
    symmetric positive definite with 4 on the diagonal and -1 on the
    four neighbour couplings.
    """
    ny = nx if ny is None else ny
    if nx < 1 or ny < 1:
        raise ValueError(f"grid dimensions must be positive, got {nx}x{ny}")
    return anisotropic2d(nx, ny, ax=1.0, ay=1.0)


def anisotropic2d(nx: int, ny: int | None = None, *, ax: float = 1.0, ay: float = 100.0) -> CSRMatrix:
    """Anisotropic diffusion ``-ax u_xx - ay u_yy`` on an ``nx × ny`` grid."""
    ny = nx if ny is None else ny
    if nx < 1 or ny < 1:
        raise ValueError(f"grid dimensions must be positive, got {nx}x{ny}")
    n = nx * ny
    builder = COOBuilder(n)
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = idx // nx
    builder.add_batch(idx, idx, np.full(n, 2.0 * ax + 2.0 * ay))
    # west / east neighbours
    has_w = ix > 0
    builder.add_batch(idx[has_w], idx[has_w] - 1, np.full(int(has_w.sum()), -ax))
    has_e = ix < nx - 1
    builder.add_batch(idx[has_e], idx[has_e] + 1, np.full(int(has_e.sum()), -ax))
    # south / north neighbours
    has_s = iy > 0
    builder.add_batch(idx[has_s], idx[has_s] - nx, np.full(int(has_s.sum()), -ay))
    has_n = iy < ny - 1
    builder.add_batch(idx[has_n], idx[has_n] + nx, np.full(int(has_n.sum()), -ay))
    return builder.to_csr()


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None) -> CSRMatrix:
    """7-point centered-difference Laplacian on an ``nx × ny × nz`` grid."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if nx < 1 or ny < 1 or nz < 1:
        raise ValueError(f"grid dimensions must be positive, got {nx}x{ny}x{nz}")
    n = nx * ny * nz
    builder = COOBuilder(n)
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = (idx // nx) % ny
    iz = idx // (nx * ny)
    builder.add_batch(idx, idx, np.full(n, 6.0))
    for mask, offset in (
        (ix > 0, -1),
        (ix < nx - 1, +1),
        (iy > 0, -nx),
        (iy < ny - 1, +nx),
        (iz > 0, -nx * ny),
        (iz < nz - 1, +nx * ny),
    ):
        builder.add_batch(idx[mask], idx[mask] + offset, np.full(int(mask.sum()), -1.0))
    return builder.to_csr()


def convection_diffusion2d(
    nx: int,
    ny: int | None = None,
    *,
    bx: float = 20.0,
    by: float = 20.0,
) -> CSRMatrix:
    """Convection-diffusion ``-Δu + b·∇u`` with centered differences.

    The first-order terms make the matrix nonsymmetric (in values, not
    structure), which is the regime where ILUT shines over ILU(0) and
    GMRES is needed instead of CG.
    """
    ny = nx if ny is None else ny
    if nx < 1 or ny < 1:
        raise ValueError(f"grid dimensions must be positive, got {nx}x{ny}")
    n = nx * ny
    h = 1.0 / (max(nx, ny) + 1)
    cx = bx * h / 2.0
    cy = by * h / 2.0
    builder = COOBuilder(n)
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = idx // nx
    builder.add_batch(idx, idx, np.full(n, 4.0))
    has_w = ix > 0
    builder.add_batch(idx[has_w], idx[has_w] - 1, np.full(int(has_w.sum()), -1.0 - cx))
    has_e = ix < nx - 1
    builder.add_batch(idx[has_e], idx[has_e] + 1, np.full(int(has_e.sum()), -1.0 + cx))
    has_s = iy > 0
    builder.add_batch(idx[has_s], idx[has_s] - nx, np.full(int(has_s.sum()), -1.0 - cy))
    has_n = iy < ny - 1
    builder.add_batch(idx[has_n], idx[has_n] + nx, np.full(int(has_n.sum()), -1.0 + cy))
    return builder.to_csr()
