"""Happens-before race detection over a recorded access trace.

The checker half of the SPMD race detector (recording half:
:mod:`repro.verify.trace`).  Two accesses *conflict* when they touch the
same ``(space, index)`` object from different ranks and at least one is
a write; a conflict is a **race** when neither access happens-before the
other under the vector-clock order built from the simulator's barriers,
collectives and send→recv edges.

Ownership/ordering violations in parallel ILU are silent — they only
surface as degraded preconditioner quality — so the shipped parallel
drivers are instrumented with access declarations and the test suite
asserts both directions: the detector flags a deliberately racy toy
driver, and it reports nothing on the real parallel ILUT/ILUT*, MIS,
triangular-solve and matvec drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .trace import WRITE, Access, AccessTracer, happens_before

if TYPE_CHECKING:
    from ..machine.simulator import Simulator

__all__ = ["Race", "find_races", "racy_toy_driver"]


@dataclass(frozen=True)
class Race:
    """One unordered pair of conflicting accesses."""

    space: str
    index: int
    first: Access
    second: Access

    def describe(self) -> str:
        return (
            f"race on ({self.space!r}, {self.index}): "
            f"{self.first.describe()} is concurrent with {self.second.describe()}"
        )


def find_races(tracer: AccessTracer | None, *, limit: int = 1000) -> list[Race]:
    """Scan a trace for conflicting concurrent accesses.

    ``tracer`` is an :class:`~repro.verify.trace.AccessTracer` (or
    anything exposing its ``cells()`` iterator).  At most one race is
    reported per (object, rank pair) so a single missing barrier does
    not flood the report; ``limit`` caps the total.  Returns an empty
    list for a race-free trace — and for ``tracer=None``, so callers can
    pass ``result.trace`` straight through.
    """
    if tracer is None:
        return []
    races: list[Race] = []
    for (space, index), accs in tracer.cells():
        if len({a.rank for a in accs}) < 2:
            continue
        if not any(a.kind == WRITE for a in accs):
            continue
        reported: set[tuple[int, int]] = set()
        for i, a in enumerate(accs):
            for b in accs[i + 1 :]:
                if a.rank == b.rank:
                    continue
                if a.kind != WRITE and b.kind != WRITE:
                    continue
                pair = (min(a.rank, b.rank), max(a.rank, b.rank))
                if pair in reported:
                    continue
                if happens_before(a, b) or happens_before(b, a):
                    continue
                races.append(Race(space=space, index=index, first=a, second=b))
                reported.add(pair)
                if len(races) >= limit:
                    return races
    return races


def racy_toy_driver(sim: Simulator, *, fixed: bool = False) -> None:
    """The adversarial self-test: two ranks write one interface row.

    Rank 0 and rank 1 both update the shared object
    ``("interface-row", 7)`` with **no intervening synchronisation** —
    exactly the ownership violation the paper's phase-2 discipline (each
    level's rows are owned by one rank, levels separated by barriers)
    exists to prevent.  With ``fixed=True`` a barrier is inserted between
    the writes and the trace is race-free.

    Requires a simulator created with ``trace=True`` and at least two
    ranks.
    """
    tr = sim.tracer
    if tr is None:
        raise ValueError("racy_toy_driver requires a Simulator(..., trace=True)")
    if sim.nranks < 2:
        raise ValueError("racy_toy_driver needs at least 2 ranks")
    sim.compute(0, 5.0)
    tr.write(0, "interface-row", 7)
    if fixed:
        sim.barrier()
    sim.compute(1, 5.0)
    tr.write(1, "interface-row", 7)
    sim.barrier()
