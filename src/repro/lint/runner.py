"""File collection, parsing, and rule execution."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .astutil import attach_parents
from .findings import Finding, sort_findings
from .registry import Rule, all_rules

__all__ = ["LintConfig", "ModuleContext", "ProjectContext", "run_lint", "find_project_root"]


@dataclass
class LintConfig:
    """Knobs for a lint run (all optional)."""

    #: Restrict to these rule ids (empty = all registered).
    select: tuple[str, ...] = ()
    #: Drop these rule ids after selection.
    ignore: tuple[str, ...] = ()
    #: Project root; auto-discovered from the lint paths when None.
    project_root: Path | None = None
    #: Directory holding the kernels parity tests, relative to the root.
    kernels_test_dir: str = "tests/kernels"


@dataclass
class ModuleContext:
    """One parsed source file handed to ``check_module``."""

    path: Path
    relpath: str
    tree: ast.Module
    lines: list[str]


@dataclass
class ProjectContext:
    """Everything a cross-file rule needs."""

    root: Path
    modules: list[ModuleContext]
    config: LintConfig = field(default_factory=LintConfig)


def find_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the nearest ``pyproject.toml``/``.git``."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return cur


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand directories to ``**/*.py``, de-duplicated, sorted."""
    seen: dict[Path, None] = {}
    for p in paths:
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f.resolve(), None)
        elif p.suffix == ".py":
            seen.setdefault(p.resolve(), None)
    return sorted(seen)


def parse_module(path: Path, root: Path) -> ModuleContext | None:
    """Parse one file; unreadable/unparsable files are skipped (None)."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    attach_parents(tree)
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return ModuleContext(path=path, relpath=rel, tree=tree, lines=source.splitlines())


def _active_rules(config: LintConfig) -> list[Rule]:
    rules = all_rules()
    if config.select:
        rules = [r for r in rules if r.id in config.select]
    if config.ignore:
        rules = [r for r in rules if r.id not in config.ignore]
    return rules


def run_lint(paths: list[Path | str], config: LintConfig | None = None) -> list[Finding]:
    """Lint ``paths`` (files or directories) and return sorted findings."""
    config = config or LintConfig()
    path_objs = [Path(p) for p in paths]
    root = config.project_root or (
        find_project_root(path_objs[0]) if path_objs else Path.cwd()
    )
    modules = [
        m for f in collect_files(path_objs) if (m := parse_module(f, root)) is not None
    ]
    project = ProjectContext(root=root, modules=modules, config=config)
    findings: list[Finding] = []
    for rule in _active_rules(config):
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(project))
    return sort_findings(findings)
