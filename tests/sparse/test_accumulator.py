"""Unit tests for the sparse row accumulator (the ILUT working row)."""

import numpy as np
import pytest

from repro.sparse import SparseRowAccumulator


class TestBasics:
    def test_empty(self):
        w = SparseRowAccumulator(5)
        cols, vals = w.extract()
        assert cols.size == 0 and vals.size == 0
        assert len(w) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SparseRowAccumulator(-1)

    def test_load_extract_roundtrip(self):
        w = SparseRowAccumulator(6)
        w.load(np.array([4, 1]), np.array([2.0, 3.0]))
        cols, vals = w.extract()
        assert cols.tolist() == [1, 4]
        assert vals.tolist() == [3.0, 2.0]

    def test_load_on_dirty_accumulator_raises(self):
        w = SparseRowAccumulator(4)
        w.load(np.array([0]), np.array([1.0]))
        with pytest.raises(RuntimeError):
            w.load(np.array([1]), np.array([2.0]))

    def test_reset_allows_reload(self):
        w = SparseRowAccumulator(4)
        w.load(np.array([0, 2]), np.array([1.0, 2.0]))
        w.reset()
        assert len(w) == 0
        w.load(np.array([3]), np.array([5.0]))
        cols, _ = w.extract()
        assert cols.tolist() == [3]

    def test_reset_is_sparse(self):
        # after reset, untouched positions must still read as zero
        w = SparseRowAccumulator(100)
        w.load(np.array([7]), np.array([1.0]))
        w.reset()
        assert np.count_nonzero(w.values) == 0


class TestAxpy:
    def test_axpy_adds_into_existing(self):
        w = SparseRowAccumulator(4)
        w.load(np.array([1]), np.array([1.0]))
        w.axpy(2.0, np.array([1]), np.array([3.0]))
        assert w.get(1) == 7.0

    def test_axpy_creates_fill(self):
        w = SparseRowAccumulator(4)
        w.load(np.array([0]), np.array([1.0]))
        w.axpy(-1.0, np.array([2, 3]), np.array([4.0, 5.0]))
        cols, vals = w.extract()
        assert cols.tolist() == [0, 2, 3]
        assert vals.tolist() == [1.0, -4.0, -5.0]

    def test_axpy_cancellation_drops_from_extract(self):
        w = SparseRowAccumulator(4)
        w.load(np.array([1]), np.array([2.0]))
        w.axpy(1.0, np.array([1]), np.array([-2.0]))
        cols, _ = w.extract()
        assert cols.size == 0

    def test_contains(self):
        w = SparseRowAccumulator(4)
        w.load(np.array([2]), np.array([1.0]))
        assert 2 in w
        assert 1 not in w
        w.drop(2)
        assert 2 not in w


class TestSetDropGet:
    def test_set_new_position(self):
        w = SparseRowAccumulator(4)
        w.set(3, 9.0)
        assert w.get(3) == 9.0
        cols, _ = w.extract()
        assert cols.tolist() == [3]

    def test_drop_keeps_slot_but_extract_skips(self):
        w = SparseRowAccumulator(4)
        w.load(np.array([1, 2]), np.array([1.0, 2.0]))
        w.drop(1)
        cols, vals = w.extract()
        assert cols.tolist() == [2]

    def test_get_untouched_is_zero(self):
        w = SparseRowAccumulator(4)
        assert w.get(0) == 0.0


class TestExtractRange:
    def test_extract_range_splits_l_u(self):
        w = SparseRowAccumulator(10)
        w.load(np.array([1, 3, 5, 7]), np.array([1.0, 2.0, 3.0, 4.0]))
        lc, lv = w.extract_range(0, 4)
        uc, uv = w.extract_range(4, 10)
        assert lc.tolist() == [1, 3] and lv.tolist() == [1.0, 2.0]
        assert uc.tolist() == [5, 7] and uv.tolist() == [3.0, 4.0]

    def test_extract_sorted(self):
        w = SparseRowAccumulator(10)
        w.load(np.array([9, 0, 4]), np.array([1.0, 2.0, 3.0]))
        cols, _ = w.extract(sort=True)
        assert cols.tolist() == [0, 4, 9]
