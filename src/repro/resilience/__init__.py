"""Numerical-breakdown resilience: typed breakdown errors, pivot
remediation policies, NaN/Inf apply guards, preconditioner fallback
chains with failure reports, and parameter-relaxation retry."""

from .breakdown import (
    FallbackExhausted,
    NonFiniteError,
    NumericalBreakdown,
    PivotPolicy,
    ZeroDiagonalError,
    ZeroPivotError,
    assert_finite,
)
from .fallback import FailureRecord, FailureReport, RobustPreconditioner
from .retry import RetryPolicy

__all__ = [
    "NumericalBreakdown",
    "ZeroPivotError",
    "ZeroDiagonalError",
    "NonFiniteError",
    "FallbackExhausted",
    "PivotPolicy",
    "assert_finite",
    "FailureRecord",
    "FailureReport",
    "RobustPreconditioner",
    "RetryPolicy",
]
