"""Unit tests for the sequential ILUT(m, t) kernel."""

import numpy as np
import pytest

from repro.ilu import ilut
from repro.matrices import (
    convection_diffusion2d,
    poisson2d,
    random_diag_dominant,
)
from repro.sparse import CSRMatrix


class TestExactLimit:
    def test_no_dropping_reproduces_lu(self, small_diagdom):
        """ILUT(n, 0) on a diagonally dominant matrix is the exact LU."""
        n = small_diagdom.shape[0]
        f = ilut(small_diagdom, m=n, t=0.0)
        R = f.residual_matrix(small_diagdom)
        assert R.frobenius_norm() < 1e-10 * small_diagdom.frobenius_norm()

    def test_no_dropping_matches_scipy_splu_solve(self, small_diagdom, rng):
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        A = small_diagdom
        n = A.shape[0]
        f = ilut(A, m=n, t=0.0)
        b = rng.standard_normal(n)
        x_ref = spla.spsolve(
            sp.csr_matrix((A.data, A.indices, A.indptr), shape=A.shape).tocsc(), b
        )
        x = f.solve(b)
        assert np.allclose(x, x_ref, rtol=1e-8, atol=1e-10)

    def test_already_triangular_matrix(self):
        U = CSRMatrix.from_dense(np.triu(np.full((5, 5), 1.0)) + np.eye(5))
        f = ilut(U, m=5, t=0.0)
        assert f.L.nnz == 0
        assert f.residual_matrix(U).frobenius_norm() < 1e-12

    def test_diagonal_matrix(self):
        D = CSRMatrix.from_dense(np.diag([2.0, 3.0, 4.0]))
        f = ilut(D, m=3, t=0.0)
        assert f.L.nnz == 0 and f.U.nnz == 3
        assert np.allclose(f.U.diagonal(), [2.0, 3.0, 4.0])


class TestDroppingBehaviour:
    def test_row_nnz_bounds(self, medium_poisson):
        m = 3
        f = ilut(medium_poisson, m=m, t=1e-4)
        assert f.L.row_nnz().max() <= m
        assert f.U.row_nnz().max() <= m + 1  # + diagonal

    def test_larger_m_more_fill(self, medium_poisson):
        f2 = ilut(medium_poisson, m=2, t=1e-6)
        f8 = ilut(medium_poisson, m=8, t=1e-6)
        assert f8.nnz > f2.nnz

    def test_smaller_t_more_fill(self, medium_poisson):
        fa = ilut(medium_poisson, m=10, t=1e-1)
        fb = ilut(medium_poisson, m=10, t=1e-6)
        assert fb.nnz > fa.nnz

    def test_t_zero_m_large_no_drops(self, small_poisson):
        n = small_poisson.shape[0]
        f = ilut(small_poisson, m=n, t=0.0)
        assert f.residual_matrix(small_poisson).frobenius_norm() < 1e-10

    def test_m_zero_keeps_diagonal_only(self, small_poisson):
        f = ilut(small_poisson, m=0, t=0.0)
        assert f.L.nnz == 0
        assert f.U.nnz == small_poisson.shape[0]

    def test_relative_threshold_scales_with_row(self):
        # scaling a row scales its tolerance: structure of factors unchanged
        A = poisson2d(6)
        D = A.to_dense()
        D[3] *= 1e6
        B = CSRMatrix.from_dense(D)
        fa = ilut(A, m=5, t=1e-3)
        fb = ilut(B, m=5, t=1e-3)
        # row 3 of U has same sparsity pattern in both
        ca, _ = fa.U.row(3)
        cb, _ = fb.U.row(3)
        assert ca.tolist() == cb.tolist()


class TestPreconditionerQuality:
    def test_better_than_nothing(self, medium_poisson, rng):
        A = medium_poisson
        b = rng.standard_normal(A.shape[0])
        f = ilut(A, m=5, t=1e-3)
        y = f.solve(b)
        assert np.linalg.norm(b - A @ y) < 0.9 * np.linalg.norm(b)

    def test_quality_improves_with_fill(self, medium_poisson, rng):
        A = medium_poisson
        b = rng.standard_normal(A.shape[0])
        r_loose = np.linalg.norm(b - A @ ilut(A, 2, 1e-1).solve(b))
        r_tight = np.linalg.norm(b - A @ ilut(A, 10, 1e-6).solve(b))
        assert r_tight < r_loose

    def test_nonsymmetric_matrix(self, small_nonsym, rng):
        A = small_nonsym
        f = ilut(A, m=5, t=1e-4)
        b = rng.standard_normal(A.shape[0])
        y = f.solve(b)
        assert np.linalg.norm(b - A @ y) < 0.5 * np.linalg.norm(b)


class TestValidationAndGuards:
    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            ilut(CSRMatrix.zeros(2, 3), 1, 0.1)

    def test_rejects_negative_m(self, small_poisson):
        with pytest.raises(ValueError):
            ilut(small_poisson, -1, 0.1)

    def test_rejects_negative_t(self, small_poisson):
        with pytest.raises(ValueError):
            ilut(small_poisson, 1, -0.1)

    def test_zero_pivot_guard(self):
        # structurally singular row: zero diagonal never filled
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        f = ilut(A, m=2, t=0.0, diag_guard=True)
        assert np.all(f.U.diagonal() != 0.0)

    def test_zero_pivot_raises_without_guard(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ZeroDivisionError):
            ilut(A, m=2, t=0.0, diag_guard=False)

    def test_1x1(self):
        A = CSRMatrix.from_dense(np.array([[3.0]]))
        f = ilut(A, 1, 0.0)
        assert f.U.get(0, 0) == 3.0

    def test_stats_populated(self, small_poisson):
        f = ilut(small_poisson, 5, 1e-3)
        assert f.stats["flops"] > 0
        assert f.stats["fill_nnz"] == f.nnz
