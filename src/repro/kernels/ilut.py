"""Vectorized sequential ILUT(m, t) — the ``backend="vectorized"`` kernel.

Performs *exactly* the same elimination as the reference
:func:`repro.ilu.ilut.ilut` — same pivot order, same IEEE operations,
same dropping decisions — so the produced factors are bit-identical
(the parity suite asserts ``array_equal``).  What changes is the
bookkeeping around the arithmetic:

* the working row is a bare full-length array; instead of maintaining a
  pattern alongside every update, the tails of the applied pivot rows
  are collected and deduplicated once per row with ``np.unique``;
* each finished U row caches its tail as an ndarray *and* a Python
  list plus its pivot as a Python float, so the thousands of later rows
  that eliminate with it pay no slicing, ``tolist`` or numpy-scalar
  conversions;
* the 2nd dropping rule splits the (sorted) row with ``searchsorted``
  and selects via :func:`~repro.kernels.dropping.keep_largest_sorted`
  instead of the reference's mask + dict re-gather;
* L and U are assembled directly into concatenated CSR arrays, skipping
  the per-row ``COOBuilder`` bounds checks and the final ``from_coo``
  lexsort (rows are emitted in order with sorted columns).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left

import numpy as np

from ..resilience import PivotPolicy
from ..sparse.csr import CSRMatrix
from .dropping import keep_largest_sorted

__all__ = ["ilut_vectorized"]

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


def _assemble_rows(
    n: int, counts: np.ndarray, chunks: list[np.ndarray], vals: list[np.ndarray]
) -> CSRMatrix:
    """Stack per-row (sorted-column) chunks into a CSR matrix."""
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate(chunks) if chunks else _EMPTY_I.copy()
    data = np.concatenate(vals) if vals else _EMPTY_F.copy()
    return CSRMatrix(
        indptr, np.ascontiguousarray(indices, dtype=np.int64), data, (n, n), check=False
    )


def ilut_vectorized(
    A: CSRMatrix,
    m: int,
    t: float,
    *,
    diag_guard: bool = True,
    pivot_policy: PivotPolicy | None = None,
) -> tuple[CSRMatrix, CSRMatrix, list[tuple[np.ndarray, np.ndarray]], int]:
    """Core of the vectorized ILUT(m, t) elimination.

    Returns ``(L, U, u_rows, flops)`` with ``u_rows`` holding each U row
    diagonal-first; parameter validation and the
    :class:`~repro.ilu.factors.ILUFactors` packaging stay in the
    dispatching :func:`repro.ilu.ilut.ilut`.  ``pivot_policy`` overrides
    the legacy ``diag_guard`` boolean when given; the pivot remediation
    must match the reference kernel's bit-for-bit (same
    :meth:`~repro.resilience.PivotPolicy.resolve` arguments).
    """
    policy = pivot_policy if pivot_policy is not None else PivotPolicy.from_diag_guard(diag_guard)
    n = A.shape[0]
    # thresholds must match the reference bit-for-bit under any default
    norms = A.row_norms(ord=2, backend="reference")
    values = np.zeros(n, dtype=np.float64)
    heappush = heapq.heappush
    heappop = heapq.heappop

    # per finished U row: tail (cols after the diagonal) as ndarray,
    # as a Python list (for heap candidate pushes), and the pivot
    u_tail_cols: list[np.ndarray] = []
    u_tail_vals: list[np.ndarray] = []
    u_tail_py: list[list[int]] = []
    u_piv: list[float] = []

    l_counts = np.zeros(n, dtype=np.int64)
    u_counts = np.zeros(n, dtype=np.int64)
    l_chunks: list[np.ndarray] = []
    l_vals: list[np.ndarray] = []
    u_chunks: list[np.ndarray] = []
    u_vals: list[np.ndarray] = []
    flops = 0

    indptr = A.indptr
    a_indices = A.indices
    a_data = A.data

    for i in range(n):
        s, e = indptr[i], indptr[i + 1]
        cols = a_indices[s:e]
        values[cols] = a_data[s:e]
        touched = [cols]
        tau = float(t * norms[i])

        # columns are sorted, so the < i prefix is already a valid min-heap
        heap = cols[: cols.searchsorted(i)].tolist()
        done = -1
        while heap:
            k = heappop(heap)
            if k <= done:
                continue
            done = k
            wk = values.item(k)
            if wk == 0.0:
                continue
            wk = wk / u_piv[k]  # diagonal of U row k
            flops += 1
            if abs(wk) < tau:  # 1st dropping rule
                values[k] = 0.0
                continue
            values[k] = wk
            tail = u_tail_cols[k]
            if tail.size:
                values[tail] += (-wk) * u_tail_vals[k]
                flops += 2 * tail.size
                touched.append(tail)
                tl = u_tail_py[k]
                for c in tl[: bisect_left(tl, i)]:
                    heappush(heap, c)

        # ---- gather the row (sorted, deduplicated) + 2nd dropping rule
        if len(touched) > 1:
            tp = np.concatenate(touched)
            tp.sort()
            dedup = np.empty(tp.size, dtype=bool)
            dedup[0] = True
            np.not_equal(tp[1:], tp[:-1], out=dedup[1:])
            tp = tp[dedup]
        else:
            tp = cols
        tv = values[tp]
        nz = tv != 0.0
        rcols = tp[nz]
        rvals = tv[nz]
        d0 = int(rcols.searchsorted(i))
        has_diag = d0 < rcols.size and rcols[d0] == i
        if has_diag:
            diag = float(rvals[d0])
            uc, uv = rcols[d0 + 1 :], rvals[d0 + 1 :]
        else:
            diag = 0.0
            uc, uv = rcols[d0:], rvals[d0:]
        lc, lv = rcols[:d0], rvals[:d0]
        lm = np.abs(lv) >= tau
        lc, lv = lc[lm], lv[lm]
        lcols, lvals = keep_largest_sorted(lc, lv, m) if lc.size > m else (lc, lv)
        um = np.abs(uv) >= tau
        uc, uv = uc[um], uv[um]
        ucols, uvals = keep_largest_sorted(uc, uv, m) if uc.size > m else (uc, uv)
        diag = policy.resolve(i, diag, tau, float(norms[i]))

        if lcols.size:
            l_counts[i] = lcols.size
            l_chunks.append(lcols)
            l_vals.append(lvals)
        u_row_cols = np.empty(ucols.size + 1, dtype=np.int64)
        u_row_cols[0] = i
        u_row_cols[1:] = ucols
        u_row_vals = np.empty(uvals.size + 1, dtype=np.float64)
        u_row_vals[0] = diag
        u_row_vals[1:] = uvals
        u_counts[i] = u_row_cols.size
        u_chunks.append(u_row_cols)
        u_vals.append(u_row_vals)
        u_tail_cols.append(u_row_cols[1:])
        u_tail_vals.append(u_row_vals[1:])
        u_tail_py.append(u_row_cols[1:].tolist())
        u_piv.append(diag)

        values[tp] = 0.0  # sparse reset

    L = _assemble_rows(n, l_counts, l_chunks, l_vals)
    U = _assemble_rows(n, u_counts, u_chunks, u_vals)
    u_rows = list(zip(u_chunks, u_vals))
    return L, U, u_rows, flops
