"""Parity of VectorizedRowAccumulator with repro.sparse.SparseRowAccumulator.

Drives both accumulators through the same randomized load / axpy / set /
drop / extract / reset script and requires bit-identical observable
state after every operation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import VectorizedRowAccumulator
from repro.sparse import SparseRowAccumulator


def _same_state(ref, vec):
    rc, rv = ref.extract(sort=True)
    vc, vv = vec.extract(sort=True)
    assert np.array_equal(rc, vc)
    assert np.array_equal(rv, vv)
    assert len(ref) == len(vec)


@st.composite
def scripts(draw, n=12, max_ops=12):
    """A list of accumulator operations over columns in [0, n)."""
    ops = []
    nops = draw(st.integers(1, max_ops))
    for _ in range(nops):
        kind = draw(st.sampled_from(["axpy", "set", "drop", "reset"]))
        if kind == "axpy":
            cols = draw(
                st.lists(st.integers(0, n - 1), unique=True, min_size=1, max_size=n)
            )
            vals = draw(
                st.lists(
                    st.floats(-8, 8, allow_nan=False, allow_infinity=False),
                    min_size=len(cols),
                    max_size=len(cols),
                )
            )
            alpha = draw(st.floats(-4, 4, allow_nan=False, allow_infinity=False))
            ops.append(("axpy", alpha, cols, vals))
        elif kind == "set":
            ops.append(("set", draw(st.integers(0, n - 1)),
                        draw(st.floats(-8, 8, allow_nan=False, allow_infinity=False))))
        elif kind == "drop":
            ops.append(("drop", draw(st.integers(0, n - 1))))
        else:
            ops.append(("reset",))
    return n, ops


class TestAccumulatorParity:
    @settings(max_examples=150, deadline=None)
    @given(scripts())
    def test_script_parity(self, script):
        n, ops = script
        ref = SparseRowAccumulator(n)
        vec = VectorizedRowAccumulator(n)
        for op in ops:
            if op[0] == "axpy":
                _, alpha, cols, vals = op
                c = np.array(cols, dtype=np.int64)
                v = np.array(vals, dtype=np.float64)
                ref.axpy(alpha, c, v)
                vec.axpy(alpha, c, v)
            elif op[0] == "set":
                ref.set(op[1], op[2])
                vec.set(op[1], op[2])
            elif op[0] == "drop":
                # drop() only touches positions already in the pattern
                if op[1] in ref:
                    ref.drop(op[1])
                    vec.drop(op[1])
            else:
                ref.reset()
                vec.reset()
            _same_state(ref, vec)

    def test_load_then_extract_range(self):
        cols = np.array([7, 2, 4], dtype=np.int64)
        vals = np.array([1.0, -2.0, 0.5])
        ref = SparseRowAccumulator(10)
        vec = VectorizedRowAccumulator(10)
        ref.load(cols, vals)
        vec.load(cols, vals)
        for lo, hi in ((0, 10), (2, 5), (5, 5), (8, 10)):
            rc, rv = ref.extract_range(lo, hi)
            vc, vv = vec.extract_range(lo, hi)
            assert np.array_equal(rc, vc)
            assert np.array_equal(rv, vv)

    def test_load_on_nonempty_raises(self):
        vec = VectorizedRowAccumulator(4)
        vec.set(1, 2.0)
        with pytest.raises(RuntimeError):
            vec.load(np.array([0], dtype=np.int64), np.array([1.0]))

    def test_contains_and_get(self):
        ref = SparseRowAccumulator(6)
        vec = VectorizedRowAccumulator(6)
        for acc in (ref, vec):
            acc.set(3, 1.5)
            acc.set(5, 0.0)
        for col in range(6):
            assert (col in ref) == (col in vec)
            assert ref.get(col) == vec.get(col)
