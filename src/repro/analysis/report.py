"""Paper-style plain-text table and series rendering.

The benchmark harness prints the same rows the paper's tables report and
the same series its figures plot; these helpers keep that formatting in
one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "factorization_label"]


def factorization_label(
    algo: str, m: int, t: float, k: int | None = None
) -> str:
    """Render "ILUT(5,1e-02)" / "ILUT*(5,1e-02,2)" labels like the paper."""
    if k is None:
        return f"{algo}({m},{t:.0e})"
    return f"{algo}({m},{t:.0e},{k})"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    floatfmt: str = "{:.4f}",
) -> str:
    """Fixed-width text table; floats use ``floatfmt``, the rest ``str``."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(
                cell.rjust(w) if _is_numeric(cell) else cell.ljust(w)
                for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], *, yfmt: str = "{:.3f}"
) -> str:
    """One figure series as "name: x→y x→y ..." (figures print as series)."""
    pts = " ".join(f"{x}→{yfmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pts}"


def _is_numeric(s: str) -> bool:
    try:
        float(s.replace("→", "").replace("x", ""))
        return True
    except ValueError:
        return False
