"""SPMD001 bad twin: one-sided tags (undrained send, deadlocked recv)."""


def drive(sim, nranks):
    for r in range(1, nranks):
        sim.send(r, 0, None, 1.0, tag="gather")
    for r in range(1, nranks):
        sim.recv(0, r, tag="scatter")
