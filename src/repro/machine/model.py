"""Analytic machine cost model.

The paper evaluates on a Cray T3D: 150 MHz DEC Alpha EV4 PEs on a 3-D
torus with high bandwidth and low latency.  We cannot run on that
machine (or any multiprocessor — this environment has one core and no
MPI), so the reproduction *executes* the parallel algorithms on a
simulator and charges their operations to per-rank virtual clocks using
the standard ``latency + size / bandwidth`` message model and a
sustained sparse-kernel flop rate.

The point of the model is the *shape* of the results: every quantity the
paper reports (speedups, ILUT vs ILUT* ratios, trisolve vs matvec
ratios) is a ratio of modelled times in which the constants largely
cancel; what drives them is operation counts, message volume and
synchronisation level counts — all of which come from the real
factorization being executed.

Presets
-------
``CRAY_T3D``
    ~10 sustained MFlop/s per PE for sparse kernels (the paper reports
    6-7 MFlop/s for matvec on TORSO), 2 us latency, 120 MB/s sustained
    link bandwidth.
``WORKSTATION_CLUSTER``
    Same PEs but ethernet-class communication (500 us latency, 8 MB/s):
    the regime where the paper says ILUT* is "critical".
``IDEAL``
    Free communication — isolates load imbalance from comm overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "CRAY_T3D", "WORKSTATION_CLUSTER", "IDEAL"]


@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of a distributed-memory machine.

    Attributes
    ----------
    name:
        Human-readable preset name.
    flop_time:
        Seconds per floating-point operation (sustained, sparse kernels).
    latency:
        Per-message startup cost in seconds.
    byte_time:
        Seconds per byte of message payload (1 / sustained bandwidth).
    word_bytes:
        Bytes per matrix value transferred (8 for float64; index data is
        charged at the same width, matching typical CSR row exchange).
    """

    name: str
    flop_time: float
    latency: float
    byte_time: float
    word_bytes: int = 8

    def __post_init__(self) -> None:
        if self.flop_time < 0 or self.latency < 0 or self.byte_time < 0:
            raise ValueError("cost parameters must be non-negative")
        if self.word_bytes <= 0:
            raise ValueError("word_bytes must be positive")

    def compute_cost(self, flops: float) -> float:
        """Time to execute ``flops`` floating-point operations."""
        return float(flops) * self.flop_time

    def message_cost(self, nwords: float) -> float:
        """Time to transfer one message of ``nwords`` matrix words."""
        return self.latency + float(nwords) * self.word_bytes * self.byte_time

    def collective_cost(self, nranks: int, nwords: float) -> float:
        """Tree-based collective (allreduce/bcast) over ``nranks`` ranks."""
        if nranks <= 1:
            return 0.0
        import math

        steps = math.ceil(math.log2(nranks))
        return steps * self.message_cost(nwords)


CRAY_T3D = MachineModel(
    name="cray-t3d",
    flop_time=1.0 / 10e6,     # 10 MFlop/s sustained on sparse kernels
    latency=2e-6,             # ~2 us one-way
    byte_time=1.0 / 120e6,    # ~120 MB/s sustained per link
)

WORKSTATION_CLUSTER = MachineModel(
    name="workstation-cluster",
    flop_time=1.0 / 10e6,
    latency=500e-6,           # ethernet-class startup
    byte_time=1.0 / 8e6,      # ~8 MB/s
)

IDEAL = MachineModel(
    name="ideal",
    flop_time=1.0 / 10e6,
    latency=0.0,
    byte_time=0.0,
)
