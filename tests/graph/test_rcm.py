"""Unit tests for the RCM ordering."""

import numpy as np
import pytest

from repro.graph import bandwidth, rcm_ordering, rcm_ordering_matrix
from repro.matrices import poisson2d, random_geometric_laplacian
from repro.sparse import CSRMatrix


class TestRCM:
    def test_permutation_valid(self):
        perm = rcm_ordering_matrix(poisson2d(8))
        assert sorted(perm.tolist()) == list(range(64))

    def test_restores_grid_bandwidth_after_shuffle(self, rng):
        """A randomly-shuffled grid has huge bandwidth; RCM recovers
        something close to the natural nx."""
        nx = 10
        A = poisson2d(nx)
        shuffle = rng.permutation(nx * nx)
        B = A.permute(shuffle, shuffle)
        assert bandwidth(B) > 3 * nx
        perm = rcm_ordering_matrix(B)
        assert bandwidth(B.permute(perm, perm)) <= 2 * nx

    def test_reduces_bandwidth_on_irregular(self, rng):
        A = random_geometric_laplacian(150, seed=2)
        shuffle = rng.permutation(150)
        B = A.permute(shuffle, shuffle)
        perm = rcm_ordering_matrix(B)
        assert bandwidth(B.permute(perm, perm)) <= bandwidth(B)

    def test_disconnected_graph_covered(self):
        # two disconnected paths
        rows = [0, 1, 1, 2, 3, 4]
        cols = [1, 0, 2, 1, 4, 3]
        A = CSRMatrix.from_coo(rows, cols, np.ones(6), (5, 5))
        from repro.graph import adjacency_from_matrix

        perm = rcm_ordering(adjacency_from_matrix(A))
        assert sorted(perm.tolist()) == list(range(5))

    def test_bandwidth_helper(self):
        A = CSRMatrix.from_dense(
            np.array([[1.0, 0.0, 2.0], [0.0, 1.0, 0.0], [3.0, 0.0, 1.0]])
        )
        assert bandwidth(A) == 2
        assert bandwidth(CSRMatrix.identity(4)) == 0

    def test_rcm_helps_ilut_fill_on_shuffled_matrix(self, rng):
        """Lower bandwidth concentrates ILUT fill — the practical payoff."""
        from repro.ilu import ilut

        nx = 12
        A = poisson2d(nx)
        shuffle = rng.permutation(nx * nx)
        B = A.permute(shuffle, shuffle)
        n = B.shape[0]
        fill_shuffled = ilut(B, n, 0.0).nnz
        perm = rcm_ordering_matrix(B)
        fill_rcm = ilut(B.permute(perm, perm), n, 0.0).nnz
        assert fill_rcm < fill_shuffled
