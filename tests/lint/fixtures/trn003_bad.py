"""TRN003 bad twin: hidden shared state written in rank-executed code.

``cache_halo`` mutates a module-level dict; ``count_messages`` writes
an enclosing-scope counter through ``nonlocal``.  Both are shared
memory under the simulator and silently per-process under a real
transport.
"""

_CACHE = {}


def cache_halo(sim, rank, nbr, key, val):
    sim.send(rank, nbr, val, 1.0, tag="halo")
    _CACHE[key] = sim.recv(rank, nbr, tag="halo")
    return _CACHE[key]


def count_messages(sim, rank, nbr, vals):
    sent = 0

    def post(v):
        nonlocal sent
        sim.send(rank, nbr, v, 1.0, tag="m")
        sent += 1

    for v in vals:
        post(v)
        sim.recv(rank, nbr, tag="m")
    return sent
