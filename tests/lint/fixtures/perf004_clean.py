"""PERF004 clean twin: copies that are load-bearing."""

import numpy as np


def handed_over_directly(n):
    buf = np.zeros(n)
    return buf


def source_still_used(n):
    buf = np.zeros(n)
    snapshot = buf.copy()
    buf[0] = 1.0  # the original is mutated after the copy: copy needed
    return snapshot, buf


def aliased_return_pair(n):
    # the original is returned alongside the copy (same statement):
    # eliding would hand the caller two views of one buffer
    e = np.empty(0, dtype=np.int64)
    return e, e.copy()


def copy_of_borrowed_argument(x):
    # x belongs to the caller: the defensive copy is correct
    return x.copy()


def reassigned_name(n):
    buf = np.zeros(n)
    buf = buf[1:]  # more than one binding: ownership is not obvious
    return np.array(buf)
