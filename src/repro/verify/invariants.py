"""Structural invariant checkers for the paper's data structures.

Composable ``check_*`` functions, each returning a list of
human-readable violation strings (empty list = invariant holds).  They
are deliberately independent of how the object was produced, so tests,
the ``python -m repro check`` CLI subcommand, and future regression
harnesses can all share them:

* :func:`check_csr` — CSR well-formedness: consistent ``indptr``,
  sorted/unique/in-range column indices, finite values;
* :func:`check_lu_factors` — factor validity: ``perm`` is a bijection,
  L strictly lower with at most ``m`` entries per row (the 2nd dropping
  rule), U diagonal-first with a nonsingular finite diagonal and at most
  ``m`` off-diagonal entries, level structure tiling the matrix and each
  interface level structurally independent in U;
* :func:`check_reduced_rows` — mid-factorization reduced matrix: rows
  sorted, diagonal slot present, columns confined to the remaining
  interface set, and (ILUT*) at most ``cap = k*m`` entries per row — the
  3rd dropping rule;
* :func:`check_independent_set` — MIS independence against a graph;
* :func:`check_decomposition` — partition/interface classification
  consistency: every interior row's neighbours really are local.

:func:`require` converts a non-empty violation list into an
:class:`InvariantViolation`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:
    from ..decomp.decomposition import DomainDecomposition
    from ..graph.structure import Graph
    from ..ilu.factors import ILUFactors
    from ..sparse.csr import CSRMatrix

__all__ = [
    "InvariantViolation",
    "check_csr",
    "check_lu_factors",
    "check_reduced_rows",
    "check_independent_set",
    "check_decomposition",
    "require",
]


class InvariantViolation(Exception):
    """Raised by :func:`require` when any checker reported a violation."""


def require(violations: Sequence[str], context: str = "") -> None:
    """Raise :class:`InvariantViolation` if ``violations`` is non-empty."""
    if violations:
        head = f"{context}: " if context else ""
        raise InvariantViolation(head + "; ".join(violations))


# ----------------------------------------------------------------------
# CSR well-formedness
# ----------------------------------------------------------------------


def check_csr(A: CSRMatrix, *, name: str = "A") -> list[str]:
    """CSR well-formedness of ``A``; every kernel in the library assumes it."""
    out: list[str] = []
    nrows, ncols = A.shape
    indptr, indices, data = A.indptr, A.indices, A.data
    if indptr.shape != (nrows + 1,):
        out.append(f"{name}: indptr has shape {indptr.shape}, expected ({nrows + 1},)")
        return out  # everything below indexes via indptr
    if indptr[0] != 0:
        out.append(f"{name}: indptr[0] = {int(indptr[0])}, expected 0")
    if indptr[-1] != indices.size:
        out.append(
            f"{name}: indptr[-1] = {int(indptr[-1])} does not equal nnz = {indices.size}"
        )
    diffs = np.diff(indptr)
    neg = np.flatnonzero(diffs < 0)
    if neg.size:
        i = int(neg[0])
        out.append(
            f"{name}: indptr decreases at row {i} "
            f"({int(indptr[i])} -> {int(indptr[i + 1])})"
        )
        return out  # row slicing is meaningless from here on
    if indices.size != data.size:
        out.append(
            f"{name}: indices ({indices.size}) and data ({data.size}) lengths differ"
        )
        return out
    if indices.size:
        bad = (indices < 0) | (indices >= ncols)
        if bad.any():
            pos = int(np.argmax(bad))
            row = int(np.searchsorted(indptr, pos, side="right") - 1)
            off = pos - int(indptr[row])
            out.append(
                f"{name}: row {row}, offset {off}: column index "
                f"{int(indices[pos])} out of range [0, {ncols})"
            )
        if indices.size > 1:
            d = np.diff(indices)
            boundary = np.zeros(d.size, dtype=bool)
            starts = indptr[1:-1]
            starts = starts[(starts >= 1) & (starts < indices.size)]
            boundary[starts - 1] = True
            viol = (d <= 0) & ~boundary
            if viol.any():
                k = int(np.argmax(viol))
                row = int(np.searchsorted(indptr, k, side="right") - 1)
                off = k - int(indptr[row])
                kind = "duplicate" if indices[k + 1] == indices[k] else "unsorted"
                out.append(
                    f"{name}: row {row}: {kind} column indices at offsets "
                    f"{off} -> {off + 1} (columns {int(indices[k])} -> "
                    f"{int(indices[k + 1])})"
                )
        nonfinite = ~np.isfinite(data)
        if nonfinite.any():
            pos = int(np.argmax(nonfinite))
            row = int(np.searchsorted(indptr, pos, side="right") - 1)
            out.append(f"{name}: row {row}: non-finite value {float(data[pos])!r}")
    return out


# ----------------------------------------------------------------------
# LU factor validity
# ----------------------------------------------------------------------


def check_lu_factors(
    factors: ILUFactors,
    *,
    m: int | None = None,
    name: str = "factors",
) -> list[str]:
    """Validity of an incomplete factorization's L/U/perm/levels.

    With ``m`` given, the dual-dropping fill bounds are enforced: at most
    ``m`` entries per L row (unit diagonal implicit) and ``m`` entries
    per U row beyond the diagonal.
    """
    out: list[str] = []
    L, U, perm = factors.L, factors.U, factors.perm
    n = factors.n
    out += check_csr(L, name=f"{name}.L")
    out += check_csr(U, name=f"{name}.U")
    if out:
        return out  # structural damage makes the semantic checks unreliable

    seen = np.zeros(n, dtype=bool)
    if perm.shape != (n,) or (perm.size and (perm.min() < 0 or perm.max() >= n)):
        out.append(f"{name}: perm is not an index vector over [0, {n})")
    else:
        seen[perm] = True
        if not seen.all():
            missing = int(np.flatnonzero(~seen)[0])
            out.append(f"{name}: perm is not a bijection (misses index {missing})")

    l_nnz = np.diff(L.indptr)
    u_nnz = np.diff(U.indptr)
    for i in range(n):
        cols, _ = L.row(i)
        if cols.size and cols[-1] >= i:
            out.append(
                f"{name}.L: row {i} has entry at column {int(cols[-1])} "
                ">= diagonal (L must be strictly lower)"
            )
            break
    for i in range(n):
        cols, vals = U.row(i)
        if cols.size == 0 or cols[0] != i:
            out.append(f"{name}.U: row {i} does not store its diagonal first")
            break
        if vals[0] == 0.0 or not np.isfinite(vals[0]):
            out.append(f"{name}.U: row {i} has singular/non-finite diagonal {float(vals[0])!r}")
            break
    if m is not None:
        over_l = np.flatnonzero(l_nnz > m)
        if over_l.size:
            i = int(over_l[0])
            out.append(
                f"{name}.L: row {i} keeps {int(l_nnz[i])} entries, "
                f"2nd dropping rule allows at most m = {m}"
            )
        over_u = np.flatnonzero(u_nnz > m + 1)
        if over_u.size:
            i = int(over_u[0])
            out.append(
                f"{name}.U: row {i} keeps {int(u_nnz[i]) - 1} off-diagonal entries, "
                f"2nd dropping rule allows at most m = {m}"
            )

    levels = factors.levels
    if levels is not None:
        try:
            levels.validate(n)
        except ValueError as exc:
            out.append(f"{name}.levels: {exc}")
            return out
        if levels.owner.shape != (n,):
            out.append(f"{name}.levels: owner must cover every position")
        # independence: no U row of a level references another position of
        # the same level — that is exactly the MIS property the elimination
        # relies on to factor a level's rows concurrently.
        for lvl_idx, positions in enumerate(levels.interface_levels):
            in_level = np.zeros(n, dtype=bool)
            in_level[positions] = True
            for p in positions:
                cols, _ = U.row(int(p))
                hits = cols[1:][in_level[cols[1:]]] if cols.size > 1 else cols[:0]
                if hits.size:
                    out.append(
                        f"{name}.levels: level {lvl_idx} is not independent — "
                        f"position {int(p)} references position {int(hits[0])} "
                        "of the same level"
                    )
                    break
    return out


# ----------------------------------------------------------------------
# reduced-matrix invariants (phase 2, 3rd dropping rule)
# ----------------------------------------------------------------------


def check_reduced_rows(
    reduced: Mapping[int, tuple[np.ndarray, np.ndarray]],
    *,
    cap: int | None = None,
    name: str = "reduced",
) -> list[str]:
    """Mid-elimination reduced-matrix invariants.

    ``reduced`` maps each remaining interface row (original index) to its
    ``(cols, vals)`` reduced row, as maintained by the elimination
    engine.  Checks: columns strictly increasing, the row's own diagonal
    slot present, columns confined to the remaining (unfactored) set,
    finite values — and, with ``cap`` given (ILUT*'s ``k*m``), the 3rd
    dropping rule's bound on the retained entries per row.
    """
    out: list[str] = []
    remaining = set(int(i) for i in reduced)
    for i in sorted(reduced):
        cols, vals = reduced[i]
        cols = np.asarray(cols)
        vals = np.asarray(vals)
        if cols.size != vals.size:
            out.append(f"{name}[{i}]: cols/vals length mismatch")
            continue
        if cols.size > 1 and np.any(np.diff(cols) <= 0):
            out.append(f"{name}[{i}]: columns not strictly increasing")
        if i not in cols:
            out.append(f"{name}[{i}]: missing its own diagonal slot")
        stray = [int(c) for c in cols if int(c) not in remaining]
        if stray:
            out.append(
                f"{name}[{i}]: references factored/foreign column {stray[0]} "
                "(reduced rows may only couple remaining interface nodes)"
            )
        if vals.size and not np.all(np.isfinite(vals)):
            out.append(f"{name}[{i}]: non-finite value")
        if cap is not None and cols.size > cap:
            out.append(
                f"{name}[{i}]: keeps {cols.size} entries, 3rd dropping rule "
                f"(ILUT*) allows at most k*m = {cap}"
            )
    return out


# ----------------------------------------------------------------------
# MIS independence
# ----------------------------------------------------------------------


def check_independent_set(graph: Graph, iset: np.ndarray, *, name: str = "mis") -> list[str]:
    """No stored edge of ``graph`` may connect two members of ``iset``."""
    out: list[str] = []
    iset = np.asarray(iset, dtype=np.int64)
    if iset.size and (iset.min() < 0 or iset.max() >= graph.nvertices):
        out.append(f"{name}: vertex index out of range [0, {graph.nvertices})")
        return out
    mask = np.zeros(graph.nvertices, dtype=bool)
    mask[iset] = True
    for v in iset:
        nbrs = graph.adjncy[graph.xadj[v] : graph.xadj[v + 1]]
        hits = nbrs[mask[nbrs] & (nbrs != v)]
        if hits.size:
            out.append(
                f"{name}: vertices {int(v)} and {int(hits[0])} are adjacent "
                "but both in the set"
            )
            break
    return out


# ----------------------------------------------------------------------
# partition / interface classification
# ----------------------------------------------------------------------


def check_decomposition(decomp: DomainDecomposition, *, name: str = "decomp") -> list[str]:
    """Partition and interior/interface classification consistency.

    The phase-1 correctness of the paper's algorithm rests on interior
    rows having *only local* neighbours; a row misclassified as interior
    would be factored without the synchronisation its remote coupling
    requires, which is precisely the silent failure mode this checker
    (and the race detector) exists to catch.
    """
    out: list[str] = []
    n = decomp.A.shape[0]
    part = decomp.part
    if part.shape != (n,):
        out.append(f"{name}: part must assign every row")
        return out
    if part.size and (part.min() < 0 or part.max() >= decomp.nranks):
        out.append(f"{name}: part references a rank outside [0, {decomp.nranks})")
        return out
    if decomp.is_interface.shape != (n,):
        out.append(f"{name}: is_interface must cover every row")
        return out
    graph = decomp.graph
    for v in range(n):
        nbrs = graph.neighbors(v)
        has_remote = bool(nbrs.size) and bool(np.any(part[nbrs] != part[v]))
        if decomp.nranks == 1:
            has_remote = False
        if bool(decomp.is_interface[v]) != has_remote:
            label = "interface" if decomp.is_interface[v] else "interior"
            out.append(
                f"{name}: row {v} classified {label} but "
                f"{'has' if has_remote else 'has no'} cross-domain neighbours"
            )
            break
    # interior/interface row lists must tile the owned rows exactly
    for r in range(decomp.nranks):
        interior = decomp.interior_rows(r)
        interface = decomp.interface_rows(r)
        owned = decomp.owned_rows(r)
        merged = np.sort(np.concatenate([interior, interface]))
        if not np.array_equal(merged, owned):
            out.append(f"{name}: rank {r} interior+interface rows != owned rows")
            break
    return out
