"""SPMD003 clean twin: post and drain loops share one iterable."""


def drive(sim, nranks):
    for r in range(1, nranks):
        sim.send(r, 0, None, 1.0, tag="halo")
    for r in range(1, nranks):
        sim.recv(0, r, tag="halo")
