"""Random sparse matrix generators for tests and failure injection."""

from __future__ import annotations

import numpy as np

from ..sparse import COOBuilder, CSRMatrix

__all__ = ["random_diag_dominant", "random_geometric_laplacian", "random_pattern"]


def random_diag_dominant(
    n: int,
    row_nnz: int = 5,
    *,
    seed: int = 0,
    symmetric_pattern: bool = True,
    dominance: float = 1.5,
) -> CSRMatrix:
    """Random strictly diagonally dominant matrix (always ILU-factorable).

    Each row receives ``row_nnz`` off-diagonal entries at random columns
    with values in ``[-1, 1]``; the diagonal is set to ``dominance`` times
    the row's off-diagonal absolute sum (with a floor of 1), guaranteeing
    nonzero pivots for any dropping strategy.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if row_nnz < 0 or row_nnz >= n:
        row_nnz = max(0, min(row_nnz, n - 1))
    rng = np.random.default_rng(seed)
    builder = COOBuilder(n)
    rows_acc: list[np.ndarray] = []
    cols_acc: list[np.ndarray] = []
    vals_acc: list[np.ndarray] = []
    for i in range(n):
        choices = (
            rng.choice(n - 1, size=row_nnz, replace=False)
            if row_nnz
            else np.empty(0, np.int64)
        )
        cols = np.where(choices >= i, choices + 1, choices).astype(np.int64)
        vals = rng.uniform(-1.0, 1.0, size=row_nnz)
        rows_acc.append(np.full(row_nnz, i, dtype=np.int64))
        cols_acc.append(cols)
        vals_acc.append(vals)
    if rows_acc:
        rows = np.concatenate(rows_acc)
        cols = np.concatenate(cols_acc)
        vals = np.concatenate(vals_acc)
        builder.add_batch(rows, cols, vals)
        if symmetric_pattern:
            # mirror the pattern (with tiny values) so the structure is symmetric
            builder.add_batch(cols, rows, 1e-8 * np.sign(vals))
    A = builder.to_csr()
    # strictly dominant diagonal
    offdiag_sum = np.zeros(n)
    for i, c, v in A.iter_rows():
        mask = c != i
        offdiag_sum[i] = np.abs(v[mask]).sum()
    diag_builder = COOBuilder(n)
    idx = np.arange(n, dtype=np.int64)
    diag_builder.add_batch(idx, idx, np.maximum(1.0, dominance * offdiag_sum))
    return A + diag_builder.to_csr()


def random_geometric_laplacian(n: int, *, radius: float | None = None, seed: int = 0) -> CSRMatrix:
    """Graph Laplacian (+I) of a random geometric graph in the unit square.

    Produces irregular, locally-clustered sparsity — a light-weight stand-in
    for unstructured meshes in fast-running tests.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    if radius is None:
        radius = min(1.0, 1.8 / np.sqrt(max(n, 2)))
    from scipy.spatial import cKDTree

    tree = cKDTree(pts)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    builder = COOBuilder(n)
    idx = np.arange(n, dtype=np.int64)
    deg = np.zeros(n)
    if pairs.size:
        i, j = pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
        w = np.ones(i.size)
        builder.add_batch(i, j, -w)
        builder.add_batch(j, i, -w)
        np.add.at(deg, i, 1.0)
        np.add.at(deg, j, 1.0)
    builder.add_batch(idx, idx, deg + 1.0)
    return builder.to_csr()


def random_pattern(n: int, density: float, *, seed: int = 0) -> CSRMatrix:
    """Uniform random pattern with unit diagonal added (for structure tests)."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, True)
    rows, cols = np.nonzero(mask)
    vals = rng.uniform(-1.0, 1.0, size=rows.size)
    vals[rows == cols] = n  # safe pivots
    return CSRMatrix.from_coo(rows, cols, vals, (n, n))
