"""Multilevel k-way graph partitioning driver.

Pipeline (the serial analogue of the paper's parallel multilevel k-way
partitioner [Karypis & Kumar '96]):

1. **Coarsen** with heavy-edge matching until the graph is small
   (``coarsen_to`` vertices) or stops shrinking.
2. **Initial partition** the coarsest graph with greedy graph growing.
3. **Uncoarsen**: project the partition back level by level, running
   greedy boundary refinement at each level.

Also provides trivial ``block_partition`` / ``random_partition``
baselines used by the partition-quality ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import Graph, adjacency_from_matrix
from ..sparse import CSRMatrix
from .initial import initial_kway
from .matching import collapse_matching, heavy_edge_matching
from .refine import edge_cut, partition_balance, refine_kway

__all__ = [
    "PartitionResult",
    "partition_graph_kway",
    "partition_matrix_kway",
    "block_partition",
    "random_partition",
]


@dataclass
class PartitionResult:
    """Outcome of a k-way partitioning.

    Attributes
    ----------
    part:
        Part id (0..nparts-1) per vertex.
    nparts:
        Number of parts requested.
    edge_cut:
        Total weight of cut edges.
    balance:
        Max part weight over ideal part weight.
    levels:
        Number of coarsening levels used.
    """

    part: np.ndarray
    nparts: int
    edge_cut: float
    balance: float
    levels: int = 0
    history: list[int] = field(default_factory=list)

    def part_sizes(self) -> np.ndarray:
        sizes = np.zeros(self.nparts, dtype=np.int64)
        np.add.at(sizes, self.part, 1)
        return sizes


def partition_graph_kway(
    graph: Graph,
    nparts: int,
    *,
    coarsen_to: int | None = None,
    max_imbalance: float = 1.05,
    refine_passes: int = 4,
    seed: int = 0,
) -> PartitionResult:
    """Multilevel k-way partition of an undirected graph."""
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    n = graph.nvertices
    if nparts > max(n, 1):
        raise ValueError(f"cannot split {n} vertices into {nparts} parts")
    if nparts == 1 or n == 0:
        part = np.zeros(n, dtype=np.int64)
        return PartitionResult(part, nparts, 0.0, 1.0, levels=0)

    if coarsen_to is None:
        coarsen_to = max(20 * nparts, 40)

    # --- coarsening phase
    graphs: list[Graph] = [graph]
    cmaps: list[np.ndarray] = []
    level_sizes = [n]
    g = graph
    level = 0
    while g.nvertices > coarsen_to:
        match = heavy_edge_matching(g, seed=seed + level)
        coarse, cmap = collapse_matching(g, match)
        if coarse.nvertices >= g.nvertices * 0.95:
            break  # diminishing returns (e.g. star graphs)
        graphs.append(coarse)
        cmaps.append(cmap)
        level_sizes.append(coarse.nvertices)
        g = coarse
        level += 1

    # --- initial partition on the coarsest graph
    part = initial_kway(graphs[-1], nparts, seed=seed)
    part = refine_kway(
        graphs[-1], part, nparts,
        max_imbalance=max_imbalance, passes=refine_passes, seed=seed,
    )

    # --- uncoarsening + refinement
    for lvl in range(len(cmaps) - 1, -1, -1):
        part = part[cmaps[lvl]]
        part = refine_kway(
            graphs[lvl], part, nparts,
            max_imbalance=max_imbalance, passes=refine_passes, seed=seed + lvl,
        )

    return PartitionResult(
        part,
        nparts,
        edge_cut(graph, part),
        partition_balance(graph, part, nparts),
        levels=len(cmaps),
        history=level_sizes,
    )


def partition_matrix_kway(
    A: CSRMatrix,
    nparts: int,
    *,
    weighted: bool = False,
    max_imbalance: float = 1.05,
    seed: int = 0,
) -> PartitionResult:
    """Partition the (symmetrised) adjacency graph of a matrix."""
    graph = adjacency_from_matrix(A, symmetric=True, include_weights=weighted)
    return partition_graph_kway(
        graph, nparts, max_imbalance=max_imbalance, seed=seed
    )


def block_partition(n: int, nparts: int) -> np.ndarray:
    """Contiguous-index block partition (no graph awareness)."""
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    return (np.arange(n, dtype=np.int64) * nparts) // max(n, 1)


def random_partition(n: int, nparts: int, *, seed: int = 0) -> np.ndarray:
    """Balanced random partition (worst-case edge-cut baseline)."""
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    rng = np.random.default_rng(seed)
    part = (np.arange(n, dtype=np.int64) * nparts) // max(n, 1)
    rng.shuffle(part)
    return part
