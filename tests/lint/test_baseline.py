"""Baseline fingerprints: line-shift stability, occurrence handling,
save/load/split round-trips."""

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, Severity, fingerprint_findings
from repro.lint.baseline import fingerprint


def make(rule="DET003", path="pkg/mod.py", line=10, snippet="if x == 0.5:", occ=0):
    return Finding(
        rule=rule,
        severity=Severity.WARNING,
        path=path,
        line=line,
        col=4,
        message="float equality",
        snippet=snippet,
    ).with_occurrence(occ)


class TestFingerprint:
    def test_stable_under_line_shift(self):
        assert fingerprint(make(line=10)) == fingerprint(make(line=99))

    def test_sensitive_to_rule_path_snippet(self):
        base = fingerprint(make())
        assert fingerprint(make(rule="DET004")) != base
        assert fingerprint(make(path="pkg/other.py")) != base
        assert fingerprint(make(snippet="if x == 1.5:")) != base

    def test_occurrence_disambiguates_identical_lines(self):
        assert fingerprint(make(occ=0)) != fingerprint(make(occ=1))

    def test_fingerprint_findings_assigns_occurrences_in_order(self):
        twins = [make(line=10), make(line=50), make(line=90, snippet="other")]
        stamped = fingerprint_findings(twins)
        assert [f.occurrence for f in stamped] == [0, 1, 0]


class TestBaselineRoundTrip:
    def test_save_load_split(self, tmp_path: Path):
        old = make(line=10)
        baseline = Baseline.from_findings([old])
        bl_path = tmp_path / "lint-baseline.json"
        baseline.save(bl_path)

        loaded = Baseline.load(bl_path)
        # the frozen finding moved 40 lines: still frozen
        moved = make(line=50)
        fresh = make(snippet="if y != 2.5:", line=11)
        new, frozen = loaded.split([moved, fresh])
        assert [f.snippet for f in new] == ["if y != 2.5:"]
        assert [f.snippet for f in frozen] == ["if x == 0.5:"]

    def test_second_occurrence_is_new(self, tmp_path: Path):
        bl_path = tmp_path / "b.json"
        Baseline.from_findings([make(line=10)]).save(bl_path)
        loaded = Baseline.load(bl_path)
        # a *second* identical line appears: only occurrence 1 is new
        new, frozen = loaded.split([make(line=10), make(line=20)])
        assert len(frozen) == 1 and len(new) == 1
        assert new[0].occurrence == 1

    def test_version_mismatch_rejected(self, tmp_path: Path):
        bad = tmp_path / "old.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(bad)

    def test_saved_file_is_valid_json_with_comment(self, tmp_path: Path):
        bl_path = tmp_path / "b.json"
        Baseline.from_findings([make()]).save(bl_path)
        doc = json.loads(bl_path.read_text())
        assert doc["version"] == 1
        assert "write-baseline" in doc["comment"]
        assert len(doc["findings"]) == 1
        entry = doc["findings"][0]
        assert entry["fingerprint"] == fingerprint(make())
        assert entry["rule"] == "DET003"
