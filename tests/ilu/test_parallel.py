"""Integration-grade unit tests for the parallel ILUT/ILUT* factorization."""

import numpy as np
import pytest

from repro.decomp import decompose
from repro.ilu import ilut, parallel_ilut, parallel_ilut_star
from repro.matrices import (
    convection_diffusion2d,
    poisson2d,
    random_diag_dominant,
    torso_like,
)


class TestCorrectness:
    def test_p1_identical_to_sequential(self, medium_poisson):
        r = parallel_ilut(medium_poisson, 5, 1e-2, 1, simulate=False)
        f = ilut(medium_poisson, 5, 1e-2)
        assert r.factors.L.allclose(f.L)
        assert r.factors.U.allclose(f.U)
        assert np.array_equal(r.factors.perm, f.perm)
        assert r.num_levels == 0

    def test_no_dropping_exact_any_p(self, small_diagdom):
        n = small_diagdom.shape[0]
        for p in (2, 4, 7):
            r = parallel_ilut(small_diagdom, n, 0.0, p, seed=1, simulate=False)
            R = r.factors.residual_matrix(small_diagdom)
            assert R.frobenius_norm() < 1e-9 * small_diagdom.frobenius_norm(), p

    def test_factors_triangular(self):
        for p in (2, 4, 8):
            r = parallel_ilut(poisson2d(12), 5, 1e-3, p, seed=0, simulate=False)
            L, U = r.factors.L, r.factors.U
            for i in range(L.shape[0]):
                lc, _ = L.row(i)
                uc, _ = U.row(i)
                assert lc.size == 0 or lc.max() < i
                assert uc.size > 0 and uc[0] == i  # diagonal stored

    def test_simulation_does_not_change_numerics(self, medium_poisson):
        r_sim = parallel_ilut(medium_poisson, 5, 1e-4, 4, seed=2, simulate=True)
        r_raw = parallel_ilut(medium_poisson, 5, 1e-4, 4, seed=2, simulate=False)
        assert r_sim.factors.L.allclose(r_raw.factors.L, rtol=0, atol=0)
        assert r_sim.factors.U.allclose(r_raw.factors.U, rtol=0, atol=0)
        assert np.array_equal(r_sim.factors.perm, r_raw.factors.perm)

    def test_deterministic_given_seed(self, medium_poisson):
        r1 = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=3, simulate=False)
        r2 = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=3, simulate=False)
        assert r1.factors.L.allclose(r2.factors.L, rtol=0, atol=0)
        assert np.array_equal(r1.factors.perm, r2.factors.perm)

    def test_perm_covers_all_rows(self):
        r = parallel_ilut(poisson2d(10), 5, 1e-2, 4, simulate=False)
        assert sorted(r.factors.perm.tolist()) == list(range(100))

    def test_interior_before_interface(self):
        A = poisson2d(10)
        d = decompose(A, 4, seed=0)
        r = parallel_ilut(A, 5, 1e-2, 4, decomp=d, simulate=False)
        n_interior = d.n_interior
        # first n_interior permuted positions are interior rows
        assert not np.any(d.is_interface[r.factors.perm[:n_interior]])
        assert np.all(d.is_interface[r.factors.perm[n_interior:]])

    def test_levels_are_independent_sets(self):
        """Rows factored in one level never reference one another in U."""
        r = parallel_ilut(poisson2d(12), 10, 1e-4, 4, simulate=False, seed=0)
        U = r.factors.U
        for lvl in r.factors.levels.interface_levels:
            inlvl = set(lvl.tolist())
            for p in lvl:
                cols, _ = U.row(int(p))
                assert not (set(cols[1:].tolist()) & inlvl)

    def test_nonsymmetric_values(self, small_nonsym):
        r = parallel_ilut(small_nonsym, 5, 1e-3, 4, simulate=False)
        b = np.ones(small_nonsym.shape[0])
        y = r.factors.solve(small_nonsym @ b)
        assert np.linalg.norm(y - b) / np.linalg.norm(b) < 1.0

    def test_unstructured_mesh(self):
        A = torso_like(300, seed=0)
        r = parallel_ilut(A, 10, 1e-3, 4, simulate=False, seed=0)
        assert r.factors.levels is not None
        r.factors.levels.validate(A.shape[0])


class TestILUTStar:
    def test_reduced_cap_cuts_levels_at_small_t(self):
        A = poisson2d(16)
        r_ilut = parallel_ilut(A, 10, 1e-6, 8, seed=0, simulate=False)
        r_star = parallel_ilut_star(A, 10, 1e-6, 2, 8, seed=0, simulate=False)
        assert r_star.num_levels <= r_ilut.num_levels

    def test_star_equals_ilut_for_huge_k(self, medium_poisson):
        # cap so large it never binds → identical factors
        r_ilut = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=1, simulate=False)
        r_star = parallel_ilut_star(
            medium_poisson, 5, 1e-3, 10_000, 4, seed=1, simulate=False
        )
        assert r_star.factors.L.allclose(r_ilut.factors.L, rtol=0, atol=0)
        assert r_star.factors.U.allclose(r_ilut.factors.U, rtol=0, atol=0)

    def test_k_must_be_positive(self, small_poisson):
        with pytest.raises(ValueError):
            parallel_ilut_star(small_poisson, 5, 1e-3, 0, 2)

    def test_star_quality_comparable(self, medium_poisson, rng):
        A = medium_poisson
        b = rng.standard_normal(A.shape[0])
        y_i = parallel_ilut(A, 10, 1e-4, 4, seed=0, simulate=False).factors.solve(b)
        y_s = parallel_ilut_star(A, 10, 1e-4, 2, 4, seed=0, simulate=False).factors.solve(b)
        r_i = np.linalg.norm(b - A @ y_i)
        r_s = np.linalg.norm(b - A @ y_s)
        assert r_s < 3 * r_i + 1e-12  # paper: comparable quality for k=2


class TestSimulationAccounting:
    def test_modeled_time_positive(self, medium_poisson):
        r = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=0)
        assert r.modeled_time > 0
        assert r.comm.total_flops > 0

    def test_no_pending_messages(self, medium_poisson):
        from repro.machine import CRAY_T3D, Simulator

        # run via public API then verify through comm stats consistency
        r = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=0)
        assert r.comm.messages >= 0  # smoke: stats exist

    def test_flops_independent_of_model(self, medium_poisson):
        from repro.machine import IDEAL, WORKSTATION_CLUSTER

        r1 = parallel_ilut(medium_poisson, 5, 1e-3, 4, seed=0, model=IDEAL)
        r2 = parallel_ilut(
            medium_poisson, 5, 1e-3, 4, seed=0, model=WORKSTATION_CLUSTER
        )
        assert r1.flops == r2.flops
        assert r1.modeled_time < r2.modeled_time  # comm-free is faster

    def test_star_no_slower_than_ilut_at_small_t(self):
        A = poisson2d(16)
        t_ilut = parallel_ilut(A, 10, 1e-6, 8, seed=0).modeled_time
        t_star = parallel_ilut_star(A, 10, 1e-6, 2, 8, seed=0).modeled_time
        assert t_star <= t_ilut * 1.05

    def test_decomp_rank_mismatch_rejected(self, small_poisson):
        d = decompose(small_poisson, 2, seed=0)
        with pytest.raises(ValueError):
            parallel_ilut(small_poisson, 5, 1e-3, 4, decomp=d)


class TestEdgeCases:
    def test_p_equals_n_extreme(self):
        A = poisson2d(3)  # 9 rows on 9 ranks: everything is interface
        r = parallel_ilut(A, 5, 1e-3, 9, simulate=False, seed=0)
        assert r.factors.levels.validate(9) is None
        assert r.num_levels >= 1

    def test_all_interface_no_dropping_exact(self):
        A = random_diag_dominant(24, 4, seed=3)
        r = parallel_ilut(A, 24, 0.0, 12, simulate=False, seed=0)
        assert (
            r.factors.residual_matrix(A).frobenius_norm()
            < 1e-9 * A.frobenius_norm()
        )

    def test_invalid_m_t(self, small_poisson):
        with pytest.raises(ValueError):
            parallel_ilut(small_poisson, -1, 0.1, 2)
        with pytest.raises(ValueError):
            parallel_ilut(small_poisson, 5, -0.1, 2)

    def test_block_and_random_methods(self, medium_poisson):
        for method in ("block", "random"):
            r = parallel_ilut(
                medium_poisson, 5, 1e-2, 4, method=method, simulate=False
            )
            r.factors.levels.validate(256)
