"""Vectorized widget transform, bit-exact against the scalar reference
implementation in :mod:`pkg.widget_ref`."""

__all__ = ["widget_vec"]


def widget_vec(x):
    return x * 2
