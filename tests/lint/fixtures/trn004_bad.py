"""TRN004 bad twin: dtype drift in rank-executed array code.

``np.arange`` without a dtype is ``int32`` on LLP64 platforms and
``int64`` elsewhere; an explicit ``float32`` narrows every downstream
accumulation.  Either way two transports on different platforms stop
agreeing bit for bit.
"""

import numpy as np


def index_exchange(sim, rank, nbr, n):
    idx = np.arange(n)
    sim.send(rank, nbr, idx, float(n), tag="idx")
    return sim.recv(rank, nbr, tag="idx")


def narrow_exchange(sim, rank, nbr, vals):
    buf = np.asarray(vals, dtype=np.float32)
    sim.send(rank, nbr, buf, 1.0, tag="v")
    return sim.recv(rank, nbr, tag="v")
