"""Domain decomposition: row-to-processor assignment, interior/interface
classification and halo-exchange plans."""

from .decomposition import DomainDecomposition, decompose

__all__ = ["DomainDecomposition", "decompose"]
