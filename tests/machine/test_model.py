"""Unit tests for the machine cost model."""

import math

import pytest

from repro.machine import CRAY_T3D, IDEAL, WORKSTATION_CLUSTER, MachineModel


class TestMachineModel:
    def test_compute_cost_linear(self):
        m = MachineModel("x", flop_time=1e-6, latency=0, byte_time=0)
        assert m.compute_cost(1000) == pytest.approx(1e-3)

    def test_message_cost_latency_plus_volume(self):
        m = MachineModel("x", flop_time=0, latency=1e-5, byte_time=1e-8)
        assert m.message_cost(100) == pytest.approx(1e-5 + 100 * 8 * 1e-8)

    def test_collective_cost_log_tree(self):
        m = MachineModel("x", flop_time=0, latency=1e-5, byte_time=0)
        assert m.collective_cost(8, 1) == pytest.approx(3 * 1e-5)
        assert m.collective_cost(1, 1) == 0.0

    def test_collective_nonpow2(self):
        m = MachineModel("x", flop_time=0, latency=1e-5, byte_time=0)
        assert m.collective_cost(5, 1) == pytest.approx(math.ceil(math.log2(5)) * 1e-5)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            MachineModel("x", flop_time=-1, latency=0, byte_time=0)
        with pytest.raises(ValueError):
            MachineModel("x", flop_time=0, latency=0, byte_time=0, word_bytes=0)

    def test_presets_sensible(self):
        # T3D communicates much faster than the cluster preset
        assert CRAY_T3D.latency < WORKSTATION_CLUSTER.latency
        assert CRAY_T3D.byte_time < WORKSTATION_CLUSTER.byte_time
        assert IDEAL.message_cost(1e6) == 0.0

    def test_frozen(self):
        with pytest.raises(Exception):
            CRAY_T3D.latency = 0.0
