"""Figure 5 — factorization speedup on TORSO.

Paper: same series as Figure 4 for the TORSO matrix.  Extra shape: the
overall speedups are *better* than on G0 (larger problem → smaller
relative parallel overhead), and ILUT degrades most at t=1e-6 while
ILUT* stays near-linear except a mild droop at m=20.
"""

import pytest

from _reporting import record_table
from _workloads import PROCS, all_configs, factorize, label


def _series(name: str):
    from repro.analysis import format_series, relative_speedups

    lines = []
    data = {}
    for algo, m, t in all_configs():
        times = {p: factorize(name, algo, m, t, p).modeled_time for p in PROCS}
        sp = relative_speedups(times)
        data[(algo, m, t)] = sp
        lines.append(format_series(label(algo, m, t), PROCS, [sp[p] for p in PROCS]))
    return "\n".join(lines), data


def test_fig5_speedup_torso(benchmark):
    text, data = benchmark.pedantic(_series, args=("torso",), rounds=1, iterations=1)
    record_table(
        "Figure 5: factorization speedup, TORSO (relative to p=%d)" % PROCS[0], text
    )
    pmax = PROCS[-1]
    for key, sp in data.items():
        assert sp[pmax] > 1.0, f"{key} shows no speedup at all"
    # ILUT* at the tight threshold scales at least as well as ILUT
    assert (
        data[("ILUT*", 10, 1e-6)][pmax] >= 0.9 * data[("ILUT", 10, 1e-6)][pmax]
    )


def test_fig5_vs_fig4_larger_problem_scales_better(benchmark):
    """Paper §6: TORSO speedups beat G0's because the problem is larger."""
    from repro.analysis import relative_speedups

    def compare():
        pmax = PROCS[-1]
        sp = {}
        for name in ("g0", "torso"):
            times = {p: factorize(name, "ILUT*", 10, 1e-4, p).modeled_time for p in PROCS}
            sp[name] = relative_speedups(times)[pmax]
        return sp

    sp = benchmark.pedantic(compare, rounds=1, iterations=1)
    record_table(
        "Figure 4 vs 5: ILUT*(10,1e-4) speedup at p=%d" % PROCS[-1],
        f"G0: {sp['g0']:.2f}   TORSO: {sp['torso']:.2f}",
    )
    # TORSO (larger or equal problem) should not scale dramatically worse
    assert sp["torso"] >= 0.7 * sp["g0"]
