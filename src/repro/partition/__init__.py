"""Multilevel k-way graph partitioning (from scratch): heavy-edge
matching coarsening, greedy-growing initial partition, boundary
refinement, plus block/random baselines."""

from .initial import greedy_graph_growing, initial_kway
from .kway import (
    PartitionResult,
    block_partition,
    partition_graph_kway,
    partition_matrix_kway,
    random_partition,
)
from .matching import collapse_matching, heavy_edge_matching
from .nested_dissection import (
    nested_dissection,
    nested_dissection_matrix,
    vertex_separator_from_cut,
)
from .refine import edge_cut, partition_balance, refine_kway

__all__ = [
    "PartitionResult",
    "partition_graph_kway",
    "partition_matrix_kway",
    "block_partition",
    "random_partition",
    "heavy_edge_matching",
    "collapse_matching",
    "greedy_graph_growing",
    "initial_kway",
    "refine_kway",
    "edge_cut",
    "partition_balance",
    "nested_dissection",
    "nested_dissection_matrix",
    "vertex_separator_from_cut",
]
