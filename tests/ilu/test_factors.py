"""Unit tests for the ILUFactors container and LevelStructure."""

import numpy as np
import pytest

from repro.ilu import ILUFactors, LevelStructure, ilut, parallel_ilut
from repro.matrices import poisson2d
from repro.sparse import CSRMatrix


class TestILUFactors:
    def test_solve_applies_permutation(self, rng):
        # manual 2x2: A = [[2, 0], [0, 4]] with perm reversing order
        L = CSRMatrix.zeros(2)
        U = CSRMatrix.from_dense(np.diag([4.0, 2.0]))
        perm = np.array([1, 0])
        f = ILUFactors(L=L, U=U, perm=perm)
        b = np.array([2.0, 4.0])
        x = f.solve(b)
        assert np.allclose(x, [1.0, 1.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ILUFactors(
                L=CSRMatrix.zeros(2), U=CSRMatrix.zeros(3), perm=np.arange(2)
            )
        with pytest.raises(ValueError):
            ILUFactors(
                L=CSRMatrix.zeros(2), U=CSRMatrix.zeros(2), perm=np.arange(3)
            )

    def test_nnz_and_fill_factor(self, small_poisson):
        f = ilut(small_poisson, 5, 1e-3)
        assert f.nnz == f.L.nnz + f.U.nnz
        assert f.fill_factor(small_poisson) == f.nnz / small_poisson.nnz

    def test_solve_shape_check(self, small_poisson):
        f = ilut(small_poisson, 5, 1e-3)
        with pytest.raises(ValueError):
            f.solve(np.ones(3))

    def test_triangular_flops_positive(self, small_poisson):
        f = ilut(small_poisson, 5, 1e-3)
        assert f.triangular_flops() > 0

    def test_repr_mentions_levels(self):
        r = parallel_ilut(poisson2d(8), 5, 1e-2, 2, simulate=False)
        assert "levels=" in repr(r.factors)


class TestLevelStructure:
    def test_validate_accepts_exact_tiling(self):
        ls = LevelStructure(
            interior_ranges=[(0, 3), (3, 5)],
            interface_levels=[np.array([5, 6]), np.array([7])],
            owner=np.zeros(8, dtype=np.int64),
        )
        ls.validate(8)

    def test_validate_rejects_overlap(self):
        ls = LevelStructure(
            interior_ranges=[(0, 3)],
            interface_levels=[np.array([2, 3])],
            owner=np.zeros(4, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            ls.validate(4)

    def test_validate_rejects_gap(self):
        ls = LevelStructure(
            interior_ranges=[(0, 2)],
            interface_levels=[],
            owner=np.zeros(3, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            ls.validate(3)

    def test_num_levels_and_sizes(self):
        ls = LevelStructure(
            interior_ranges=[(0, 1)],
            interface_levels=[np.array([1, 2]), np.array([3])],
            owner=np.zeros(4, dtype=np.int64),
        )
        assert ls.num_levels == 2
        assert ls.level_sizes() == [2, 1]

    def test_parallel_result_has_valid_structure(self):
        r = parallel_ilut(poisson2d(10), 5, 1e-2, 4, simulate=False, seed=0)
        assert r.factors.levels is not None
        r.factors.levels.validate(100)
        assert r.factors.levels.num_levels == r.num_levels
