"""Unit tests for heavy-edge matching and graph collapsing."""

import numpy as np

from repro.graph import adjacency_from_matrix
from repro.matrices import poisson2d, random_geometric_laplacian
from repro.partition import collapse_matching, heavy_edge_matching


class TestHeavyEdgeMatching:
    def test_matching_is_symmetric(self):
        g = adjacency_from_matrix(poisson2d(8))
        match = heavy_edge_matching(g, seed=0)
        for v in range(g.nvertices):
            assert match[match[v]] == v

    def test_matched_pairs_are_adjacent(self):
        g = adjacency_from_matrix(poisson2d(8))
        match = heavy_edge_matching(g, seed=1)
        for v in range(g.nvertices):
            u = match[v]
            if u != v:
                assert u in g.neighbors(v)

    def test_matching_is_maximal(self):
        # no two unmatched vertices may be adjacent
        g = adjacency_from_matrix(poisson2d(6))
        match = heavy_edge_matching(g, seed=2)
        unmatched = np.flatnonzero(match == np.arange(g.nvertices))
        unset = set(unmatched.tolist())
        for v in unmatched:
            assert not (set(g.neighbors(v).tolist()) & unset)

    def test_prefers_heavy_edges(self):
        # triangle with one heavy edge (0,1): whenever 0 or 1 is visited
        # first (2/3 of random orders) the heavy edge must be taken, so
        # across seeds it is matched well over half the time — a purely
        # random matcher would only reach ~1/3.
        from repro.graph import Graph

        xadj = np.array([0, 2, 4, 6])
        adjncy = np.array([1, 2, 0, 2, 0, 1])
        adjwgt = np.array([10.0, 1.0, 10.0, 1.0, 1.0, 1.0])
        g = Graph(xadj, adjncy, adjwgt)
        heavy_taken = sum(
            heavy_edge_matching(g, seed=s)[0] == 1 for s in range(30)
        )
        assert heavy_taken >= 15

    def test_isolated_vertices_self_matched(self):
        from repro.graph import Graph

        g = Graph(np.zeros(4, dtype=np.int64), np.empty(0, dtype=np.int64))
        match = heavy_edge_matching(g)
        assert np.array_equal(match, np.arange(3))


class TestCollapseMatching:
    def test_coarse_size_halves_on_perfect_matching(self):
        g = adjacency_from_matrix(poisson2d(8))
        match = heavy_edge_matching(g, seed=0)
        coarse, cmap = collapse_matching(g, match)
        n_matched_pairs = int((match != np.arange(g.nvertices)).sum()) // 2
        assert coarse.nvertices == g.nvertices - n_matched_pairs

    def test_vertex_weights_conserved(self):
        g = adjacency_from_matrix(random_geometric_laplacian(60, seed=4))
        match = heavy_edge_matching(g, seed=0)
        coarse, cmap = collapse_matching(g, match)
        assert coarse.total_vertex_weight() == g.total_vertex_weight()

    def test_cmap_consistent_with_matching(self):
        g = adjacency_from_matrix(poisson2d(6))
        match = heavy_edge_matching(g, seed=3)
        _, cmap = collapse_matching(g, match)
        for v in range(g.nvertices):
            assert cmap[v] == cmap[match[v]]

    def test_no_self_loops_in_coarse(self):
        g = adjacency_from_matrix(poisson2d(6))
        coarse, _ = collapse_matching(g, heavy_edge_matching(g, seed=0))
        for v in range(coarse.nvertices):
            assert v not in coarse.neighbors(v)

    def test_edge_weight_conserved_minus_internal(self):
        g = adjacency_from_matrix(poisson2d(6), include_weights=True)
        match = heavy_edge_matching(g, seed=0)
        coarse, cmap = collapse_matching(g, match)
        internal = sum(
            g.adjwgt[g.xadj[v] : g.xadj[v + 1]][
                cmap[g.adjncy[g.xadj[v] : g.xadj[v + 1]]] == cmap[v]
            ].sum()
            for v in range(g.nvertices)
        )
        assert coarse.adjwgt.sum() + internal == g.adjwgt.sum()
