"""Unit tests for Jacobi / Gauss-Seidel / SOR."""

import numpy as np
import pytest

from repro.matrices import poisson2d, random_diag_dominant
from repro.solvers import SweepPreconditioner, gauss_seidel, gmres, jacobi, sor
from repro.sparse import CSRMatrix


class TestJacobi:
    def test_converges_on_diag_dominant(self, rng):
        A = random_diag_dominant(40, 4, seed=0, dominance=2.0)
        x_true = rng.standard_normal(40)
        res = jacobi(A, A @ x_true, maxiter=2000)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-5)

    def test_zero_diag_rejected(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ZeroDivisionError):
            jacobi(A, np.ones(2))

    def test_damping_helps_poisson(self):
        # undamped Jacobi converges on Poisson, damped also; both monotone-ish
        A = poisson2d(8)
        b = A @ np.ones(64)
        res = jacobi(A, b, maxiter=5000, damping=0.8)
        assert res.converged

    def test_maxiter_respected(self, rng):
        A = poisson2d(12)
        res = jacobi(A, rng.standard_normal(144), maxiter=3, tol=1e-14)
        assert not res.converged
        assert res.iterations == 3

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            jacobi(CSRMatrix.zeros(2, 3), np.ones(2))
        with pytest.raises(ValueError):
            jacobi(CSRMatrix.identity(3), np.ones(4))


class TestGaussSeidelSOR:
    def test_gs_converges_faster_than_jacobi(self):
        A = poisson2d(10)
        b = A @ np.ones(100)
        rj = jacobi(A, b, maxiter=20000)
        rg = gauss_seidel(A, b, maxiter=20000)
        assert rg.converged
        assert rg.iterations < rj.iterations

    def test_optimal_sor_beats_gs(self):
        # for the 2-D Poisson problem the optimal omega ≈ 2/(1+sin(pi h))
        nx = 10
        A = poisson2d(nx)
        b = A @ np.ones(nx * nx)
        omega = 2.0 / (1.0 + np.sin(np.pi / (nx + 1)))
        rs = sor(A, b, omega=omega, maxiter=20000)
        rg = gauss_seidel(A, b, maxiter=20000)
        assert rs.converged
        assert rs.iterations < rg.iterations

    def test_omega_validation(self):
        A = poisson2d(4)
        with pytest.raises(ValueError):
            sor(A, np.ones(16), omega=2.5)
        with pytest.raises(ValueError):
            sor(A, np.ones(16), omega=0.0)

    def test_exact_initial_guess(self, rng):
        A = poisson2d(6)
        x_true = rng.standard_normal(36)
        res = gauss_seidel(A, A @ x_true, x0=x_true.copy(), maxiter=5)
        assert res.converged

    def test_residual_history(self):
        A = poisson2d(6)
        res = gauss_seidel(A, np.ones(36), maxiter=10, tol=1e-14)
        assert len(res.residual_norms) == res.iterations + 1
        # GS on SPD is monotone in the energy norm; 2-norm close enough here
        assert res.residual_norms[-1] < res.residual_norms[0]


class TestSweepPreconditioner:
    def test_jacobi_sweeps_linear_operator(self, rng):
        """k fixed Jacobi sweeps from zero is a linear operator."""
        A = poisson2d(8)
        M = SweepPreconditioner(A, method="jacobi", sweeps=3)
        x, y = rng.standard_normal(64), rng.standard_normal(64)
        assert np.allclose(M.apply(x + 2 * y), M.apply(x) + 2 * M.apply(y), atol=1e-10)

    def test_accelerates_gmres(self, rng):
        A = poisson2d(14)
        b = rng.standard_normal(196)
        plain = gmres(A, b, restart=20, maxiter=5000)
        swept = gmres(
            A, b, restart=20, maxiter=5000,
            M=SweepPreconditioner(A, method="sor", sweeps=2),
        )
        assert swept.converged
        assert swept.num_matvec < plain.num_matvec

    def test_validation(self):
        A = poisson2d(4)
        with pytest.raises(ValueError):
            SweepPreconditioner(A, method="magic")
        with pytest.raises(ValueError):
            SweepPreconditioner(A, sweeps=0)
        bad = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ZeroDivisionError):
            SweepPreconditioner(bad)
