"""Unit tests for the COO builder."""

import numpy as np
import pytest

from repro.sparse import COOBuilder


class TestConstruction:
    def test_empty_builder_gives_zero_matrix(self):
        A = COOBuilder(3).to_csr()
        assert A.shape == (3, 3)
        assert A.nnz == 0

    def test_default_square(self):
        b = COOBuilder(4)
        assert b.ncols == 4

    def test_rectangular(self):
        b = COOBuilder(2, 5)
        b.add(1, 4, 2.0)
        A = b.to_csr()
        assert A.shape == (2, 5)
        assert A.get(1, 4) == 2.0

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            COOBuilder(-1)
        with pytest.raises(ValueError):
            COOBuilder(2, -3)

    def test_zero_size_matrix(self):
        A = COOBuilder(0).to_csr()
        assert A.shape == (0, 0)
        assert A.nnz == 0


class TestAdd:
    def test_single_entry(self):
        b = COOBuilder(3)
        b.add(0, 2, 5.0)
        A = b.to_csr()
        assert A.get(0, 2) == 5.0
        assert A.nnz == 1

    def test_duplicates_sum(self):
        b = COOBuilder(3)
        b.add(1, 1, 2.0)
        b.add(1, 1, 3.0)
        A = b.to_csr()
        assert A.get(1, 1) == 5.0
        assert A.nnz == 1

    def test_batch(self):
        b = COOBuilder(4)
        b.add_batch([0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        A = b.to_csr()
        assert A.nnz == 3
        assert A.get(2, 3) == 3.0

    def test_batch_length_mismatch(self):
        b = COOBuilder(4)
        with pytest.raises(ValueError):
            b.add_batch([0, 1], [1], [1.0, 2.0])

    def test_row_out_of_range(self):
        b = COOBuilder(3)
        with pytest.raises(IndexError):
            b.add(3, 0, 1.0)
        with pytest.raises(IndexError):
            b.add(-1, 0, 1.0)

    def test_col_out_of_range(self):
        b = COOBuilder(3)
        with pytest.raises(IndexError):
            b.add(0, 3, 1.0)

    def test_empty_batch_is_noop(self):
        b = COOBuilder(3)
        b.add_batch(np.empty(0), np.empty(0), np.empty(0))
        assert b.nnz_entries == 0


class TestFinalize:
    def test_nnz_entries_counts_raw(self):
        b = COOBuilder(3)
        b.add(0, 0, 1.0)
        b.add(0, 0, 1.0)
        assert b.nnz_entries == 2
        assert b.to_csr().nnz == 1

    def test_drop_zeros(self):
        b = COOBuilder(2)
        b.add(0, 0, 1.0)
        b.add(0, 0, -1.0)
        b.add(1, 1, 2.0)
        assert b.to_csr().nnz == 2  # zero kept by default
        assert b.to_csr(drop_zeros=True).nnz == 1

    def test_to_arrays_roundtrip(self):
        b = COOBuilder(3)
        b.add_batch([2, 0], [1, 2], [4.0, 5.0])
        rows, cols, vals = b.to_arrays()
        assert rows.tolist() == [2, 0]
        assert cols.tolist() == [1, 2]
        assert vals.tolist() == [4.0, 5.0]

    def test_matches_scipy_assembly(self, rng):
        import scipy.sparse as sp

        n = 30
        rows = rng.integers(0, n, 200)
        cols = rng.integers(0, n, 200)
        vals = rng.standard_normal(200)
        b = COOBuilder(n)
        b.add_batch(rows, cols, vals)
        A = b.to_csr()
        S = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        S.sum_duplicates()
        assert np.allclose(A.to_dense(), S.toarray())
