"""PERF001 bad twin: scalar CSR row loops on the cost-charged path."""


def charged_scalar_matvec(A, x, sim):
    y = x * 0
    for i in range(A.shape[0]):
        cols, vals = A.row(i)
        y[i] = (vals * x[cols]).sum()
    sim.compute(0, 2.0 * A.nnz)
    return y


def charged_row_walk(A, sim):
    total = 0.0
    for i, (cols, vals) in enumerate(A.iter_rows()):
        total += vals.sum()
    sim.compute(0, float(A.nnz))
    return total
