"""Incomplete LU factorizations — the paper's core contribution.

Sequential ILUT(m,t), ILU(0), ILU(k) baselines; the two-phase parallel
ILUT and ILUT*(m,t,k) on the machine simulator; level-scheduled parallel
triangular solves; and the §7 partition-based interface factorization.
"""

from .dropping import keep_largest, second_rule, third_rule
from .elimination import EliminationEngine, EliminationOutcome
from .factors import ILUFactors, LevelStructure
from .ilu0 import ilu0
from .iluk import iluk, iluk_symbolic
from .ilum import ilum
from .ilut import ilut
from .block_jacobi import BlockJacobiILU, block_jacobi_ilut
from .interface_partition import InterfacePartitionEngine, parallel_ilut_partitioned
from .parallel import ParallelILUResult, parallel_ilut, parallel_ilut_star
from .parallel_ilu0 import parallel_ilu0
from .params import ILUTParams
from .triangular import TriangularSolveResult, parallel_triangular_solve

__all__ = [
    "ILUTParams",
    "ilut",
    "ilu0",
    "iluk",
    "ilum",
    "parallel_ilu0",
    "block_jacobi_ilut",
    "BlockJacobiILU",
    "iluk_symbolic",
    "ILUFactors",
    "LevelStructure",
    "parallel_ilut",
    "parallel_ilut_star",
    "ParallelILUResult",
    "parallel_triangular_solve",
    "TriangularSolveResult",
    "parallel_ilut_partitioned",
    "InterfacePartitionEngine",
    "EliminationEngine",
    "EliminationOutcome",
    "keep_largest",
    "second_rule",
    "third_rule",
]
