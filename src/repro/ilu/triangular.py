"""Parallel forward/backward substitution (paper §5).

The application of the preconditioner — solving ``(I+L) y = b`` then
``U x = y`` — reuses the exact structure the parallel factorization
imposed (Figure 3):

* **forward**: each rank solves its interior block concurrently (the
  interior L blocks are mutually independent), then the interface
  levels are swept in factorization order; after each level the freshly
  computed ``x`` values are sent to the ranks whose later rows reference
  them, and a barrier separates the levels (the ``q`` implicit
  synchronisation points of the paper);
* **backward**: the same in reverse — interface levels last-to-first,
  then the interior blocks.

The communicated volume is proportional to the number of interface
nodes (like a matvec); what distinguishes it from the matvec is the
``q`` level synchronisations, which is why ILUT* (smaller ``q``)
produces cheaper triangular solves — the effect Table 2 and Figure 6
measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..faults import FaultJournal, FaultPlan
from ..machine import CRAY_T3D, CommStats, MachineModel, Simulator
from .factors import ILUFactors

if TYPE_CHECKING:
    from ..verify.trace import AccessTracer

__all__ = ["TriangularSolveResult", "parallel_triangular_solve"]


@dataclass
class TriangularSolveResult:
    """Solution of one forward+backward substitution on the simulator."""

    x: np.ndarray
    modeled_time: float | None
    comm: CommStats | None
    flops: float
    trace: AccessTracer | None = None
    fault_journal: FaultJournal | None = None


def _cross_rank_receivers(
    M_csc_like: dict[int, set[int]],
    owner: np.ndarray,
    positions: np.ndarray,
) -> dict[tuple[int, int], int]:
    """Words each (src, dst) rank pair exchanges for the given level.

    ``M_csc_like[p]`` is the set of ranks owning rows that reference
    column position ``p``.
    """
    words: dict[tuple[int, int], int] = {}
    for p in positions:
        src = int(owner[p])
        for dst in M_csc_like.get(int(p), ()):  # ranks needing x[p]
            if dst != src:
                key = (src, dst)
                words[key] = words.get(key, 0) + 1
    return words


def _column_consumers(M, owner: np.ndarray) -> dict[int, set[int]]:
    """For each column position, the ranks owning rows that reference it."""
    consumers: dict[int, set[int]] = {}
    nrows = M.shape[0]
    for i in range(nrows):
        cols, _ = M.row(i)
        r = int(owner[i])
        for c in cols:
            consumers.setdefault(int(c), set()).add(r)
    return consumers


def _solve_vectorized(factors, b, sim, tr):
    """Vectorized backend of :func:`parallel_triangular_solve`.

    Numerics run through the cached batched level schedules; the
    simulator is driven with the same per-rank charges, messages and
    barriers as the reference loop (compute costs are integer-valued, so
    batched summation reproduces ``modeled_time`` bit for bit), and when
    a tracer is active the shared-``x`` accesses are declared row by row
    exactly as the reference does — race detection sees the same
    program.
    """
    from ..kernels.triangular import cached_schedules

    levels = factors.levels
    owner = levels.owner
    L, U = factors.L, factors.U
    l_nnz = np.diff(L.indptr)
    u_nnz = np.diff(U.indptr)
    nranks = sim.nranks if sim is not None else (int(owner.max()) + 1 if owner.size else 1)
    # Per-rank accumulator instead of a shared nonlocal: every charge is
    # integer-valued, so the final sum is exact and order-independent.
    flops_rank = np.zeros(nranks, dtype=np.float64)

    def charge(rank: int, fl: float) -> None:
        flops_rank[rank] += fl
        if sim is not None:
            sim.compute(rank, fl)

    fwd, bwd = cached_schedules(factors)
    bp = b[factors.perm]
    y = fwd.solve(bp)

    # ------------------------------------------------------- forward
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        rank = int(owner[s])
        if tr is not None:
            for i in range(s, e):
                cols, _ = L.row(i)
                if cols.size:
                    tr.read_many(rank, "x", cols)
                tr.write(rank, "x", i)
        charge(rank, int(2 * l_nnz[s:e].sum()))
    if sim is not None:
        sim.barrier()

    l_consumers = _column_consumers(L, owner) if sim is not None else {}
    for lvl_idx, positions in enumerate(levels.interface_levels):
        if tr is not None:
            for p in positions:
                cols, _ = L.row(int(p))
                if cols.size:
                    tr.read_many(int(owner[p]), "x", cols)
                tr.write(int(owner[p]), "x", int(p))
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size:
            per = np.bincount(owner[pos], weights=2.0 * l_nnz[pos])
            for rank in np.unique(owner[pos]):
                charge(int(rank), float(per[rank]))
        if sim is not None:
            words = _cross_rank_receivers(l_consumers, owner, positions)
            for (src, dst), w in sorted(words.items()):
                sim.send(src, dst, None, float(w), tag=("fwd", lvl_idx))
            for (src, dst), _w in sorted(words.items()):
                sim.recv(dst, src, tag=("fwd", lvl_idx))
            sim.barrier()

    # ------------------------------------------------------- backward
    u_consumers = _column_consumers(U, owner) if sim is not None else {}
    for lvl_idx in range(len(levels.interface_levels) - 1, -1, -1):
        positions = levels.interface_levels[lvl_idx]
        if tr is not None:
            for p in positions[::-1]:
                cols, _ = U.row(int(p))
                if cols.size > 1:
                    tr.read_many(int(owner[p]), "x", cols[1:])
                tr.write(int(owner[p]), "x", int(p))
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size:
            per = np.bincount(owner[pos], weights=2.0 * (u_nnz[pos] - 1) + 1.0)
            for rank in np.unique(owner[pos]):
                charge(int(rank), float(per[rank]))
        if sim is not None:
            words = _cross_rank_receivers(u_consumers, owner, positions)
            for (src, dst), w in sorted(words.items()):
                sim.send(src, dst, None, float(w), tag=("bwd", lvl_idx))
            for (src, dst), _w in sorted(words.items()):
                sim.recv(dst, src, tag=("bwd", lvl_idx))
            sim.barrier()
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        rank = int(owner[s])
        if tr is not None:
            for i in range(e - 1, s - 1, -1):
                cols, _ = U.row(i)
                if cols.size > 1:
                    tr.read_many(rank, "x", cols[1:])
                tr.write(rank, "x", i)
        charge(rank, float((2.0 * (u_nnz[s:e] - 1) + 1.0).sum()))
    if sim is not None:
        sim.barrier()

    x = bwd.solve(y)
    out = np.empty_like(x)
    out[factors.perm] = x
    return TriangularSolveResult(
        x=out,
        modeled_time=sim.elapsed() if sim is not None else None,
        comm=sim.stats() if sim is not None else None,
        flops=float(flops_rank.sum()),
        trace=tr,
        fault_journal=sim.fault_journal if sim is not None else None,
    )


def parallel_triangular_solve(
    factors: ILUFactors,
    b: np.ndarray,
    *,
    nranks: int | None = None,
    model: MachineModel = CRAY_T3D,
    simulate: bool = True,
    trace: bool = False,
    backend: str | None = None,
    faults: FaultPlan | None = None,
    copy_payloads: bool = False,
) -> TriangularSolveResult:
    """Apply the preconditioner ``M^{-1} b`` with the two-phase schedule.

    ``b`` and the returned ``x`` are in *original* ordering.  The factors
    must carry a :class:`~repro.ilu.factors.LevelStructure` (i.e. come
    from a parallel factorization).

    With ``backend="vectorized"`` the substitution itself runs through
    the cached batched level schedules
    (:func:`repro.kernels.triangular.cached_schedules`) while the cost
    accounting, messages and (when tracing) shared-access declarations
    follow the reference schedule row for row: ``modeled_time``, ``comm``
    and race-detection results are identical to the reference backend,
    and ``x`` agrees to roundoff.

    ``faults`` arms a :class:`~repro.faults.FaultPlan` on the simulator
    (requires ``simulate=True``); message-level faults surface as
    :class:`~repro.faults.MessageLost` / :class:`~repro.faults.RankFailure`
    and the journal is returned on the result.

    ``copy_payloads=True`` pickle round-trips every simulated message at
    post time (the serializing-transport debug oracle; requires
    ``simulate=True``) — results are bit-identical.
    """
    if factors.levels is None:
        raise ValueError(
            "factors carry no level structure; use a parallel factorization "
            "or the sequential solves in repro.sparse.ops"
        )
    levels = factors.levels
    owner = levels.owner
    n = factors.n
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, expected ({n},)")
    if nranks is None:
        nranks = int(owner.max()) + 1 if owner.size else 1
    if trace and not simulate:
        raise ValueError("trace=True requires simulate=True")
    if faults is not None and not simulate:
        raise ValueError("faults= requires simulate=True")
    if copy_payloads and not simulate:
        raise ValueError("copy_payloads=True requires simulate=True")
    sim = (
        Simulator(nranks, model, trace=trace, faults=faults, copy_payloads=copy_payloads)
        if simulate
        else None
    )
    tr = sim.tracer if sim is not None else None
    L, U = factors.L, factors.U
    # Per-rank accumulator instead of a shared nonlocal: every charge is
    # integer-valued, so the final sum is exact and order-independent.
    flops_rank = np.zeros(nranks, dtype=np.float64)

    def charge(rank: int, fl: float) -> None:
        flops_rank[rank] += fl
        if sim is not None:
            sim.compute(rank, fl)

    from ..kernels.backend import VECTORIZED, resolve_backend

    if resolve_backend(backend) == VECTORIZED:
        return _solve_vectorized(factors, b, sim, tr)

    # ------------------------------------------------------- forward
    bp = b[factors.perm]
    y = bp.copy()
    # interior blocks: independent across ranks
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        rank = int(owner[s])
        fl = 0
        for i in range(s, e):
            cols, vals = L.row(i)
            if cols.size:
                if tr is not None:
                    tr.read_many(rank, "x", cols)
                y[i] -= np.dot(vals, y[cols])
                fl += 2 * cols.size
            if tr is not None:
                tr.write(rank, "x", i)
        charge(rank, fl)
    if sim is not None:
        sim.barrier()

    l_consumers = _column_consumers(L, owner) if sim is not None else {}
    for lvl_idx, positions in enumerate(levels.interface_levels):
        per_rank_fl: dict[int, float] = {}
        for p in positions:
            cols, vals = L.row(int(p))
            if cols.size:
                if tr is not None:
                    tr.read_many(int(owner[p]), "x", cols)
                y[p] -= np.dot(vals, y[cols])
            if tr is not None:
                tr.write(int(owner[p]), "x", int(p))
            per_rank_fl[int(owner[p])] = per_rank_fl.get(int(owner[p]), 0.0) + 2.0 * cols.size
        for rank, fl in sorted(per_rank_fl.items()):
            charge(rank, fl)
        if sim is not None:
            words = _cross_rank_receivers(l_consumers, owner, positions)
            for (src, dst), w in sorted(words.items()):
                sim.send(src, dst, None, float(w), tag=("fwd", lvl_idx))
            for (src, dst), _w in sorted(words.items()):
                sim.recv(dst, src, tag=("fwd", lvl_idx))
            sim.barrier()

    # ------------------------------------------------------- backward
    x = y
    u_consumers = _column_consumers(U, owner) if sim is not None else {}
    for lvl_idx in range(len(levels.interface_levels) - 1, -1, -1):
        positions = levels.interface_levels[lvl_idx]
        per_rank_fl = {}
        for p in positions[::-1]:
            cols, vals = U.row(int(p))
            # diagonal stored first (position p itself)
            if cols.size > 1:
                if tr is not None:
                    tr.read_many(int(owner[p]), "x", cols[1:])
                x[p] -= np.dot(vals[1:], x[cols[1:]])
            x[p] /= vals[0]
            if tr is not None:
                tr.write(int(owner[p]), "x", int(p))
            per_rank_fl[int(owner[p])] = (
                per_rank_fl.get(int(owner[p]), 0.0) + 2.0 * (cols.size - 1) + 1.0
            )
        for rank, fl in sorted(per_rank_fl.items()):
            charge(rank, fl)
        if sim is not None:
            words = _cross_rank_receivers(u_consumers, owner, positions)
            # in the backward sweep values flow to *earlier* rows
            for (src, dst), w in sorted(words.items()):
                sim.send(src, dst, None, float(w), tag=("bwd", lvl_idx))
            for (src, dst), _w in sorted(words.items()):
                sim.recv(dst, src, tag=("bwd", lvl_idx))
            sim.barrier()
    for (s, e) in levels.interior_ranges:
        if s == e:
            continue
        rank = int(owner[s])
        fl = 0.0
        for i in range(e - 1, s - 1, -1):
            cols, vals = U.row(i)
            if cols.size > 1:
                if tr is not None:
                    tr.read_many(rank, "x", cols[1:])
                x[i] -= np.dot(vals[1:], x[cols[1:]])
            x[i] /= vals[0]
            if tr is not None:
                tr.write(rank, "x", i)
            fl += 2.0 * (cols.size - 1) + 1.0
        charge(rank, fl)
    if sim is not None:
        sim.barrier()

    out = np.empty_like(x)
    out[factors.perm] = x
    return TriangularSolveResult(
        x=out,
        modeled_time=sim.elapsed() if sim is not None else None,
        comm=sim.stats() if sim is not None else None,
        flops=float(flops_rank.sum()),
        trace=tr,
        fault_journal=sim.fault_journal if sim is not None else None,
    )
