"""Unit tests for EliminationEngine internals."""

import numpy as np
import pytest

from repro.decomp import decompose
from repro.ilu.elimination import EliminationEngine, _merge_rows
from repro.machine import CRAY_T3D, Simulator
from repro.matrices import poisson2d, random_diag_dominant


class TestMergeRows:
    def test_disjoint(self):
        c, v = _merge_rows(
            np.array([1, 3]), np.array([1.0, 3.0]),
            np.array([2, 5]), np.array([2.0, 5.0]),
        )
        assert c.tolist() == [1, 2, 3, 5]
        assert v.tolist() == [1.0, 2.0, 3.0, 5.0]

    def test_overlap_sums(self):
        c, v = _merge_rows(
            np.array([1, 3]), np.array([1.0, 3.0]),
            np.array([3, 4]), np.array([10.0, 4.0]),
        )
        assert c.tolist() == [1, 3, 4]
        assert v.tolist() == [1.0, 13.0, 4.0]

    def test_empty_sides(self):
        e_c = np.empty(0, dtype=np.int64)
        e_v = np.empty(0)
        c, v = _merge_rows(e_c, e_v, np.array([2]), np.array([2.0]))
        assert c.tolist() == [2]
        c, v = _merge_rows(np.array([1]), np.array([1.0]), e_c, e_v)
        assert c.tolist() == [1]
        c, v = _merge_rows(e_c, e_v, e_c, e_v)
        assert c.size == 0

    def test_inputs_not_mutated(self):
        c1 = np.array([1])
        v1 = np.array([1.0])
        c, v = _merge_rows(c1, v1, np.array([1]), np.array([2.0]))
        assert v1[0] == 1.0


class TestEngineValidation:
    def _engine(self, **kw):
        A = poisson2d(8)
        d = decompose(A, 2, seed=0)
        return EliminationEngine(d, 5, 1e-3, **kw)

    def test_invalid_params(self):
        A = poisson2d(8)
        d = decompose(A, 2, seed=0)
        with pytest.raises(ValueError):
            EliminationEngine(d, -1, 1e-3)
        with pytest.raises(ValueError):
            EliminationEngine(d, 5, -1e-3)
        with pytest.raises(ValueError):
            EliminationEngine(d, 5, 1e-3, reduced_cap=0)

    def test_max_levels_guard(self):
        A = random_diag_dominant(30, 6, seed=0)
        d = decompose(A, 4, seed=0)
        engine = EliminationEngine(d, 30, 0.0, max_levels=1)
        with pytest.raises(RuntimeError, match="did not terminate"):
            engine.run()

    def test_counters_populated(self):
        engine = self._engine()
        outcome = engine.run()
        assert outcome.flops > 0
        assert outcome.words_copied > 0
        assert outcome.num_levels == len(outcome.level_sizes)

    def test_u_rows_communicated_with_sim(self):
        A = poisson2d(10)
        d = decompose(A, 4, seed=0)
        sim = Simulator(4, CRAY_T3D)
        outcome = EliminationEngine(d, 5, 1e-3, sim=sim).run()
        assert outcome.u_rows_communicated > 0
        # every posted message was consumed
        assert sim.pending_messages() == 0

    def test_zero_mis_rounds_still_progresses(self):
        # rounds=0 returns an empty set; engine must raise cleanly rather
        # than loop forever
        A = poisson2d(6)
        d = decompose(A, 2, seed=0)
        engine = EliminationEngine(d, 5, 1e-3, mis_rounds=0, max_levels=50)
        with pytest.raises(RuntimeError):
            engine.run()


class TestEngineSemantics:
    def test_l_rows_only_factored_columns(self):
        A = poisson2d(10)
        d = decompose(A, 4, seed=0)
        engine = EliminationEngine(d, 5, 1e-3)
        outcome = engine.run()
        pos = engine.pos
        for i, (lc, _lv) in engine.l_rows.items():
            for c in lc:
                assert pos[c] < pos[i], f"L[{i}] references later column {c}"

    def test_u_rows_diag_first(self):
        A = poisson2d(8)
        d = decompose(A, 2, seed=0)
        engine = EliminationEngine(d, 5, 1e-3)
        engine.run()
        for i, (uc, uv) in engine.u_rows.items():
            assert uc[0] == i
            assert uv[0] != 0.0

    def test_reduced_rows_consumed(self):
        A = poisson2d(8)
        d = decompose(A, 4, seed=0)
        engine = EliminationEngine(d, 5, 1e-3)
        engine.run()
        assert engine.reduced == {}

    def test_reduced_cap_bounds_rows_during_run(self):
        """ILUT*'s invariant: no reduced row ever exceeds the cap."""

        class SpyEngine(EliminationEngine):
            max_seen = 0

            def _update_remaining(self, iset):
                super()._update_remaining(iset)
                for cols, _ in self.reduced.values():
                    SpyEngine.max_seen = max(SpyEngine.max_seen, cols.size)

        A = poisson2d(12)
        d = decompose(A, 4, seed=0)
        cap = 6
        engine = SpyEngine(d, 3, 1e-8, reduced_cap=cap)
        engine.run()
        assert SpyEngine.max_seen <= cap
