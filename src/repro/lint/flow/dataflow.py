"""A small monotone dataflow framework plus the two standard instances.

The solver (:func:`solve_forward`) is the classic worklist iteration
over a :class:`~repro.lint.flow.cfg.CFG`: states live on block *entry*,
``transfer`` pushes a state through a block, ``join`` merges states at
confluence points.  Termination is guaranteed for the finite/bounded
lattices used here.

Instances
---------
:class:`ReachingDefinitions`
    ``name -> set of definition sites`` (a site is ``(line, col)`` of
    the assignment statement).  The taint analyses and the SPMD003
    copy-chain refinement consume this.

:class:`ConstantPropagation`
    The standard constant lattice ``UNDEF < const < NAC`` per name,
    with an evaluator (:func:`eval_const_expr`) covering arithmetic,
    comparisons, boolean operators, tuples and a few pure builtins.
    The hypothesis property suite checks the evaluator against
    ``eval`` on generated straight-line programs; the SPMD002 upgrade
    uses :func:`constant_env_at` to discharge branch conditions that
    only *look* rank-dependent.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Hashable

from .cfg import CFG, build_cfg

__all__ = [
    "UNDEF",
    "NAC",
    "solve_forward",
    "ReachingDefinitions",
    "ConstantPropagation",
    "eval_const_expr",
    "constant_env_at",
    "assigned_names",
    "stmt_mutations",
    "statements_after",
]


class _Sentinel:
    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return self.label


#: Lattice bottom: no definition reaches here (unknown-but-unique).
UNDEF = _Sentinel("UNDEF")
#: Lattice top: conflicting/unanalyzable value ("not a constant").
NAC = _Sentinel("NAC")


def assigned_names(stmt: ast.stmt) -> list[str]:
    """Plain names (re)bound by ``stmt`` (targets of assignments/loops)."""
    out: list[str] = []

    def targets(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            out.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                targets(elt)
        elif isinstance(node, ast.Starred):
            targets(node.value)

    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            targets(t)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets(item.optional_vars)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            out.append((alias.asname or alias.name).split(".")[0])
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.append(stmt.name)
    return out


#: Method names that mutate their receiver in place (list/dict/set and
#: ndarray vocabulary).  ``sort``/``pop`` are deliberately included even
#: though some receivers return values — the receiver changes either way.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "update", "add", "discard", "setdefault", "popitem",
        "fill", "resize", "put", "itemset", "partition_inplace",
    }
)


def stmt_mutations(stmt: ast.stmt) -> list[tuple[str, str, int]]:
    """In-place mutations ``stmt`` performs, as ``(name, how, line)``.

    Covers subscript/attribute assignment and aug-assignment rooted at a
    bare name (``x[i] = v``, ``x.field += v``), aug-assignment of the
    name itself (``x += v`` — a rebind for scalars but an in-place
    ``__iadd__`` for ndarrays/lists; callers filter by inferred type),
    and mutator method calls (``x.append(v)``, ``x.fill(0)``).  Plain
    rebinding (``x = v``) is *not* a mutation: the old object — the one
    a transport would already have serialized — is unaffected.
    """
    out: list[tuple[str, str, int]] = []

    def root(node: ast.expr) -> ast.expr:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return node

    def record_target(target: ast.expr, how: str, line: int) -> None:
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = root(target)
            if isinstance(base, ast.Name):
                out.append((base.id, how, line))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                record_target(elt, how, line)

    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested scopes are analysed on their own
        if isinstance(node, ast.Assign):
            for t in node.targets:
                record_target(t, "element/attribute assignment", node.lineno)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, ast.Name) and isinstance(node, ast.AugAssign):
                out.append((node.target.id, "augmented assignment", node.lineno))
            else:
                record_target(node.target, "element/attribute assignment", node.lineno)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                base = root(node.func.value)
                if isinstance(base, ast.Name):
                    out.append(
                        (base.id, f".{node.func.attr}() call", node.lineno)
                    )
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                record_target(t, "element deletion", node.lineno)
    return out


def statements_after(cfg: CFG, stmt: ast.stmt) -> list[ast.stmt]:
    """Every statement that may execute *after* ``stmt`` completes.

    Forward CFG reachability: the remainder of ``stmt``'s block plus
    every statement of every transitively reachable successor block.
    Loop back-edges make the loop body (including ``stmt`` itself)
    reachable again — which is exactly right for the aliasing rule: a
    mutation earlier in a loop body still happens *after* a send later
    in the same body, one iteration on.
    """
    block = cfg.block_of(stmt)
    if block is None:
        return []
    reached: set[int] = set()
    work = list(block.succs)
    while work:
        bid = work.pop()
        if bid in reached:
            continue
        reached.add(bid)
        work.extend(cfg.blocks[bid].succs)
    out: list[ast.stmt] = []
    tail = False
    for s in block.stmts:
        if tail:
            out.append(s)
        if s is stmt:
            tail = True
    for bid in sorted(reached):
        if bid == block.id:
            # the block loops back to itself: its head re-executes
            for s in block.stmts:
                out.append(s)
                if s is stmt:
                    break
            continue
        out.extend(cfg.blocks[bid].stmts)
    return out


def solve_forward(
    cfg: CFG,
    initial: Any,
    transfer: Callable[[Any, ast.stmt], Any],
    join: Callable[[list[Any]], Any],
    *,
    max_iters: int = 10_000,
) -> dict[int, Any]:
    """Worklist fixpoint; returns the state at *entry* of every block."""
    states: dict[int, Any] = {cfg.entry: initial}
    order = cfg.rpo()
    work = list(order)
    iters = 0
    while work:
        iters += 1
        if iters > max_iters:  # defensive: bounded lattices converge long before
            break
        bid = work.pop(0)
        block = cfg.blocks[bid]
        preds_out = []
        for p in block.preds:
            if p in states:
                s = states[p]
                for stmt in cfg.blocks[p].stmts:
                    s = transfer(s, stmt)
                preds_out.append(s)
        entry_state = (
            initial if bid == cfg.entry else join(preds_out) if preds_out else None
        )
        if bid == cfg.entry and preds_out:  # loop back to entry (module CFGs)
            entry_state = join([initial, *preds_out])
        if entry_state is None:
            continue
        if bid not in states or states[bid] != entry_state:
            states[bid] = entry_state
            for s in block.succs:
                if s not in work:
                    work.append(s)
    return states


# ----------------------------------------------------------------------
# reaching definitions
# ----------------------------------------------------------------------


class ReachingDefinitions:
    """``name -> frozenset((line, col))`` of reaching assignment sites."""

    def __init__(self, func: ast.AST) -> None:
        self.cfg = func if isinstance(func, CFG) else build_cfg(func)
        params = self._param_names(self.cfg.node)
        initial = {p: frozenset({(0, 0)}) for p in params}
        self.entry_states = solve_forward(
            self.cfg, initial, self._transfer, self._join
        )
        #: definition expression per site, for chain rendering
        self.def_exprs: dict[tuple[int, int], ast.stmt] = {}
        for stmt in self.cfg.statements():
            if assigned_names(stmt):
                self.def_exprs[(stmt.lineno, stmt.col_offset)] = stmt

    @staticmethod
    def _param_names(node: ast.AST | None) -> list[str]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return []
        a = node.args
        names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
        if a.vararg:
            names.append(a.vararg.arg)
        if a.kwarg:
            names.append(a.kwarg.arg)
        return names

    @staticmethod
    def _transfer(state: dict, stmt: ast.stmt) -> dict:
        names = assigned_names(stmt)
        if not names:
            return state
        new = dict(state)
        site = frozenset({(stmt.lineno, stmt.col_offset)})
        for n in names:
            new[n] = site
        return new

    @staticmethod
    def _join(states: list[dict]) -> dict:
        out: dict[str, frozenset] = {}
        for s in states:
            for k, v in s.items():
                out[k] = out.get(k, frozenset()) | v
        return out

    def defs_at(self, node: ast.AST) -> dict[str, frozenset]:
        """Reaching definitions at the statement containing ``node``."""
        stmt = node if isinstance(node, ast.stmt) else _enclosing_stmt(node)
        if stmt is None:
            return {}
        block = self.cfg.block_of(stmt)
        if block is None or block.id not in self.entry_states:
            return {}
        state = self.entry_states[block.id]
        for s in block.stmts:
            if s is stmt:
                return state
            state = self._transfer(state, s)
        return state


def _enclosing_stmt(node: ast.AST) -> ast.stmt | None:
    cur: ast.AST | None = node
    while cur is not None and not isinstance(cur, ast.stmt):
        cur = getattr(cur, "_lint_parent", None)
    return cur


# ----------------------------------------------------------------------
# constant propagation
# ----------------------------------------------------------------------

_PURE_BUILTINS: dict[str, Callable] = {
    "abs": abs,
    "min": min,
    "max": max,
    "len": len,
    "int": int,
    "float": float,
    "bool": bool,
    "str": str,
    "round": round,
    "sum": sum,
    "sorted": sorted,
    "tuple": tuple,
}


def eval_const_expr(expr: ast.expr, env: dict[str, Any]) -> Any:
    """Evaluate ``expr`` over the constant environment ``env``.

    ``env`` maps names to Python values, :data:`UNDEF` or :data:`NAC`.
    Returns a value, or :data:`NAC` when any input is non-constant or
    the operation is outside the supported pure subset.  Mirrors
    CPython semantics exactly on the supported subset (the hypothesis
    suite enforces agreement with ``eval``).
    """
    try:
        return _eval(expr, env)
    except _NotConst:
        return NAC
    except Exception:  # ZeroDivisionError, TypeError, overflow, ...
        return NAC


class _NotConst(Exception):
    pass


def _eval(expr: ast.expr, env: dict[str, Any]) -> Any:
    if isinstance(expr, ast.Constant):
        return expr.value
    if isinstance(expr, ast.Name):
        val = env.get(expr.id, NAC)
        if val is NAC or val is UNDEF:
            raise _NotConst
        return val
    if isinstance(expr, ast.Tuple):
        return tuple(_eval(e, env) for e in expr.elts)
    if isinstance(expr, ast.List):
        return [_eval(e, env) for e in expr.elts]
    if isinstance(expr, ast.UnaryOp):
        v = _eval(expr.operand, env)
        if isinstance(expr.op, ast.USub):
            return -v
        if isinstance(expr.op, ast.UAdd):
            return +v
        if isinstance(expr.op, ast.Not):
            return not v
        if isinstance(expr.op, ast.Invert):
            return ~v
        raise _NotConst
    if isinstance(expr, ast.BinOp):
        left = _eval(expr.left, env)
        right = _eval(expr.right, env)
        return _BINOPS[type(expr.op)](left, right)
    if isinstance(expr, ast.BoolOp):
        # Python's short-circuit value semantics
        result = _eval(expr.values[0], env)
        for v in expr.values[1:]:
            take_next = bool(result) if isinstance(expr.op, ast.And) else not bool(result)
            if not take_next:
                return result
            result = _eval(v, env)
        return result
    if isinstance(expr, ast.Compare):
        left = _eval(expr.left, env)
        for op, comparator in zip(expr.ops, expr.comparators):
            right = _eval(comparator, env)
            if not _CMPOPS[type(op)](left, right):
                return False
            left = right
        return True
    if isinstance(expr, ast.IfExp):
        return (
            _eval(expr.body, env) if _eval(expr.test, env) else _eval(expr.orelse, env)
        )
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        fn = _PURE_BUILTINS.get(expr.func.id)
        if fn is None or expr.keywords:
            raise _NotConst
        return fn(*[_eval(a, env) for a in expr.args])
    raise _NotConst


_BINOPS: dict[type, Callable] = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitXor: lambda a, b: a ^ b,
}

_CMPOPS: dict[type, Callable] = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}


class ConstantPropagation:
    """Per-name constant lattice over a function CFG.

    ``seed`` pre-binds names (used by the protocol verifier to pin
    ``rank``/``nranks`` to concrete values per enumerated rank).
    """

    def __init__(self, func: ast.AST, *, seed: dict[str, Any] | None = None) -> None:
        self.cfg = func if isinstance(func, CFG) else build_cfg(func)
        initial: dict[str, Any] = {
            p: NAC for p in ReachingDefinitions._param_names(self.cfg.node)
        }
        if seed:
            initial.update(seed)
        self.entry_states = solve_forward(
            self.cfg, initial, self._transfer, self._join
        )

    @staticmethod
    def _transfer(state: dict, stmt: ast.stmt) -> dict:
        new = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                new = dict(state)
                new[target.id] = eval_const_expr(stmt.value, state)
            elif isinstance(target, ast.Tuple) and all(
                isinstance(e, ast.Name) for e in target.elts
            ):
                val = eval_const_expr(stmt.value, state)
                new = dict(state)
                if (
                    isinstance(val, (tuple, list))
                    and len(val) == len(target.elts)
                ):
                    for e, v in zip(target.elts, val):
                        new[e.id] = v  # type: ignore[attr-defined]
                else:
                    for e in target.elts:
                        new[e.id] = NAC  # type: ignore[attr-defined]
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                new = dict(state)
                new[stmt.target.id] = eval_const_expr(stmt.value, state)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            new = dict(state)
            cur = state.get(stmt.target.id, UNDEF)
            if cur is NAC or cur is UNDEF:
                new[stmt.target.id] = NAC
            else:
                op = ast.BinOp(
                    left=ast.Constant(value=cur), op=stmt.op, right=stmt.value
                )
                new[stmt.target.id] = eval_const_expr(op, state)
        else:
            names = assigned_names(stmt)
            if names:
                new = dict(state)
                for n in names:
                    new[n] = NAC
        return state if new is None else new

    @staticmethod
    def _join(states: list[dict]) -> dict:
        keys = set()
        for s in states:
            keys |= set(s)
        out: dict[str, Any] = {}
        for k in keys:
            vals = [s.get(k, UNDEF) for s in states]
            merged: Any = UNDEF
            for v in vals:
                if v is UNDEF:
                    continue
                if merged is UNDEF:
                    merged = v
                elif merged is NAC or v is NAC:
                    merged = NAC
                elif type(merged) is type(v) and merged == v:
                    pass
                else:
                    merged = NAC
            out[k] = merged
        return out

    def env_at(self, node: ast.AST) -> dict[str, Any]:
        """Constant environment just before the statement holding ``node``."""
        stmt = node if isinstance(node, ast.stmt) else _enclosing_stmt(node)
        if stmt is None:
            return {}
        block = self.cfg.block_of(stmt)
        if block is None or block.id not in self.entry_states:
            return {}
        state = self.entry_states[block.id]
        for s in block.stmts:
            if s is stmt:
                return state
            state = self._transfer(state, s)
        return state


def constant_env_at(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    node: ast.AST,
    *,
    seed: dict[str, Hashable] | None = None,
) -> dict[str, Any]:
    """Convenience wrapper: constants reaching ``node`` inside ``func``."""
    return ConstantPropagation(func, seed=seed).env_at(node)
