"""ILU(k): level-of-fill incomplete factorization (static-pattern baseline).

Fill entries propagate up to ``k`` levels (paper §2): the level of a
fill at (i, j) caused by eliminating k is
``lev(i,j) = min(lev(i,j), lev(i,k) + lev(k,j) + 1)`` with original
entries at level 0; positions with level > k are discarded.  The pattern
is computed symbolically first, then a numeric factorization runs on
that fixed pattern — which is what makes ILU(k) colourable/parallel but
magnitude-blind (the weakness threshold-based ILUT addresses).
"""

from __future__ import annotations

import numpy as np

from ..resilience import ZeroPivotError
from ..sparse import COOBuilder, CSRMatrix, SparseRowAccumulator
from .factors import ILUFactors

__all__ = ["iluk", "iluk_symbolic"]


def iluk_symbolic(A: CSRMatrix, k: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Symbolic ILU(k): per-row (cols, levels) of the kept pattern.

    Row-by-row IKJ symbolic elimination keeping positions with fill
    level <= k.
    """
    n = A.shape[0]
    rows: list[tuple[np.ndarray, np.ndarray]] = []
    # store upper parts (incl diag) of processed rows for updates
    upper: list[tuple[np.ndarray, np.ndarray]] = []
    INF = np.iinfo(np.int64).max // 4
    for i in range(n):
        cols, _ = A.row(i)
        lev: dict[int, int] = {int(c): 0 for c in cols}
        if i not in lev:
            lev[i] = 0  # diagonal position always tracked
        # ascending pivot scan with dynamic fill
        import heapq

        heap = [c for c in lev if c < i]
        heapq.heapify(heap)
        done = -1
        while heap:
            kk = heapq.heappop(heap)
            if kk <= done:
                continue
            done = kk
            lik = lev.get(kk, INF)
            if lik > k:
                continue
            ucols, ulevs = upper[kk]
            for c, lu in zip(ucols, ulevs):
                c = int(c)
                if c == kk:
                    continue
                cand = lik + int(lu) + 1
                cur = lev.get(c, INF)
                if cand < cur:
                    lev[c] = cand
                    if c < i and cur > k >= cand:
                        heapq.heappush(heap, c)
        kept = sorted(c for c, l in lev.items() if l <= k)
        levels = np.asarray([lev[c] for c in kept], dtype=np.int64)
        kept_arr = np.asarray(kept, dtype=np.int64)
        rows.append((kept_arr, levels))
        up = kept_arr >= i
        upper.append((kept_arr[up], levels[up]))
    return rows


def iluk(A: CSRMatrix, k: int, *, diag_guard: bool = True) -> ILUFactors:
    """Compute ILU(k) of ``A`` in natural order."""
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"ILU(k) requires a square matrix, got {A.shape}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")

    pattern = iluk_symbolic(A, k)
    w = SparseRowAccumulator(n)
    u_rows: list[tuple[np.ndarray, np.ndarray]] = []
    l_builder = COOBuilder(n)
    u_builder = COOBuilder(n)
    flops = 0
    allowed = np.zeros(n, dtype=bool)

    for i in range(n):
        cols, vals = A.row(i)
        w.load(cols, vals)
        pat_cols, _ = pattern[i]
        allowed[pat_cols] = True
        for kk in (int(c) for c in pat_cols if c < i):
            wk = w.get(kk)
            if wk == 0.0:
                continue
            ucols, uvals = u_rows[kk]
            pivot = uvals[0]
            wk = wk / pivot
            flops += 1
            w.set(kk, wk)
            if ucols.size > 1:
                tail = ucols[1:]
                keep = allowed[tail]
                if np.any(keep):
                    w.axpy(-wk, tail[keep], uvals[1:][keep])
                    flops += 2 * int(keep.sum())

        rcols, rvals = w.extract()
        inpat = allowed[rcols]
        rcols, rvals = rcols[inpat], rvals[inpat]
        lmask = rcols < i
        umask = rcols > i
        dmask = rcols == i
        diag = float(rvals[dmask][0]) if np.any(dmask) else 0.0
        if diag == 0.0:
            if not diag_guard:
                raise ZeroPivotError(f"zero pivot at row {i}", row=i, value=0.0)
            norm = float(np.sqrt(np.dot(vals, vals)))
            diag = norm if norm > 0 else 1.0
        if np.any(lmask):
            l_builder.add_batch(
                np.full(int(lmask.sum()), i, dtype=np.int64), rcols[lmask], rvals[lmask]
            )
        u_builder.add(i, i, diag)
        if np.any(umask):
            u_builder.add_batch(
                np.full(int(umask.sum()), i, dtype=np.int64), rcols[umask], rvals[umask]
            )
        u_rows.append(
            (
                np.concatenate(([i], rcols[umask])).astype(np.int64),
                np.concatenate(([diag], rvals[umask])),
            )
        )
        allowed[pat_cols] = False
        w.reset()

    L = l_builder.to_csr()
    U = u_builder.to_csr()
    return ILUFactors(
        L=L,
        U=U,
        perm=np.arange(n, dtype=np.int64),
        stats={"flops": flops, "fill_nnz": L.nnz + U.nnz, "k": k},
    )
