"""Unit tests for the ILUM multi-elimination factorization."""

import numpy as np
import pytest

from repro.ilu import ilum, ilut
from repro.ilu.apply import LevelScheduledApplier
from repro.matrices import poisson2d, random_diag_dominant
from repro.sparse import CSRMatrix


class TestExactLimit:
    def test_no_dropping_exact(self, small_diagdom):
        n = small_diagdom.shape[0]
        f = ilum(small_diagdom, n, 0.0)
        R = f.residual_matrix(small_diagdom)
        assert R.frobenius_norm() < 1e-9 * small_diagdom.frobenius_norm()

    def test_no_dropping_exact_poisson(self, small_poisson):
        n = small_poisson.shape[0]
        f = ilum(small_poisson, n, 0.0)
        assert f.residual_matrix(small_poisson).frobenius_norm() < 1e-8

    def test_solve_matches_direct(self, small_diagdom, rng):
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        A = small_diagdom
        n = A.shape[0]
        f = ilum(A, n, 0.0)
        b = rng.standard_normal(n)
        x_ref = spla.spsolve(
            sp.csr_matrix((A.data, A.indices, A.indptr), shape=A.shape).tocsc(), b
        )
        assert np.allclose(f.solve(b), x_ref, rtol=1e-8, atol=1e-9)


class TestStructure:
    def test_perm_bijection_and_levels(self, medium_poisson):
        f = ilum(medium_poisson, 5, 1e-3)
        n = medium_poisson.shape[0]
        assert sorted(f.perm.tolist()) == list(range(n))
        f.levels.validate(n)
        assert f.levels.num_levels >= 1

    def test_factors_triangular(self, medium_poisson):
        f = ilum(medium_poisson, 5, 1e-3)
        for i in range(f.n):
            lc, _ = f.L.row(i)
            uc, _ = f.U.row(i)
            assert lc.size == 0 or lc.max() < i
            assert uc.size and uc[0] == i

    def test_first_level_is_mis_of_A(self, small_poisson):
        """Level 0 rows are mutually independent in struct(A)."""
        f = ilum(small_poisson, 5, 1e-3)
        lvl0 = set(f.perm[f.levels.interface_levels[0]].tolist())
        for v in lvl0:
            cols, _ = small_poisson.row(v)
            assert not (set(cols.tolist()) & lvl0) - {v}

    def test_row_caps(self, medium_poisson):
        m = 4
        f = ilum(medium_poisson, m, 1e-4)
        assert f.L.row_nnz().max() <= m
        assert f.U.row_nnz().max() <= m + 1

    def test_fewer_apply_levels_than_natural_ilut(self, medium_poisson):
        """Multi-elimination ordering shortens dependency chains."""
        f_ilum = ilum(medium_poisson, 5, 1e-3)
        f_ilut = ilut(medium_poisson, 5, 1e-3)
        assert (
            LevelScheduledApplier(f_ilum).forward_levels
            < LevelScheduledApplier(f_ilut).forward_levels
        )


class TestQuality:
    def test_preconditioner_quality(self, medium_poisson, rng):
        from repro.solvers import ILUPreconditioner, gmres

        A = medium_poisson
        b = rng.standard_normal(A.shape[0])
        res = gmres(A, b, restart=20, M=ILUPreconditioner(ilum(A, 10, 1e-4)), maxiter=3000)
        plain = gmres(A, b, restart=20, maxiter=3000)
        assert res.converged
        assert res.num_matvec < 0.5 * plain.num_matvec

    def test_reduced_cap_variant(self, medium_poisson):
        f_capped = ilum(medium_poisson, 5, 1e-6, reduced_cap=10)
        f_plain = ilum(medium_poisson, 5, 1e-6)
        assert f_capped.levels.num_levels <= f_plain.levels.num_levels


class TestValidation:
    def test_rejects_bad_params(self, small_poisson):
        with pytest.raises(ValueError):
            ilum(CSRMatrix.zeros(2, 3), 1, 0.1)
        with pytest.raises(ValueError):
            ilum(small_poisson, -1, 0.1)
        with pytest.raises(ValueError):
            ilum(small_poisson, 1, -0.1)

    def test_max_levels_guard(self, small_diagdom):
        with pytest.raises(RuntimeError):
            ilum(small_diagdom, 60, 0.0, max_levels=1)

    def test_zero_pivot_guard(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        f = ilum(A, 2, 0.0, diag_guard=True)
        assert np.all(f.U.diagonal() != 0.0)

    def test_deterministic(self, medium_poisson):
        f1 = ilum(medium_poisson, 5, 1e-3, seed=4)
        f2 = ilum(medium_poisson, 5, 1e-3, seed=4)
        assert f1.L.allclose(f2.L, rtol=0, atol=0)
        assert np.array_equal(f1.perm, f2.perm)
