"""Sequential sparse kernels: triangular solves and related operations.

These are the reference (single-processor) versions; the level-scheduled
parallel formulations live in :mod:`repro.ilu.triangular`.
"""

from __future__ import annotations

import numpy as np

from ..resilience import ZeroDiagonalError, ZeroPivotError
from .csr import CSRMatrix

__all__ = [
    "lower_solve_unit",
    "upper_solve",
    "lower_solve",
    "split_lu",
    "count_triangular_flops",
]


def lower_solve_unit(L: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``(I + L) x = b`` where ``L`` is strictly lower triangular.

    This matches the library's factor convention: the L factor is stored
    without its (implicit, unit) diagonal.
    """
    n = L.shape[0]
    if L.shape[0] != L.shape[1]:
        raise ValueError(f"L must be square, got {L.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, expected ({n},)")
    x = b.copy()
    for i in range(n):
        cols, vals = L.row(i)
        if cols.size:
            if cols[-1] >= i:
                raise ValueError(f"L is not strictly lower triangular at row {i}")
            x[i] -= np.dot(vals, x[cols])
    return x


def upper_solve(U: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` where ``U`` is upper triangular with its diagonal stored."""
    n = U.shape[0]
    if U.shape[0] != U.shape[1]:
        raise ValueError(f"U must be square, got {U.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b has shape {b.shape}, expected ({n},)")
    x = b.copy()
    for i in range(n - 1, -1, -1):
        cols, vals = U.row(i)
        if cols.size == 0 or cols[0] != i:
            raise ZeroDiagonalError(f"U has no stored diagonal at row {i}", row=i)
        if vals[0] == 0.0:
            raise ZeroPivotError(f"zero pivot in U at row {i}", row=i, value=0.0)
        if cols.size > 1:
            x[i] -= np.dot(vals[1:], x[cols[1:]])
        x[i] /= vals[0]
    return x


def lower_solve(L: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L x = b`` for a lower-triangular ``L`` with stored diagonal."""
    n = L.shape[0]
    if L.shape[0] != L.shape[1]:
        raise ValueError(f"L must be square, got {L.shape}")
    b = np.asarray(b, dtype=np.float64)
    x = b.copy()
    for i in range(n):
        cols, vals = L.row(i)
        if cols.size == 0 or cols[-1] != i:
            raise ZeroDiagonalError(f"L has no stored diagonal at row {i}", row=i)
        if vals[-1] == 0.0:
            raise ZeroPivotError(f"zero pivot in L at row {i}", row=i, value=0.0)
        if cols.size > 1:
            x[i] -= np.dot(vals[:-1], x[cols[:-1]])
        x[i] /= vals[-1]
    return x


def split_lu(
    A: CSRMatrix,
    *,
    require_diagonal: bool = True,
    backend: str | None = None,
) -> tuple[CSRMatrix, np.ndarray, CSRMatrix]:
    """Split ``A`` into (strict lower CSR, diagonal vector, strict upper CSR).

    The splittings feed relaxation sweeps and preconditioners that divide
    by the diagonal, so by default a zero or structurally missing
    diagonal entry raises
    :class:`~repro.verify.invariants.InvariantViolation` naming the
    offending row (pass ``require_diagonal=False`` to get the raw split
    with zeros instead).  ``backend="vectorized"`` selects the
    element-exact whole-array kernel.
    """
    from ..kernels.backend import VECTORIZED, resolve_backend

    if resolve_backend(backend) == VECTORIZED:
        from ..kernels.csr import split_lu_vectorized

        L, diag, U = split_lu_vectorized(A)
        if require_diagonal:
            _require_nonzero_diagonal(diag)
        return L, diag, U
    n = A.shape[0]
    lr: list[np.ndarray] = []
    lc: list[np.ndarray] = []
    lv: list[np.ndarray] = []
    ur: list[np.ndarray] = []
    uc: list[np.ndarray] = []
    uv: list[np.ndarray] = []
    diag = np.zeros(n, dtype=np.float64)
    for i, cols, vals in A.iter_rows():
        below = cols < i
        above = cols > i
        on = cols == i
        if np.any(on):
            diag[i] = vals[on][0]
        if np.any(below):
            lr.append(np.full(int(below.sum()), i, dtype=np.int64))
            lc.append(cols[below])
            lv.append(vals[below])
        if np.any(above):
            ur.append(np.full(int(above.sum()), i, dtype=np.int64))
            uc.append(cols[above])
            uv.append(vals[above])

    def build(
        rs: list[np.ndarray], cs: list[np.ndarray], vs: list[np.ndarray]
    ) -> CSRMatrix:
        if not rs:
            return CSRMatrix.zeros(n, n)
        return CSRMatrix.from_coo(
            np.concatenate(rs), np.concatenate(cs), np.concatenate(vs), (n, n)
        )

    if require_diagonal:
        _require_nonzero_diagonal(diag)
    return build(lr, lc, lv), diag, build(ur, uc, uv)


def _require_nonzero_diagonal(diag: np.ndarray) -> None:
    bad = np.flatnonzero(diag == 0.0)
    if bad.size:
        from ..verify.invariants import InvariantViolation

        raise InvariantViolation(
            f"split_lu: zero or missing diagonal at row {int(bad[0])}"
            + (f" (and {bad.size - 1} more rows)" if bad.size > 1 else "")
        )


def count_triangular_flops(L: CSRMatrix, U: CSRMatrix) -> int:
    """Multiply-add + divide count of one forward+backward substitution."""
    # forward: one mul-add per off-diagonal L entry (unit diagonal)
    # backward: one mul-add per off-diagonal U entry + one divide per row
    n = U.shape[0]
    u_offdiag = U.nnz - n
    return int(2 * L.nnz + 2 * u_offdiag + n)
