"""Sparse row accumulator — the paper's full-length working vector ``w``.

ILUT-style eliminations accumulate linear combinations of sparse rows
into a working row.  The efficient implementation (paper §2.1, Saad '94)
uses a *full-length dense vector* ``w`` plus a companion list of the
positions of its nonzero entries, so that loading a sparse row, axpy
updates, and the final reset are all O(nnz) operations rather than O(n).

This module provides that data structure once, shared by the sequential
ILUT kernel, the reduced-matrix elimination (Algorithm 4.1) and the
ILU(k) baseline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SparseRowAccumulator"]


class SparseRowAccumulator:
    """Full-length working row with a nonzero-position companion list.

    The accumulator is reused across all rows of a factorization: create
    it once with the matrix width, then ``load`` / ``axpy`` / ``extract``
    / ``reset`` per row.  ``reset`` is sparse — it only touches the
    positions that were filled.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.n = int(n)
        self.values = np.zeros(self.n, dtype=np.float64)
        # -1 = position empty; otherwise index into self._pattern
        self._in_pattern = np.zeros(self.n, dtype=bool)
        self._pattern: list[int] = []

    # ------------------------------------------------------------------

    def load(self, cols: np.ndarray, vals: np.ndarray) -> None:
        """Sparse copy of a row into the (empty) accumulator."""
        if self._pattern:
            raise RuntimeError("load() on a non-empty accumulator; call reset() first")
        cols = np.asarray(cols, dtype=np.int64)
        self.values[cols] = vals
        self._in_pattern[cols] = True
        self._pattern.extend(int(c) for c in cols)

    def axpy(self, alpha: float, cols: np.ndarray, vals: np.ndarray) -> None:
        """``w[cols] += alpha * vals``, extending the pattern with fill."""
        cols = np.asarray(cols, dtype=np.int64)
        fresh = cols[~self._in_pattern[cols]]
        if fresh.size:
            self._in_pattern[fresh] = True
            self._pattern.extend(int(c) for c in fresh)
        self.values[cols] += alpha * vals

    def set(self, col: int, val: float) -> None:
        """Assign ``w[col] = val`` (adds the position to the pattern)."""
        if not self._in_pattern[col]:
            self._in_pattern[col] = True
            self._pattern.append(int(col))
        self.values[col] = val

    def drop(self, col: int) -> None:
        """Zero out position ``col`` but keep it in the pattern.

        Dropped entries are filtered out at :meth:`extract` time; keeping
        the slot avoids an O(pattern) deletion here.
        """
        self.values[col] = 0.0

    def get(self, col: int) -> float:
        return float(self.values[col])

    def __contains__(self, col: int) -> bool:
        return bool(self._in_pattern[col]) and self.values[col] != 0.0

    @property
    def pattern(self) -> np.ndarray:
        """Current (unsorted) nonzero-candidate positions."""
        return np.asarray(self._pattern, dtype=np.int64)

    def nonzero_pattern(self) -> np.ndarray:
        """Positions whose value is currently nonzero, unsorted."""
        p = self.pattern
        if p.size == 0:
            return p
        return p[self.values[p] != 0.0]

    # ------------------------------------------------------------------

    def extract(self, *, sort: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(cols, vals)`` of the nonzero entries (no reset)."""
        p = self.nonzero_pattern()
        if sort and p.size:
            p = np.sort(p)
        return p, self.values[p].copy()

    def extract_range(
        self, lo: int, hi: int, *, sort: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nonzero entries with column index in ``[lo, hi)``."""
        p = self.nonzero_pattern()
        p = p[(p >= lo) & (p < hi)]
        if sort and p.size:
            p = np.sort(p)
        return p, self.values[p].copy()

    def reset(self) -> None:
        """Sparse O(pattern) reset back to the empty state (line 15)."""
        p = self.pattern
        if p.size:
            self.values[p] = 0.0
            self._in_pattern[p] = False
        self._pattern.clear()

    def __len__(self) -> int:
        return int(self.nonzero_pattern().size)
