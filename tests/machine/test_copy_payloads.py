"""``copy_payloads=True``: the serializing-transport debug oracle.

The simulator normally delivers payloads by reference; the oracle
pickle round-trips each one at post time, which is exactly what a
multi-process transport would do.  These tests pin its three
behaviours: snapshot semantics, immediate failure on unpicklable
payloads, and bit-identity for the certified drivers.
"""

import numpy as np
import pytest

from repro.machine import CRAY_T3D, Simulator
from repro.matrices import poisson2d


class TestSnapshotSemantics:
    def test_receiver_sees_post_time_value(self):
        sim = Simulator(2, CRAY_T3D, copy_payloads=True)
        buf = np.array([1.0, 2.0])
        sim.send(0, 1, buf, 2.0)
        buf[0] = -7.0  # the kind of bug TRN001 exists to catch
        got = sim.recv(1, 0)
        assert np.array_equal(got, [1.0, 2.0])

    def test_reference_mode_shares_the_buffer(self):
        sim = Simulator(2, CRAY_T3D)
        buf = np.array([1.0, 2.0])
        sim.send(0, 1, buf, 2.0)
        buf[0] = -7.0
        assert sim.recv(1, 0)[0] == -7.0

    def test_unpicklable_payload_fails_at_the_post(self):
        sim = Simulator(2, CRAY_T3D, copy_payloads=True)
        with pytest.raises(Exception):
            sim.send(0, 1, lambda x: x, 1.0)

    def test_none_payload_passes_through(self):
        sim = Simulator(2, CRAY_T3D, copy_payloads=True)
        sim.send(0, 1, None, 1.0)
        assert sim.recv(1, 0) is None


class TestDriverBitIdentity:
    def factors(self, copy_payloads):
        from repro.ilu import ILUTParams, parallel_ilut

        A = poisson2d(10)
        return parallel_ilut(
            A, ILUTParams(fill=5, threshold=1e-4), 4, seed=0,
            copy_payloads=copy_payloads,
        )

    def test_factorization_is_bit_identical(self):
        plain = self.factors(False)
        oracle = self.factors(True)
        for attr in ("data", "indices", "indptr"):
            assert np.array_equal(
                getattr(plain.factors.L, attr), getattr(oracle.factors.L, attr)
            )
            assert np.array_equal(
                getattr(plain.factors.U, attr), getattr(oracle.factors.U, attr)
            )
        assert np.array_equal(plain.factors.perm, oracle.factors.perm)
        assert plain.modeled_time == oracle.modeled_time

    def test_solve_and_matvec_are_bit_identical(self):
        from repro.decomp import decompose
        from repro.ilu.triangular import parallel_triangular_solve
        from repro.solvers.parallel_matvec import parallel_matvec

        A = poisson2d(10)
        n = A.shape[0]
        b = np.linspace(1.0, 2.0, n)
        factors = self.factors(False).factors
        s1 = parallel_triangular_solve(factors, b)
        s2 = parallel_triangular_solve(factors, b, copy_payloads=True)
        assert np.array_equal(s1.x, s2.x)
        assert s1.modeled_time == s2.modeled_time
        decomp = decompose(A, 4, seed=0)
        m1 = parallel_matvec(A, decomp, b)
        m2 = parallel_matvec(A, decomp, b, copy_payloads=True)
        assert np.array_equal(m1.y, m2.y)
        assert m1.modeled_time == m2.modeled_time

    def test_copy_payloads_requires_simulation(self):
        from repro.ilu import ILUTParams, parallel_ilut

        A = poisson2d(6)
        with pytest.raises(ValueError, match="requires the simulator transport"):
            parallel_ilut(
                A, ILUTParams(fill=5, threshold=1e-4), 2,
                simulate=False, copy_payloads=True,
            )
