"""The ILUT dropping rules.

ILUT(m, t) applies two rules (paper §2.1); the reduced-matrix
elimination adds a third (paper §4, Algorithm 4.1); ILUT* modifies the
third (paper §4.2).  They are centralised here so the sequential kernel,
the interface elimination and the tests all share one implementation.

* **1st rule** — during elimination, a computed multiplier ``w_k`` is
  dropped if ``|w_k| < tau_i`` where ``tau_i = t * ||a_i||_2`` (the
  relative tolerance of row ``i``).
* **2nd rule** — after elimination of a row, drop all entries below
  ``tau_i``, then keep only the ``m`` largest in the L part and the
  ``m`` largest in the U part; the diagonal is always kept.
* **3rd rule** — for a partially-eliminated interface row: the L part
  (columns of already-factored nodes) is thresholded and capped at ``m``
  like the 2nd rule; the reduced part (unfactored columns) is only
  thresholded in ILUT, while ILUT*(m, t, k) additionally caps it at
  ``k*m`` entries (the row's own diagonal always survives).
"""

from __future__ import annotations

import numpy as np

__all__ = ["keep_largest", "second_rule", "third_rule"]


def keep_largest(
    cols: np.ndarray, vals: np.ndarray, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """Keep the ``m`` entries of largest magnitude, returned column-sorted.

    Ties are broken toward lower column index (deterministic).
    """
    if m <= 0 or cols.size == 0:
        return cols[:0], vals[:0]
    if cols.size <= m:
        order = np.argsort(cols, kind="stable")
        return cols[order], vals[order]
    # argsort by (-|v|, col) for deterministic selection
    order = np.lexsort((cols, -np.abs(vals)))[:m]
    sel = np.sort(cols[order])
    # re-gather values in column order
    pos = {int(c): float(v) for c, v in zip(cols, vals)}
    return sel, np.asarray([pos[int(c)] for c in sel], dtype=np.float64)


def second_rule(
    cols: np.ndarray,
    vals: np.ndarray,
    i: int,
    tau: float,
    m: int,
) -> tuple[tuple[np.ndarray, np.ndarray], float, tuple[np.ndarray, np.ndarray]]:
    """Apply the 2nd dropping rule to a fully-eliminated row.

    Returns ``((lcols, lvals), diag, (ucols, uvals))`` where the L part
    has columns ``< i`` and the U part columns ``> i``; the diagonal is
    kept regardless of magnitude.
    """
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    diag = 0.0
    on = cols == i
    if np.any(on):
        diag = float(vals[on][0])
    big = np.abs(vals) >= tau
    keep = big & ~on
    kc, kv = cols[keep], vals[keep]
    lmask = kc < i
    lcols, lvals = keep_largest(kc[lmask], kv[lmask], m)
    umask = kc > i
    ucols, uvals = keep_largest(kc[umask], kv[umask], m)
    return (lcols, lvals), diag, (ucols, uvals)


def third_rule(
    cols: np.ndarray,
    vals: np.ndarray,
    diag_col: int,
    tau: float,
    m: int,
    *,
    is_factored: np.ndarray,
    reduced_cap: int | None = None,
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Apply the 3rd dropping rule to a partially-eliminated row.

    ``is_factored[c]`` says whether global column ``c`` corresponds to an
    already-factored node.  Returns ``((lcols, lvals), (rcols, rvals))``:
    the row's L part (factored columns, thresholded + capped at ``m``)
    and its reduced-matrix part (unfactored columns, thresholded;
    additionally capped at ``reduced_cap`` when given — that cap *is*
    ILUT*).  The entry at ``diag_col`` (the row's own diagonal in the
    reduced system) is always kept.
    """
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    fact = is_factored[cols]
    # ---- L part
    lc, lv = cols[fact], vals[fact]
    big = np.abs(lv) >= tau
    lcols, lvals = keep_largest(lc[big], lv[big], m)
    # ---- reduced part
    rc, rv = cols[~fact], vals[~fact]
    on = rc == diag_col
    diag_val = float(rv[on][0]) if np.any(on) else 0.0
    keep = (np.abs(rv) >= tau) & ~on
    rc_k, rv_k = rc[keep], rv[keep]
    if reduced_cap is not None:
        cap = max(0, reduced_cap - 1)  # the diagonal occupies one slot
        rc_k, rv_k = keep_largest(rc_k, rv_k, cap)
    # re-insert the diagonal (always kept, even when structurally absent —
    # the reduced row must carry its own pivot slot)
    ins = np.searchsorted(rc_k, diag_col)
    rc_k = np.insert(rc_k, ins, diag_col)
    rv_k = np.insert(rv_k, ins, diag_val)
    return (lcols, lvals), (rc_k, rv_k)
