"""DET005 clean twin: payloads and dropping depend only on the data."""


def halo(sim, pairs, values):
    for src, dst in pairs:
        sim.send(src, dst, values[src], 1, tag=("halo", 1))
    for src, dst in pairs:
        sim.recv(dst, src, tag=("halo", 1))


def threshold_dropping(row, tau):
    for j, val in enumerate(row):
        if abs(val) < tau:
            drop_entry(j, val)  # noqa: F821 - fixture stub
