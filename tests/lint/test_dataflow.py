"""Dataflow instances: hypothesis agreement with CPython, join precision.

The headline property: on straight-line integer programs, constant
propagation's environment at the end equals what ``exec`` computes —
the evaluator mirrors CPython semantics exactly on its supported
subset.
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.flow import ConstantPropagation, ReachingDefinitions
from repro.lint.flow.dataflow import NAC, UNDEF, constant_env_at, eval_const_expr

NAMES = ("a", "b", "c", "d")


@st.composite
def straightline_program(draw):
    """A list of ``name = operand op operand`` lines over ints."""
    n = draw(st.integers(min_value=1, max_value=8))
    lines = []
    defined: list[str] = []

    def operand() -> str:
        if defined and draw(st.booleans()):
            return draw(st.sampled_from(defined))
        return str(draw(st.integers(min_value=-9, max_value=9)))

    for _ in range(n):
        target = draw(st.sampled_from(NAMES))
        op = draw(st.sampled_from(["+", "-", "*"]))
        lines.append(f"{target} = {operand()} {op} {operand()}")
        if target not in defined:
            defined.append(target)
    return lines


@settings(deadline=None, max_examples=200)
@given(straightline_program())
def test_constprop_agrees_with_exec_on_straight_line(lines):
    src = "def f():\n" + "".join(f"    {ln}\n" for ln in lines) + "    pass\n"
    func = ast.parse(src).body[0]
    env = constant_env_at(func, func.body[-1])

    ns: dict = {}
    exec("\n".join(lines), {"__builtins__": {}}, ns)  # noqa: S102 - test oracle

    for name, want in ns.items():
        got = env.get(name)
        assert got == want and type(got) is type(want), (name, got, want)


@settings(deadline=None, max_examples=200)
@given(
    st.integers(min_value=-6, max_value=6),
    st.integers(min_value=-6, max_value=6),
    st.sampled_from(["+", "-", "*", "//", "%", "==", "!=", "<", "<=", ">", ">="]),
)
def test_eval_const_expr_matches_eval(a, b, op):
    src = f"({a}) {op} ({b})"
    expr = ast.parse(src, mode="eval").body
    got = eval_const_expr(expr, {})
    try:
        want = eval(src)  # noqa: S307 - test oracle over literal ints
    except ZeroDivisionError:
        assert got is NAC
        return
    assert got == want and type(got) is type(want)


def _last_stmt_env(code: str):
    func = ast.parse(code).body[0]
    return ConstantPropagation(func).env_at(func.body[-1])


def test_join_widens_conflicting_branch_values_to_nac():
    env = _last_stmt_env(
        "def f(flag):\n"
        "    if flag:\n"
        "        x = 1\n"
        "    else:\n"
        "        x = 2\n"
        "    pass\n"
    )
    assert env["x"] is NAC


def test_join_keeps_agreeing_branch_values():
    env = _last_stmt_env(
        "def f(flag):\n"
        "    if flag:\n"
        "        x = 7\n"
        "    else:\n"
        "        x = 7\n"
        "    pass\n"
    )
    assert env["x"] == 7


def test_loop_carried_variable_is_nac_but_invariant_is_const():
    env = _last_stmt_env(
        "def f(items):\n"
        "    scale = 4\n"
        "    acc = 0\n"
        "    for it in items:\n"
        "        acc = acc + 1\n"
        "    pass\n"
    )
    assert env["scale"] == 4
    assert env["acc"] is NAC


def test_parameters_start_as_nac():
    env = _last_stmt_env("def f(x):\n    pass\n")
    assert env["x"] is NAC


def test_eval_const_expr_supported_builtins_and_bool_ops():
    env = {"x": 3}
    cases = {
        "abs(-x)": 3,
        "max(x, 10)": 10,
        "x > 0 and x < 5": True,
        "x == 1 or x == 3": True,
        "-x if x > 0 else x": -3,
    }
    for src, want in cases.items():
        got = eval_const_expr(ast.parse(src, mode="eval").body, env)
        assert got == want, (src, got, want)
    assert eval_const_expr(ast.parse("open('f')", mode="eval").body, env) is NAC
    assert eval_const_expr(ast.parse("y + 1", mode="eval").body, env) is NAC


def test_reaching_definitions_merge_at_join():
    code = (
        "def f(flag):\n"
        "    x = 1\n"
        "    if flag:\n"
        "        x = 2\n"
        "    pass\n"
    )
    func = ast.parse(code).body[0]
    rd = ReachingDefinitions(func)
    defs = rd.defs_at(func.body[-1])["x"]
    assert len(defs) == 2  # both assignment sites reach the join
    for site in defs:
        assert site in rd.def_exprs


def test_undef_sentinel_reprs_distinct():
    assert repr(UNDEF) == "UNDEF" and repr(NAC) == "NAC"
    assert UNDEF is not NAC
