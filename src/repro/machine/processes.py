"""Fork-per-region multiprocessing transport (``transport="processes"``).

Each ``pardo`` forks one child process per active rank.  Fork semantics
do the heavy lifting: the child inherits the coordinator's entire state
as a copy-on-write snapshot, so the drivers' thunks — closures over
engine state that would not survive pickling — run unmodified.  Only
the *results* cross the process boundary, pickled over a one-way pipe;
PR 7's TRN002 certification guarantees every certified driver's
payloads and returns are pickle-safe.  Large numpy operands skip the
pipe and travel through POSIX shared memory
(:mod:`multiprocessing.shared_memory`) under deterministic
``repro-shm-<pid>-<k>`` names, so the parent can sweep a dead child's
segments even when no result frame ever arrived.

Collection runs under the region supervisor (DESIGN.md §14): the
parent polls all pipes with :func:`multiprocessing.connection.wait`
instead of blocking in rank order, so one hung rank cannot delay
detection of another rank's death.  A child that dies surfaces
:class:`~repro.machine.transport.WorkerCrashed` carrying its exitcode
(or the killing signal) and any remote traceback; a child that delivers
neither its result frame nor a heartbeat frame within the supervision
deadline is terminated and surfaces
:class:`~repro.machine.transport.WorkerHung`; a result that cannot
cross the pickle boundary — either direction — surfaces
:class:`~repro.machine.transport.ResultUnpicklable`.  All children are
reaped (terminate + join with a deadline) before any error is raised.

Because children are forked fresh per region and never see each other,
worker-context messaging is impossible here: a thunk calling ``send`` /
``recv`` / ``barrier`` raises :class:`TransportError`.  The certified
drivers keep all communication in coordinator context between regions
(the mpi4py-shaped superstep structure), so this is a non-restriction
for them — and a loud error for any driver that violates the contract.

Each child ships back ``(result, flops_delta)`` so per-rank ``compute``
charges made inside the region survive; the coordinator folds the
deltas into its counters in rank order.
"""

from __future__ import annotations

import io
import itertools
import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import sys
import time
import traceback
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from .supervision import RegionInjection
from .transport import (
    LocalTransport,
    ResultUnpicklable,
    TransportError,
    TransportWorkerError,
    WorkerCrashed,
    WorkerHung,
)

if TYPE_CHECKING:
    from ..faults import FaultPlan
    from .supervision import SupervisionPolicy

__all__ = ["ProcessTransport"]

#: arrays at or above this byte size return via shared memory, not the pipe
SHM_THRESHOLD_BYTES = 64 * 1024

#: frame tags on the child->parent pipe (one send_bytes per frame)
_HB_FRAME = b"\x01"
_RESULT_TAG = b"\x00"


def _shm_prefix(pid: int) -> str:
    return f"repro-shm-{pid}"


class _ShmRef:
    """Pickle-light stand-in for a large ndarray returned from a child."""

    __slots__ = ("shm_name", "shape", "dtype")

    def __init__(self, shm_name: str, shape: tuple, dtype: str) -> None:
        self.shm_name = shm_name
        self.shape = shape
        self.dtype = dtype


class _ShmPickler(pickle.Pickler):
    """Detours large contiguous float/int arrays through shared memory."""

    def __init__(
        self, file: io.BytesIO, shm_names: list[str], prefix: str | None = None
    ) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._shm_names = shm_names
        self._prefix = prefix

    def _create_segment(self, nbytes: int) -> Any:
        from multiprocessing import shared_memory

        if self._prefix is None:
            return shared_memory.SharedMemory(create=True, size=nbytes)
        # deterministic per-child names let the parent sweep segments of
        # a dead child even when no result frame made it out
        name = f"{self._prefix}-{len(self._shm_names)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except FileExistsError:  # pragma: no cover - stale segment from a reused pid
            stale = shared_memory.SharedMemory(name=name)
            stale.close()
            stale.unlink()
            return shared_memory.SharedMemory(name=name, create=True, size=nbytes)

    def persistent_id(self, obj: Any) -> Any:
        if (
            isinstance(obj, np.ndarray)
            and obj.flags.c_contiguous
            and obj.dtype.hasobject is False
            and obj.nbytes >= SHM_THRESHOLD_BYTES
        ):
            shm = self._create_segment(obj.nbytes)
            view = np.ndarray(obj.shape, dtype=obj.dtype, buffer=shm.buf)
            view[...] = obj
            name = shm.name
            self._shm_names.append(name)
            # the child exits right after writing; detach its tracker
            # registration so the segment isn't unlinked out from under
            # the parent when the child's resource_tracker reaps it
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass
            shm.close()
            return _ShmRef(name, obj.shape, obj.dtype.str)
        return None


class _ShmUnpickler(pickle.Unpickler):
    """Parent-side twin: materialises ``_ShmRef`` and unlinks segments."""

    def persistent_load(self, pid: Any) -> Any:
        if isinstance(pid, _ShmRef):
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=pid.shm_name)
            try:
                view = np.ndarray(pid.shape, dtype=np.dtype(pid.dtype), buffer=shm.buf)
                arr = view.copy()
            finally:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            return arr
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def _unlink_segment(name: str) -> bool:
    """Unlink one segment by name; False when it does not exist."""
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - racing unlink
        pass
    return True


def _sweep_named_segments(names: Sequence[str]) -> None:
    """Unlink the segments a result frame advertised (unpickle failed)."""
    for name in names:
        _unlink_segment(name)


def _sweep_child_segments(pid: int | None) -> None:
    """Unlink every deterministic segment a (dead) child pid created.

    Segment counters are dense (``repro-shm-<pid>-0``, ``-1``, ...), so
    the sweep walks until the first missing name.
    """
    if pid is None:
        return
    prefix = _shm_prefix(pid)
    for k in itertools.count():
        if not _unlink_segment(f"{prefix}-{k}"):
            break


def _shm_dumps(obj: Any, *, prefix: str | None = None) -> tuple[bytes, list[str]]:
    buf = io.BytesIO()
    names: list[str] = []
    try:
        _ShmPickler(buf, names, prefix).dump(obj)
    except Exception:
        # roll back any segments already created for this object
        _sweep_named_segments(names)
        raise
    return buf.getvalue(), names


def _shm_loads(data: bytes) -> Any:
    return _ShmUnpickler(io.BytesIO(data)).load()


class ProcessTransport(LocalTransport):
    """Real multi-process execution of the SPMD parallel regions."""

    name = "processes"

    def __init__(
        self,
        nranks: int,
        *,
        supervision: "SupervisionPolicy | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> None:
        super().__init__(nranks, supervision=supervision, faults=faults)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise TransportError(
                "ProcessTransport requires the fork start method "
                "(POSIX only); use transport='threads' instead"
            )
        self._ctx = multiprocessing.get_context("fork")
        self._in_child = False
        self._child_conn: Any = None
        self._last_beat = 0.0
        self._live: dict[int, int] = {}

    # -- worker-context comm is a contract violation --------------------

    def _in_worker(self) -> bool:
        return self._in_child

    def _forbid_in_child(self, op: str) -> None:
        if self._in_child:
            raise TransportError(
                f"{op} is unavailable inside a process-transport parallel "
                "region: forked ranks are isolated; keep communication in "
                "coordinator context between regions (DESIGN.md §13)"
            )

    def send(self, src: int, dst: int, payload: Any, nwords: float, tag: Any = None) -> None:
        self._forbid_in_child("send")
        super().send(src, dst, payload, nwords, tag=tag)

    def recv(self, dst: int, src: int, tag: Any = None) -> Any:
        self._forbid_in_child("recv")
        return super().recv(dst, src, tag=tag)

    def barrier(self) -> None:
        self._forbid_in_child("barrier")
        super().barrier()

    # -- supervision hooks ---------------------------------------------

    def heartbeat(self) -> None:
        if not self._in_child or self._child_conn is None:
            return
        now = time.perf_counter()
        if now - self._last_beat < self.supervision.heartbeat_interval:
            return
        self._last_beat = now
        try:
            self._child_conn.send_bytes(_HB_FRAME)
        except OSError:  # pragma: no cover - parent gone: nothing to signal
            pass

    def active_workers(self) -> dict[int, int]:
        """Live child pids by rank of the region in flight (chaos hook)."""
        return dict(self._live)

    def _terminate_child(self, proc: Any) -> None:
        """Forcefully reap one child: terminate, then kill after a grace."""
        if proc.is_alive():
            proc.terminate()
            proc.join(self.supervision.kill_grace)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(self.supervision.kill_grace)

    def _reap_child(self, proc: Any) -> None:
        """End-of-region reap: give a clean exit a grace, then escalate."""
        proc.join(self.supervision.kill_grace)
        self._terminate_child(proc)

    def _classify_exit(self, rank: int, exitcode: int | None) -> WorkerCrashed:
        if exitcode is not None and exitcode < 0:
            signum = -exitcode
            try:
                signame = signal.Signals(signum).name
            except ValueError:  # pragma: no cover - unnamed signal number
                signame = f"signal {signum}"
            return WorkerCrashed(
                rank,
                f"child killed by {signame} without a result (exitcode={exitcode})",
                exitcode=exitcode,
                signum=signum,
            )
        return WorkerCrashed(
            rank,
            f"child exited without a result (exitcode={exitcode})",
            exitcode=exitcode,
        )

    # -- parallel region ----------------------------------------------

    def _run_region(
        self,
        thunks: Sequence[Callable[[], Any] | None],
        active: list[int],
        inject: dict[int, RegionInjection],
    ) -> list[Any]:
        """One supervised execution attempt (see ``LocalTransport.pardo``).

        Forks one child per active rank, then polls all pipes with
        ``multiprocessing.connection.wait``; heartbeat frames push a
        rank's deadline out, a result frame resolves it, a dead pipe
        classifies the child's exit.  Every child is reaped before a
        failure propagates.
        """
        policy = self.supervision

        # fork duplicates buffered stdio; flush so children don't replay it
        sys.stdout.flush()
        sys.stderr.flush()

        pipes: dict[int, Any] = {}
        procs: dict[int, Any] = {}
        for r in active:
            rd, wr = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=self._child_main,
                args=(r, thunks[r], wr, inject.get(r)),
                name=f"repro-rank-{r}",
            )
            proc.start()
            wr.close()  # parent keeps only the read end
            pipes[r] = rd
            procs[r] = proc
            if proc.pid is not None:
                self._live[r] = proc.pid

        results: list[Any] = [None] * self.nranks
        failures: dict[int, BaseException] = {}
        now = time.perf_counter()
        deadlines: dict[int, float] = {}
        if policy.deadline is not None:
            deadlines = {r: now + policy.deadline for r in active}
        pending = set(active)
        try:
            while pending:
                by_conn = {pipes[r]: r for r in sorted(pending)}
                timeout = policy.poll_interval if policy.deadline is not None else None
                ready = multiprocessing.connection.wait(list(by_conn), timeout=timeout)
                for conn in ready:
                    r = by_conn[conn]
                    try:
                        frame = bytes(conn.recv_bytes())
                    except (EOFError, OSError):
                        # dead pipe: the child died before (or mid-) result
                        pending.discard(r)
                        self._reap_child(procs[r])
                        failures[r] = self._classify_exit(r, procs[r].exitcode)
                        _sweep_child_segments(procs[r].pid)
                        continue
                    if frame[:1] == _HB_FRAME:
                        if policy.deadline is not None:
                            deadlines[r] = time.perf_counter() + policy.deadline
                        continue
                    pending.discard(r)
                    kind, names, body = pickle.loads(frame[1:])
                    if kind == "error":
                        exc_type_name, message, tb_text, flops_delta = body
                        self._flops[r] += flops_delta
                        failures[r] = TransportWorkerError(
                            r, f"{exc_type_name}: {message}\n{tb_text}"
                        )
                    elif kind == "unpicklable":
                        tb_text, flops_delta = body
                        self._flops[r] += flops_delta
                        failures[r] = ResultUnpicklable(
                            r,
                            "region result could not be pickled in the worker",
                            remote_traceback=tb_text,
                        )
                    else:  # "result"
                        try:
                            payload, flops_delta = _shm_loads(body)
                        except Exception as exc:
                            _sweep_named_segments(names)
                            failures[r] = ResultUnpicklable(
                                r, f"region result could not be unpickled: {exc!r}"
                            )
                        else:
                            self._flops[r] += flops_delta
                            results[r] = payload
                if policy.deadline is None:
                    continue
                now = time.perf_counter()
                for r in sorted(pending):
                    if now > deadlines[r]:
                        pending.discard(r)
                        failures[r] = WorkerHung(r, policy.deadline)
                        self._terminate_child(procs[r])
                        _sweep_child_segments(procs[r].pid)
        finally:
            for r in active:
                self._reap_child(procs[r])
                pipes[r].close()
            self._live.clear()
        if failures:
            self._raise_region_failure(failures)
        return results

    def _child_main(
        self,
        rank: int,
        thunk: Callable[[], Any] | None,
        wr: Any,
        injection: RegionInjection | None = None,
    ) -> None:
        self._in_child = True
        self._child_conn = wr
        self._last_beat = time.perf_counter()
        if injection is not None and injection.kind == "crash":
            # injected worker crash: die before any work, like a segfault
            # between fork and result would
            os._exit(1)
        assert thunk is not None  # pardo only forks active ranks
        flops_before = float(self._flops[rank])
        try:
            if injection is not None and injection.kind == "stall":
                time.sleep(injection.stall)
            result = thunk()
            flops_delta = float(self._flops[rank]) - flops_before
            if injection is not None and injection.kind == "corrupt":
                # injected corrupt-result: an undecodable blob, no segments
                frame = _RESULT_TAG + pickle.dumps(
                    ("result", [], b"\x80repro-corrupt-result")
                )
            else:
                try:
                    body, names = _shm_dumps(
                        (result, flops_delta),
                        prefix=_shm_prefix(os.getpid()),
                    )
                except Exception:
                    frame = _RESULT_TAG + pickle.dumps(
                        ("unpicklable", [], (traceback.format_exc(), flops_delta))
                    )
                else:
                    frame = _RESULT_TAG + pickle.dumps(("result", names, body))
        except BaseException as exc:  # noqa: BLE001 - serialised to parent
            flops_delta = float(self._flops[rank]) - flops_before
            info = (type(exc).__name__, str(exc), traceback.format_exc(), flops_delta)
            frame = _RESULT_TAG + pickle.dumps(("error", [], info))
        try:
            wr.send_bytes(frame)
            wr.close()
        finally:
            # hard-exit: skip atexit/GC that could touch inherited state
            os._exit(0)
