"""Static cost analysis: charge-site extraction + symbolic cost models.

The third certification surface (after the protocol and transport
verifiers): every modeled-speedup figure the reproduction reports is a
sum of charges the drivers push into the simulator, and this module
derives — statically — where those charges come from and how many of
them the loop structure implies, as symbolic expressions over the
structural parameters of an instance (``n``, ``nnz``, fill ``m``,
levels ``q``, ranks ``p``, MIS ``rounds``).

Three artefacts per certified comm root:

* the **charge-site inventory**: every ``sim.compute`` / ``sim.send`` /
  ``sim.barrier`` / collective call reachable from the root through the
  project call graph, located by (kind, module, line) — the join key
  the runtime :class:`~repro.machine.ledger.ChargeLedger` records;
* a **per-site loop bound**: the product of the recognised bounds of
  the site's enclosing loops (``for r in range(nranks)`` → ``p``,
  ``for lvl, pos in enumerate(levels.interface_levels)`` → ``q``,
  ``while self.reduced`` → ``levels``, …) — a symbolic fire-count that
  :mod:`repro.lint.costverify` checks against the ledger's per-site
  event counts;
* the **cost model** (:data:`COST_SPECS`): closed-form totals for the
  flop/message/word/barrier components that are structurally
  determined, and explicit *measured* markers for the data-dependent
  ones (ILUT flops depend on the numeric fill pattern), which the
  runtime harness certifies by dual accounting against the engines'
  own counters instead.

Soundness boundary (DESIGN.md §15): extraction recognises charges by
receiver shape (an attribute call on a name ending in ``sim`` /
``simulator`` / ``transport``), resolves callees through the same
best-effort call graph as the protocol verifier (unresolvable calls are
opaque), and attributes ``self.X`` dispatch through the static MRO.
Anything the static side misses is caught at runtime: a ledger event
from a line outside the inventory is cost-model drift.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from .callgraph import CallGraph, FunctionDecl, build_call_graph
from .protocol import DRIVERS, _find_driver, _is_transport_method

__all__ = [
    "COST_ROOTS",
    "COST_SPECS",
    "KERNELS_PREFIX",
    "ChargeSite",
    "CostAnalysis",
    "CostExpr",
    "CostSpec",
    "analyze_costs",
    "extract_charge_sites",
]

#: Simulator entry points that charge the cost model (``recv`` drains a
#: message but charges nothing; ``pardo`` is an execution construct).
CHARGE_KINDS = frozenset(
    {"compute", "advance", "send", "barrier", "allreduce", "allgather"}
)

#: Receiver names (last dotted component) that denote the simulator /
#: transport a driver charges.
_SIM_RECEIVERS = frozenset({"sim", "simulator", "transport"})

#: The certified comm roots: the five registered protocol drivers plus
#: the static-colouring ILU(0) foil (a call-graph root with a full
#: send/recv protocol of its own).
COST_ROOTS: tuple[tuple[str, str], ...] = DRIVERS + (
    ("src/repro/ilu/parallel_ilu0.py", "parallel_ilu0"),
)

#: Module-path prefix of the kernels surface, certified charge-free: the
#: vectorized kernels compute numerics, never cost accounting.
KERNELS_PREFIX = "src/repro/kernels/"


# --------------------------------------------------------------------------
# symbolic expressions
# --------------------------------------------------------------------------


class CostExpr:
    """A symbolic cost expression over named structural parameters.

    The grammar is deliberately tiny — integer literals, parameter
    names, ``+ - *`` and unary minus — evaluated by walking the parsed
    AST (never ``eval``).  ``params`` is the free-variable set, so a
    caller knows which instance quantities it must supply.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self._tree = ast.parse(text, mode="eval").body
        self.params = frozenset(
            node.id for node in ast.walk(self._tree) if isinstance(node, ast.Name)
        )

    def __repr__(self) -> str:
        return f"CostExpr({self.text!r})"

    def evaluate(self, env: dict[str, float]) -> float:
        missing = self.params - env.keys()
        if missing:
            raise KeyError(f"cost expression {self.text!r} missing {sorted(missing)}")
        return self._eval(self._tree, env)

    def _eval(self, node: ast.expr, env: dict[str, float]) -> float:
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name):
            return float(env[node.id])
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -self._eval(node.operand, env)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
        raise ValueError(
            f"unsupported construct {ast.dump(node)} in cost expression {self.text!r}"
        )


# --------------------------------------------------------------------------
# cost specs
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CostSpec:
    """The symbolic cost model of one comm root.

    Each component is a :class:`CostExpr` source string, or ``None``
    when the total is data-dependent (*measured*): the runtime harness
    then certifies it by dual accounting (per-site ledger totals against
    the engine's own ``flops_total`` / ``words_copied`` counters),
    integrality, and cross-backend bit-equality instead of a closed
    form.

    ``once`` lists the qualnames executed exactly once per driver run —
    only charge sites inside those bodies get a per-site fire-count
    expression (for every other function the static call multiplicity is
    unknown, the documented soundness boundary).
    """

    module: str
    qualname: str
    flops: str | None
    messages: str | None
    words: str | None
    barriers: str | None
    collectives: str
    params: tuple[str, ...]
    once: frozenset[str] = frozenset()

    @property
    def key(self) -> str:
        return f"{self.module}::{self.qualname}"

    def components(self) -> dict[str, str | None]:
        return {
            "flops": self.flops,
            "messages": self.messages,
            "words": self.words,
            "barriers": self.barriers,
            "collectives": self.collectives,
        }


#: kind of simulator charge -> the spec component its totals certify
COMPONENT_OF_KIND = {
    "compute": "flops",
    "send": "words",  # each send also counts one message
    "barrier": "barriers",
    "allreduce": "collectives",
    "allgather": "collectives",
    "advance": "advance",
}

COST_SPECS: dict[str, CostSpec] = {
    spec.key: spec
    for spec in (
        CostSpec(
            module="src/repro/solvers/parallel_matvec.py",
            qualname="parallel_matvec",
            # both backends charge 2 flops per stored entry
            flops="2*nnz",
            # one aggregated message per halo (src, dst) pair
            messages="halo_pairs",
            words="halo_words",
            barriers="1",
            collectives="0",
            params=("n", "p", "nnz", "halo_pairs", "halo_words"),
            once=frozenset({"parallel_matvec", "_matvec_on"}),
        ),
        CostSpec(
            module="src/repro/ilu/triangular.py",
            qualname="parallel_triangular_solve",
            # forward: 2 flops per L entry; backward: 2(row nnz - 1) + 1
            # per U row -> 2 nnz(U) - n in total
            flops="2*nnz_L + 2*nnz_U - n",
            messages="tri_messages",
            words="tri_words",
            # the paper's q implicit synchronisation points, both sweeps,
            # plus one barrier after each interior phase
            barriers="2*q + 2",
            collectives="0",
            params=("n", "p", "q", "nnz_L", "nnz_U", "tri_messages", "tri_words"),
            once=frozenset(
                {"parallel_triangular_solve", "_solve_on", "_solve_vectorized"}
            ),
        ),
        CostSpec(
            module="src/repro/graph/distributed_mis.py",
            qualname="distributed_two_step_luby_mis",
            # setup scan + two scans per round over every adjacency entry
            flops="nedges*(1 + 2*rounds)",
            messages="2*rounds*boundary_pairs",
            words="2*rounds*boundary_words",
            barriers="1 + 2*rounds",
            collectives="0",
            params=("p", "rounds", "nedges", "boundary_pairs", "boundary_words"),
            once=frozenset({"distributed_two_step_luby_mis", "mis_comm_setup"}),
        ),
        CostSpec(
            module="src/repro/ilu/elimination.py",
            qualname="EliminationEngine.run",
            # ILUT flops/comm depend on the numeric fill pattern: measured,
            # certified by dual accounting + integrality + cross-backend
            flops=None,
            messages=None,
            words=None,
            # phase-1 barrier, then per level: one level barrier plus the
            # two-step MIS barrier pair every round
            barriers="1 + levels*(2*mis_rounds + 1)",
            collectives="0",
            params=("p", "levels", "mis_rounds"),
            once=frozenset({"EliminationEngine.run", "EliminationEngine._run_phase1"}),
        ),
        CostSpec(
            module="src/repro/ilu/interface_partition.py",
            qualname="InterfacePartitionEngine.run",
            flops=None,
            messages=None,
            words=None,
            # phase-1 barrier + exactly one synchronisation per round —
            # the §7 trade this engine exists to make
            barriers="1 + levels",
            collectives="0",
            params=("p", "levels"),
            once=frozenset(
                {"InterfacePartitionEngine.run", "EliminationEngine._run_phase1"}
            ),
        ),
        CostSpec(
            module="src/repro/ilu/parallel_ilu0.py",
            qualname="parallel_ilu0",
            flops=None,  # pivot count depends on numeric zeros: measured
            messages="ilu0_messages",
            words="ilu0_words",
            barriers="1 + classes",
            collectives="0",
            params=("p", "classes", "ilu0_messages", "ilu0_words"),
            once=frozenset({"parallel_ilu0"}),
        ),
    )
}


# --------------------------------------------------------------------------
# loop-bound recognition
# --------------------------------------------------------------------------

#: (pattern over the unparsed loop header, symbolic bound).  First match
#: wins; a loop matching nothing gets an unknown bound (no fire count).
_LOOP_BOUND_PATTERNS: tuple[tuple[str, str], ...] = (
    (r"mis_rounds", "mis_rounds"),
    (r"max\(0,\s*rounds\)", "rounds"),
    (r"\brange\(rounds\)", "rounds"),
    (r"nranks", "p"),
    (r"interface_levels", "q"),
    (r"enumerate\(classes\)", "classes"),
)


def _loop_bound(node: ast.For | ast.AsyncFor | ast.While) -> str | None:
    """The symbolic iteration count of one loop, if recognised."""
    if isinstance(node, ast.While):
        header = ast.unparse(node.test)
        if "self.reduced" in header:
            # the phase-2 driver loop: one iteration per interface level
            return "levels"
        return None
    header = ast.unparse(node.iter)
    if isinstance(node.iter, (ast.Tuple, ast.List)) and all(
        isinstance(e, ast.Constant) for e in node.iter.elts
    ):
        return str(len(node.iter.elts))
    for pattern, bound in _LOOP_BOUND_PATTERNS:
        if re.search(pattern, header):
            return bound
    return None


# --------------------------------------------------------------------------
# charge-site extraction
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ChargeSite:
    """One static charge into the simulator, with its loop context."""

    kind: str  # compute | advance | send | barrier | allreduce | allgather
    module: str  # project-relative posix path
    line: int
    col: int
    function: str  # qualname of the enclosing project function
    amount: str  # source text of the charged quantity ("" for barrier)
    #: recognised bounds of the enclosing loops, outermost first
    #: (``None`` entries are loops the analysis could not bound)
    loops: tuple[str | None, ...]
    #: symbolic fire count (product of the loop bounds) — only set when
    #: every enclosing loop is bounded, the site is not inside a nested
    #: ``def``, and the enclosing function runs once per driver call
    count_expr: str | None
    #: the site only executes on a fault-recovery path (inside an
    #: ``except`` handler) — exempt from the must-fire coverage check,
    #: mirroring the protocol verifier's handler pruning
    fault_path: bool

    @property
    def key(self) -> tuple[str, str, int]:
        """The join key against :class:`ChargeLedger` events."""
        return (self.kind, self.module, self.line)

    @property
    def derivation(self) -> str:
        """Human-readable loop-nest derivation for the report."""
        if not self.loops:
            return "1"
        return " x ".join(b if b is not None else "?" for b in self.loops)


def _last_receiver_component(expr: ast.expr) -> str | None:
    """``self.sim.compute`` -> ``sim``; ``sim.send`` -> ``sim``."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _charge_call_kind(call: ast.Call) -> str | None:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in CHARGE_KINDS:
        return None
    if _last_receiver_component(func.value) not in _SIM_RECEIVERS:
        return None
    return func.attr


#: argument index of the charged quantity, per kind
_AMOUNT_ARG = {"compute": 1, "advance": 1, "send": 3, "allreduce": 2, "allgather": 2}


def _closure(cg: CallGraph, root: FunctionDecl) -> list[FunctionDecl]:
    """``root`` plus every project function reachable from it.

    Transport/simulator methods are excluded — their internals are the
    machine layer, not driver accounting (the ledger attributes through
    them to the driver line for the same reason).
    """
    seen: dict[str, FunctionDecl] = {root.key: root}
    work = [root]
    while work:
        decl = work.pop()
        cls_name = decl.cls.name if decl.cls is not None else None
        for node in ast.walk(decl.node):
            if not isinstance(node, ast.Call):
                continue
            callee = cg.resolve_call(node, decl.module, cls_name)
            if (
                callee is None
                or callee.key in seen
                or _is_transport_method(callee)
                or callee.module.startswith("src/repro/machine/")
            ):
                continue
            seen[callee.key] = callee
            work.append(callee)
    return sorted(seen.values(), key=lambda d: (d.module, d.qualname))


def extract_charge_sites(
    cg: CallGraph, root: FunctionDecl, once: frozenset[str] = frozenset()
) -> list[ChargeSite]:
    """Every charge site reachable from ``root``, with loop bounds."""
    sites: list[ChargeSite] = []
    for decl in _closure(cg, root):
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(decl.node):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(decl.node):
            if not isinstance(node, ast.Call):
                continue
            kind = _charge_call_kind(node)
            if kind is None:
                continue
            loops: list[str | None] = []
            nested = False
            fault_path = False
            cur = parents.get(node)
            while cur is not None and cur is not decl.node:
                if isinstance(cur, (ast.For, ast.AsyncFor, ast.While)):
                    loops.append(_loop_bound(cur))
                elif isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    nested = True
                elif isinstance(cur, ast.ExceptHandler):
                    fault_path = True
                cur = parents.get(cur)
            loops.reverse()
            count_expr: str | None = None
            if (
                not nested
                and decl.qualname in once
                and all(b is not None for b in loops)
            ):
                count_expr = " * ".join(loops) if loops else "1"
            arg_idx = _AMOUNT_ARG.get(kind)
            amount = ""
            if arg_idx is not None and len(node.args) > arg_idx:
                amount = ast.unparse(node.args[arg_idx])
            sites.append(
                ChargeSite(
                    kind=kind,
                    module=decl.module,
                    line=node.lineno,
                    col=node.col_offset,
                    function=decl.qualname,
                    amount=amount,
                    loops=tuple(loops),
                    count_expr=count_expr,
                    fault_path=fault_path,
                )
            )
    sites.sort(key=lambda s: (s.module, s.line, s.col))
    return sites


# --------------------------------------------------------------------------
# whole-project analysis
# --------------------------------------------------------------------------


@dataclass
class CostAnalysis:
    """Static cost-analysis product for one root (or the kernels surface)."""

    module: str
    qualname: str
    spec: CostSpec | None
    sites: list[ChargeSite] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        return f"{self.module}::{self.qualname}"

    def sites_of_kind(self, kind: str) -> list[ChargeSite]:
        return [s for s in self.sites if s.kind == kind]


def _check_spec_site_consistency(analysis: CostAnalysis) -> None:
    """A closed-form component with no charge site of its kind (or vice
    versa, charges of a kind the model says cannot occur) is drift
    before anything even runs."""
    spec = analysis.spec
    if spec is None:
        return
    kinds_present = {s.kind for s in analysis.sites}
    for kind, component in COMPONENT_OF_KIND.items():
        expr = spec.components().get(component)
        if component == "collectives":
            if kind in kinds_present and expr == "0":
                analysis.problems.append(
                    f"model declares no collectives but a {kind} site exists"
                )
            continue
        if component == "advance":
            if kind in kinds_present:
                analysis.problems.append(
                    "drivers must not charge wall-clock directly (advance site found)"
                )
            continue
        if expr is not None and kind not in kinds_present:
            analysis.problems.append(
                f"component {component!r} has closed form {expr!r} "
                f"but no {kind} charge site is reachable"
            )


def analyze_costs(modules: list) -> list[CostAnalysis]:
    """Static cost analysis of every certified root + the kernels surface.

    ``modules`` are ``ModuleContext``-likes (``relpath`` + ``tree``).
    Purely static — :func:`repro.lint.costverify.verify_costs` adds the
    runtime certification on top.
    """
    cg = build_call_graph(modules)
    out: list[CostAnalysis] = []
    for relpath, qualname in COST_ROOTS:
        spec = COST_SPECS.get(f"{relpath}::{qualname}")
        analysis = CostAnalysis(module=relpath, qualname=qualname, spec=spec)
        decl = _find_driver(cg, relpath, qualname)
        if decl is None:
            analysis.problems.append("root not found in the analysed modules")
        else:
            analysis.module = decl.module
            analysis.sites = extract_charge_sites(
                cg, decl, spec.once if spec is not None else frozenset()
            )
            if not analysis.sites:
                analysis.problems.append("no charge sites reachable from the root")
            _check_spec_site_consistency(analysis)
        out.append(analysis)

    # the kernels surface: numerics only, certified charge-free
    kernels = CostAnalysis(
        module=KERNELS_PREFIX.rstrip("/"), qualname="<charge-free surface>", spec=None
    )
    for m in modules:
        if not m.relpath.startswith(KERNELS_PREFIX):
            continue
        for node in ast.walk(m.tree):
            if isinstance(node, ast.Call):
                kind = _charge_call_kind(node)
                if kind is not None:
                    kernels.problems.append(
                        f"kernels module {m.relpath}:{node.lineno} charges the "
                        f"cost model ({kind}) — kernels must stay charge-free"
                    )
    out.append(kernels)
    return out
