"""Unit tests for greedy colouring (the ILU(0) concurrency path)."""

import numpy as np

from repro.graph import (
    Graph,
    adjacency_from_matrix,
    color_classes,
    greedy_coloring,
    is_proper_coloring,
)
from repro.matrices import poisson2d, random_geometric_laplacian


class TestGreedyColoring:
    def test_poisson_is_two_colorable(self):
        # the 5-point grid is bipartite: greedy WP ordering finds 2 colours
        g = adjacency_from_matrix(poisson2d(8))
        colors = greedy_coloring(g)
        assert is_proper_coloring(g, colors)
        assert colors.max() + 1 <= 4  # greedy may exceed 2, stays small

    def test_proper_on_irregular(self):
        g = adjacency_from_matrix(random_geometric_laplacian(100, seed=1))
        colors = greedy_coloring(g)
        assert is_proper_coloring(g, colors)
        assert colors.max() + 1 <= int(g.degrees().max()) + 1  # Brooks-ish bound

    def test_edgeless(self):
        g = Graph(np.zeros(5, dtype=np.int64), np.empty(0, dtype=np.int64))
        colors = greedy_coloring(g)
        assert np.all(colors == 0)

    def test_custom_order(self):
        g = adjacency_from_matrix(poisson2d(4))
        colors = greedy_coloring(g, order=np.arange(16))
        assert is_proper_coloring(g, colors)

    def test_all_vertices_colored(self):
        g = adjacency_from_matrix(poisson2d(5))
        colors = greedy_coloring(g)
        assert np.all(colors >= 0)


class TestColorClasses:
    def test_classes_partition_vertices(self):
        g = adjacency_from_matrix(poisson2d(6))
        colors = greedy_coloring(g)
        classes = color_classes(colors)
        total = np.concatenate(classes)
        assert sorted(total.tolist()) == list(range(36))

    def test_each_class_independent(self):
        from repro.graph import is_independent_set

        g = adjacency_from_matrix(poisson2d(6))
        for cls in color_classes(greedy_coloring(g)):
            assert is_independent_set(g, cls)

    def test_empty(self):
        assert color_classes(np.array([], dtype=np.int64)) == []


class TestIsProper:
    def test_detects_conflict(self):
        g = adjacency_from_matrix(poisson2d(3))
        assert not is_proper_coloring(g, np.zeros(9, dtype=np.int64))
