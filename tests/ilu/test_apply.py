"""Unit tests for the level-scheduled fast applier."""

import numpy as np
import pytest

from repro.ilu import ilut, parallel_ilut
from repro.ilu.apply import LevelScheduledApplier, triangular_levels
from repro.matrices import poisson2d, random_diag_dominant
from repro.sparse import CSRMatrix


class TestTriangularLevels:
    def test_diagonal_matrix_all_level_zero(self):
        M = CSRMatrix.from_dense(np.diag([1.0, 2.0, 3.0]))
        assert triangular_levels(M, lower=True).tolist() == [0, 0, 0]

    def test_chain_levels(self):
        # bidiagonal lower: row i depends on i-1 → level i
        n = 5
        D = np.eye(n) + np.diag(np.ones(n - 1), -1)
        M = CSRMatrix.from_dense(D)
        assert triangular_levels(M, lower=True).tolist() == [0, 1, 2, 3, 4]

    def test_upper_chain_levels(self):
        n = 4
        D = np.eye(n) + np.diag(np.ones(n - 1), 1)
        M = CSRMatrix.from_dense(D)
        assert triangular_levels(M, lower=False).tolist() == [3, 2, 1, 0]

    def test_block_structure_levels(self):
        # two independent 2-chains → levels [0,1,0,1]
        D = np.eye(4)
        D[1, 0] = 1.0
        D[3, 2] = 1.0
        M = CSRMatrix.from_dense(D)
        assert triangular_levels(M, lower=True).tolist() == [0, 1, 0, 1]


class TestLevelScheduledApplier:
    def test_matches_reference_solve_sequential(self, rng):
        A = random_diag_dominant(50, 5, seed=2)
        f = ilut(A, 10, 1e-4)
        app = LevelScheduledApplier(f)
        for _ in range(3):
            b = rng.standard_normal(50)
            assert np.allclose(app.apply(b), f.solve(b), rtol=1e-12, atol=1e-14)

    def test_matches_reference_solve_parallel_factors(self, rng):
        A = poisson2d(14)
        r = parallel_ilut(A, 5, 1e-3, 4, seed=0, simulate=False)
        app = LevelScheduledApplier(r.factors)
        b = rng.standard_normal(196)
        assert np.allclose(app.apply(b), r.factors.solve(b), rtol=1e-12)

    def test_parallel_ordering_has_fewer_levels(self):
        """MIS ordering shortens dependency chains — the paper's point."""
        A = poisson2d(16)
        seq = LevelScheduledApplier(ilut(A, 5, 1e-3))
        par = LevelScheduledApplier(
            parallel_ilut(A, 5, 1e-3, 8, seed=0, simulate=False).factors
        )
        assert par.forward_levels < seq.forward_levels

    def test_shape_check(self):
        A = poisson2d(6)
        app = LevelScheduledApplier(ilut(A, 5, 1e-3))
        with pytest.raises(ValueError):
            app.apply(np.ones(7))

    def test_callable(self, rng):
        A = poisson2d(6)
        f = ilut(A, 5, 1e-3)
        app = LevelScheduledApplier(f)
        b = rng.standard_normal(36)
        assert np.array_equal(app(b), app.apply(b))

    def test_zero_pivot_rejected(self):
        from repro.ilu import ILUFactors

        U = CSRMatrix.from_coo([0, 1], [0, 1], [1.0, 0.0], (2, 2))
        f = ILUFactors(L=CSRMatrix.zeros(2), U=U, perm=np.arange(2))
        with pytest.raises(ZeroDivisionError):
            LevelScheduledApplier(f)

    def test_missing_diagonal_rejected(self):
        from repro.ilu import ILUFactors

        U = CSRMatrix.from_coo([0], [0], [1.0], (2, 2))
        f = ILUFactors(L=CSRMatrix.zeros(2), U=U, perm=np.arange(2))
        with pytest.raises(ValueError):
            LevelScheduledApplier(f)


class TestFastPreconditioner:
    def test_fast_and_slow_agree_in_gmres(self, rng):
        from repro.solvers import ILUPreconditioner, gmres

        A = poisson2d(12)
        b = rng.standard_normal(144)
        f = ilut(A, 10, 1e-4)
        r_fast = gmres(A, b, restart=20, M=ILUPreconditioner(f, fast=True))
        r_slow = gmres(A, b, restart=20, M=ILUPreconditioner(f, fast=False))
        assert r_fast.converged and r_slow.converged
        assert r_fast.num_matvec == r_slow.num_matvec
        assert np.allclose(r_fast.x, r_slow.x, atol=1e-8)

    def test_fast_is_faster_for_parallel_factors(self, rng):
        import time

        A = poisson2d(24)
        r = parallel_ilut(A, 10, 1e-4, 8, seed=0, simulate=False)
        b = rng.standard_normal(A.shape[0])
        app = LevelScheduledApplier(r.factors)
        app.apply(b)  # warm
        t0 = time.perf_counter()
        for _ in range(5):
            app.apply(b)
        fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            r.factors.solve(b)
        slow = time.perf_counter() - t0
        assert fast < slow
