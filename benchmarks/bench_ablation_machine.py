"""Ablation — machine-model sensitivity (paper §7's cluster remark).

'The modifications of ILUT* are critical for obtaining good performance
on parallel computers with slower communication networks (such as
workstation clusters).'  Sweep the communication cost from free to
ethernet-class and watch the absolute ILUT→ILUT* saving explode while
the pure-compute saving stays fixed.
"""

import pytest

from _reporting import record_table
from _workloads import PROCS, SEED, matrix

from repro import decompose, parallel_ilut, parallel_ilut_star
from repro.machine import CRAY_T3D, IDEAL, WORKSTATION_CLUSTER, MachineModel

M, T = 10, 1e-6

MODELS = (
    IDEAL,
    CRAY_T3D,
    MachineModel("mid-cluster", flop_time=1e-7, latency=1e-4, byte_time=1.0 / 40e6),
    WORKSTATION_CLUSTER,
)


def _sweep():
    A = matrix("g0")
    p = PROCS[-1]
    d = decompose(A, p, seed=SEED)
    rows = []
    for model in MODELS:
        ti = parallel_ilut(A, M, T, p, decomp=d, model=model, seed=SEED).modeled_time
        ts = parallel_ilut_star(
            A, M, T, 2, p, decomp=d, model=model, seed=SEED
        ).modeled_time
        rows.append([model.name, model.latency, ti, ts, ti - ts])
    return rows


def test_machine_sensitivity(benchmark):
    from repro.analysis import format_table

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_table(
        "Ablation: machine sensitivity (G0, m=%d, t=%.0e, p=%d)" % (M, T, PROCS[-1]),
        format_table(
            ["machine", "latency (s)", "ILUT time", "ILUT* time", "ILUT* saving"],
            rows,
            floatfmt="{:.5f}",
        ),
    )
    # ILUT* never slower on any machine
    for row in rows:
        assert row[3] <= row[2] * 1.02, row[0]
    # absolute saving grows monotonically with communication cost
    savings = [row[4] for row in rows]
    assert savings == sorted(savings), savings
    # ethernet-class saving dwarfs the T3D's
    assert savings[-1] > 5 * savings[1]
