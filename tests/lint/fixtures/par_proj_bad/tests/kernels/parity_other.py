"""A parity file that never mentions the widget kernel."""


def check_something_else():
    return True
