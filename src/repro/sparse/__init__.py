"""Sparse-matrix substrate: COO assembly, CSR storage, row accumulator,
triangular kernels and MatrixMarket I/O."""

from .accumulator import SparseRowAccumulator
from .coo import COOBuilder
from .csr import CSRMatrix
from .io import read_matrix_market, write_matrix_market
from .ops import (
    count_triangular_flops,
    lower_solve,
    lower_solve_unit,
    split_lu,
    upper_solve,
)

__all__ = [
    "COOBuilder",
    "CSRMatrix",
    "SparseRowAccumulator",
    "lower_solve",
    "lower_solve_unit",
    "upper_solve",
    "split_lu",
    "count_triangular_flops",
    "read_matrix_market",
    "write_matrix_market",
]
