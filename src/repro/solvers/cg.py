"""Preconditioned conjugate gradients (for the SPD workloads).

Not part of the paper's evaluation (which uses GMRES throughout), but a
natural companion for the SPD test matrices; included as an extension
and exercised by tests and one example.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..sparse import CSRMatrix
from .preconditioners import Preconditioner, prepare_preconditioner
from .result import CGResult

__all__ = ["CGResult", "cg"]


def cg(
    A: CSRMatrix | Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    M: Preconditioner | None = None,
    x0: np.ndarray | None = None,
) -> CGResult:
    """Solve SPD ``A x = b`` with preconditioned CG.

    Stops when ``||r|| <= tol * ||r0||``.
    """
    t_start = time.perf_counter()
    matvec = A.matvec if isinstance(A, CSRMatrix) else A
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    M = prepare_preconditioner(M, A)
    failure_report = getattr(M, "failure_report", None)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()

    r = b - matvec(x) if x.any() else b.copy()
    nmv = int(x.any())
    z = M.apply(r)
    p = z.copy()
    rz = float(np.dot(r, z))
    r0_norm = float(np.linalg.norm(r))
    hist = [r0_norm]
    if r0_norm == 0.0:
        return CGResult(
            x=x,
            converged=True,
            iterations=0,
            final_residual=0.0,
            residual_norms=hist,
            elapsed=time.perf_counter() - t_start,
            num_matvec=nmv,
            failure_report=failure_report,
        )

    converged = False
    it = 0
    while it < maxiter:
        Ap = matvec(p)
        nmv += 1
        pAp = float(np.dot(p, Ap))
        if pAp <= 0.0:
            break  # matrix not SPD along this direction
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        it += 1
        rn = float(np.linalg.norm(r))
        hist.append(rn)
        if rn <= tol * r0_norm:
            converged = True
            break
        z = M.apply(r)
        rz_new = float(np.dot(r, z))
        p = z + (rz_new / rz) * p
        rz = rz_new
    return CGResult(
        x=x,
        converged=converged,
        iterations=it,
        final_residual=float(np.linalg.norm(b - matvec(x))),
        residual_norms=hist,
        elapsed=time.perf_counter() - t_start,
        num_matvec=nmv,
        failure_report=failure_report,
    )
