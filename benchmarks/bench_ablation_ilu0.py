"""Ablation — static ILU(0) colouring vs dynamic ILUT MIS (paper §3).

Figure 1 of the paper contrasts the two regimes: ILU(0)'s concurrency
structure is a one-shot colouring (few levels, computable up front),
while ILUT must recompute independent sets as fill adds dependencies
(many levels, computed during factorization).  The price of ILU(0)'s
simplicity is preconditioning quality (paper §2).
"""

import numpy as np
import pytest

from _reporting import record_table
from _workloads import MODEL, PROCS, SEED, matrix

from repro import decompose, parallel_ilut
from repro.ilu import parallel_ilu0
from repro.solvers import ILUPreconditioner, gmres


def _compare():
    A = matrix("g0")
    p = PROCS[-1]
    d = decompose(A, p, seed=SEED)
    b = A @ np.ones(A.shape[0])
    rows = []
    for name, runner in (
        ("ILU(0) colouring", lambda: parallel_ilu0(A, p, decomp=d, model=MODEL, seed=SEED)),
        ("ILUT(10,1e-2) MIS", lambda: parallel_ilut(A, 10, 1e-2, p, decomp=d, model=MODEL, seed=SEED)),
        ("ILUT(10,1e-6) MIS", lambda: parallel_ilut(A, 10, 1e-6, p, decomp=d, model=MODEL, seed=SEED)),
    ):
        r = runner()
        res = gmres(
            A, b, restart=20, tol=1e-8, M=ILUPreconditioner(r.factors), maxiter=20000
        )
        rows.append(
            [name, r.num_levels, r.factors.nnz, r.modeled_time, res.num_matvec]
        )
    return rows


def test_ilu0_vs_ilut(benchmark):
    from repro.analysis import format_table

    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    record_table(
        "Ablation: ILU(0) colouring vs ILUT MIS (G0, p=%d)" % PROCS[-1],
        format_table(
            ["variant", "levels q", "nnz(L+U)", "factor time", "GMRES(20) NMV"],
            rows,
        ),
    )
    ilu0_row, ilut2_row, ilut6_row = rows
    # static colouring gives far fewer levels than the dense dynamic case
    assert ilu0_row[1] < ilut6_row[1]
    # and a much cheaper factorization
    assert ilu0_row[3] < ilut6_row[3]
    # but the tight ILUT is the stronger preconditioner
    assert ilut6_row[4] <= ilu0_row[4]
