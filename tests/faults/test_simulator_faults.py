"""Fault injection at the simulator layer: delivery effects, rank
faults, snapshot/restore bookkeeping."""

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    MessageFault,
    MessageLost,
    RankFailure,
    RankFault,
)
from repro.machine import CRAY_T3D, IDEAL, Simulator


def make_sim(plan, nranks=2, model=CRAY_T3D):
    return Simulator(nranks, model, faults=plan)


class TestMessageFaults:
    def test_drop_raises_message_lost(self):
        sim = make_sim(FaultPlan(message_faults=[MessageFault("drop")]))
        sim.send(0, 1, {"v": 1}, 4.0, tag="data")
        with pytest.raises(MessageLost, match="was lost"):
            sim.recv(1, 0, tag="data")
        assert sim.fault_journal.counts() == {"drop": 1, "lost": 1}

    def test_drop_still_charges_the_sender(self):
        healthy = Simulator(2, CRAY_T3D)
        healthy.send(0, 1, None, 4.0, tag="data")
        sim = make_sim(FaultPlan(message_faults=[MessageFault("drop")]))
        sim.send(0, 1, None, 4.0, tag="data")
        assert sim.stats().messages == healthy.stats().messages
        assert sim.stats().words_sent == healthy.stats().words_sent

    def test_delay_pushes_arrival_back(self):
        base = Simulator(2, CRAY_T3D)
        base.send(0, 1, "x", 1.0, tag="t")
        base.recv(1, 0, tag="t")
        sim = make_sim(
            FaultPlan(message_faults=[MessageFault("delay", delay=5.0)])
        )
        sim.send(0, 1, "x", 1.0, tag="t")
        sim.recv(1, 0, tag="t")
        assert sim.elapsed() == pytest.approx(base.elapsed() + 5.0)

    def test_duplicate_enqueues_second_copy(self):
        sim = make_sim(FaultPlan(message_faults=[MessageFault("duplicate")]))
        sim.send(0, 1, "payload", 2.0, tag="t")
        assert sim.recv(1, 0, tag="t") == "payload"
        assert sim.recv(1, 0, tag="t") == "payload"  # the stale copy
        assert sim.fault_journal.counts() == {"duplicate": 1}

    def test_corrupt_delivers_poisoned_array(self):
        sim = make_sim(FaultPlan(message_faults=[MessageFault("corrupt")]))
        sim.send(0, 1, np.ones(5), 5.0, tag="t")
        out = sim.recv(1, 0, tag="t")
        assert np.isnan(out).sum() == 1

    def test_unmatched_tag_is_unaffected(self):
        sim = make_sim(FaultPlan(message_faults=[MessageFault("drop", tag="other")]))
        sim.send(0, 1, 42, 1.0, tag="t")
        assert sim.recv(1, 0, tag="t") == 42


class TestRankFaults:
    def test_crash_fires_on_compute(self):
        sim = make_sim(FaultPlan(rank_faults=[RankFault("crash", rank=1)]))
        sim.compute(0, 10.0)  # other ranks unaffected
        with pytest.raises(RankFailure):
            sim.compute(1, 10.0)

    def test_crash_waits_for_its_superstep(self):
        sim = make_sim(
            FaultPlan(rank_faults=[RankFault("crash", rank=0, superstep=2)]), nranks=2
        )
        sim.barrier()
        sim.barrier()
        assert sim.superstep == 2
        with pytest.raises(RankFailure):
            sim.barrier()

    def test_stall_advances_only_that_clock(self):
        sim = make_sim(
            FaultPlan(rank_faults=[RankFault("stall", rank=1, stall=3.0)]),
            model=IDEAL,
        )
        sim.compute(0, 5.0)
        sim.compute(1, 5.0)
        t0, t1 = sim.clock[0], sim.clock[1]
        assert t1 == pytest.approx(t0 + 3.0)
        assert sim.fault_journal.counts() == {"stall": 1}


class TestSnapshotRestore:
    def test_restore_rewinds_clocks_and_mail(self):
        sim = Simulator(2, CRAY_T3D)
        sim.compute(0, 100.0)
        snap = sim.snapshot()
        t = sim.elapsed()
        sim.compute(0, 500.0)
        sim.send(0, 1, "late", 1.0, tag="t")
        sim.restore(snap)
        assert sim.elapsed() == t
        assert sim.pending_messages() == 0

    def test_restore_is_journaled_under_faults(self):
        sim = make_sim(FaultPlan(rank_faults=[RankFault("crash", rank=0)]))
        snap = sim.snapshot()
        with pytest.raises(RankFailure):
            sim.compute(0, 1.0)
        sim.restore(snap, reason="crash recovery")
        counts = sim.fault_journal.counts()
        assert counts == {"crash": 1, "restore": 1}

    def test_one_snapshot_survives_two_restores(self):
        sim = Simulator(2, CRAY_T3D)
        sim.send(0, 1, "keep", 1.0, tag="t")
        snap = sim.snapshot()
        assert sim.recv(1, 0, tag="t") == "keep"
        sim.restore(snap)
        assert sim.recv(1, 0, tag="t") == "keep"
        sim.restore(snap)
        assert sim.recv(1, 0, tag="t") == "keep"
