"""Vectorized sparse-accumulator for the ILUT/ILUT* inner elimination.

Drop-in replacement for :class:`repro.sparse.SparseRowAccumulator` with
the same load/axpy/set/drop/get/extract/reset contract and *bit-exact*
semantics, but with the nonzero-pattern companion held in a preallocated
``int64`` array instead of a Python list.  The reference accumulator
spends most of its time converting numpy scalars to Python ints while
extending the pattern list; here pattern growth is a single slice
assignment, so ``load`` and ``axpy`` cost one numpy call each regardless
of fill.

The elimination engines additionally reach into ``values`` /
``in_pattern`` / ``pattern_array`` directly in their hot loops; those
attributes are a stable part of this class's interface.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VectorizedRowAccumulator"]


class VectorizedRowAccumulator:
    """Full-length working row with an array-backed pattern list.

    A position can appear in the pattern at most once (positions are
    column indices), so a capacity-``n`` pattern array never overflows.
    """

    __slots__ = ("n", "values", "in_pattern", "_pat", "_count")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.n = int(n)
        self.values = np.zeros(self.n, dtype=np.float64)
        self.in_pattern = np.zeros(self.n, dtype=bool)
        self._pat = np.empty(self.n, dtype=np.int64)
        self._count = 0

    # ------------------------------------------------------------------

    def load(self, cols: np.ndarray, vals: np.ndarray) -> None:
        """Sparse copy of a row into the (empty) accumulator."""
        if self._count:
            raise RuntimeError("load() on a non-empty accumulator; call reset() first")
        cols = np.asarray(cols, dtype=np.int64)
        self.values[cols] = vals
        self.in_pattern[cols] = True
        self._pat[: cols.size] = cols
        self._count = int(cols.size)

    def axpy(self, alpha: float, cols: np.ndarray, vals: np.ndarray) -> None:
        """``w[cols] += alpha * vals``, extending the pattern with fill."""
        cols = np.asarray(cols, dtype=np.int64)
        fresh = cols[~self.in_pattern[cols]]
        if fresh.size:
            self.in_pattern[fresh] = True
            self._pat[self._count : self._count + fresh.size] = fresh
            self._count += int(fresh.size)
        self.values[cols] += alpha * vals

    def set(self, col: int, val: float) -> None:
        """Assign ``w[col] = val`` (adds the position to the pattern)."""
        if not self.in_pattern[col]:
            self.in_pattern[col] = True
            self._pat[self._count] = col
            self._count += 1
        self.values[col] = val

    def drop(self, col: int) -> None:
        """Zero out position ``col`` but keep it in the pattern."""
        self.values[col] = 0.0

    def get(self, col: int) -> float:
        return float(self.values[col])

    def __contains__(self, col: int) -> bool:
        return bool(self.in_pattern[col]) and self.values[col] != 0.0

    @property
    def pattern(self) -> np.ndarray:
        """Current (unsorted) nonzero-candidate positions — a view."""
        return self._pat[: self._count]

    def pattern_array(self) -> np.ndarray:
        """Alias of :attr:`pattern` for hot loops that avoid properties."""
        return self._pat[: self._count]

    def nonzero_pattern(self) -> np.ndarray:
        """Positions whose value is currently nonzero, unsorted."""
        p = self._pat[: self._count]
        if p.size == 0:
            return p.copy()
        return p[self.values[p] != 0.0]

    # ------------------------------------------------------------------

    def extract(self, *, sort: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(cols, vals)`` of the nonzero entries (no reset)."""
        p = self.nonzero_pattern()
        if sort and p.size:
            p.sort()
        return p, self.values[p].copy()

    def extract_range(
        self, lo: int, hi: int, *, sort: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nonzero entries with column index in ``[lo, hi)``."""
        p = self.nonzero_pattern()
        p = p[(p >= lo) & (p < hi)]
        if sort and p.size:
            p.sort()
        return p, self.values[p].copy()

    def reset(self) -> None:
        """Sparse O(pattern) reset back to the empty state."""
        p = self._pat[: self._count]
        if p.size:
            self.values[p] = 0.0
            self.in_pattern[p] = False
        self._count = 0

    def __len__(self) -> int:
        return int(self.nonzero_pattern().size)
