"""Runtime cost certification: static charge models vs recorded charges.

The execution half of ``repro lint --verify-costs``.  The static half
(:mod:`repro.lint.flow.cost`) extracts every charge site reachable from
each certified comm root and carries the symbolic cost model; this
module runs each root on small seeded instances with a
:class:`~repro.machine.ledger.ChargeLedger` attached and certifies, per
root:

* **closed forms** — each structurally determined component (flops,
  messages, words, barriers, collectives) evaluates, on the concrete
  instance, to exactly the simulator's recorded total.  The structural
  parameters are computed by *independent* evaluators in this module
  (e.g. the triangular-solve consumer sets are recomputed from the raw
  CSR arrays with numpy, not via the driver's helper);
* **site coverage, both directions** — every ledger event joins to a
  statically known site, and every non-fault-path static site fires in
  at least one harness run;
* **per-site fire counts** — where the static loop-bound analysis
  derived a symbolic count (``p``, ``q``, ``rounds * 2 * p``, …), the
  ledger's event count at that site must match its concrete value;
* **measured components** — the data-dependent totals (ILUT flops and
  u-row traffic) are certified by dual accounting: the ledger total at
  the engine's ``_charge_ops`` site must equal the engine's own
  ``flops_total`` counter, ``_charge_copy`` must equal
  ``words_copied * COPY_OPS_PER_WORD``, every compute/word total must
  be integer-valued, and a repeated (or cross-backend) run must
  reproduce the stats and modeled time bit for bit;
* **the kernels surface** — no ledger event may ever attribute to a
  ``repro.kernels`` module (checked across every run of every root).

Any violated check is a DRIFT row; ``repro lint --verify-costs`` exits
1 — the same contract as ``--verify-protocol`` / ``--verify-transport``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .flow.cost import (
    KERNELS_PREFIX,
    ChargeSite,
    CostAnalysis,
    CostExpr,
    analyze_costs,
)

__all__ = ["CostCheck", "CostReport", "verify_costs"]

#: rank count and mesh size of the certification instances — big enough
#: that every non-fault-path charge site fires, small enough for CI
_NRANKS = 3
_MESH = 8
_MIS_ROUNDS = 3


@dataclass
class CostCheck:
    """One certified (or drifted) comparison."""

    name: str
    status: str  # "ok" | "drift"
    expected: str
    actual: str
    detail: str = ""


@dataclass
class CostReport:
    """Certification outcome for one root (or the kernels surface)."""

    module: str
    qualname: str
    expressions: dict[str, str] = field(default_factory=dict)
    checks: list[CostCheck] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    runs: int = 0
    sites: int = 0

    @property
    def key(self) -> str:
        return f"{self.module}::{self.qualname}"

    @property
    def certified(self) -> bool:
        return not self.problems and all(c.status == "ok" for c in self.checks)

    def check(self, name: str, expected, actual, detail: str = "") -> None:
        same = expected == actual
        self.checks.append(
            CostCheck(
                name=name,
                status="ok" if same else "drift",
                expected=repr(expected),
                actual=repr(actual),
                detail=detail,
            )
        )


# --------------------------------------------------------------------------
# shared plumbing
# --------------------------------------------------------------------------


def _ledgered_sim(nranks: int):
    from ..machine import CRAY_T3D, ChargeLedger, Simulator

    ledger = ChargeLedger()
    return Simulator(nranks, CRAY_T3D, ledger=ledger), ledger


def _stats_tuple(stats) -> tuple:
    return (
        stats.nranks,
        stats.total_flops,
        stats.messages,
        stats.words_sent,
        stats.barriers,
        stats.collectives,
        tuple(stats.per_rank_flops),
    )


def _rel(file: str, root: Path) -> str:
    try:
        return Path(file).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file


def _is_integral(x: float) -> bool:
    return float(x) == float(int(x))


@dataclass
class _Joiner:
    """Accumulates ledger<->static joins across a root's harness runs."""

    report: CostReport
    analysis: CostAnalysis
    root_dir: Path
    fired: set[tuple[str, str, int]] = field(default_factory=set)
    ledgers: list = field(default_factory=list)

    def join_run(self, ledger, env: dict[str, float], label: str) -> None:
        """Per-run site membership + fire-count checks."""
        self.report.runs += 1
        self.ledgers.append(ledger)
        static = {s.key: s for s in self.analysis.sites}
        counts: dict[tuple[str, str, int], int] = {}
        for ev in ledger.events:
            key = (ev.kind, _rel(ev.file, self.root_dir), ev.line)
            counts[key] = counts.get(key, 0) + 1
            self.fired.add(key)
            if key not in static:
                self.report.check(
                    f"{label}: site {key[1]}:{key[2]} ({ev.kind}) statically known",
                    True,
                    False,
                    detail="runtime charge from a line the analysis does not know",
                )
        for key, n in counts.items():
            site = static.get(key)
            if site is None or site.count_expr is None:
                continue
            try:
                expected = int(CostExpr(site.count_expr).evaluate(env))
            except (KeyError, ValueError):
                continue
            self.report.check(
                f"{label}: fire count of {site.module}:{site.line} "
                f"== {site.count_expr}",
                expected,
                n,
                detail=f"loop-nest derivation: {site.derivation}",
            )

    def finish(self) -> None:
        """Cross-run must-fire coverage."""
        for site in self.analysis.sites:
            if site.fault_path:
                continue
            if site.key not in self.fired:
                self.report.check(
                    f"site {site.module}:{site.line} ({site.kind}) exercised",
                    True,
                    False,
                    detail=f"in {site.function}; derivation {site.derivation}",
                )


def _check_components(
    report: CostReport, label: str, stats, env: dict[str, float]
) -> None:
    """Closed-form spec components against the recorded totals."""
    spec_map = report.expressions
    actual = {
        "flops": float(stats.total_flops),
        "messages": float(stats.messages),
        "words": float(stats.words_sent),
        "barriers": float(stats.barriers),
        "collectives": float(stats.collectives),
    }
    for component, text in spec_map.items():
        if text == "<measured>":
            continue
        expected = CostExpr(text).evaluate(env)
        report.check(
            f"{label}: {component} == {text}", float(expected), actual[component]
        )


def _spec_expressions(analysis: CostAnalysis) -> dict[str, str]:
    spec = analysis.spec
    if spec is None:
        return {}
    return {
        name: (text if text is not None else "<measured>")
        for name, text in spec.components().items()
    }


# --------------------------------------------------------------------------
# independent structural evaluators
# --------------------------------------------------------------------------


def _entry_endpoints(M) -> tuple[np.ndarray, np.ndarray]:
    """(row, col) index arrays of every stored entry of a CSR matrix."""
    rows = np.repeat(
        np.arange(M.shape[0], dtype=np.int64), np.diff(M.indptr).astype(np.int64)
    )
    return rows, np.asarray(M.indices, dtype=np.int64)


def _halo_params(decomp) -> tuple[int, float]:
    plan = decomp.halo_plan()
    return len(plan), float(sum(nodes.size for nodes in plan.values()))


def _triangular_comm(factors) -> tuple[int, float]:
    """(messages, words) of both substitution sweeps, recomputed from the
    raw CSR arrays: for each interface-level column position ``c`` and
    each rank ``d`` owning a row that references ``c`` with ``d !=
    owner(c)``, one word flows — aggregated into one message per
    (level, direction, src, dst)."""
    levels = factors.levels
    owner = np.asarray(levels.owner, dtype=np.int64)
    n = factors.L.shape[0]
    level_of = np.full(n, -1, dtype=np.int64)
    for k, positions in enumerate(levels.interface_levels):
        level_of[np.asarray(positions, dtype=np.int64)] = k
    messages = 0
    words = 0.0
    for M in (factors.L, factors.U):
        rows, cols = _entry_endpoints(M)
        mask = (level_of[cols] >= 0) & (owner[rows] != owner[cols])
        if not np.any(mask):
            continue
        c, d = cols[mask], owner[rows][mask]
        # words: distinct (column, consumer-rank) pairs
        words += float(np.unique(np.stack([c, d]), axis=1).shape[1])
        # messages: distinct (level, src, dst) triples
        triples = np.stack([level_of[c], owner[c], d])
        messages += int(np.unique(triples, axis=1).shape[1])
    return messages, words


def _mis_graph(A):
    """The adjacency structure of ``A`` without the diagonal, as a Graph."""
    from ..graph import Graph

    rows, cols = _entry_endpoints(A)
    off = rows != cols
    rows, cols = rows[off], cols[off]
    n = A.shape[0]
    xadj = np.zeros(n + 1, dtype=np.int64)
    np.add.at(xadj, rows + 1, 1)
    xadj = np.cumsum(xadj)
    return Graph(xadj.astype(np.int64), cols.astype(np.int64))


def _mis_boundary(graph, part: np.ndarray) -> tuple[int, float]:
    """(pairs, words-per-step): for each directed edge (v, u) crossing
    ranks, u's owner ships u's flag to v's owner — distinct (src, dst)
    pairs and distinct (src, dst, u) triples."""
    part = np.asarray(part, dtype=np.int64)
    v = np.repeat(
        np.arange(graph.nvertices, dtype=np.int64),
        np.diff(graph.xadj).astype(np.int64),
    )
    u = np.asarray(graph.adjncy, dtype=np.int64)
    cross = part[u] != part[v]
    if not np.any(cross):
        return 0, 0.0
    src, dst, shipped = part[u][cross], part[v][cross], u[cross]
    pairs = int(np.unique(np.stack([src, dst]), axis=1).shape[1])
    words = float(np.unique(np.stack([src, dst, shipped]), axis=1).shape[1])
    return pairs, words


def _ilu0_comm(A, decomp, factors) -> tuple[int, float]:
    """(messages, words) of the colour-class u-row exchanges, recomputed
    from the driver's *outputs*: per class, a row ``i`` needs the U row
    of every earlier-eliminated interface column on another rank; a
    needed row of ``nnz`` entries costs ``2 nnz`` words (indices +
    values), counted per referencing row as the driver charges it."""
    part = np.asarray(decomp.part, dtype=np.int64)
    is_interface = np.asarray(decomp.is_interface, dtype=bool)
    perm = np.asarray(factors.perm, dtype=np.int64)
    n = perm.size
    pos = np.empty(n, dtype=np.int64)
    pos[perm] = np.arange(n, dtype=np.int64)
    u_nnz = np.diff(factors.U.indptr).astype(np.int64)  # indexed by position
    messages = 0
    words = 0.0
    for positions in factors.levels.interface_levels:
        need: dict[tuple[int, int], float] = {}
        for p_ in np.asarray(positions, dtype=np.int64):
            i = int(perm[p_])
            r = int(part[i])
            cols, _ = A.row(i)
            for c in cols:
                c = int(c)
                if pos[c] < pos[i] and is_interface[c] and int(part[c]) != r:
                    key = (int(part[c]), r)
                    need[key] = need.get(key, 0.0) + 2.0 * float(u_nnz[pos[c]])
        messages += len(need)
        words += sum(need.values())
    return messages, words


# --------------------------------------------------------------------------
# per-root harnesses
# --------------------------------------------------------------------------


def _verify_matvec(analysis: CostAnalysis, report: CostReport, root: Path) -> None:
    from ..decomp import decompose
    from ..matrices import poisson2d
    from ..solvers.parallel_matvec import parallel_matvec

    A = poisson2d(_MESH)
    decomp = decompose(A, _NRANKS, seed=0)
    x = np.linspace(-1.0, 1.0, A.shape[0])
    halo_pairs, halo_words = _halo_params(decomp)
    env = {
        "n": float(A.shape[0]),
        "p": float(_NRANKS),
        "nnz": float(A.nnz),
        "halo_pairs": float(halo_pairs),
        "halo_words": halo_words,
    }
    joiner = _Joiner(report, analysis, root)
    runs = {}
    for backend in ("reference", "vectorized"):
        sim, ledger = _ledgered_sim(_NRANKS)
        res = parallel_matvec(A, decomp, x, transport=sim, backend=backend)
        stats = sim.stats()
        sim.close()
        joiner.join_run(ledger, env, backend)
        _check_components(report, backend, stats, env)
        report.check(f"{backend}: result.flops == total_flops",
                     float(stats.total_flops), float(res.flops))
        runs[backend] = (res.modeled_time, _stats_tuple(stats))
    report.check(
        "cross-backend: modeled time and stats bit-identical",
        runs["reference"],
        runs["vectorized"],
    )
    joiner.finish()
    _no_kernel_charges(report, joiner, root)


def _verify_triangular(analysis: CostAnalysis, report: CostReport, root: Path) -> None:
    from ..ilu import parallel_ilut
    from ..ilu.params import ILUTParams
    from ..ilu.triangular import parallel_triangular_solve
    from ..matrices import poisson2d

    A = poisson2d(_MESH)
    fact = parallel_ilut(A, ILUTParams(fill=5, threshold=1e-3), _NRANKS,
                         seed=0, transport="none")
    factors = fact.factors
    b = A @ np.ones(A.shape[0])
    q = len(factors.levels.interface_levels)
    tri_messages, tri_words = _triangular_comm(factors)
    env = {
        "n": float(A.shape[0]),
        "p": float(_NRANKS),
        "q": float(q),
        "nnz_L": float(factors.L.nnz),
        "nnz_U": float(factors.U.nnz),
        "tri_messages": float(tri_messages),
        "tri_words": tri_words,
    }
    joiner = _Joiner(report, analysis, root)
    runs = {}
    for backend in ("reference", "vectorized"):
        sim, ledger = _ledgered_sim(_NRANKS)
        sol = parallel_triangular_solve(
            factors, b, nranks=_NRANKS, transport=sim, backend=backend
        )
        stats = sim.stats()
        sim.close()
        joiner.join_run(ledger, env, backend)
        _check_components(report, backend, stats, env)
        report.check(f"{backend}: result.flops == total_flops",
                     float(stats.total_flops), float(sol.flops))
        runs[backend] = (sol.modeled_time, _stats_tuple(stats))
    report.check(
        "cross-backend: modeled time and stats bit-identical",
        runs["reference"],
        runs["vectorized"],
    )
    joiner.finish()
    _no_kernel_charges(report, joiner, root)


def _verify_mis(analysis: CostAnalysis, report: CostReport, root: Path) -> None:
    from ..decomp import decompose
    from ..graph.distributed_mis import distributed_two_step_luby_mis
    from ..matrices import poisson2d

    A = poisson2d(_MESH)
    decomp = decompose(A, _NRANKS, seed=0)
    graph = _mis_graph(A)
    pairs, words_per_step = _mis_boundary(graph, decomp.part)
    env = {
        "p": float(_NRANKS),
        "rounds": float(_MIS_ROUNDS),
        "nedges": float(graph.adjncy.size),
        "boundary_pairs": float(pairs),
        "boundary_words": words_per_step,
    }
    joiner = _Joiner(report, analysis, root)
    runs = []
    for attempt in ("run-1", "run-2"):
        sim, ledger = _ledgered_sim(_NRANKS)
        distributed_two_step_luby_mis(
            graph, decomp.part, sim, seed=0, rounds=_MIS_ROUNDS
        )
        stats = sim.stats()
        sim.close()
        joiner.join_run(ledger, env, attempt)
        _check_components(report, attempt, stats, env)
        runs.append((sim.elapsed(), _stats_tuple(stats)))
    report.check("repeat run bit-identical", runs[0], runs[1])
    joiner.finish()
    _no_kernel_charges(report, joiner, root)


def _site_totals_by_function(
    analysis: CostAnalysis, ledger, root: Path, kind: str
) -> dict[str, float]:
    """Ledger totals of ``kind`` grouped by the static site's function."""
    static = {s.key: s for s in analysis.sites}
    out: dict[str, float] = {}
    for key, total in ledger.totals_by_site().items():
        k = (key[0], _rel(key[1], root), key[2])
        site = static.get(k)
        if site is not None and site.kind == kind:
            out[site.function] = out.get(site.function, 0.0) + total
    return out


def _dual_accounting(
    report: CostReport,
    analysis: CostAnalysis,
    ledger,
    root: Path,
    label: str,
    flops_total: float,
    words_copied: float,
) -> None:
    """Join per-site ledger totals against the engine's own counters."""
    from ..ilu.elimination import COPY_OPS_PER_WORD

    by_fn = _site_totals_by_function(analysis, ledger, root, "compute")
    report.check(
        f"{label}: ledger@_charge_ops == engine flops_total",
        float(flops_total),
        by_fn.get("EliminationEngine._charge_ops", 0.0),
    )
    report.check(
        f"{label}: ledger@_charge_copy == words_copied * COPY_OPS_PER_WORD",
        float(words_copied) * COPY_OPS_PER_WORD,
        by_fn.get("EliminationEngine._charge_copy", 0.0),
    )
    report.check(
        f"{label}: every compute total integer-valued",
        True,
        _is_integral(ledger.total("compute") * 2.0),  # copy charges are k/2
        detail="flops are op counts; copy charges are half-words",
    )
    report.check(
        f"{label}: words sent integer-valued",
        True,
        _is_integral(ledger.total("send")),
    )


def _verify_elimination(analysis: CostAnalysis, report: CostReport, root: Path) -> None:
    from ..ilu import parallel_ilut
    from ..ilu.params import ILUTParams
    from ..matrices import poisson2d

    A = poisson2d(_MESH)
    joiner = _Joiner(report, analysis, root)
    runs = {}
    for backend in ("reference", "vectorized"):
        sim, ledger = _ledgered_sim(_NRANKS)
        res = parallel_ilut(
            A, ILUTParams(fill=5, threshold=1e-3), _NRANKS,
            seed=0, transport=sim, backend=backend,
        )
        stats = sim.stats()
        sim.close()
        env = {
            "p": float(_NRANKS),
            "levels": float(res.num_levels),
            "mis_rounds": 5.0,  # engine default
        }
        joiner.join_run(ledger, env, backend)
        _check_components(report, backend, stats, env)
        _dual_accounting(
            report, analysis, ledger, root, backend, res.flops, res.words_copied
        )
        report.check(
            f"{backend}: stats flops == sum of compute-site totals",
            float(stats.total_flops),
            float(ledger.total("compute")),
        )
        runs[backend] = (
            res.modeled_time,
            _stats_tuple(stats),
            float(res.factors.L.data.sum()),
            float(res.factors.U.data.sum()),
            res.factors.perm.tobytes(),
        )
    report.check(
        "cross-backend: modeled time, stats and factors bit-identical",
        runs["reference"],
        runs["vectorized"],
    )
    joiner.finish()
    _no_kernel_charges(report, joiner, root)


def _verify_interface_partition(
    analysis: CostAnalysis, report: CostReport, root: Path
) -> None:
    from ..ilu.interface_partition import parallel_ilut_partitioned
    from ..matrices import poisson2d

    A = poisson2d(_MESH)
    joiner = _Joiner(report, analysis, root)
    runs = []
    for attempt in ("run-1", "run-2"):
        sim, ledger = _ledgered_sim(_NRANKS)
        res = parallel_ilut_partitioned(
            A, 5, 1e-3, _NRANKS, seed=0, transport=sim
        )
        stats = sim.stats()
        sim.close()
        env = {"p": float(_NRANKS), "levels": float(res.num_levels)}
        joiner.join_run(ledger, env, attempt)
        _check_components(report, attempt, stats, env)
        _dual_accounting(
            report, analysis, ledger, root, attempt, res.flops, res.words_copied
        )
        runs.append((res.modeled_time, _stats_tuple(stats), res.factors.perm.tobytes()))
    report.check("repeat run bit-identical", runs[0], runs[1])
    joiner.finish()
    _no_kernel_charges(report, joiner, root)


def _verify_ilu0(analysis: CostAnalysis, report: CostReport, root: Path) -> None:
    from ..decomp import decompose
    from ..ilu.parallel_ilu0 import parallel_ilu0
    from ..matrices import poisson2d

    A = poisson2d(_MESH)
    decomp = decompose(A, _NRANKS, seed=0)
    joiner = _Joiner(report, analysis, root)
    runs = []
    for attempt in ("run-1", "run-2"):
        sim, ledger = _ledgered_sim(_NRANKS)
        res = parallel_ilu0(A, _NRANKS, transport=sim, decomp=decomp, seed=0)
        stats = sim.stats()
        sim.close()
        messages, words = _ilu0_comm(A, decomp, res.factors)
        env = {
            "p": float(_NRANKS),
            "classes": float(res.num_levels),
            "ilu0_messages": float(messages),
            "ilu0_words": words,
        }
        joiner.join_run(ledger, env, attempt)
        _check_components(report, attempt, stats, env)
        report.check(
            f"{attempt}: result.flops == total_flops",
            float(stats.total_flops),
            float(res.flops),
        )
        report.check(
            f"{attempt}: compute totals integer-valued",
            True,
            _is_integral(ledger.total("compute")),
        )
        runs.append((res.modeled_time, _stats_tuple(stats), res.factors.perm.tobytes()))
    report.check("repeat run bit-identical", runs[0], runs[1])
    joiner.finish()
    _no_kernel_charges(report, joiner, root)


def _no_kernel_charges(report: CostReport, joiner: _Joiner, root: Path) -> None:
    """No charge may ever attribute to the kernels surface."""
    offenders = sorted(
        {
            f"{_rel(ev.file, root)}:{ev.line}"
            for ledger in joiner.ledgers
            for ev in ledger.events
            if _rel(ev.file, root).startswith(KERNELS_PREFIX)
        }
    )
    if offenders:
        report.check(
            "kernels surface charge-free at runtime", [], offenders,
            detail="ledger events attributed to repro.kernels modules",
        )


_HARNESSES = {
    "parallel_matvec": _verify_matvec,
    "parallel_triangular_solve": _verify_triangular,
    "distributed_two_step_luby_mis": _verify_mis,
    "EliminationEngine.run": _verify_elimination,
    "InterfacePartitionEngine.run": _verify_interface_partition,
    "parallel_ilu0": _verify_ilu0,
}


def verify_costs(modules: list, project_root: Path | None = None) -> list[CostReport]:
    """Certify every cost root's charges against its static model.

    ``modules`` are ``ModuleContext``-likes (``relpath`` + ``tree``);
    ``project_root`` anchors ledger file paths to the module relpaths
    (defaults to the current working directory).
    """
    root = Path(project_root) if project_root is not None else Path(os.getcwd())
    reports: list[CostReport] = []
    for analysis in analyze_costs(modules):
        report = CostReport(
            module=analysis.module,
            qualname=analysis.qualname,
            expressions=_spec_expressions(analysis),
            problems=list(analysis.problems),
            sites=len(analysis.sites),
        )
        harness = _HARNESSES.get(analysis.qualname)
        if harness is not None and not report.problems:
            try:
                harness(analysis, report, root)
            except Exception as err:  # noqa: BLE001 - surfaced as drift
                report.problems.append(
                    f"harness failed: {type(err).__name__}: {err}"
                )
        reports.append(report)
    return reports
