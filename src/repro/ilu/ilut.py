"""Sequential ILUT(m, t) — Saad's dual-threshold incomplete LU.

This is Algorithm 3.1 of the paper, implemented with the classic
full-working-row + nonzero-pointer data structure
(:class:`~repro.sparse.SparseRowAccumulator`).  It is both the serial
baseline of the evaluation and the kernel each simulated processor runs
on its interior rows in phase 1 of the parallel algorithm (via
:mod:`repro.ilu.elimination`).

Two implementations sit behind the ``backend`` switch: the scalar
reference below, and :func:`repro.kernels.ilut.ilut_vectorized`, which
performs the identical elimination with array-level bookkeeping and
produces bit-identical factors (the parity suite asserts it).
"""

from __future__ import annotations

import heapq
import warnings

import numpy as np

from ..resilience import PivotPolicy
from ..sparse import COOBuilder, CSRMatrix, SparseRowAccumulator
from .dropping import second_rule
from .factors import ILUFactors
from .params import ILUTParams

__all__ = ["ilut", "ilut_row_norms"]


def ilut_row_norms(A: CSRMatrix) -> np.ndarray:
    """Per-row 2-norms of A, used for the relative drop tolerances.

    Always computed with the reference kernel so the drop thresholds —
    and therefore the factors — are identical under every backend.
    """
    return A.row_norms(ord=2, backend="reference")


def coerce_ilut_params(
    fname: str,
    params: ILUTParams | int | None,
    t: float | None,
    m: int | None,
    k: int | None = None,
    *,
    want_k: bool = False,
    stacklevel: int = 3,
) -> ILUTParams:
    """Resolve the ``params``-or-legacy-keywords calling conventions.

    New style passes one :class:`ILUTParams`; legacy style passes bare
    ``m, t`` (and ``k`` for ILUT*) positionally or by keyword and gets a
    :class:`DeprecationWarning` attributed to the caller.
    """
    if isinstance(params, ILUTParams):
        if t is not None or m is not None or k is not None:
            raise TypeError(
                f"{fname}() got both an ILUTParams and legacy m/t/k arguments"
            )
        if want_k and params.k is None:
            raise ValueError(f"{fname}() requires ILUTParams with k set")
        return params
    if params is not None:
        if m is not None:
            raise TypeError(f"{fname}() got multiple values for 'm'")
        m = int(params)
    if m is None or t is None or (want_k and k is None):
        missing = "m, t, k" if want_k else "m, t"
        raise TypeError(
            f"{fname}() requires an ILUTParams instance or legacy ({missing})"
        )
    new_call = (
        f"ILUTParams(fill=m, threshold=t{', k=k' if want_k else ''})"
    )
    warnings.warn(
        f"{fname}(A, m, t{', k' if want_k else ''}, ...) is deprecated; "
        f"pass {fname}(A, {new_call}, ...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return ILUTParams(fill=int(m), threshold=float(t), k=None if k is None else int(k))


def ilut(
    A: CSRMatrix,
    params: ILUTParams | int | None = None,
    t: float | None = None,
    *,
    m: int | None = None,
    diag_guard: bool = True,
    pivot_policy: PivotPolicy | None = None,
    backend: str | None = None,
) -> ILUFactors:
    """Compute the ILUT factorization of ``A`` in natural order.

    Parameters
    ----------
    A:
        Square sparse matrix.
    params:
        An :class:`~repro.ilu.params.ILUTParams` bundle (``fill`` = max
        off-diagonal entries kept per row in L and separately in U;
        ``threshold`` = relative drop tolerance, row ``i`` uses
        ``tau_i = threshold * ||a_i||_2``).  The legacy bare ``(m, t)``
        arguments are still accepted with a :class:`DeprecationWarning`.
    diag_guard:
        If a pivot ``u_ii`` ends up exactly zero (dropped or missing),
        substitute ``tau_i`` (or the row-norm if ``tau_i`` is zero) so
        the factorization remains applicable.  With ``diag_guard=False``
        a zero pivot raises a typed
        :class:`~repro.resilience.ZeroPivotError` (a
        ``ZeroDivisionError`` subclass).
    pivot_policy:
        Full small/zero-pivot remediation control
        (:class:`~repro.resilience.PivotPolicy`); overrides
        ``diag_guard`` when given.  The default maps ``diag_guard`` onto
        the bit-exact legacy behaviour.
    backend:
        ``"reference"`` (scalar oracle), ``"vectorized"`` (bit-identical
        fast path), or ``None`` for the process default.

    Returns
    -------
    ILUFactors
        With identity permutation and a ``stats`` dict containing
        ``flops`` (multiply-adds + divides of the elimination) and
        ``fill_nnz``.
    """
    p = coerce_ilut_params("ilut", params, t, m)
    policy = pivot_policy if pivot_policy is not None else PivotPolicy.from_diag_guard(diag_guard)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"ILUT requires a square matrix, got {A.shape}")

    from ..kernels.backend import VECTORIZED, resolve_backend

    if resolve_backend(backend) == VECTORIZED:
        from ..kernels.ilut import ilut_vectorized

        L, U, _u_rows, flops = ilut_vectorized(
            A, p.fill, p.threshold, pivot_policy=policy
        )
        return ILUFactors(
            L=L,
            U=U,
            perm=np.arange(n, dtype=np.int64),
            levels=None,
            stats={
                "flops": flops,
                "fill_nnz": L.nnz + U.nnz,
                "m": p.fill,
                "t": p.threshold,
            },
        )

    mm, tt = p.fill, p.threshold
    norms = ilut_row_norms(A)
    w = SparseRowAccumulator(n)
    # U rows stored as (cols, vals) with the diagonal first-by-column
    u_rows: list[tuple[np.ndarray, np.ndarray]] = []
    l_builder = COOBuilder(n)
    u_builder = COOBuilder(n)
    flops = 0

    for i in range(n):
        cols, vals = A.row(i)
        w.load(cols, vals)
        tau = tt * norms[i]

        # min-heap of candidate pivot columns k < i (lazy duplicates)
        heap = [int(c) for c in cols if c < i]
        heapq.heapify(heap)
        done = -1  # last processed k (guards duplicates)
        while heap:
            k = heapq.heappop(heap)
            if k <= done:
                continue
            done = k
            wk = w.get(k)
            if wk == 0.0:
                continue
            ucols, uvals = u_rows[k]
            pivot = uvals[0]  # diagonal stored first
            wk = wk / pivot
            flops += 1
            if abs(wk) < tau:  # 1st dropping rule
                w.drop(k)
                continue
            w.set(k, wk)
            if ucols.size > 1:
                tail_cols = ucols[1:]
                w.axpy(-wk, tail_cols, uvals[1:])
                flops += 2 * int(tail_cols.size)
                for c in tail_cols:
                    if c < i:
                        heapq.heappush(heap, int(c))

        # 2nd dropping rule
        rcols, rvals = w.extract()
        (lcols, lvals), diag, (ucols, uvals) = second_rule(rcols, rvals, i, tau, mm)
        diag = policy.resolve(i, diag, tau, norms[i])
        if lcols.size:
            l_builder.add_batch(np.full(lcols.size, i, dtype=np.int64), lcols, lvals)
        u_builder.add(i, i, diag)
        if ucols.size:
            u_builder.add_batch(np.full(ucols.size, i, dtype=np.int64), ucols, uvals)
        # store U row with diagonal first for the pivot lookup above
        u_rows.append(
            (
                np.concatenate(([i], ucols)).astype(np.int64),
                np.concatenate(([diag], uvals)),
            )
        )
        w.reset()

    L = l_builder.to_csr()
    U = u_builder.to_csr()
    return ILUFactors(
        L=L,
        U=U,
        perm=np.arange(n, dtype=np.int64),
        levels=None,
        stats={"flops": flops, "fill_nnz": L.nnz + U.nnz, "m": mm, "t": tt},
    )
