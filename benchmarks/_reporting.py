"""Result recording for the benchmark harness.

Every bench registers its paper-style table/series text here; the
benchmarks/conftest.py terminal-summary hook prints everything at the
end of the run, and each artefact is also written to
``benchmarks/results/<name>.txt`` so the output survives pytest's
capture regardless of flags.
"""

from __future__ import annotations

import os
import re

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_REGISTRY: list[tuple[str, str]] = []


def record_table(name: str, text: str) -> None:
    """Register a rendered table/figure for terminal display and save it."""
    _REGISTRY.append((name, text))
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_").lower()
    with open(os.path.join(_RESULTS_DIR, f"{safe}.txt"), "w") as fh:
        fh.write(text + "\n")


def drain_tables() -> list[tuple[str, str]]:
    out = list(_REGISTRY)
    _REGISTRY.clear()
    return out
