"""Heavy-edge matching for multilevel coarsening.

The multilevel paradigm (Karypis & Kumar '96, used by this paper for the
initial domain decomposition) coarsens the graph by collapsing a maximal
matching.  *Heavy-edge* matching prefers the incident edge of largest
weight, which concentrates edge weight inside coarse vertices and keeps
the edge-cut of coarse partitions representative of fine ones.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["heavy_edge_matching", "collapse_matching"]


def heavy_edge_matching(graph: Graph, *, seed: int = 0) -> np.ndarray:
    """Compute a maximal matching preferring heavy edges.

    Returns ``match`` with ``match[v]`` = the vertex matched to ``v``
    (possibly ``v`` itself for unmatched vertices).  Visit order is a
    random permutation for coarsening quality; ties go to the heaviest
    incident unmatched edge.
    """
    n = graph.nvertices
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    match = np.full(n, -1, dtype=np.int64)
    for v in order:
        if match[v] != -1:
            continue
        nbrs = graph.neighbors(v)
        wgts = graph.neighbor_weights(v)
        best = -1
        best_w = -np.inf
        for u, w in zip(nbrs, wgts):
            if u != v and match[u] == -1 and w > best_w:
                best, best_w = int(u), float(w)
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    return match


def collapse_matching(graph: Graph, match: np.ndarray) -> tuple[Graph, np.ndarray]:
    """Build the coarse graph induced by a matching.

    Returns ``(coarse_graph, cmap)`` where ``cmap[v]`` is the coarse
    vertex containing fine vertex ``v``.  Coarse vertex weights are the
    sums of their constituents; parallel coarse edges are merged with
    summed weights and self-loops (internal matched edges) are dropped.
    """
    n = graph.nvertices
    cmap = np.full(n, -1, dtype=np.int64)
    nc = 0
    for v in range(n):
        if cmap[v] != -1:
            continue
        u = int(match[v])
        cmap[v] = nc
        if u != v and cmap[u] == -1:
            cmap[u] = nc
        nc += 1
    # coarse vertex weights
    cvwgt = np.zeros(nc, dtype=np.float64)
    np.add.at(cvwgt, cmap, graph.vwgt)
    # coarse edges: map endpoints, merge duplicates via dict-of-dicts
    from ..sparse import CSRMatrix

    rows = np.repeat(cmap, np.diff(graph.xadj))
    cols = cmap[graph.adjncy]
    keep = rows != cols
    if np.any(keep):
        S = CSRMatrix.from_coo(
            rows[keep], cols[keep], graph.adjwgt[keep], (nc, nc)
        )
        coarse = Graph(S.indptr, S.indices, S.data, cvwgt)
    else:
        coarse = Graph(
            np.zeros(nc + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            cvwgt,
        )
    return coarse, cmap
