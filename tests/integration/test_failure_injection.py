"""Failure injection: singular systems, degenerate decompositions,
pathological graphs."""

import numpy as np
import pytest

from repro import decompose, gmres, parallel_ilut, parallel_triangular_solve, poisson2d
from repro.ilu import ilut
from repro.matrices import random_diag_dominant
from repro.solvers import ILUPreconditioner
from repro.sparse import COOBuilder, CSRMatrix


class TestSingularPivots:
    def test_zero_diagonal_rows_guarded(self):
        # matrix with several structurally-zero diagonals
        n = 12
        b = COOBuilder(n)
        for i in range(n):
            if i % 3 != 0:
                b.add(i, i, 4.0)
            b.add(i, (i + 1) % n, -1.0)
            b.add((i + 1) % n, i, -1.0)
        A = b.to_csr()
        f = ilut(A, 5, 1e-3, diag_guard=True)
        assert np.all(f.U.diagonal() != 0.0)

    def test_zero_diagonal_parallel_guarded(self):
        n = 20
        b = COOBuilder(n)
        for i in range(n):
            if i != 7:
                b.add(i, i, 4.0)
            if i > 0:
                b.add(i, i - 1, -1.0)
                b.add(i - 1, i, -1.0)
        A = b.to_csr()
        r = parallel_ilut(A, 5, 1e-3, 3, seed=0, simulate=False)
        assert np.all(r.factors.U.diagonal() != 0.0)

    def test_exactly_singular_matrix_still_produces_factors(self):
        # rank-deficient: row of zeros except off-diagonals cancelling
        A = CSRMatrix.from_dense(
            np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        )
        f = ilut(A, 3, 0.0, diag_guard=True)
        assert np.all(np.isfinite(f.U.data))


class TestDegenerateDecompositions:
    def test_empty_interior_everywhere(self):
        # p = n: every row is interface, phase 1 factors nothing
        A = random_diag_dominant(10, 3, seed=0)
        r = parallel_ilut(A, 10, 0.0, 10, seed=0, simulate=False)
        assert r.decomp.n_interior == 0
        R = r.factors.residual_matrix(A)
        assert R.frobenius_norm() < 1e-9 * A.frobenius_norm()

    def test_rank_with_empty_domain_after_block_split(self):
        # block partition of a tiny matrix across many ranks: some ranks
        # end with one row and no interior
        A = random_diag_dominant(8, 2, seed=1)
        r = parallel_ilut(A, 8, 0.0, 4, method="block", seed=0, simulate=False)
        r.factors.levels.validate(8)

    def test_disconnected_matrix(self):
        # block-diagonal: two totally disconnected halves
        n = 16
        b = COOBuilder(n)
        for base in (0, 8):
            for i in range(8):
                b.add(base + i, base + i, 4.0)
                if i > 0:
                    b.add(base + i, base + i - 1, -1.0)
                    b.add(base + i - 1, base + i, -1.0)
        A = b.to_csr()
        r = parallel_ilut(A, 8, 0.0, 2, seed=0, simulate=False)
        assert r.factors.residual_matrix(A).frobenius_norm() < 1e-10

    def test_dense_row_matrix(self):
        # one fully dense row/column (hub) — worst case for MIS levels
        n = 15
        b = COOBuilder(n)
        for i in range(n):
            b.add(i, i, float(n))
            if i > 0:
                b.add(0, i, -1.0)
                b.add(i, 0, -1.0)
        A = b.to_csr()
        r = parallel_ilut(A, n, 0.0, 3, seed=0, simulate=False)
        assert r.factors.residual_matrix(A).frobenius_norm() < 1e-9


class TestSolverRobustness:
    def test_gmres_on_nearly_singular(self, rng):
        A = poisson2d(8)
        D = A.to_dense()
        D[10, 10] = 1e-12  # nearly-singular pivot
        B = CSRMatrix.from_dense(D)
        f = ilut(B, 10, 1e-8, diag_guard=True)
        b = rng.standard_normal(64)
        res = gmres(B, b, restart=20, M=ILUPreconditioner(f), maxiter=2000)
        assert np.all(np.isfinite(res.x))

    def test_trisolve_on_identity_factors(self):
        from repro.ilu import LevelStructure, ILUFactors

        n = 6
        f = ILUFactors(
            L=CSRMatrix.zeros(n),
            U=CSRMatrix.identity(n),
            perm=np.arange(n),
            levels=LevelStructure(
                interior_ranges=[(0, n)],
                interface_levels=[],
                owner=np.zeros(n, dtype=np.int64),
            ),
        )
        out = parallel_triangular_solve(f, np.arange(6.0))
        assert np.allclose(out.x, np.arange(6.0))

    def test_gmres_stagnates_gracefully_on_singular(self):
        A = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 0.0]]))
        res = gmres(A, np.array([1.0, 1.0]), restart=2, maxiter=8)
        assert not res.converged
        assert np.all(np.isfinite(res.x))
