"""ILU(0): zero-fill incomplete factorization (static-pattern baseline).

The set S of kept positions is exactly the sparsity pattern of A
(paper §2): no fill is ever created, which is why a *colouring* of the
interface graph computed up-front suffices to parallelise it (Figure 1a)
— the property ILUT loses and that motivates the whole paper.
"""

from __future__ import annotations

import numpy as np

from ..resilience import ZeroPivotError
from ..sparse import COOBuilder, CSRMatrix, SparseRowAccumulator
from .factors import ILUFactors

__all__ = ["ilu0"]


def ilu0(A: CSRMatrix, *, diag_guard: bool = True) -> ILUFactors:
    """Compute ILU(0) of ``A`` in natural order.

    Identical to Gaussian elimination except that any update landing
    outside ``struct(A)`` is discarded.
    """
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"ILU(0) requires a square matrix, got {A.shape}")

    w = SparseRowAccumulator(n)
    u_rows: list[tuple[np.ndarray, np.ndarray]] = []
    l_builder = COOBuilder(n)
    u_builder = COOBuilder(n)
    flops = 0

    for i in range(n):
        cols, vals = A.row(i)
        w.load(cols, vals)
        in_pattern = np.zeros(n, dtype=bool)
        in_pattern[cols] = True
        lower = [int(c) for c in cols if c < i]
        for k in lower:  # already ascending (CSR rows are sorted)
            wk = w.get(k)
            if wk == 0.0:
                continue
            ucols, uvals = u_rows[k]
            pivot = uvals[0]
            wk = wk / pivot
            flops += 1
            w.set(k, wk)
            if ucols.size > 1:
                tail = ucols[1:]
                keep = in_pattern[tail]  # zero-fill: only in-pattern updates
                if np.any(keep):
                    w.axpy(-wk, tail[keep], uvals[1:][keep])
                    flops += 2 * int(keep.sum())

        rcols, rvals = w.extract()
        lmask = rcols < i
        umask = rcols > i
        dmask = rcols == i
        diag = float(rvals[dmask][0]) if np.any(dmask) else 0.0
        if diag == 0.0:
            if not diag_guard:
                raise ZeroPivotError(f"zero pivot at row {i}", row=i, value=0.0)
            norm = float(np.sqrt(np.dot(vals, vals)))
            diag = norm if norm > 0 else 1.0
        if np.any(lmask):
            l_builder.add_batch(
                np.full(int(lmask.sum()), i, dtype=np.int64), rcols[lmask], rvals[lmask]
            )
        u_builder.add(i, i, diag)
        if np.any(umask):
            u_builder.add_batch(
                np.full(int(umask.sum()), i, dtype=np.int64), rcols[umask], rvals[umask]
            )
        u_rows.append(
            (
                np.concatenate(([i], rcols[umask])).astype(np.int64),
                np.concatenate(([diag], rvals[umask])),
            )
        )
        w.reset()

    L = l_builder.to_csr()
    U = u_builder.to_csr()
    return ILUFactors(
        L=L,
        U=U,
        perm=np.arange(n, dtype=np.int64),
        stats={"flops": flops, "fill_nnz": L.nnz + U.nnz},
    )
