"""Distributed-memory machine simulator: per-rank virtual clocks,
message passing and collectives, driven by an analytic cost model
(Cray T3D preset and others)."""

from .model import CRAY_T3D, IDEAL, WORKSTATION_CLUSTER, MachineModel
from .simulator import CommStats, Simulator, SimulatorSnapshot

__all__ = [
    "MachineModel",
    "CRAY_T3D",
    "WORKSTATION_CLUSTER",
    "IDEAL",
    "Simulator",
    "CommStats",
    "SimulatorSnapshot",
]
