"""Unit tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import load_matrix, main


class TestLoadMatrix:
    def test_generator_specs(self):
        assert load_matrix("g0:8").shape == (64, 64)
        assert load_matrix("poisson3d:3").shape == (27, 27)
        assert load_matrix("cd:5").shape == (25, 25)

    def test_unknown_generator(self):
        with pytest.raises(SystemExit):
            load_matrix("magic:5")

    def test_file_path(self, tmp_path):
        from repro.matrices import poisson2d
        from repro.sparse import write_matrix_market

        p = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(4), p)
        A = load_matrix(str(p))
        assert A.shape == (16, 16)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "g0:8"]) == 0
        out = capsys.readouterr().out
        assert "64 x 64" in out
        assert "symmetric:  yes" in out

    def test_partition(self, capsys):
        assert main(["partition", "g0:10", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "p=4" in out and "halo exchange" in out

    def test_factor_plain_and_star(self, capsys):
        assert main(["factor", "g0:10", "-p", "2", "-m", "5", "-t", "1e-3"]) == 0
        out = capsys.readouterr().out
        assert "ILUT(5,0.001)" in out
        assert main(
            ["factor", "g0:10", "-p", "2", "-m", "5", "-t", "1e-3", "-k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "ILUT*(5,0.001,2)" in out

    def test_solve_converges(self, capsys):
        rc = main(["solve", "g0:10", "-p", "2", "-m", "5", "-t", "1e-3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged" in out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "out.mtx"
        assert main(["generate", "g0:6", str(out_path)]) == 0
        from repro.sparse import read_matrix_market
        from repro.matrices import poisson2d

        assert read_matrix_market(out_path).allclose(poisson2d(6), rtol=0, atol=0)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestInfoPaths:
    def test_nonsymmetric_matrix_reported(self, capsys):
        assert main(["info", "cd:5"]) == 0
        out = capsys.readouterr().out
        assert "symmetric:  no (|A-A^T|_F" in out

    def test_mtx_file_input(self, tmp_path, capsys):
        from repro.matrices import poisson2d
        from repro.sparse import write_matrix_market

        p = tmp_path / "m.mtx"
        write_matrix_market(poisson2d(4), p)
        assert main(["info", str(p)]) == 0
        out = capsys.readouterr().out
        assert "16 x 16" in out
        assert "diagonal:" in out and "zero entries = 0" in out

    def test_bandwidth_and_density_lines(self, capsys):
        assert main(["info", "g0:8"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth:" in out
        assert "per row" in out


class TestPartitionPaths:
    @pytest.mark.parametrize("method", ["multilevel", "block", "random"])
    def test_all_methods(self, method, capsys):
        assert main(["partition", "g0:10", "-p", "4", "--method", method]) == 0
        out = capsys.readouterr().out
        assert "p=4" in out
        assert "halo exchange" in out

    def test_single_rank_has_no_halo(self, capsys):
        assert main(["partition", "g0:8", "-p", "1"]) == 0
        out = capsys.readouterr().out
        assert "halo exchange: 0 rank pairs, 0 values per matvec" in out

    def test_seed_changes_random_partition_not_exit_code(self, capsys):
        assert main(["partition", "g0:10", "-p", "4", "--method", "random",
                     "--seed", "7"]) == 0
        assert "p=4" in capsys.readouterr().out


class TestCheckCommand:
    def test_healthy_run_exits_zero(self, capsys):
        assert main(["check", "g0:10", "-p", "4", "-m", "5"]) == 0
        out = capsys.readouterr().out
        assert "check OK: 0 races, 0 invariant violations" in out
        assert "race detector: ILUT(5," in out

    def test_healthy_star_variant(self, capsys):
        assert main(["check", "g0:10", "-p", "4", "-m", "5", "-k", "2"]) == 0
        assert "ILUT*(5," in capsys.readouterr().out

    def test_zero_diag_injection_fails(self, capsys):
        assert main(["check", "g0:10", "--inject", "zero-diag"]) == 1
        out = capsys.readouterr().out
        assert "injected: zeroed U diagonal" in out
        assert "INVARIANT:" in out and "singular" in out
        assert "check FAILED" in out

    def test_unsorted_row_injection_fails(self, capsys):
        assert main(["check", "g0:10", "--inject", "unsorted-row"]) == 1
        out = capsys.readouterr().out
        assert "INVARIANT:" in out and "unsorted" in out

    def test_race_injection_fails(self, capsys):
        assert main(["check", "g0:10", "--inject", "race"]) == 1
        out = capsys.readouterr().out
        assert "RACE:" in out and "interface-row" in out
        assert "check FAILED: 1 race(s), 0 violation(s)" in out


class TestFaultInjectModes:
    """``--inject`` fault modes must *recover* (exit 0), unlike the
    structural modes which must be *reported* (exit 1)."""

    def test_message_drop_recovers(self, capsys):
        assert main(["check", "g0:12", "--inject", "message-drop"]) == 0
        out = capsys.readouterr().out
        assert "drop=1" in out and "retransmit=1" in out
        assert "bit-identical" in out
        assert "fault check OK" in out

    def test_rank_crash_recovers(self, capsys):
        assert main(["check", "g0:12", "--inject", "rank-crash"]) == 0
        out = capsys.readouterr().out
        assert "crashed rank" in out
        assert "1 checkpoint restart(s)" in out
        assert "bit-identical" in out

    def test_rank_crash_star_variant(self, capsys):
        assert main(["check", "g0:12", "-k", "2", "--inject", "rank-crash"]) == 0
        assert "fault check OK" in capsys.readouterr().out

    def test_nan_corrupt_detected_and_solved_around(self, capsys):
        assert main(["check", "g0:12", "--inject", "nan-corrupt"]) == 0
        out = capsys.readouterr().out
        assert "NonFiniteError" in out
        assert "converged" in out
        assert "fault check OK: corruption detected" in out


class TestCheckJson:
    """``check --json`` replaces the text report with one JSON document."""

    def test_structural_ok(self, capsys):
        assert main(["check", "g0:10", "-p", "4", "-m", "5", "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)  # the whole stdout is one document
        assert doc["mode"] == "structural"
        assert doc["ok"] is True and doc["exit"] == 0
        assert doc["races"] == [] and doc["invariant_violations"] == []
        assert doc["levels"] > 0
        assert doc["params"] == {"m": 5, "t": 1e-4, "k": None}

    def test_structural_injection_reported(self, capsys):
        assert main(["check", "g0:10", "--inject", "zero-diag", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False and doc["exit"] == 1
        assert doc["inject"] == "zero-diag"
        assert any("singular" in v for v in doc["invariant_violations"])

    def test_fault_mode_recovery(self, capsys):
        assert main(["check", "g0:12", "--inject", "message-drop", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "fault"
        assert doc["injected"] is True
        assert doc["factors_bit_identical"] is True
        assert doc["ok"] is True and doc["exit"] == 0
