"""Unit tests for the multilevel k-way partitioning driver and baselines."""

import numpy as np
import pytest

from repro.graph import adjacency_from_matrix
from repro.matrices import poisson2d, random_geometric_laplacian, torso_like
from repro.partition import (
    block_partition,
    edge_cut,
    partition_balance,
    partition_graph_kway,
    partition_matrix_kway,
    random_partition,
)


class TestMultilevelKway:
    def test_part_ids_in_range(self):
        res = partition_matrix_kway(poisson2d(12), 4, seed=0)
        assert res.part.min() >= 0 and res.part.max() < 4

    def test_all_vertices_assigned(self):
        res = partition_matrix_kway(poisson2d(12), 4, seed=0)
        assert res.part.size == 144

    def test_balance_respected(self):
        res = partition_matrix_kway(poisson2d(16), 8, seed=1)
        assert res.balance <= 1.25  # modest slack over the 1.05 target

    def test_single_part(self):
        res = partition_matrix_kway(poisson2d(6), 1)
        assert np.all(res.part == 0)
        assert res.edge_cut == 0.0

    def test_too_many_parts_rejected(self):
        g = adjacency_from_matrix(poisson2d(2))
        with pytest.raises(ValueError):
            partition_graph_kway(g, 10)

    def test_nonpositive_parts_rejected(self):
        g = adjacency_from_matrix(poisson2d(3))
        with pytest.raises(ValueError):
            partition_graph_kway(g, 0)

    def test_beats_random_partition_on_cut(self):
        A = poisson2d(16)
        g = adjacency_from_matrix(A)
        res = partition_matrix_kway(A, 8, seed=0)
        rand_cut = edge_cut(g, random_partition(256, 8, seed=0))
        assert res.edge_cut < 0.5 * rand_cut

    def test_grid_cut_near_theoretical(self):
        # a 4-way split of an n×n grid can achieve cut ~2n; accept 4n
        n = 16
        res = partition_matrix_kway(poisson2d(n), 4, seed=0)
        assert res.edge_cut <= 4 * n

    def test_deterministic_given_seed(self):
        A = random_geometric_laplacian(80, seed=2)
        r1 = partition_matrix_kway(A, 4, seed=9)
        r2 = partition_matrix_kway(A, 4, seed=9)
        assert np.array_equal(r1.part, r2.part)

    def test_part_sizes_sum(self):
        res = partition_matrix_kway(poisson2d(10), 5, seed=0)
        assert res.part_sizes().sum() == 100

    def test_levels_recorded(self):
        res = partition_matrix_kway(poisson2d(20), 4, seed=0)
        assert res.levels >= 1
        assert res.history[0] == 400

    def test_unstructured_mesh(self):
        A = torso_like(300, seed=1)
        res = partition_matrix_kway(A, 4, seed=0)
        assert res.balance < 1.3
        g = adjacency_from_matrix(A)
        assert res.edge_cut < edge_cut(g, random_partition(300, 4, seed=1))

    def test_disconnected_graph_handled(self):
        from repro.sparse import CSRMatrix

        # two disconnected 4-cliques
        rows, cols = [], []
        for base in (0, 4):
            for i in range(4):
                for j in range(4):
                    if i != j:
                        rows.append(base + i)
                        cols.append(base + j)
        A = CSRMatrix.from_coo(rows, cols, np.ones(len(rows)), (8, 8))
        res = partition_matrix_kway(A, 2, seed=0)
        assert res.part_sizes().min() >= 1


class TestBaselines:
    def test_block_partition_contiguous(self):
        part = block_partition(10, 3)
        assert np.all(np.diff(part) >= 0)
        assert part.min() == 0 and part.max() == 2

    def test_block_partition_balanced(self):
        part = block_partition(100, 7)
        sizes = np.bincount(part)
        assert sizes.max() - sizes.min() <= 1

    def test_random_partition_balanced(self):
        part = random_partition(100, 4, seed=0)
        sizes = np.bincount(part)
        assert sizes.max() - sizes.min() <= 1

    def test_invalid_nparts(self):
        with pytest.raises(ValueError):
            block_partition(5, 0)
        with pytest.raises(ValueError):
            random_partition(5, -1)


class TestMetrics:
    def test_edge_cut_zero_for_single_part(self):
        g = adjacency_from_matrix(poisson2d(5))
        assert edge_cut(g, np.zeros(25, dtype=np.int64)) == 0.0

    def test_edge_cut_counts_each_edge_once(self):
        g = adjacency_from_matrix(poisson2d(2))  # 2x2 grid: 4 edges
        part = np.array([0, 1, 0, 1])
        # cut edges: (0,1),(2,3) horizontal = 2
        assert edge_cut(g, part) == 2.0

    def test_balance_perfect(self):
        g = adjacency_from_matrix(poisson2d(4))
        part = block_partition(16, 4)
        assert partition_balance(g, part, 4) == 1.0
