"""Auto-fixes for mechanically-correctable findings (``repro lint --fix``).

Fixers exist for the rules whose remedy is a *local* rewrite:

``DET001``
    ``np.random.default_rng()`` → ``np.random.default_rng(0)`` — seed
    injection.  The global-state variants (``np.random.rand`` …) need a
    Generator threaded through the API and are *not* auto-fixed.
``DET002`` / ``DET004``
    Wrap the offending unordered iterable / reduction source in
    ``sorted(...)``.
``BRK001``
    Rewrite the raised builtin to the matching typed breakdown
    (``ZeroDivisionError`` → ``ZeroPivotError``, ``FloatingPointError``
    → ``NonFiniteError``, message-routed for ``ValueError``/
    ``ArithmeticError``) and inject the ``repro.resilience`` import.
``PERF002``
    Preallocate the provably-float list-append-then-``np.array`` shape:
    ``name = []`` → ``np.zeros(n)``, the loop-body ``append`` → indexed
    assignment, the final ``np.array(name)`` → ``np.asarray(name)``.
    Only fired when the list is touched nowhere else, the append is
    unconditional in a single-argument ``range`` loop, and the element
    expression is provably float — the rewrite is then value-identical
    bit for bit.
``PERF004``
    Elide the redundant defensive copy of a freshly allocated,
    otherwise-dead buffer: ``name.copy()`` / ``np.array(name)`` →
    ``name``.

Safety contract
---------------
Each pass plans surgical text edits *and* the intended AST mutation
together, applies the edits, re-parses, and requires ``ast.dump``
equality between the intended tree and the re-parsed one; any mismatch
rolls the file back untouched.  Fixing is idempotent by construction —
a fixed file produces no further fixable findings — and
``tests/lint/test_fixes.py`` locks both properties in.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path

from .astutil import attach_parents, call_name, dotted_name, is_sorted_call, literal_text
from .rules.breakdown import _NUMERIC_MESSAGE, _SUGGESTION
from .rules.determinism import (
    _function_has_comm,
    _is_set_expr,
    _REDUCERS,
    _set_bound_names,
    _unordered_iter_reason,
)
from .rules.perf import _copy_calls_of_fresh

__all__ = ["AppliedFix", "FixOutcome", "fix_source", "fix_paths", "render_diff"]

_FIXABLE_RULES = ("BRK001", "DET001", "DET002", "DET004", "PERF002", "PERF004")
_MAX_PASSES = 4


@dataclass(frozen=True)
class AppliedFix:
    """One rewrite that was applied (or would be, under ``--diff``)."""

    rule: str
    path: str
    line: int
    description: str


@dataclass
class FixOutcome:
    """Result of fixing a set of files."""

    #: relpath -> (old source, new source); only files that changed.
    changed: dict[str, tuple[str, str]] = field(default_factory=dict)
    fixes: list[AppliedFix] = field(default_factory=list)
    #: relpaths where verification refused the rewrite (left untouched).
    refused: list[str] = field(default_factory=list)


# ---------------------------------------------------------------- edits


@dataclass
class _Edit:
    start: int  # absolute offset into the source
    end: int
    replacement: str


def _offsets(source: str) -> list[int]:
    """Absolute offset of the start of each (1-based) line."""
    offs = [0]
    for line in source.splitlines(keepends=True):
        offs.append(offs[-1] + len(line))
    return offs


def _span(offs: list[int], node: ast.AST) -> tuple[int, int]:
    start = offs[node.lineno - 1] + node.col_offset
    end = offs[node.end_lineno - 1] + node.end_col_offset
    return start, end


def _apply_edits(source: str, edits: list[_Edit]) -> str | None:
    """Apply non-overlapping edits; None when any two overlap."""
    ordered = sorted(edits, key=lambda e: e.start)
    for a, b in zip(ordered, ordered[1:]):
        if a.end > b.start:
            return None
    out = source
    for e in reversed(ordered):
        out = out[: e.start] + e.replacement + out[e.end :]
    return out


# --------------------------------------------------------------- fixers


def _route_valueerror(message: str) -> str:
    low = message.lower()
    if "pivot" in low or "divide" in low:
        return "ZeroPivotError"
    if "diagonal" in low:
        return "ZeroDiagonalError"
    if "finite" in low or "nan" in low or "inf" in low:
        return "NonFiniteError"
    return "NumericalBreakdown"


_DIRECT_RENAME = {
    "ZeroDivisionError": "ZeroPivotError",
    "FloatingPointError": "NonFiniteError",
    "ArithmeticError": "NumericalBreakdown",
}


def _resilience_import_line(relpath: str) -> str:
    """Import statement prefix matching the module's package position."""
    parts = Path(relpath).as_posix().split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if len(parts) >= 2 and parts[0] == "repro":
        # depth below the repro package decides the number of dots
        dots = "." * max(1, len(parts) - 2)
        return f"from {dots}resilience import "
    return "from repro.resilience import "


def _bound_top_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
    return names


def _replace_child(parent: ast.AST, old: ast.AST, new: ast.AST) -> None:
    """Swap ``old`` for ``new`` wherever it sits in ``parent``'s fields."""
    for name, value in ast.iter_fields(parent):
        if value is old:
            setattr(parent, name, new)
            return
        if isinstance(value, list):
            for i, item in enumerate(value):
                if item is old:
                    value[i] = new
                    return


def _provably_float(node: ast.AST) -> bool:
    """The expression's value is a Python/numpy float for sure."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.BinOp):
        return _provably_float(node.left) or _provably_float(node.right)
    if isinstance(node, ast.UnaryOp):
        return _provably_float(node.operand)
    return False


def _preallocatable_lists(func: ast.AST):
    """PERF002 candidates safe for the zeros+indexed-assignment rewrite.

    Yields ``(init assign, for loop, append stmt, np.array call,
    range arg, loop var, name)`` where the rewrite is provably
    value-identical: the list is born empty, appended exactly once and
    unconditionally per iteration of a single-argument ``range`` loop
    whose variable is untouched, converted with a bare ``np.array``, and
    referenced nowhere else; the element expression is provably float,
    so ``np.array``'s dtype inference agrees with ``np.zeros``.
    """
    inits: dict[str, ast.Assign] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.List)
            and not node.value.elts
        ):
            inits[node.targets[0].id] = node
    for name, init in sorted(inits.items()):
        uses = [
            n
            for n in ast.walk(func)
            if isinstance(n, ast.Name) and n.id == name
        ]
        if len(uses) != 3:  # init target, append receiver, np.array arg
            continue
        appends = [
            n
            for n in ast.walk(func)
            if isinstance(n, ast.Expr)
            and isinstance(n.value, ast.Call)
            and isinstance(n.value.func, ast.Attribute)
            and n.value.func.attr == "append"
            and isinstance(n.value.func.value, ast.Name)
            and n.value.func.value.id == name
        ]
        if len(appends) != 1 or len(appends[0].value.args) != 1:
            continue
        append_stmt = appends[0]
        if not _provably_float(append_stmt.value.args[0]):
            continue
        loop = append_stmt._lint_parent  # type: ignore[attr-defined]
        if (
            not isinstance(loop, ast.For)
            or append_stmt not in loop.body
            or not isinstance(loop.target, ast.Name)
            or not isinstance(loop.iter, ast.Call)
            or not isinstance(loop.iter.func, ast.Name)
            or loop.iter.func.id != "range"
            or len(loop.iter.args) != 1
            or loop.iter.keywords
        ):
            continue
        ivar = loop.target.id
        rebound_in_body = any(
            isinstance(n, ast.Name)
            and n.id == ivar
            and isinstance(n.ctx, ast.Store)
            for stmt in loop.body
            for n in ast.walk(stmt)
        )
        if rebound_in_body:
            continue
        arrays = [
            n
            for n in ast.walk(func)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and dotted_name(n.func) in ("np.array", "numpy.array")
            and len(n.args) == 1
            and not n.keywords
            and isinstance(n.args[0], ast.Name)
            and n.args[0].id == name
        ]
        if len(arrays) != 1:
            continue
        yield (
            init,
            loop,
            append_stmt,
            arrays[0],
            loop.iter.args[0],
            ivar,
            name,
        )


class _Pass:
    """One fix pass over one module: plan edits + the intended AST."""

    def __init__(self, source: str, relpath: str, select: tuple[str, ...]) -> None:
        self.source = source
        self.relpath = relpath
        self.select = select
        self.tree = ast.parse(source)
        attach_parents(self.tree)
        self.offs = _offsets(source)
        self.edits: list[_Edit] = []
        #: deferred mutations of ``self.tree`` into the intended result
        self.mutations: list = []
        self.fixes: list[AppliedFix] = []
        self._wrapped: set[int] = set()

    def enabled(self, rule: str) -> bool:
        return not self.select or rule in self.select

    # -- DET001 -------------------------------------------------------

    def plan_det001(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted not in ("np.random.default_rng", "numpy.random.default_rng"):
                continue
            if node.args or node.keywords:
                continue
            _, func_end = _span(self.offs, node.func)
            _, call_end = _span(self.offs, node)
            self.edits.append(_Edit(func_end, call_end, "(0)"))
            self.mutations.append(
                lambda n=node: n.args.append(ast.Constant(value=0))
            )
            self.fixes.append(
                AppliedFix(
                    rule="DET001",
                    path=self.relpath,
                    line=node.lineno,
                    description="seeded np.random.default_rng() with 0",
                )
            )

    # -- DET002 / DET004 ----------------------------------------------

    def _wrap_sorted(self, expr: ast.expr, setter, rule: str, line: int) -> None:
        if id(expr) in self._wrapped:
            return
        self._wrapped.add(id(expr))
        start, end = _span(self.offs, expr)
        segment = self.source[start:end]
        self.edits.append(_Edit(start, end, f"sorted({segment})"))

        def mutate(e=expr, s=setter):
            s(ast.Call(func=ast.Name(id="sorted", ctx=ast.Load()), args=[e], keywords=[]))

        self.mutations.append(mutate)
        self.fixes.append(
            AppliedFix(
                rule=rule,
                path=self.relpath,
                line=line,
                description="wrapped unordered iterable in sorted(...)",
            )
        )

    def plan_det002(self) -> None:
        for func in ast.walk(self.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _function_has_comm(func):
                continue
            set_names = _set_bound_names(func)
            for node in ast.walk(func):
                if isinstance(node, ast.For):
                    expr = node.iter
                    if not is_sorted_call(expr) and _unordered_iter_reason(
                        expr, set_names
                    ):
                        self._wrap_sorted(
                            expr,
                            lambda v, n=node: setattr(n, "iter", v),
                            "DET002",
                            node.lineno,
                        )
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for gen in node.generators:
                        if not is_sorted_call(gen.iter) and _unordered_iter_reason(
                            gen.iter, set_names
                        ):
                            self._wrap_sorted(
                                gen.iter,
                                lambda v, g=gen: setattr(g, "iter", v),
                                "DET002",
                                node.lineno,
                            )

    def plan_det004(self) -> None:
        module_set_names = _set_bound_names(self.tree)
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in _REDUCERS or not node.args:
                continue
            arg = node.args[0]
            if _is_set_expr(arg) or (
                isinstance(arg, ast.Name) and arg.id in module_set_names
            ):
                if not is_sorted_call(arg):
                    self._wrap_sorted(
                        arg,
                        lambda v, n=node: n.args.__setitem__(0, v),
                        "DET004",
                        node.lineno,
                    )
            elif isinstance(arg, ast.GeneratorExp):
                src = arg.generators[0].iter
                if (
                    _is_set_expr(src)
                    or (isinstance(src, ast.Name) and src.id in module_set_names)
                ) and not is_sorted_call(src):
                    self._wrap_sorted(
                        src,
                        lambda v, g=arg.generators[0]: setattr(g, "iter", v),
                        "DET004",
                        node.lineno,
                    )

    # -- BRK001 -------------------------------------------------------

    def plan_brk001(self) -> None:
        if self.relpath.endswith("resilience/breakdown.py"):
            return
        needed: list[str] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name_node: ast.Name | None = None
            message = ""
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name_node = exc.func
                if exc.args:
                    message = literal_text(exc.args[0])
            elif isinstance(exc, ast.Name):
                name_node = exc
            if name_node is None or name_node.id not in _SUGGESTION:
                continue
            exc_name = name_node.id
            if exc_name in ("ZeroDivisionError", "FloatingPointError"):
                new_name = _DIRECT_RENAME[exc_name]
            elif message and _NUMERIC_MESSAGE.search(message):
                new_name = (
                    _route_valueerror(message)
                    if exc_name == "ValueError"
                    else _DIRECT_RENAME[exc_name]
                )
            else:
                continue
            start, end = _span(self.offs, name_node)
            self.edits.append(_Edit(start, end, new_name))
            self.mutations.append(
                lambda n=name_node, nn=new_name: setattr(n, "id", nn)
            )
            self.fixes.append(
                AppliedFix(
                    rule="BRK001",
                    path=self.relpath,
                    line=node.lineno,
                    description=f"retyped raise {exc_name} -> {new_name}",
                )
            )
            if new_name not in needed:
                needed.append(new_name)
        if needed:
            self._plan_import(needed)

    def _plan_import(self, names: list[str]) -> None:
        bound = _bound_top_level_names(self.tree)
        missing = [n for n in names if n not in bound]
        if not missing:
            return
        # extend an existing resilience import when one is present
        for node in self.tree.body:
            if (
                isinstance(node, ast.ImportFrom)
                and node.module is not None
                and node.module.split(".")[-1] == "resilience"
            ):
                existing = [a.name for a in node.names]
                combined = sorted(set(existing) | set(missing))
                dots = "." * node.level
                start, end = _span(self.offs, node)
                self.edits.append(
                    _Edit(
                        start,
                        end,
                        f"from {dots}{node.module} import {', '.join(combined)}",
                    )
                )

                def mutate(n=node, c=combined):
                    n.names = [ast.alias(name=x, asname=None) for x in c]

                self.mutations.append(mutate)
                return
        # otherwise inject a fresh import after the last top-level import
        stmt_text = _resilience_import_line(self.relpath) + ", ".join(
            sorted(missing)
        )
        anchor_idx = 0
        for i, node in enumerate(self.tree.body):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                anchor_idx = i + 1
            elif (
                i == 0
                and isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                anchor_idx = 1  # after the module docstring
        if anchor_idx == 0:
            insert_at = 0
        else:
            insert_at = self.offs[self.tree.body[anchor_idx - 1].end_lineno]
        self.edits.append(_Edit(insert_at, insert_at, stmt_text + "\n"))
        new_stmt = ast.parse(stmt_text).body[0]

        def mutate(idx=anchor_idx, stmt=new_stmt):
            self.tree.body.insert(idx, stmt)

        self.mutations.append(mutate)

    # -- PERF002 ------------------------------------------------------

    def plan_perf002(self) -> None:
        for func in ast.walk(self.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for cand in _preallocatable_lists(func):
                init, loop, append_stmt, array_call, range_arg, ivar, name = cand
                base = dotted_name(array_call.func.value)
                # name = [] -> name = np.zeros(<range arg>)
                start, end = _span(self.offs, init.value)
                arg_start, arg_end = _span(self.offs, range_arg)
                arg_text = self.source[arg_start:arg_end]
                self.edits.append(_Edit(start, end, f"{base}.zeros({arg_text})"))

                def mutate_init(n=init, b=base, a=range_arg):
                    n.value = ast.Call(
                        func=ast.Attribute(
                            value=ast.Name(id=b, ctx=ast.Load()),
                            attr="zeros",
                            ctx=ast.Load(),
                        ),
                        args=[a],
                        keywords=[],
                    )

                self.mutations.append(mutate_init)
                # name.append(expr) -> name[i] = expr
                call = append_stmt.value
                expr = call.args[0]
                e_start, e_end = _span(self.offs, expr)
                s_start, s_end = _span(self.offs, call)
                self.edits.append(
                    _Edit(
                        s_start,
                        s_end,
                        f"{name}[{ivar}] = {self.source[e_start:e_end]}",
                    )
                )

                def mutate_append(
                    lp=loop, st=append_stmt, nm=name, iv=ivar, ex=expr
                ):
                    lp.body[lp.body.index(st)] = ast.Assign(
                        targets=[
                            ast.Subscript(
                                value=ast.Name(id=nm, ctx=ast.Load()),
                                slice=ast.Name(id=iv, ctx=ast.Load()),
                                ctx=ast.Store(),
                            )
                        ],
                        value=ex,
                    )

                self.mutations.append(mutate_append)
                # np.array(name) -> np.asarray(name) (no-copy on the
                # now-already-float64 buffer)
                f_start, f_end = _span(self.offs, array_call.func)
                self.edits.append(_Edit(f_start, f_end, f"{base}.asarray"))
                self.mutations.append(
                    lambda c=array_call: setattr(c.func, "attr", "asarray")
                )
                self.fixes.append(
                    AppliedFix(
                        rule="PERF002",
                        path=self.relpath,
                        line=append_stmt.lineno,
                        description=(
                            f"preallocated {name!r} with {base}.zeros and "
                            "indexed assignment"
                        ),
                    )
                )

    # -- PERF004 ------------------------------------------------------

    def plan_perf004(self) -> None:
        for func in ast.walk(self.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for call, name in _copy_calls_of_fresh(func):
                start, end = _span(self.offs, call)
                self.edits.append(_Edit(start, end, name))

                def mutate(c=call, nm=name):
                    parent = c._lint_parent  # type: ignore[attr-defined]
                    _replace_child(parent, c, ast.Name(id=nm, ctx=ast.Load()))

                self.mutations.append(mutate)
                self.fixes.append(
                    AppliedFix(
                        rule="PERF004",
                        path=self.relpath,
                        line=call.lineno,
                        description=f"elided redundant copy of {name!r}",
                    )
                )

    # -- drive --------------------------------------------------------

    def run(self) -> tuple[str | None, list[AppliedFix]]:
        """Plan, apply, verify.  Returns (new source | None, fixes)."""
        if self.enabled("DET001"):
            self.plan_det001()
        if self.enabled("DET002"):
            self.plan_det002()
        if self.enabled("DET004"):
            self.plan_det004()
        if self.enabled("BRK001"):
            self.plan_brk001()
        if self.enabled("PERF002"):
            self.plan_perf002()
        if self.enabled("PERF004"):
            self.plan_perf004()
        if not self.edits:
            return self.source, []
        new_source = _apply_edits(self.source, self.edits)
        if new_source is None:
            return None, []  # overlapping edits: refuse the whole pass
        for mutate in self.mutations:
            mutate()
        try:
            reparsed = ast.parse(new_source)
        except SyntaxError:
            return None, []
        if ast.dump(reparsed) != ast.dump(self.tree):
            return None, []  # intended AST != actual AST: refuse
        return new_source, self.fixes


def fix_source(
    source: str,
    relpath: str,
    *,
    select: tuple[str, ...] = (),
) -> tuple[str, list[AppliedFix], bool]:
    """Fix one module's source.

    Returns ``(new_source, fixes, verified)``; ``verified`` is False
    when a planned rewrite failed AST verification (the source is then
    returned unchanged from the point of failure, earlier passes kept).
    """
    fixable = tuple(r for r in (select or _FIXABLE_RULES) if r in _FIXABLE_RULES)
    if not fixable:
        return source, [], True
    fixes: list[AppliedFix] = []
    current = source
    for _ in range(_MAX_PASSES):
        try:
            p = _Pass(current, relpath, fixable)
        except SyntaxError:
            return current, fixes, True  # unparsable: nothing to fix
        new_source, pass_fixes = p.run()
        if new_source is None:
            return current, fixes, False
        if not pass_fixes or new_source == current:
            break
        fixes.extend(pass_fixes)
        current = new_source
    return current, fixes, True


def fix_paths(
    files: list[Path],
    root: Path,
    *,
    select: tuple[str, ...] = (),
) -> FixOutcome:
    """Plan fixes for every file (no writes — the CLI decides that)."""
    outcome = FixOutcome()
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        new_source, fixes, verified = fix_source(source, rel, select=select)
        if not verified:
            outcome.refused.append(rel)
        if fixes and new_source != source:
            outcome.changed[rel] = (source, new_source)
            outcome.fixes.extend(fixes)
    return outcome


def render_diff(outcome: FixOutcome) -> str:
    """Unified diff of every planned change (``--fix --diff``)."""
    chunks: list[str] = []
    for rel in sorted(outcome.changed):
        old, new = outcome.changed[rel]
        diff = difflib.unified_diff(
            old.splitlines(keepends=True),
            new.splitlines(keepends=True),
            fromfile=f"a/{rel}",
            tofile=f"b/{rel}",
        )
        chunks.append("".join(diff))
    return "".join(chunks)
