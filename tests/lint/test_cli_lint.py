"""The ``python -m repro lint`` command end to end."""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def test_bad_fixture_exits_1(capsys):
    rc = main(["lint", str(FIXTURES / "det003_bad.py"), "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "DET003" in out
    assert out.strip().endswith("2 finding(s)")


def test_clean_fixture_exits_0(capsys):
    rc = main(["lint", str(FIXTURES / "det003_clean.py"), "--no-baseline"])
    assert rc == 0
    assert capsys.readouterr().out.strip() == "0 finding(s)"


def test_missing_path_exits_2(capsys):
    rc = main(["lint", str(FIXTURES / "no_such_file.py")])
    assert rc == 2
    assert "no such path" in capsys.readouterr().err


def test_repo_acceptance_command(capsys):
    """`python -m repro lint src/repro` run from the repo: exit 0."""
    rc = main(["lint", str(REPO / "src" / "repro")])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "0 finding(s)" in out


def test_list_rules(capsys):
    rc = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for rid in ("SPMD001", "DET001", "PAR001", "BRK001"):
        assert rid in out


def test_select_and_ignore(capsys):
    path = str(FIXTURES / "det001_bad.py")
    assert main(["lint", path, "--no-baseline", "--select", "SPMD001"]) == 0
    capsys.readouterr()
    assert main(["lint", path, "--no-baseline", "--ignore", "DET001"]) == 0


def test_json_format(capsys):
    rc = main(["lint", str(FIXTURES / "brk001_bad.py"), "--no-baseline",
               "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["new"] == 2
    assert {f["rule"] for f in doc["findings"]} == {"BRK001"}


def test_sarif_to_file(tmp_path, capsys):
    out_file = tmp_path / "report.sarif"
    rc = main(["lint", str(FIXTURES / "spmd001_bad.py"), "--no-baseline",
               "--format", "sarif", "-o", str(out_file)])
    assert rc == 1
    assert "wrote sarif report" in capsys.readouterr().out
    doc = json.loads(out_file.read_text())
    assert doc["version"] == "2.1.0"
    assert len(doc["runs"][0]["results"]) == 2


class TestBaselineWorkflow:
    def test_write_then_gate(self, tmp_path, capsys):
        work = tmp_path / "proj"
        (work / "src").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "src" / "mod.py"
        shutil.copyfile(FIXTURES / "det003_bad.py", mod)

        bl = work / "lint-baseline.json"
        rc = main(["lint", str(mod), "--write-baseline", "--baseline", str(bl)])
        assert rc == 0
        assert "froze 2 finding(s)" in capsys.readouterr().out

        # gated run: everything frozen -> exit 0
        rc = main(["lint", str(mod), "--baseline", str(bl)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s), 2 baselined" in out

        # a new defect appears -> exit 1, only the new finding reported
        mod.write_text(mod.read_text() + "\n\ndef fresh(z):\n    return z == 1.25\n")
        rc = main(["lint", str(mod), "--baseline", str(bl)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1.25" in out
        assert "1 finding(s), 2 baselined" in out

    def test_default_baseline_from_project_root(self, tmp_path, capsys, monkeypatch):
        work = tmp_path / "proj"
        (work / "src").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "src" / "mod.py"
        shutil.copyfile(FIXTURES / "det004_bad.py", mod)
        # write to the root-default location, then gate without --baseline
        assert main(["lint", str(mod), "--write-baseline"]) == 0
        capsys.readouterr()
        assert (work / "lint-baseline.json").exists()
        assert main(["lint", str(mod)]) == 0
        assert "2 baselined" in capsys.readouterr().out

    def test_show_baselined(self, tmp_path, capsys):
        work = tmp_path / "proj"
        (work / "src").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "src" / "mod.py"
        shutil.copyfile(FIXTURES / "brk001_bad.py", mod)
        assert main(["lint", str(mod), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", str(mod), "--show-baselined"]) == 0
        assert "[baseline]" in capsys.readouterr().out


class TestChangedOnly:
    def test_changed_only_outside_git_lints_everything(self, tmp_path, capsys):
        work = tmp_path / "notgit"
        (work / "src").mkdir(parents=True)
        (work / "pyproject.toml").write_text("[project]\nname='x'\n")
        mod = work / "src" / "mod.py"
        shutil.copyfile(FIXTURES / "det003_bad.py", mod)
        rc = main(["lint", str(mod), "--no-baseline", "--changed-only"])
        # `git status` still resolves inside the enclosing repo checkout,
        # so the fixture path (untracked or not applicable) yields either
        # a full lint (rc 1) or an empty changed set (rc 0); both are
        # exercised without crashing.
        assert rc in (0, 1)
        assert "finding(s)" in capsys.readouterr().out
