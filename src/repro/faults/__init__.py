"""Deterministic fault injection for the SPMD machine model.

Describe failures with a seeded, immutable :class:`FaultPlan` (message
drop/delay/duplicate/corrupt, rank crash/stall), hand it to a
:class:`~repro.machine.Simulator`, and every injected event lands in a
structured :class:`FaultJournal` whose :meth:`~FaultJournal.signature`
is bit-reproducible across runs and kernel backends.
"""

from .journal import FaultEvent, FaultJournal
from .plan import (
    FaultError,
    FaultPlan,
    FaultRuntime,
    MessageFault,
    MessageLost,
    RankFailure,
    RankFault,
    SendEffect,
)

__all__ = [
    "FaultEvent",
    "FaultJournal",
    "FaultError",
    "FaultPlan",
    "FaultRuntime",
    "MessageFault",
    "MessageLost",
    "RankFailure",
    "RankFault",
    "SendEffect",
]
