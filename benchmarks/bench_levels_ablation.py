"""§6 text — independent-set counts of ILUT vs ILUT*.

Paper (TORSO, p=128): ILUT(20,1e-2) needs 132 independent sets and
ILUT(20,1e-6) needs 389, while ILUT* needs only 105 and 112 — 'not only
are they fewer, but they also increase at a much lower rate'.
"""

import pytest

from _reporting import record_table
from _workloads import PROCS, TS, factorize


def _level_counts():
    p = PROCS[-1]
    out = {}
    for algo in ("ILUT", "ILUT*"):
        out[algo] = [factorize("torso", algo, 20, t, p).num_levels for t in TS]
    return out


def test_independent_set_counts(benchmark):
    counts = benchmark.pedantic(_level_counts, rounds=1, iterations=1)
    lines = [
        f"{algo:6s}: "
        + "  ".join(f"t={t:.0e}: q={q}" for t, q in zip(TS, counts[algo]))
        for algo in ("ILUT", "ILUT*")
    ]
    record_table(
        "Independent-set counts, TORSO m=20, p=%d" % PROCS[-1], "\n".join(lines)
    )
    ilut_counts = counts["ILUT"]
    star_counts = counts["ILUT*"]
    # ILUT's level count grows as t shrinks
    assert ilut_counts[-1] > ilut_counts[0]
    # ILUT* needs no more levels at every t
    for qi, qs in zip(ilut_counts, star_counts):
        assert qs <= qi
    # and grows at a much lower rate (paper: 389/132 ≈ 2.9 vs 112/105 ≈ 1.07)
    ilut_growth = ilut_counts[-1] / max(ilut_counts[0], 1)
    star_growth = star_counts[-1] / max(star_counts[0], 1)
    assert star_growth <= ilut_growth


def test_level_sizes_shrink_for_ilut(benchmark):
    """Denser reduced matrices → smaller independent sets (paper §4.2)."""

    def mean_sizes():
        p = PROCS[-1]
        out = {}
        for algo in ("ILUT", "ILUT*"):
            r = factorize("torso", algo, 20, 1e-6, p)
            out[algo] = sum(r.level_sizes) / max(len(r.level_sizes), 1)
        return out

    s = benchmark.pedantic(mean_sizes, rounds=1, iterations=1)
    record_table(
        "Mean independent-set size, TORSO m=20 t=1e-6, p=%d" % PROCS[-1],
        f"ILUT: {s['ILUT']:.1f}   ILUT*: {s['ILUT*']:.1f}",
    )
    assert s["ILUT*"] >= s["ILUT"]
