"""Unit tests for the block-Jacobi ILUT strawman."""

import numpy as np
import pytest

from repro.decomp import decompose
from repro.ilu import block_jacobi_ilut, parallel_ilut
from repro.matrices import poisson2d
from repro.solvers import gmres


class TestBlockJacobi:
    def test_apply_block_diagonal_exact(self):
        """With one rank and no dropping, apply == exact solve."""
        A = poisson2d(8)
        bj = block_jacobi_ilut(A, 64, 0.0, 1, simulate=False)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(64)
        assert np.allclose(A @ bj.apply(b), b, atol=1e-8)

    def test_apply_ignores_coupling(self):
        """Zeroing cross-domain entries of A must not change the apply."""
        A = poisson2d(10)
        d = decompose(A, 4, seed=0)
        bj = block_jacobi_ilut(A, 100, 0.0, 4, decomp=d, simulate=False)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(100)
        y = bj.apply(b)
        # block-diagonal-only solve: each block solves its subsystem
        for r in range(4):
            rows = d.owned_rows(r)
            block = A.submatrix(rows, rows)
            assert np.allclose(block @ y[rows], b[rows], atol=1e-8)

    def test_gmres_quality_degrades_with_p(self, rng):
        """The motivation for the paper: dropping the interface coupling
        costs iterations as p (and the discarded coupling) grows."""
        A = poisson2d(20)
        b = A @ np.ones(400)
        nmv = {}
        for p in (1, 16):
            bj = block_jacobi_ilut(A, 10, 1e-4, p, seed=0, simulate=False)
            res = gmres(A, b, restart=20, M=bj, maxiter=8000)
            assert res.converged
            nmv[p] = res.num_matvec
        assert nmv[16] > nmv[1]

    def test_parallel_ilut_beats_block_jacobi(self, rng):
        from repro.solvers import ILUPreconditioner

        A = poisson2d(20)
        b = A @ np.ones(400)
        p = 16
        bj = block_jacobi_ilut(A, 10, 1e-4, p, seed=0, simulate=False)
        full = parallel_ilut(A, 10, 1e-4, p, seed=0, simulate=False)
        n_bj = gmres(A, b, restart=20, M=bj, maxiter=8000).num_matvec
        n_full = gmres(
            A, b, restart=20, M=ILUPreconditioner(full.factors), maxiter=8000
        ).num_matvec
        assert n_full < n_bj

    def test_no_communication(self):
        A = poisson2d(10)
        bj = block_jacobi_ilut(A, 5, 1e-3, 4, seed=0)
        assert bj.modeled_factor_time > 0
        # factor time = slowest local ILUT, no messages — implied by the
        # modelled time being below the parallel ILUT's
        full = parallel_ilut(A, 5, 1e-3, 4, seed=0)
        assert bj.modeled_factor_time <= full.modeled_time

    def test_shape_check(self):
        A = poisson2d(6)
        bj = block_jacobi_ilut(A, 5, 1e-3, 2, simulate=False)
        with pytest.raises(ValueError):
            bj.apply(np.ones(7))

    def test_decomp_mismatch(self):
        A = poisson2d(6)
        d = decompose(A, 2, seed=0)
        with pytest.raises(ValueError):
            block_jacobi_ilut(A, 5, 1e-3, 4, decomp=d)

    def test_total_nnz(self):
        A = poisson2d(8)
        bj = block_jacobi_ilut(A, 5, 1e-3, 4, simulate=False)
        assert bj.total_nnz() == sum(f.nnz for f in bj.blocks)
