"""BiCGSTAB (van der Vorst '92) with left preconditioning.

A short-recurrence alternative to restarted GMRES for the nonsymmetric
systems in this library; unlike GMRES it needs two matvecs per
iteration but no restart-length storage.  Included as a companion
solver exercised by the examples and tests (the paper's evaluation uses
GMRES exclusively).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..sparse import CSRMatrix
from .preconditioners import Preconditioner, prepare_preconditioner
from .result import BiCGSTABResult

__all__ = ["BiCGSTABResult", "bicgstab"]


def bicgstab(
    A: CSRMatrix | Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    M: Preconditioner | None = None,
    x0: np.ndarray | None = None,
) -> BiCGSTABResult:
    """Solve ``A x = b`` with preconditioned BiCGSTAB.

    Stops when ``||r|| <= tol * ||r0||``; reports ``breakdown=True`` when
    a rho/omega breakdown forced an early exit.
    """
    t_start = time.perf_counter()
    matvec = A.matvec if isinstance(A, CSRMatrix) else A
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    M = prepare_preconditioner(M, A)
    failure_report = getattr(M, "failure_report", None)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()

    r = b - matvec(x) if x.any() else b.copy()
    nmv = int(x.any())
    r0_hat = r.copy()
    r0_norm = float(np.linalg.norm(r))
    hist = [r0_norm]
    if r0_norm == 0.0:
        return BiCGSTABResult(
            x=x,
            converged=True,
            iterations=0,
            final_residual=0.0,
            residual_norms=hist,
            elapsed=time.perf_counter() - t_start,
            num_matvec=nmv,
            failure_report=failure_report,
        )
    target = tol * r0_norm

    rho_old = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    it = 0
    converged = False
    breakdown = False

    while it < maxiter:
        rho = float(np.dot(r0_hat, r))
        if rho == 0.0:
            breakdown = True
            break
        if it == 0:
            p = r.copy()
        else:
            beta = (rho / rho_old) * (alpha / omega)
            p = r + beta * (p - omega * v)
        phat = M.apply(p)
        v = matvec(phat)
        nmv += 1
        denom = float(np.dot(r0_hat, v))
        if denom == 0.0:
            breakdown = True
            break
        alpha = rho / denom
        s = r - alpha * v
        s_norm = float(np.linalg.norm(s))
        if s_norm <= target:
            x = x + alpha * phat
            hist.append(s_norm)
            it += 1
            converged = True
            break
        shat = M.apply(s)
        t = matvec(shat)
        nmv += 1
        tt = float(np.dot(t, t))
        if tt == 0.0:
            breakdown = True
            break
        omega = float(np.dot(t, s)) / tt
        x = x + alpha * phat + omega * shat
        r = s - omega * t
        rho_old = rho
        it += 1
        rn = float(np.linalg.norm(r))
        hist.append(rn)
        if rn <= target:
            converged = True
            break
        if omega == 0.0:
            breakdown = True
            break

    final = float(np.linalg.norm(b - matvec(x)))
    return BiCGSTABResult(
        x=x,
        converged=converged,
        iterations=it,
        final_residual=final,
        residual_norms=hist,
        elapsed=time.perf_counter() - t_start,
        num_matvec=nmv,
        breakdown=breakdown,
        failure_report=failure_report,
    )
