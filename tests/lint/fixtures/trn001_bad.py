"""TRN001 bad twin: posted payloads mutated after the post.

``halo_exchange`` mutates the sent buffer directly; ``ring_shift``
mutates it through an alias.  A reference-passing simulator delivers
the mutated value, a serializing transport the pre-mutation snapshot.
"""


def halo_exchange(sim, buf, nbr, rank):
    sim.send(rank, nbr, buf, float(len(buf)), tag="halo")
    buf[0] = 0.0
    return sim.recv(rank, nbr, tag="halo")


def ring_shift(sim, vals, rank, nranks):
    msg = vals
    sim.send(rank, (rank + 1) % nranks, msg, 1.0, tag="ring")
    vals.append(0)
    return sim.recv(rank, (rank - 1) % nranks, tag="ring")
