"""Domain decomposition: mapping rows to processors.

Implements the setup stage of the paper's parallel framework (§3):

* partition the matrix graph into ``p`` domains (multilevel k-way by
  default; block/random baselines for ablations),
* classify each row as **interior** (all structural neighbours in the
  same domain) or **interface** (coupled to another domain),
* build the communication plans (halo exchange) used by the distributed
  matvec and the interface factorization.

The partitioner minimises the edge-cut, which directly minimises the
number of interface rows — the serial bottleneck of phase 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import Graph, adjacency_from_matrix
from ..partition import block_partition, partition_matrix_kway, random_partition
from ..sparse import CSRMatrix

__all__ = ["DomainDecomposition", "decompose"]


@dataclass
class DomainDecomposition:
    """Assignment of matrix rows to ``nranks`` processors.

    Attributes
    ----------
    A:
        The (square) matrix being decomposed.
    nranks:
        Number of processors.
    part:
        Owning rank of each row.
    is_interface:
        Boolean mask; true where the row couples to another domain.
    graph:
        Symmetrised adjacency used for the classification.
    """

    A: CSRMatrix
    nranks: int
    part: np.ndarray
    is_interface: np.ndarray
    graph: Graph
    _interior: list[np.ndarray] = field(default_factory=list, repr=False)
    _interface: list[np.ndarray] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        n = self.A.shape[0]
        if self.part.shape != (n,):
            raise ValueError("part must assign every row")
        if self.part.size and (self.part.min() < 0 or self.part.max() >= self.nranks):
            raise ValueError("part ids out of range")
        self._interior = [
            np.flatnonzero((self.part == r) & ~self.is_interface)
            for r in range(self.nranks)
        ]
        self._interface = [
            np.flatnonzero((self.part == r) & self.is_interface)
            for r in range(self.nranks)
        ]

    # ------------------------------------------------------------------

    def interior_rows(self, rank: int) -> np.ndarray:
        """Original indices of ``rank``'s interior rows (ascending)."""
        return self._interior[rank]

    def interface_rows(self, rank: int) -> np.ndarray:
        """Original indices of ``rank``'s interface rows (ascending)."""
        return self._interface[rank]

    def owned_rows(self, rank: int) -> np.ndarray:
        return np.flatnonzero(self.part == rank)

    @property
    def all_interface(self) -> np.ndarray:
        """All interface rows (ascending original index)."""
        return np.flatnonzero(self.is_interface)

    @property
    def n_interface(self) -> int:
        return int(self.is_interface.sum())

    @property
    def n_interior(self) -> int:
        return int(self.A.shape[0] - self.n_interface)

    def interface_fraction(self) -> float:
        n = self.A.shape[0]
        return self.n_interface / n if n else 0.0

    # ------------------------------------------------------------------
    # communication plans
    # ------------------------------------------------------------------

    def halo_plan(self) -> dict[tuple[int, int], np.ndarray]:
        """Matvec ghost-exchange plan.

        Returns ``{(src_rank, dst_rank): node_array}`` — the rows owned
        by ``src_rank`` whose values ``dst_rank`` needs because some row
        it owns references them.  Only off-diagonal (cross-domain) needs
        appear.
        """
        n = self.A.shape[0]
        plan: dict[tuple[int, int], set[int]] = {}
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.A.indptr))
        cols = self.A.indices
        cross = self.part[rows] != self.part[cols]
        for i, j in zip(rows[cross], cols[cross]):
            key = (int(self.part[j]), int(self.part[i]))
            plan.setdefault(key, set()).add(int(j))
        return {
            key: np.asarray(sorted(nodes), dtype=np.int64)
            for key, nodes in sorted(plan.items())
        }

    def boundary_nodes(self, rank: int) -> np.ndarray:
        """Rows of ``rank`` referenced by at least one other domain."""
        needed: set[int] = set()
        for (src, _dst), nodes in self.halo_plan().items():
            if src == rank:
                needed.update(int(v) for v in nodes)
        return np.asarray(sorted(needed), dtype=np.int64)

    def summary(self) -> str:
        sizes = [int((self.part == r).sum()) for r in range(self.nranks)]
        return (
            f"DomainDecomposition(p={self.nranks}, n={self.A.shape[0]}, "
            f"interface={self.n_interface} ({100 * self.interface_fraction():.1f}%), "
            f"part sizes min/max={min(sizes)}/{max(sizes)})"
        )


def decompose(
    A: CSRMatrix,
    nranks: int,
    *,
    method: str = "multilevel",
    seed: int = 0,
    max_imbalance: float = 1.05,
) -> DomainDecomposition:
    """Partition ``A`` onto ``nranks`` processors and classify rows.

    ``method`` is ``"multilevel"`` (default; the paper's choice),
    ``"block"`` (contiguous index blocks) or ``"random"`` — the latter
    two exist as ablation baselines showing why partition quality
    matters.
    """
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"decompose requires a square matrix, got {A.shape}")
    n = A.shape[0]
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if nranks > n:
        raise ValueError(f"cannot place {n} rows on {nranks} ranks")

    if method == "multilevel":
        part = partition_matrix_kway(
            A, nranks, seed=seed, max_imbalance=max_imbalance
        ).part
    elif method == "block":
        part = block_partition(n, nranks)
    elif method == "random":
        part = random_partition(n, nranks, seed=seed)
    else:
        raise ValueError(f"unknown decomposition method {method!r}")

    graph = adjacency_from_matrix(A, symmetric=True)
    is_interface = np.zeros(n, dtype=bool)
    if nranks > 1:
        for v in range(n):
            nbrs = graph.neighbors(v)
            if nbrs.size and np.any(part[nbrs] != part[v]):
                is_interface[v] = True
    return DomainDecomposition(
        A=A, nranks=nranks, part=part, is_interface=is_interface, graph=graph
    )
