"""Semantics of the process-wide kernel backend switch."""

import pytest

from repro.kernels import (
    REFERENCE,
    VECTORIZED,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)


@pytest.fixture(autouse=True)
def _restore_default():
    previous = get_backend()
    yield
    set_backend(previous)


class TestBackendSwitch:
    def test_default_is_reference(self):
        assert get_backend() == REFERENCE

    def test_set_returns_previous_and_takes_effect(self):
        assert set_backend(VECTORIZED) == REFERENCE
        assert get_backend() == VECTORIZED
        assert set_backend(REFERENCE) == VECTORIZED

    def test_set_rejects_unknown_and_keeps_default(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_backend("simd")
        assert get_backend() == REFERENCE

    def test_use_backend_restores_on_exit(self):
        with use_backend(VECTORIZED) as active:
            assert active == VECTORIZED
            assert get_backend() == VECTORIZED
        assert get_backend() == REFERENCE

    def test_use_backend_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_backend(VECTORIZED):
                raise RuntimeError("boom")
        assert get_backend() == REFERENCE

    def test_use_backend_nests(self):
        with use_backend(VECTORIZED):
            with use_backend(REFERENCE):
                assert get_backend() == REFERENCE
            assert get_backend() == VECTORIZED


class TestResolve:
    def test_none_resolves_to_default(self):
        assert resolve_backend(None) == REFERENCE
        with use_backend(VECTORIZED):
            assert resolve_backend(None) == VECTORIZED

    def test_explicit_argument_wins_over_default(self):
        with use_backend(VECTORIZED):
            assert resolve_backend(REFERENCE) == REFERENCE

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("gpu")
