"""Cost certification: the ledger, the static analysis, drift detection.

Three layers under test:

* :class:`repro.machine.ChargeLedger` — charge events carry the driver
  source line, recording never perturbs results;
* :mod:`repro.lint.flow.cost` — the static side: charge-site
  extraction over the callgraph closure, loop-bound derivation, the
  symbolic expression evaluator, kernels-surface scanning;
* :mod:`repro.lint.costverify` — the runtime join: every root
  certifies on the seeded instances, and a wrong cost model (or an
  unknown charge site) is reported as drift, not silently absorbed.

Plus the bit-identity oracle for the PERF001 fix in ``parallel_ilu0``:
the vectorized per-class need computation must reproduce the scalar
``A.row`` walk's charge dictionaries exactly — same keys, same
insertion order, same float bit patterns.
"""

import ast
from pathlib import Path

import numpy as np
import pytest

from repro.lint.flow.cost import (
    COST_ROOTS,
    COST_SPECS,
    CostExpr,
    analyze_costs,
)
from repro.lint.runner import ModuleContext, collect_files, parse_module

REPO = Path(__file__).resolve().parents[2]


def _repo_modules():
    return [
        m
        for f in collect_files([REPO / "src" / "repro"])
        if (m := parse_module(f, REPO)) is not None
    ]


@pytest.fixture(scope="module")
def modules():
    return _repo_modules()


@pytest.fixture(scope="module")
def analyses(modules):
    return {a.qualname: a for a in analyze_costs(modules)}


class TestCostExpr:
    def test_evaluates_polynomials(self):
        e = CostExpr("2*nnz_L + 2*nnz_U - n")
        assert e.params == frozenset({"nnz_L", "nnz_U", "n"})
        assert e.evaluate({"nnz_L": 10, "nnz_U": 12, "n": 5}) == 39.0

    def test_missing_parameter_raises(self):
        with pytest.raises(KeyError):
            CostExpr("2*nnz").evaluate({"n": 4})

    def test_unsupported_syntax_rejected(self):
        with pytest.raises(ValueError):
            CostExpr("nnz**2").evaluate({"nnz": 3})
        with pytest.raises(ValueError):
            CostExpr("n if n else 1").evaluate({"n": 3})


class TestStaticAnalysis:
    def test_every_registered_root_is_analyzed(self, analyses):
        for _module, qualname in COST_ROOTS:
            assert qualname in analyses, qualname

    def test_no_static_problems_in_repo(self, analyses):
        for a in analyses.values():
            assert a.problems == [], (a.qualname, a.problems)

    def test_matvec_site_inventory(self, analyses):
        a = analyses["parallel_matvec"]
        kinds = sorted(s.kind for s in a.sites)
        assert kinds == ["barrier", "compute", "compute", "send"]
        assert all(s.module == "src/repro/solvers/parallel_matvec.py" for s in a.sites)

    def test_fault_path_site_is_marked(self, analyses):
        a = analyses["EliminationEngine.run"]
        fault_sites = [s for s in a.sites if s.fault_path]
        assert len(fault_sites) == 1
        assert fault_sites[0].kind == "send"
        assert fault_sites[0].function == "EliminationEngine._recv_retry"

    def test_mis_round_loop_count_derived(self, analyses):
        a = analyses["distributed_two_step_luby_mis"]
        by_kind = {s.kind: s for s in a.sites if s.count_expr}
        assert "compute" in by_kind
        # the per-round compute sits under rounds x ("insert","remove") x p
        assert "rounds" in by_kind["compute"].count_expr
        assert "2" in by_kind["compute"].count_expr

    def test_inherited_sites_resolved_through_mro(self, analyses):
        a = analyses["InterfacePartitionEngine.run"]
        mods = {s.module for s in a.sites}
        assert "src/repro/ilu/elimination.py" in mods  # _charge_ops et al.
        assert "src/repro/ilu/interface_partition.py" in mods

    def test_kernels_surface_is_statically_charge_free(self, analyses):
        surface = analyses["<charge-free surface>"]
        assert surface.problems == []

    def test_charge_under_kernels_is_reported(self, modules):
        bad = ModuleContext(
            path=Path("src/repro/kernels/rogue.py"),
            relpath="src/repro/kernels/rogue.py",
            tree=ast.parse("def f(sim):\n    sim.compute(0, 1.0)\n"),
            lines=["def f(sim):", "    sim.compute(0, 1.0)"],
        )
        out = {a.qualname: a for a in analyze_costs([*modules, bad])}
        assert out["<charge-free surface>"].problems


class TestChargeLedger:
    def test_events_carry_the_driver_line(self):
        from repro.machine import CRAY_T3D, ChargeLedger, Simulator

        led = ChargeLedger()
        sim = Simulator(2, CRAY_T3D, ledger=led)
        sim.compute(0, 5.0)  # <- the attributed line
        sim.barrier()
        sim.close()
        kinds = [ev.kind for ev in led.events]
        assert kinds == ["compute", "barrier"]
        assert all(ev.file.endswith("test_cost.py") for ev in led.events)
        assert led.total("compute") == 5.0
        assert led.count("barrier") == 1

    def test_ledgered_run_is_bit_identical(self):
        from repro.ilu import parallel_ilut
        from repro.ilu.params import ILUTParams
        from repro.machine import CRAY_T3D, ChargeLedger, Simulator
        from repro.matrices import poisson2d

        A = poisson2d(6)
        outs = []
        for ledger in (None, ChargeLedger()):
            sim = Simulator(2, CRAY_T3D, ledger=ledger)
            res = parallel_ilut(
                A, ILUTParams(fill=4, threshold=1e-3), 2, seed=0, transport=sim
            )
            stats = sim.stats()
            sim.close()
            outs.append(
                (
                    res.modeled_time,
                    stats.total_flops,
                    stats.messages,
                    stats.words_sent,
                    res.factors.L.data.tobytes(),
                    res.factors.U.data.tobytes(),
                )
            )
        assert outs[0] == outs[1]


class TestVerifyCosts:
    @pytest.fixture(scope="class")
    def reports(self, modules):
        from repro.lint.costverify import verify_costs

        return {r.qualname: r for r in verify_costs(modules, REPO)}

    def test_all_roots_certified(self, reports):
        assert len(reports) == len(COST_ROOTS) + 1  # + kernels surface
        for r in reports.values():
            bad = [c for c in r.checks if c.status != "ok"]
            assert r.certified, (r.qualname, r.problems, [c.name for c in bad])

    def test_every_root_ran_and_checked(self, reports):
        for _module, qualname in COST_ROOTS:
            r = reports[qualname]
            assert r.runs == 2 and r.checks, qualname

    def test_wrong_closed_form_is_drift(self, modules, monkeypatch):
        from repro.lint.costverify import verify_costs
        from repro.lint.flow import cost as cost_mod

        key = "src/repro/solvers/parallel_matvec.py::parallel_matvec"
        spec = cost_mod.COST_SPECS[key]
        import dataclasses

        monkeypatch.setitem(
            cost_mod.COST_SPECS, key, dataclasses.replace(spec, flops="3*nnz")
        )
        reports = {r.qualname: r for r in verify_costs(modules, REPO)}
        r = reports["parallel_matvec"]
        assert not r.certified
        drifts = [c for c in r.checks if c.status == "drift"]
        assert any("flops == 3*nnz" in c.name for c in drifts)

    def test_unknown_charge_site_is_drift(self, modules, analyses):
        from repro.lint import costverify
        from repro.machine import ChargeLedger

        led = ChargeLedger()
        led.record("compute", 0, 1.0)  # attributed to THIS test file
        report = costverify.CostReport(module="m", qualname="q")
        joiner = costverify._Joiner(
            report=report, analysis=analyses["parallel_matvec"], root_dir=REPO
        )
        joiner.join_run(led, {}, "probe")
        drifts = [c for c in report.checks if c.status == "drift"]
        assert any("statically known" in c.name for c in drifts)

    def test_unfired_site_is_drift(self, analyses):
        from repro.lint import costverify

        report = costverify.CostReport(module="m", qualname="q")
        joiner = costverify._Joiner(
            report=report, analysis=analyses["parallel_matvec"], root_dir=REPO
        )
        joiner.finish()  # no runs joined: every non-fault site unfired
        drifts = [c for c in report.checks if c.status == "drift"]
        assert len(drifts) == len(analyses["parallel_matvec"].sites)


class TestIlu0NeedRewriteOracle:
    """The vectorized per-class comm-charge computation in
    ``parallel_ilu0`` (the PERF001 fix) against the scalar pre-fix walk.
    """

    def test_need_dicts_bit_identical(self):
        from repro.decomp import decompose
        from repro.ilu.parallel_ilu0 import parallel_ilu0
        from repro.kernels import csr_gather_rows
        from repro.matrices import poisson2d

        A = poisson2d(8)
        decomp = decompose(A, 3, seed=0)
        res = parallel_ilu0(A, 3, decomp=decomp, seed=0, transport="none")
        factors = res.factors
        part = decomp.part
        perm = factors.perm
        n = perm.size
        pos = np.empty(n, dtype=np.int64)
        pos[perm] = np.arange(n, dtype=np.int64)
        u_nnz = np.diff(factors.U.indptr)
        assert factors.levels.interface_levels, "instance must have interfaces"
        for positions in factors.levels.interface_levels:
            cls = perm[np.asarray(positions, dtype=np.int64)]
            # pre-fix oracle: scalar A.row walk, original condition order
            need_scalar: dict = {}
            for i in cls:
                r = int(part[i])
                cols, _ = A.row(int(i))
                for c in cols:
                    if pos[c] < pos[i] and decomp.is_interface[c]:
                        s = int(part[c])
                        if s != r:
                            nw = 2.0 * float(u_nnz[pos[c]])
                            need_scalar[(s, r)] = need_scalar.get((s, r), 0.0) + nw
            # the shipped vectorized shape
            ii, cc, _ = csr_gather_rows(A, np.asarray(cls, dtype=np.int64))
            earlier = (
                (pos[cc] < pos[ii])
                & decomp.is_interface[cc]
                & (part[cc] != part[ii])
            )
            need_vec: dict = {}
            for i, c in zip(ii[earlier], cc[earlier]):
                nw = 2.0 * float(u_nnz[pos[c]])
                key = (int(part[c]), int(part[i]))
                need_vec[key] = need_vec.get(key, 0.0) + nw
            # same keys, same insertion order, same float bit patterns
            assert list(need_scalar) == list(need_vec)
            for k in need_scalar:
                assert need_scalar[k].hex() == need_vec[k].hex()

    def test_modeled_run_reproduces_exactly(self):
        from repro.decomp import decompose
        from repro.ilu.parallel_ilu0 import parallel_ilu0
        from repro.machine import CRAY_T3D, Simulator
        from repro.matrices import poisson2d

        A = poisson2d(8)
        decomp = decompose(A, 3, seed=0)
        runs = []
        for _ in range(2):
            sim = Simulator(3, CRAY_T3D)
            res = parallel_ilu0(A, 3, decomp=decomp, seed=0, transport=sim)
            stats = sim.stats()
            sim.close()
            runs.append(
                (
                    res.modeled_time,
                    stats.total_flops,
                    stats.messages,
                    stats.words_sent,
                    stats.barriers,
                    res.factors.L.data.tobytes(),
                    res.factors.U.data.tobytes(),
                )
            )
        assert runs[0] == runs[1]


def test_cost_specs_reference_registered_roots():
    keys = {f"{m}::{q}" for m, q in COST_ROOTS}
    assert set(COST_SPECS) == keys
