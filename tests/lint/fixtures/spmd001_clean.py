"""SPMD001 clean twin: every tag pairs up, variable parts widen."""


def drive(sim, nranks):
    for r in range(1, nranks):
        sim.send(r, 0, None, 1.0, tag="gather")
    for r in range(1, nranks):
        sim.recv(0, r, tag="gather")


def level_loop(sim, nranks, level):
    for r in range(1, nranks):
        sim.send(r, 0, None, 1.0, tag=("urow", level))


def level_drain(sim, nranks, lvl):
    for r in range(1, nranks):
        sim.recv(0, r, tag=("urow", lvl))
