"""Ablation — why the interface factorization matters at all.

The zero-communication alternative to the paper's algorithm is
block-Jacobi ILUT: factor each domain's diagonal block, ignore all
cross-domain coupling.  Its quality decays as p grows (more coupling
discarded), while the paper's parallel ILUT preserves the sequential
preconditioner's quality at any p.  ILUM (global multi-elimination,
Saad '92 — the paper's reference [11]) is shown as the serial
independent-set relative.
"""

import numpy as np
import pytest

from _reporting import record_table
from _workloads import MODEL, PROCS, SEED, matrix

from repro import decompose, parallel_ilut
from repro.ilu import block_jacobi_ilut, ilum
from repro.solvers import ILUPreconditioner, gmres

M, T = 10, 1e-4


def _sweep():
    A = matrix("g0")
    b = A @ np.ones(A.shape[0])
    rows = []
    for p in PROCS:
        d = decompose(A, p, seed=SEED)
        bj = block_jacobi_ilut(A, M, T, p, decomp=d, model=MODEL, seed=SEED)
        full = parallel_ilut(A, M, T, p, decomp=d, model=MODEL, seed=SEED)
        n_bj = gmres(A, b, restart=20, tol=1e-8, M=bj, maxiter=20000).num_matvec
        n_full = gmres(
            A, b, restart=20, tol=1e-8, M=ILUPreconditioner(full.factors),
            maxiter=20000,
        ).num_matvec
        rows.append([f"p={p}", n_bj, n_full])
    n_ilum = gmres(
        A, b, restart=20, tol=1e-8, M=ILUPreconditioner(ilum(A, M, T, seed=SEED)),
        maxiter=20000,
    ).num_matvec
    return rows, n_ilum


def test_block_jacobi_vs_parallel_ilut(benchmark):
    from repro.analysis import format_table

    rows, n_ilum = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_table(
        "Ablation: block-Jacobi ILUT vs parallel ILUT (G0, m=%d, t=%.0e)" % (M, T),
        format_table(
            ["procs", "block-Jacobi NMV", "parallel ILUT NMV"], rows
        )
        + f"\nILUM (serial multi-elimination) NMV: {n_ilum}",
    )
    bj = [r[1] for r in rows]
    full = [r[2] for r in rows]
    # block-Jacobi degrades with p
    assert bj[-1] > bj[0]
    # parallel ILUT's quality is roughly p-independent
    assert max(full) <= 2 * min(full) + 5
    # and beats block-Jacobi at scale
    assert full[-1] < bj[-1]
