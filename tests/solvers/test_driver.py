"""Unit tests for the one-stop parallel solve driver."""

import numpy as np
import pytest

from repro.matrices import poisson2d
from repro.solvers import parallel_solve


class TestParallelSolve:
    def test_solves_poisson(self):
        A = poisson2d(16)
        b = A @ np.ones(256)
        rep = parallel_solve(A, b, 4, m=10, t=1e-4, k=2, seed=0)
        assert rep.converged
        assert np.allclose(rep.x, 1.0, atol=1e-4)

    def test_report_fields_consistent(self):
        A = poisson2d(12)
        b = A @ np.ones(144)
        rep = parallel_solve(A, b, 4, seed=0)
        assert rep.total_time == pytest.approx(rep.factor_time + rep.solve_time)
        assert rep.factor_time > 0
        assert rep.solve_time > 0
        assert rep.matvec_time > 0
        assert rep.precond_time > 0
        assert rep.num_matvec > 0

    def test_plain_ilut_variant(self):
        A = poisson2d(12)
        b = A @ np.ones(144)
        rep = parallel_solve(A, b, 4, m=5, t=1e-3, k=None, seed=0)
        assert rep.converged

    def test_star_total_time_competitive_at_small_t(self):
        """The Table 3 takeaway in one call: for tight thresholds the
        ILUT* end-to-end time (factor + solve) beats plain ILUT's."""
        A = poisson2d(20)
        b = A @ np.ones(400)
        rep_i = parallel_solve(A, b, 8, m=10, t=1e-6, k=None, seed=0)
        rep_s = parallel_solve(A, b, 8, m=10, t=1e-6, k=2, seed=0)
        assert rep_s.converged and rep_i.converged
        assert rep_s.total_time <= rep_i.total_time * 1.1
