"""CFG builder invariants over a gallery of control-flow shapes."""

import ast

import pytest

from repro.lint.flow import build_cfg

SNIPPETS = {
    "straight": """
def f(x):
    a = x + 1
    b = a * 2
    return b
""",
    "if_else": """
def f(x):
    if x > 0:
        y = 1
    else:
        y = 2
    return y
""",
    "if_no_else": """
def f(x):
    y = 0
    if x:
        y = 1
    return y
""",
    "while_break_continue": """
def f(n):
    i = 0
    while True:
        i = i + 1
        if i > n:
            break
        if i % 2:
            continue
        n = n - 1
    return i
""",
    "for_else": """
def f(items):
    for x in items:
        if x < 0:
            break
    else:
        x = 0
    return x
""",
    "try_except_finally": """
def f(x):
    try:
        y = 1 / x
    except ZeroDivisionError:
        y = 0
    finally:
        x = 0
    return y
""",
    "early_return": """
def f(x):
    if x is None:
        return 0
    return x + 1
""",
    "nested_loops": """
def f(grid):
    total = 0
    for row in grid:
        for v in row:
            total = total + v
    return total
""",
}


def _func(code: str) -> ast.FunctionDef:
    return ast.parse(code).body[0]


def _expected_stmts(body: list[ast.stmt]) -> list[ast.stmt]:
    """Statements the builder places into blocks: everything except
    ``Try`` nodes (whose parts are threaded directly) and the bodies of
    nested function/class definitions (opaque at this level)."""
    out: list[ast.stmt] = []
    for s in body:
        if isinstance(s, ast.Try):
            out.extend(_expected_stmts(s.body))
            out.extend(_expected_stmts(s.orelse))
            for h in s.handlers:
                out.extend(_expected_stmts(h.body))
            out.extend(_expected_stmts(s.finalbody))
            continue
        out.append(s)
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for attr in ("body", "orelse", "finalbody"):
            out.extend(_expected_stmts(getattr(s, attr, [])))
    return out


@pytest.mark.parametrize("name", sorted(SNIPPETS))
def test_every_statement_in_exactly_one_block(name):
    func = _func(SNIPPETS[name])
    cfg = build_cfg(func)
    placed = [id(s) for b in cfg.blocks.values() for s in b.stmts]
    expected = [id(s) for s in _expected_stmts(func.body)]
    assert sorted(placed) == sorted(expected)
    assert len(placed) == len(set(placed))


@pytest.mark.parametrize("name", sorted(SNIPPETS))
def test_succ_pred_consistency(name):
    cfg = build_cfg(_func(SNIPPETS[name]))
    for b in cfg.blocks.values():
        for s in b.succs:
            assert b.id in cfg.blocks[s].preds, (b, cfg.blocks[s])
        for p in b.preds:
            assert b.id in cfg.blocks[p].succs, (b, cfg.blocks[p])


@pytest.mark.parametrize("name", sorted(SNIPPETS))
def test_exit_is_terminal_and_entry_starts_rpo(name):
    cfg = build_cfg(_func(SNIPPETS[name]))
    assert cfg.blocks[cfg.exit].succs == []
    order = cfg.rpo()
    assert order[0] == cfg.entry
    assert len(order) == len(set(order))
    assert set(order) <= set(cfg.blocks)


@pytest.mark.parametrize("name", ["while_break_continue", "for_else", "nested_loops"])
def test_loops_have_back_edges(name):
    func = _func(SNIPPETS[name])
    cfg = build_cfg(func)
    headers = [
        b
        for b in cfg.blocks.values()
        if any(isinstance(s, (ast.For, ast.While)) for s in b.stmts)
    ]
    assert headers
    for h in headers:
        # body blocks are created after the header, so a back edge shows
        # up as an in-edge from a higher-numbered block
        assert any(p > h.id for p in h.preds), h


def test_block_of_finds_the_statement():
    func = _func(SNIPPETS["if_else"])
    cfg = build_cfg(func)
    ret = func.body[-1]
    block = cfg.block_of(ret)
    assert block is not None
    assert any(s is ret for s in block.stmts)


def test_build_cfg_rejects_non_body_nodes():
    with pytest.raises(TypeError):
        build_cfg(ast.parse("x = 1").body[0].targets[0])
