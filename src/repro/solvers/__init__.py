"""Iterative solvers: restarted GMRES, CG, preconditioner interfaces,
distributed matvec and modelled parallel solve times."""

from .bicgstab import BiCGSTABResult, bicgstab
from .cg import CGResult, cg
from .driver import ParallelSolveReport, parallel_solve
from .gmres import GMRESResult, gmres
from .modeled import model_diagonal_precond_time, model_gmres_time
from .parallel_matvec import MatvecResult, parallel_matvec
from .preconditioners import (
    DiagonalPreconditioner,
    IdentityPreconditioner,
    ILU0Preconditioner,
    ILUPreconditioner,
    Preconditioner,
    prepare_preconditioner,
)
from .result import SolveResult
from .stationary import (
    StationaryResult,
    SweepPreconditioner,
    gauss_seidel,
    jacobi,
    sor,
)

__all__ = [
    "SolveResult",
    "gmres",
    "GMRESResult",
    "prepare_preconditioner",
    "parallel_solve",
    "ParallelSolveReport",
    "cg",
    "CGResult",
    "bicgstab",
    "BiCGSTABResult",
    "parallel_matvec",
    "MatvecResult",
    "Preconditioner",
    "IdentityPreconditioner",
    "DiagonalPreconditioner",
    "ILUPreconditioner",
    "ILU0Preconditioner",
    "model_gmres_time",
    "model_diagonal_precond_time",
    "jacobi",
    "gauss_seidel",
    "sor",
    "StationaryResult",
    "SweepPreconditioner",
]
