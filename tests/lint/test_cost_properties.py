"""Property suite: symbolic cost models vs runtime counters.

The closed forms registered in ``COST_SPECS`` were certified by
``repro lint --verify-costs`` on one seeded Poisson instance; this
suite replays the certification on *random* CSR matrices across rank
counts 1–4 and both kernel backends.  The structural parameters
(``nnz``, halo sizes, consumer sets) are recomputed here from the raw
arrays, then each closed form must evaluate to exactly the simulator's
recorded total — no tolerance, the models are exact counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.flow.cost import COST_SPECS, CostExpr

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

_MATVEC_SPEC = COST_SPECS["src/repro/solvers/parallel_matvec.py::parallel_matvec"]
_TRI_SPEC = COST_SPECS[
    "src/repro/ilu/triangular.py::parallel_triangular_solve"
]


@st.composite
def instances(draw, max_n=16):
    """(nranks, A): a random diagonally dominant CSR matrix with a
    symmetric pattern, plus a rank count it can be decomposed over."""
    nranks = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=max(4, 2 * nranks), max_value=max_n))
    nnz = draw(st.integers(min_value=0, max_value=3 * n))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    vals = draw(
        st.lists(
            st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    from repro.sparse import CSRMatrix

    r = np.array(rows + cols + list(range(n)), dtype=np.int64)
    c = np.array(cols + rows + list(range(n)), dtype=np.int64)
    v = np.concatenate([np.array(vals + vals, dtype=np.float64), np.full(n, 8.0)])
    return nranks, CSRMatrix.from_coo(r, c, v, (n, n))


def _stats_by_component(stats) -> dict[str, float]:
    return {
        "flops": float(stats.total_flops),
        "messages": float(stats.messages),
        "words": float(stats.words_sent),
        "barriers": float(stats.barriers),
        "collectives": float(stats.collectives),
    }


def _assert_closed_forms(spec, env, stats, label):
    recorded = _stats_by_component(stats)
    for component, text in spec.components().items():
        if text is None:
            continue
        expected = CostExpr(text).evaluate(env)
        assert recorded[component] == float(expected), (
            f"{label}: {component} == {text}: "
            f"expected {expected}, recorded {recorded[component]} (env {env})"
        )


class TestMatvecCostModel:
    @settings(max_examples=25, deadline=None)
    @given(instances())
    def test_closed_forms_hold_on_random_instances(self, data):
        from repro.decomp import decompose
        from repro.lint.costverify import _halo_params
        from repro.machine import CRAY_T3D, ChargeLedger, Simulator
        from repro.solvers.parallel_matvec import parallel_matvec

        nranks, A = data
        decomp = decompose(A, nranks, seed=0)
        x = np.linspace(-1.0, 1.0, A.shape[0])
        halo_pairs, halo_words = _halo_params(decomp)
        env = {
            "n": float(A.shape[0]),
            "p": float(nranks),
            "nnz": float(A.nnz),
            "halo_pairs": float(halo_pairs),
            "halo_words": halo_words,
        }
        outs = {}
        for backend in ("reference", "vectorized"):
            ledger = ChargeLedger()
            sim = Simulator(nranks, CRAY_T3D, ledger=ledger)
            res = parallel_matvec(A, decomp, x, transport=sim, backend=backend)
            stats = sim.stats()
            sim.close()
            _assert_closed_forms(_MATVEC_SPEC, env, stats, backend)
            # the ledger and the stats counters are dual accounts
            assert ledger.total("compute") == float(stats.total_flops)
            assert ledger.count("barrier") == stats.barriers
            outs[backend] = (res.y, res.modeled_time, stats.total_flops)
        # charges are bit-identical across backends; the numeric result
        # may differ in summation order, so it gets a tolerance instead
        assert outs["reference"][1:] == outs["vectorized"][1:]
        np.testing.assert_allclose(
            outs["reference"][0], outs["vectorized"][0], rtol=1e-12, atol=1e-12
        )


class TestTriangularCostModel:
    @settings(max_examples=15, deadline=None)
    @given(instances(max_n=14))
    def test_closed_forms_hold_on_random_factors(self, data):
        from repro.ilu import parallel_ilut
        from repro.ilu.params import ILUTParams
        from repro.ilu.triangular import parallel_triangular_solve
        from repro.lint.costverify import _triangular_comm
        from repro.machine import CRAY_T3D, ChargeLedger, Simulator

        nranks, A = data
        fact = parallel_ilut(
            A, ILUTParams(fill=3, threshold=1e-4), nranks, seed=0, transport="none"
        )
        factors = fact.factors
        b = A @ np.ones(A.shape[0])
        q = len(factors.levels.interface_levels)
        tri_messages, tri_words = _triangular_comm(factors)
        env = {
            "n": float(A.shape[0]),
            "p": float(nranks),
            "q": float(q),
            "nnz_L": float(factors.L.nnz),
            "nnz_U": float(factors.U.nnz),
            "tri_messages": float(tri_messages),
            "tri_words": tri_words,
        }
        outs = {}
        for backend in ("reference", "vectorized"):
            ledger = ChargeLedger()
            sim = Simulator(nranks, CRAY_T3D, ledger=ledger)
            sol = parallel_triangular_solve(
                factors, b, nranks=nranks, transport=sim, backend=backend
            )
            stats = sim.stats()
            sim.close()
            _assert_closed_forms(_TRI_SPEC, env, stats, backend)
            assert ledger.total("compute") == float(stats.total_flops)
            outs[backend] = (sol.x, sol.modeled_time, stats.messages)
        assert outs["reference"][1:] == outs["vectorized"][1:]
        np.testing.assert_allclose(
            outs["reference"][0], outs["vectorized"][0], rtol=1e-9, atol=1e-9
        )
