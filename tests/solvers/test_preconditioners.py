"""Unit tests for the preconditioner interfaces."""

import numpy as np
import pytest

from repro.ilu import ilut
from repro.matrices import poisson2d
from repro.solvers import (
    DiagonalPreconditioner,
    IdentityPreconditioner,
    ILUPreconditioner,
    Preconditioner,
)
from repro.sparse import CSRMatrix


class TestIdentity:
    def test_returns_copy(self):
        M = IdentityPreconditioner()
        r = np.arange(4.0)
        out = M.apply(r)
        assert np.array_equal(out, r)
        out[0] = 99
        assert r[0] == 0.0

    def test_callable(self):
        M = IdentityPreconditioner()
        assert np.array_equal(M(np.ones(3)), np.ones(3))


class TestDiagonal:
    def test_inverts_diagonal(self):
        A = CSRMatrix.from_dense(np.diag([2.0, 4.0]))
        M = DiagonalPreconditioner(A)
        assert np.allclose(M.apply(np.array([2.0, 4.0])), [1.0, 1.0])

    def test_rejects_zero_diagonal(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            DiagonalPreconditioner(A)

    def test_exact_for_diagonal_system(self, rng):
        d = rng.uniform(1, 10, size=20)
        A = CSRMatrix.from_dense(np.diag(d))
        M = DiagonalPreconditioner(A)
        b = rng.standard_normal(20)
        assert np.allclose(A @ M.apply(b), b)


class TestILU:
    def test_wraps_factors(self, rng):
        A = poisson2d(8)
        f = ilut(A, 5, 1e-3)
        b = rng.standard_normal(64)
        # fast path agrees within rounding; slow path is bit-exact
        assert np.allclose(ILUPreconditioner(f).apply(b), f.solve(b), rtol=1e-12)
        assert np.array_equal(ILUPreconditioner(f, fast=False).apply(b), f.solve(b))

    def test_exact_factorization_gives_exact_solve(self, rng):
        from repro.matrices import random_diag_dominant

        A = random_diag_dominant(30, 4, seed=1)
        M = ILUPreconditioner(ilut(A, 30, 0.0))
        b = rng.standard_normal(30)
        assert np.allclose(A @ M.apply(b), b, atol=1e-8)


class TestBase:
    def test_base_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Preconditioner().apply(np.ones(2))
