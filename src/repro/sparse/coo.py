"""Coordinate-format builder for sparse matrices.

The COO builder is the standard entry point for assembling matrices
(finite-difference stencils, FEM element loops, random generators).
Duplicate entries are summed on conversion, matching the usual FEM
assembly semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from .csr import CSRMatrix

__all__ = ["COOBuilder"]


class COOBuilder:
    """Incrementally assemble a sparse matrix in coordinate format.

    Parameters
    ----------
    nrows, ncols:
        Matrix dimensions.  ``ncols`` defaults to ``nrows``.

    Entries added at the same ``(i, j)`` position are *summed* when the
    matrix is finalised with :meth:`to_csr`.
    """

    def __init__(self, nrows: int, ncols: int | None = None) -> None:
        if nrows < 0:
            raise ValueError(f"nrows must be non-negative, got {nrows}")
        self.nrows = int(nrows)
        self.ncols = int(ncols) if ncols is not None else int(nrows)
        if self.ncols < 0:
            raise ValueError(f"ncols must be non-negative, got {self.ncols}")
        self._rows: list[np.ndarray] = []
        self._cols: list[np.ndarray] = []
        self._vals: list[np.ndarray] = []

    def add(self, i: int, j: int, v: float) -> None:
        """Add a single entry ``A[i, j] += v``."""
        self.add_batch(
            np.asarray([i], dtype=np.int64),
            np.asarray([j], dtype=np.int64),
            np.asarray([v], dtype=np.float64),
        )

    def add_batch(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        """Add a batch of entries ``A[rows[k], cols[k]] += vals[k]``."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        vals = np.asarray(vals, dtype=np.float64).ravel()
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError(
                "rows, cols and vals must have matching lengths: "
                f"{rows.shape}, {cols.shape}, {vals.shape}"
            )
        if rows.size == 0:
            return
        if rows.min() < 0 or rows.max() >= self.nrows:
            raise IndexError("row index out of range")
        if cols.min() < 0 or cols.max() >= self.ncols:
            raise IndexError("column index out of range")
        self._rows.append(rows)
        self._cols.append(cols)
        self._vals.append(vals)

    @property
    def nnz_entries(self) -> int:
        """Number of raw (possibly duplicated) entries added so far."""
        return int(sum(a.size for a in self._rows))

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the raw (rows, cols, vals) arrays without deduplication."""
        if not self._rows:
            e_i = np.empty(0, dtype=np.int64)
            e_v = np.empty(0, dtype=np.float64)
            return e_i, e_i.copy(), e_v
        return (
            np.concatenate(self._rows),
            np.concatenate(self._cols),
            np.concatenate(self._vals),
        )

    def to_csr(self, *, drop_zeros: bool = False) -> CSRMatrix:
        """Finalise into a :class:`~repro.sparse.csr.CSRMatrix`.

        Duplicate ``(i, j)`` entries are summed.  If ``drop_zeros`` is
        true, entries that sum exactly to zero are removed from the
        pattern.
        """
        from .csr import CSRMatrix

        rows, cols, vals = self.to_arrays()
        return CSRMatrix.from_coo(
            rows, cols, vals, shape=(self.nrows, self.ncols), drop_zeros=drop_zeros
        )
