"""Happens-before access tracing for the SPMD machine simulator.

The parallel drivers in this library (parallel ILUT/ILUT*, the
distributed MIS, the level-scheduled triangular solves, the distributed
matvec) are correct only if every rank touches exclusively the objects
it owns between synchronisation points.  The
:class:`~repro.machine.Simulator` executes the real computation, so the
way to check that discipline mechanically is to have every driver
*declare* its shared-object accesses and then verify that any pair of
conflicting accesses from different ranks is ordered by a barrier,
collective, or send→recv message edge.

This module provides the recording half: :class:`AccessTracer` keeps one
**vector clock** per rank, advanced by the simulator's communication
events, and stores every declared access together with a snapshot of the
accessing rank's clock and the current barrier epoch.  The checking half
lives in :mod:`repro.verify.race`.

Clock protocol (standard message-passing vector clocks):

* ``send`` ticks the sender's own component, then attaches the updated
  clock to the message — so the attached component strictly exceeds the
  snapshot of every access made before the send, and equals the snapshot
  of accesses made after it;
* ``recv`` joins (elementwise max) the attached clock into the
  receiver's clock, then ticks the receiver's own component;
* barriers and collectives tick every rank's own component, join all
  clocks, and bump the **epoch** counter (used only for human-readable
  reports).

An access ``a`` is ordered before a cross-rank access ``b`` iff
``b.clock[a.rank] > a.clock[a.rank]`` — **strictly** greater, which
holds exactly when a chain of sync edges starting after ``a`` reached
``b``'s rank before ``b``.

Accesses themselves do not tick the clock, so every access between two
communication events of a rank shares one snapshot; identical
consecutive records are deduplicated, keeping the trace compact (sound
because every clock event ticks the rank's own component).

Granularity: one logical shared object per ``(space, index)`` pair —
e.g. ``("u-row", i)`` for a factor row, ``("x", j)`` for one entry of a
distributed vector, ``("mis-flag", v)`` for a Luby flag.  Declaring at
row granularity is exactly the ownership unit of the paper's algorithm.

This module deliberately imports nothing from the rest of the library so
the simulator can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

READ = "read"
WRITE = "write"

__all__ = ["READ", "WRITE", "Access", "AccessTracer"]


@dataclass(frozen=True)
class Access:
    """One declared shared-object access.

    Attributes
    ----------
    rank:
        The accessing rank.
    kind:
        :data:`READ` or :data:`WRITE`.
    space:
        Name of the object family (``"u-row"``, ``"x"``, ...).
    index:
        Object index within the space (row number, vector entry, ...).
    clock:
        Snapshot of the rank's vector clock at access time.
    epoch:
        Barrier/collective count at access time (for reporting only).
    seq:
        Global record sequence number (program order within a rank).
    """

    rank: int
    kind: str
    space: str
    index: int
    clock: tuple[int, ...]
    epoch: int
    seq: int

    def describe(self) -> str:
        return (
            f"rank {self.rank} {self.kind} of ({self.space!r}, {self.index}) "
            f"in epoch {self.epoch}"
        )


def happens_before(a: Access, b: Access) -> bool:
    """True iff ``a`` is ordered before ``b`` by the recorded sync events.

    Same-rank accesses are ordered by program order; cross-rank accesses
    are ordered iff ``b``'s clock has caught up with ``a``'s rank
    component, i.e. a chain of message/barrier edges carried the
    knowledge of ``a`` to ``b``'s rank.
    """
    if a.rank == b.rank:
        return a.seq < b.seq
    return b.clock[a.rank] > a.clock[a.rank]


class AccessTracer:
    """Vector-clock recorder for per-rank shared-object accesses.

    Created by ``Simulator(nranks, model, trace=True)`` and advanced
    automatically by the simulator's ``send``/``recv``/``barrier``/
    collective calls; drivers declare accesses with :meth:`read`,
    :meth:`write` and :meth:`read_many`.
    """

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = int(nranks)
        self._vc: list[list[int]] = [[0] * self.nranks for _ in range(self.nranks)]
        self.epoch = 0
        self._cells: dict[tuple[str, int], list[Access]] = {}
        self._seq = 0
        self.num_accesses = 0

    # ------------------------------------------------------------------
    # communication events (called by the simulator)
    # ------------------------------------------------------------------

    def on_send(self, src: int) -> tuple[int, ...]:
        """Record a send: tick ``src``'s own component, return the clock
        to attach to the message."""
        self._vc[src][src] += 1
        return tuple(self._vc[src])

    def on_recv(self, dst: int, attached: tuple[int, ...] | None) -> None:
        """Record a receive: join the attached clock into ``dst``'s, then
        tick ``dst``'s own component."""
        if attached is not None:
            row = self._vc[dst]
            for i, c in enumerate(attached):
                if c > row[i]:
                    row[i] = c
        self._vc[dst][dst] += 1

    def on_collective(self) -> None:
        """Record a barrier/collective: tick every rank, join all clocks."""
        for r in range(self.nranks):
            self._vc[r][r] += 1
        joined = [max(vc[i] for vc in self._vc) for i in range(self.nranks)]
        for r in range(self.nranks):
            self._vc[r] = joined.copy()
        self.epoch += 1

    # ------------------------------------------------------------------
    # access declarations (called by the drivers)
    # ------------------------------------------------------------------

    def read(self, rank: int, space: str, index: int) -> None:
        """Declare that ``rank`` reads shared object ``(space, index)``."""
        self._record(rank, READ, space, int(index))

    def write(self, rank: int, space: str, index: int) -> None:
        """Declare that ``rank`` writes shared object ``(space, index)``."""
        self._record(rank, WRITE, space, int(index))

    def read_many(self, rank: int, space: str, indices: Iterable[int]) -> None:
        """Declare reads of every object ``(space, i)`` for ``i`` in ``indices``."""
        for i in indices:
            self._record(rank, READ, space, int(i))

    def write_many(self, rank: int, space: str, indices: Iterable[int]) -> None:
        """Declare writes of every object ``(space, i)`` for ``i`` in ``indices``.

        The batched (``backend="vectorized"``) drivers update a whole
        level of a distributed vector with one scatter; this declares
        the same per-object accesses the scalar drivers would.
        """
        for i in indices:
            self._record(rank, WRITE, space, int(i))

    def _record(self, rank: int, kind: str, space: str, index: int) -> None:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
        cell = self._cells.setdefault((space, index), [])
        if cell:
            last = cell[-1]
            # identical re-access between two sync events: nothing new
            if (
                last.rank == rank
                and last.kind == kind
                and last.clock[rank] == self._vc[rank][rank]
            ):
                return
        acc = Access(
            rank=rank,
            kind=kind,
            space=space,
            index=index,
            clock=tuple(self._vc[rank]),
            epoch=self.epoch,
            seq=self._seq,
        )
        self._seq += 1
        self.num_accesses += 1
        cell.append(acc)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def cells(self) -> Iterator[tuple[tuple[str, int], list[Access]]]:
        """Iterate ``((space, index), accesses)`` in deterministic order."""
        for key in sorted(self._cells):
            yield key, self._cells[key]

    def accesses(self, space: str, index: int) -> list[Access]:
        """All recorded accesses of one shared object."""
        return list(self._cells.get((space, int(index)), []))

    def __repr__(self) -> str:
        return (
            f"AccessTracer(nranks={self.nranks}, objects={len(self._cells)}, "
            f"accesses={self.num_accesses}, epoch={self.epoch})"
        )
