"""Parity suite: vectorized kernels against their scalar reference twins."""
