"""One-worker-thread-per-rank transport (``transport="threads"``).

Each rank gets a persistent worker thread fed through a task queue; a
``pardo`` dispatches one thunk per rank and joins on completion.  Point-
to-point messages match through the shared condition-guarded mailboxes
of :class:`~repro.machine.transport.LocalTransport` — a worker-context
``recv`` genuinely blocks until the matching ``send`` lands (with a
deadlock timeout), and ``barrier`` called from worker context is a real
:class:`threading.Barrier` across the ranks participating in the
current parallel region.

Payloads are delivered **by reference**: the ranks share one address
space, so a message is the object itself, exactly like the simulator's
default (non-``copy_payloads``) mode.  The drivers' read-shared /
write-own discipline (DESIGN.md §13) is what keeps this safe — thunks
never mutate coordinator state, they return updates that the
coordinator merges in rank order, which is also what makes the factors
bit-identical to the simulator's.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

from .transport import LocalTransport, TransportError, TransportWorkerError

__all__ = ["ThreadTransport"]

_STOP = object()


class ThreadTransport(LocalTransport):
    """Real threaded execution of the SPMD drivers' parallel regions."""

    name = "threads"
    #: thunks share one address space and run concurrently — drivers must
    #: not share scratch state (accumulators) between region thunks
    concurrent_regions = True

    def __init__(self, nranks: int) -> None:
        super().__init__(nranks)
        self._local = threading.local()
        self._tasks: list[queue.Queue] = [queue.Queue() for _ in range(self.nranks)]
        self._done: queue.Queue = queue.Queue()
        self._region_barrier: threading.Barrier | None = None
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, args=(r,), name=f"repro-rank-{r}", daemon=True
            )
            for r in range(self.nranks)
        ]
        for w in self._workers:
            w.start()

    # -- worker machinery ---------------------------------------------

    def _worker_loop(self, rank: int) -> None:
        self._local.rank = rank
        while True:
            task = self._tasks[rank].get()
            if task is _STOP:
                return
            seq, thunk = task
            try:
                result = thunk()
            except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
                self._done.put((seq, rank, False, exc))
            else:
                self._done.put((seq, rank, True, result))

    def _in_worker(self) -> bool:
        return getattr(self._local, "rank", None) is not None

    def current_rank(self) -> int | None:
        """The rank of the calling worker thread (None in the coordinator)."""
        return getattr(self._local, "rank", None)

    # -- parallel region ----------------------------------------------

    def pardo(self, thunks: Sequence[Callable[[], Any] | None]) -> list[Any]:
        """Run one thunk per rank concurrently; results in rank order.

        A raising thunk's exception is re-raised in the coordinator —
        lowest failing rank first, after all participants finish, so a
        failure cannot leave a worker wedged mid-region.
        """
        self._check_thunks(thunks)
        if self._closed:
            raise TransportError("transport is closed")
        active = [r for r, f in enumerate(thunks) if f is not None]
        if not active:
            return [None] * self.nranks
        seq = object()  # unique token ties results to this region
        self._region_barrier = threading.Barrier(len(active)) if len(active) > 1 else None
        try:
            for r in active:
                self._tasks[r].put((seq, thunks[r]))
            results: list[Any] = [None] * self.nranks
            failures: dict[int, BaseException] = {}
            for _ in active:
                got_seq, rank, ok, value = self._done.get()
                if got_seq is not seq:  # pragma: no cover - defensive
                    raise TransportError("cross-region result leak")
                if ok:
                    results[rank] = value
                else:
                    failures[rank] = value
            if failures:
                rank = min(failures)
                exc = failures[rank]
                if isinstance(exc, Exception):
                    raise exc
                raise TransportWorkerError(rank, repr(exc))
            return results
        finally:
            self._region_barrier = None

    # -- collectives from worker context -------------------------------

    def _sync_workers(self) -> bool:
        if not self._in_worker():
            return True
        bar = self._region_barrier
        if bar is None:
            return True  # single-rank region: trivially synchronised
        try:
            # Barrier.wait returns a unique 0..parties-1 index; exactly
            # one participant (index 0) accounts the barrier.
            return bar.wait(timeout=self.recv_timeout) == 0
        except threading.BrokenBarrierError as exc:
            raise TransportError(
                "barrier broken: a participating rank failed or timed out"
            ) from exc

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for q in self._tasks:
            q.put(_STOP)
        for w in self._workers:
            w.join(timeout=5.0)
