"""BRK001 clean twin: typed breakdowns, plain argument validation."""

from repro.resilience import ZeroPivotError


def pivot(d, i):
    if d == 0.0:
        raise ZeroPivotError(f"zero pivot at row {i}", row=i, value=0.0)


def check_args(m):
    if m < 0:
        raise ValueError("m must be non-negative")  # validation, not numeric
