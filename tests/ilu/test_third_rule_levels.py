"""3rd dropping rule (paper §4.2): reduced rows never exceed k*m entries.

The rule must hold at *every* ILUT* level, not just in the final
factors — a reduced row that transiently blows past k*m would destroy
the sparsity/level-count argument of §4.2.  ``EliminationEngine``'s
``level_hook`` exposes the live reduced-row dict after phase 1 and
after every phase-2 update, which is exactly where we assert the cap.
"""

import numpy as np
import pytest

from repro.decomp import decompose
from repro.ilu.elimination import EliminationEngine
from repro.matrices import convection_diffusion2d, poisson2d
from repro.verify import check_reduced_rows


def _run_with_hook(A, m, t, k, nranks, seed=0):
    """Factor and return [(level, reduced-row lengths dict snapshot)]."""
    decomp = decompose(A, nranks, seed=seed)
    snapshots = []
    cap = k * m if k is not None else None

    def hook(level, iset, reduced):
        lengths = {i: int(c.size) for i, (c, _) in reduced.items()}
        snapshots.append((level, lengths))
        # the composable checker must agree at every level
        assert check_reduced_rows(reduced, cap=cap) == []

    engine = EliminationEngine(
        decomp, m, t, reduced_cap=cap, seed=seed, level_hook=hook
    )
    outcome = engine.run()
    return snapshots, outcome


class TestThirdDroppingRule:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_cap_holds_at_every_level(self, k):
        m = 4
        snapshots, outcome = _run_with_hook(poisson2d(12), m, 1e-4, k, 4)
        assert len(snapshots) >= 2  # phase 1 + at least one level
        assert snapshots[0][0] == -1
        for level, lengths in snapshots:
            for i, nnz in lengths.items():
                assert nnz <= k * m, (
                    f"level {level}: reduced row {i} has {nnz} > k*m = {k * m}"
                )

    def test_k1_is_the_tightest_cap(self):
        # k = 1: every reduced row capped at m itself
        m = 3
        snapshots, _ = _run_with_hook(poisson2d(10), m, 1e-4, 1, 4)
        assert all(
            nnz <= m for _, lengths in snapshots for nnz in lengths.values()
        )

    def test_rows_shorter_than_m_unaffected(self):
        # with a huge m the cap never binds: plain ILUT and ILUT* agree
        m = 50
        s1, o1 = _run_with_hook(poisson2d(8), m, 1e-4, None, 4)
        s2, o2 = _run_with_hook(poisson2d(8), m, 1e-4, 2, 4)
        assert [lv for lv, _ in s1] == [lv for lv, _ in s2]
        for (_, a), (_, b) in zip(s1, s2):
            assert a == b
        assert np.array_equal(o1.factors.U.indices, o2.factors.U.indices)
        assert np.allclose(o1.factors.U.data, o2.factors.U.data)

    def test_uncapped_ilut_can_exceed_km(self):
        # sanity: the cap is doing real work — on a nonsymmetric stencil
        # with small m, plain ILUT grows some reduced row beyond k*m
        m, k = 2, 1
        snapshots, _ = _run_with_hook(convection_diffusion2d(14), m, 1e-6, None, 6)
        peak = max(
            (nnz for _, lengths in snapshots for nnz in lengths.values()),
            default=0,
        )
        assert peak > k * m

    def test_phase1_snapshot_already_capped(self):
        # the interface reduction (phase 1) applies the rule too, before
        # any level is eliminated
        m, k = 3, 2
        snapshots, _ = _run_with_hook(poisson2d(12), m, 1e-4, k, 4)
        level, lengths = snapshots[0]
        assert level == -1 and lengths  # interface rows exist
        assert all(nnz <= k * m for nnz in lengths.values())

    def test_final_factors_respect_fill_bounds(self):
        m, k = 4, 2
        _, outcome = _run_with_hook(poisson2d(12), m, 1e-4, k, 4)
        U = outcome.factors.U
        for i in range(U.shape[0]):
            assert U.indptr[i + 1] - U.indptr[i] <= m + 1  # diag + m
