"""Public API for the parallel ILUT / ILUT* factorizations.

``parallel_ilut`` and ``parallel_ilut_star`` run the two-phase
elimination of the paper on a simulated ``p``-processor machine and
return the factors together with the modelled time, communication
statistics and the independent-set level structure (the paper's ``q``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..decomp import DomainDecomposition, decompose
from ..faults import FaultJournal, FaultPlan
from ..machine import (
    CRAY_T3D,
    CommStats,
    MachineModel,
    Transport,
    is_transport,
    resolve_entry_transport,
    transport_name,
)
from ..resilience import PivotPolicy
from ..sparse import CSRMatrix
from .elimination import EliminationEngine
from .factors import ILUFactors
from .ilut import coerce_ilut_params
from .params import ILUTParams

if TYPE_CHECKING:
    from ..machine.supervision import SupervisionPolicy
    from ..verify.trace import AccessTracer

__all__ = ["ParallelILUResult", "parallel_ilut", "parallel_ilut_star"]


@dataclass
class ParallelILUResult:
    """Result of a simulated parallel incomplete factorization.

    Attributes
    ----------
    factors:
        The L/U factors in elimination order, with level structure.
    decomp:
        The domain decomposition used.
    num_levels:
        Number of independent sets ``q`` needed for the interface rows.
    level_sizes:
        Size of each independent set.
    modeled_time:
        Virtual wall-clock seconds on the simulated machine (``None``
        when run without a simulator).
    comm:
        Aggregate simulator counters (``None`` without a simulator).
    trace:
        The simulator's access tracer when run with ``trace=True`` —
        feed it to :func:`repro.verify.find_races`.
    fault_journal:
        The structured log of injected faults and recovery actions when
        run with a ``faults=`` plan (``None`` otherwise).
    recoveries:
        Recovery actions performed during the factorization: engine
        checkpoint rollbacks plus supervised region retries on a real
        transport (DESIGN.md §14).
    transport:
        Which transport executed the run (``"simulator"``, ``"threads"``,
        ``"processes"`` or ``"none"``).
    """

    factors: ILUFactors
    decomp: DomainDecomposition
    num_levels: int
    level_sizes: list[int]
    modeled_time: float | None
    comm: CommStats | None
    flops: float
    words_copied: float
    trace: AccessTracer | None = None
    fault_journal: FaultJournal | None = None
    recoveries: int = 0
    transport: str = "none"

    @property
    def nranks(self) -> int:
        return self.decomp.nranks


def parallel_ilut(
    A: CSRMatrix,
    params: ILUTParams | int | None = None,
    t_or_nranks: float | int | None = None,
    nranks: int | None = None,
    *,
    m: int | None = None,
    t: float | None = None,
    reduced_cap: int | None = None,
    model: MachineModel = CRAY_T3D,
    transport: str | Transport | None = "simulator",
    simulate: bool | None = None,
    decomp: DomainDecomposition | None = None,
    method: str = "multilevel",
    mis_rounds: int = 5,
    seed: int = 0,
    diag_guard: bool = True,
    pivot_policy: PivotPolicy | None = None,
    trace: bool = False,
    faults: FaultPlan | None = None,
    checkpoint: bool | None = None,
    backend: str | None = None,
    copy_payloads: bool = False,
    supervision: "SupervisionPolicy | None" = None,
) -> ParallelILUResult:
    """Factor ``A`` with parallel ILUT(m, t) on ``nranks`` simulated PEs.

    Call as ``parallel_ilut(A, ILUTParams(fill=m, threshold=t), nranks)``;
    the legacy ``parallel_ilut(A, m, t, nranks)`` form still works and
    emits a :class:`DeprecationWarning`.

    Parameters
    ----------
    A:
        Square sparse matrix.
    params:
        The :class:`~repro.ilu.params.ILUTParams` dropping parameters
        (``fill`` = max kept per L/U row; ``threshold`` = relative drop
        tolerance).  A set ``params.k`` is ignored here — ``reduced_cap``
        governs the 3rd rule; use :func:`parallel_ilut_star` for ILUT*.
    nranks:
        Number of simulated processors.
    reduced_cap:
        Cap on reduced-row length; ``None`` reproduces plain ILUT.
        (Use :func:`parallel_ilut_star` for the paper's ILUT*(m,t,k).)
    model:
        Machine cost model (default: the Cray T3D preset; only the
        simulator transport consumes it).
    transport:
        Execution backend for the parallel regions — ``"simulator"``
        (default; modelled clocks, the deterministic oracle),
        ``"threads"`` / ``"processes"`` (real workers, bit-identical
        factors), ``"none"`` (no accounting at all; fastest, used
        heavily in tests), or a ready
        :class:`~repro.machine.Transport` instance.
    simulate:
        Deprecated alias: ``simulate=True`` means
        ``transport="simulator"``, ``simulate=False`` means
        ``transport="none"``.  Emits a :class:`DeprecationWarning`.
    decomp:
        Reuse a precomputed decomposition; otherwise one is computed
        with ``method`` (``"multilevel"``/``"block"``/``"random"``).
    mis_rounds:
        Luby augmentation rounds per level (paper: 5).
    seed:
        Seed for partitioning and MIS randomness.
    trace:
        Record shared-object accesses for race detection (requires
        ``simulate=True``); see :mod:`repro.verify`.
    pivot_policy:
        Small/zero-pivot remediation
        (:class:`~repro.resilience.PivotPolicy`); overrides
        ``diag_guard`` when given.
    faults:
        A seeded :class:`~repro.faults.FaultPlan` to inject faults into
        the run; the journal lands in
        ``ParallelILUResult.fault_journal``.  The simulator honours
        every fault kind; the real transports honour the portable
        subset — crash / stall rank faults and corrupt message faults
        (as corrupt-result) — and recover by supervised region retry
        (DESIGN.md §14).  Unportable kinds raise
        :class:`~repro.machine.TransportCapabilityError` off-simulator.
    supervision:
        A :class:`~repro.machine.SupervisionPolicy` tuning the worker
        supervisor (deadline, poll interval, region retry budget) —
        real transports only.
    checkpoint:
        Snapshot per-level state so an injected rank crash resumes from
        the last completed level.  ``None`` (default) enables
        checkpointing exactly when a fault plan is supplied.
    backend:
        Kernel backend for the elimination inner loops (bit-identical
        results); ``None`` uses the process default.
    copy_payloads:
        Pickle round-trip every simulated message at post time — the
        serializing-transport debug oracle (see
        :class:`~repro.machine.Simulator`); results are bit-identical
        for transport-certified drivers.  Requires ``simulate=True``.
    """
    if isinstance(params, ILUTParams):
        if t_or_nranks is not None:
            if nranks is not None:
                raise TypeError("parallel_ilut() got multiple values for 'nranks'")
            nranks = int(t_or_nranks)
        p = coerce_ilut_params("parallel_ilut", params, t, m)
    else:
        if t is None:
            t_eff = t_or_nranks
        elif t_or_nranks is not None:
            raise TypeError("parallel_ilut() got multiple values for 't'")
        else:
            t_eff = t
        p = coerce_ilut_params("parallel_ilut", params, t_eff, m)
    if nranks is None:
        raise TypeError("parallel_ilut() missing required argument 'nranks'")
    nranks = int(nranks)
    if decomp is None:
        decomp = decompose(A, nranks, method=method, seed=seed)
    elif decomp.nranks != nranks:
        raise ValueError(
            f"decomp has {decomp.nranks} ranks but nranks={nranks} was requested"
        )
    if checkpoint is None:
        checkpoint = faults is not None
    sim = resolve_entry_transport(
        "parallel_ilut",
        transport,
        simulate,
        nranks,
        model=model,
        trace=trace,
        faults=faults,
        copy_payloads=copy_payloads,
        supervision=supervision,
    )
    owned = not is_transport(transport)  # we constructed it, we close it
    try:
        engine = EliminationEngine(
            decomp,
            p.fill,
            p.threshold,
            reduced_cap=reduced_cap,
            sim=sim,
            mis_rounds=mis_rounds,
            seed=seed,
            diag_guard=diag_guard,
            pivot_policy=pivot_policy,
            checkpoint=checkpoint,
            backend=backend,
        )
        outcome = engine.run()
        return ParallelILUResult(
            factors=outcome.factors,
            decomp=decomp,
            num_levels=outcome.num_levels,
            level_sizes=outcome.level_sizes,
            modeled_time=sim.elapsed() if sim is not None else None,
            comm=sim.stats() if sim is not None else None,
            flops=outcome.flops,
            words_copied=outcome.words_copied,
            trace=getattr(sim, "tracer", None),
            fault_journal=getattr(sim, "fault_journal", None),
            recoveries=outcome.recoveries + getattr(sim, "region_recoveries", 0),
            transport=transport_name(sim),
        )
    finally:
        if owned and sim is not None:
            sim.close()


def parallel_ilut_star(
    A: CSRMatrix,
    params: ILUTParams | int | None = None,
    arg2: float | int | None = None,
    arg3: int | None = None,
    arg4: int | None = None,
    *,
    m: int | None = None,
    t: float | None = None,
    k: int | None = None,
    nranks: int | None = None,
    **kwargs,
) -> ParallelILUResult:
    """Factor ``A`` with parallel ILUT*(m, t, k) — paper §4.2.

    Call as ``parallel_ilut_star(A, ILUTParams(fill, threshold, k), nranks)``;
    the legacy ``parallel_ilut_star(A, m, t, k, nranks)`` form still
    works and emits a :class:`DeprecationWarning`.

    Identical to :func:`parallel_ilut` except the 3rd dropping rule caps
    every reduced-matrix row at ``k*m`` entries, keeping the reduced
    matrices sparse, the independent sets large and the level count low.
    The paper finds ``k = 2`` matches ILUT's preconditioning quality.
    """
    if isinstance(params, ILUTParams):
        if arg2 is not None:
            if nranks is not None:
                raise TypeError(
                    "parallel_ilut_star() got multiple values for 'nranks'"
                )
            nranks = int(arg2)
        if arg3 is not None or arg4 is not None:
            raise TypeError(
                "parallel_ilut_star() takes (A, params, nranks) in the new style"
            )
        p = coerce_ilut_params("parallel_ilut_star", params, t, m, k, want_k=True)
    else:
        t_eff = arg2 if t is None else t
        k_eff = arg3 if k is None else k
        if (arg2 is not None and t is not None) or (arg3 is not None and k is not None):
            raise TypeError("parallel_ilut_star() got duplicate legacy arguments")
        if arg4 is not None:
            if nranks is not None:
                raise TypeError(
                    "parallel_ilut_star() got multiple values for 'nranks'"
                )
            nranks = int(arg4)
        p = coerce_ilut_params(
            "parallel_ilut_star", params, t_eff, m, k_eff, want_k=True
        )
    if nranks is None:
        raise TypeError("parallel_ilut_star() missing required argument 'nranks'")
    assert p.reduced_cap is not None
    simulate = kwargs.pop("simulate", None)
    if simulate is not None:
        # translate here so the DeprecationWarning points at the caller,
        # not at this delegation into parallel_ilut
        if kwargs.get("transport", "simulator") != "simulator":
            raise TypeError(
                "parallel_ilut_star() got both the deprecated simulate= "
                "and transport=; pass only transport="
            )
        warnings.warn(
            "parallel_ilut_star(simulate=...) is deprecated; pass "
            "transport='simulator' (simulate=True) or transport='none' "
            "(simulate=False) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        kwargs["transport"] = "simulator" if simulate else "none"
    return parallel_ilut(
        A,
        ILUTParams(fill=p.fill, threshold=p.threshold),
        int(nranks),
        reduced_cap=p.reduced_cap,
        **kwargs,
    )
