"""Figure 4 — factorization speedup on G0.

Paper: relative speedup (vs the smallest processor count) of the nine
ILUT and nine ILUT* factorizations of G0.  Shapes: near-identical ILUT
vs ILUT* curves at t=1e-2; ILUT* clearly better at t=1e-4 and
especially t=1e-6.
"""

import pytest

from _reporting import record_table
from _workloads import PROCS, all_configs, factorize, label


def _series(name: str):
    from repro.analysis import format_series, relative_speedups

    lines = []
    data = {}
    for algo, m, t in all_configs():
        times = {p: factorize(name, algo, m, t, p).modeled_time for p in PROCS}
        sp = relative_speedups(times)
        data[(algo, m, t)] = sp
        lines.append(format_series(label(algo, m, t), PROCS, [sp[p] for p in PROCS]))
    return "\n".join(lines), data


def test_fig4_speedup_g0(benchmark):
    text, data = benchmark.pedantic(_series, args=("g0",), rounds=1, iterations=1)
    record_table("Figure 4: factorization speedup, G0 (relative to p=%d)" % PROCS[0], text)
    pmax = PROCS[-1]
    # Shape 1: every ILUT* configuration gains from more processors, and
    # so does ILUT away from the dense t=1e-6 regime (where the paper
    # itself shows ILUT's scaling collapsing)
    for (algo, m, t), sp in data.items():
        if algo == "ILUT*" or t > 1e-6:
            assert sp[pmax] > 1.0, f"{(algo, m, t)} shows no speedup at all"
    # Shape 2: at the tightest threshold ILUT* clearly out-scales ILUT
    for m in (5, 10, 20):
        sp_i = data[("ILUT", m, 1e-6)][pmax]
        sp_s = data[("ILUT*", m, 1e-6)][pmax]
        assert sp_s > sp_i, f"m={m}: ILUT* must out-scale ILUT at t=1e-6"
    # Shape 3: at the loose threshold the two are nearly identical
    assert data[("ILUT", 5, 1e-2)][pmax] == pytest.approx(
        data[("ILUT*", 5, 1e-2)][pmax], rel=0.1
    )
